//! Cross-crate properties of the streaming executor: bit-identity with the
//! batch drivers across `ErMode` × `Parallelism` × queue capacity, and the
//! bounded-memory guarantee.
//!
//! The parallelism sweep includes `GENPIP_PARALLELISM` (when set), which CI
//! uses to force both threading paths through this suite.

// Identity oracle: the deprecated `run_*` wrappers are the frozen reference
// the streaming executor is compared against.
#![allow(deprecated)]

use genpip::core::pipeline::{run_conventional, run_genpip, ErMode};
use genpip::core::stream::{
    run_conventional_streaming, run_genpip_streaming, StreamEvent, StreamOptions, StreamSummary,
};
use genpip::core::{GenPipConfig, Parallelism, ReadRun};
use genpip::datasets::{DatasetProfile, ReadSource, SimulatedDataset, SimulatedRead};
use genpip::genomics::Genome;
use genpip::signal::PoreModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn dataset() -> SimulatedDataset {
    DatasetProfile::ecoli().scaled(0.04).generate()
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(4)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

fn collect(
    source: &mut (impl ReadSource + Send),
    config: &GenPipConfig,
    er: ErMode,
    opts: &StreamOptions,
) -> (Vec<ReadRun>, StreamSummary) {
    let mut reads = Vec::new();
    let summary = run_genpip_streaming(source, config, er, opts, |event| {
        if let StreamEvent::Read(run) = event {
            reads.push(run);
        }
    });
    (reads, summary)
}

#[test]
fn streaming_matches_batch_across_er_parallelism_and_queue_capacity() {
    let d = dataset();
    let base = GenPipConfig::for_dataset(&d.profile);
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        for parallelism in parallelism_sweep() {
            let config = base.clone().with_parallelism(parallelism);
            let batch = run_genpip(&d, &config, er);
            for queue_capacity in [1usize, 8] {
                let opts = StreamOptions {
                    queue_capacity,
                    ..StreamOptions::default()
                };
                let (reads, summary) = collect(&mut d.stream(), &config, er, &opts);
                let label = format!("{er:?} / {parallelism:?} / queue {queue_capacity}");
                assert_eq!(reads, batch.reads, "{label}");
                assert_eq!(summary.totals, batch.totals(), "{label}");
                assert!(
                    summary.max_in_flight <= summary.in_flight_limit,
                    "{label}: {} in flight exceeds bound {}",
                    summary.max_in_flight,
                    summary.in_flight_limit
                );
            }
        }
    }
}

#[test]
fn conventional_streaming_matches_batch() {
    let d = dataset();
    let config = GenPipConfig::for_dataset(&d.profile)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Threads(3)));
    let batch = run_conventional(&d, &config);
    let mut reads = Vec::new();
    let summary = run_conventional_streaming(
        &mut d.stream(),
        &config,
        &StreamOptions::default(),
        |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        },
    );
    assert_eq!(reads, batch.reads);
    assert_eq!(summary.totals, batch.totals());
}

#[test]
fn lazy_generator_streams_bit_identically_to_the_materialized_dataset() {
    let profile = DatasetProfile::ecoli().scaled(0.04);
    let d = profile.generate();
    let config = GenPipConfig::for_dataset(&profile)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Auto));
    let batch = run_genpip(&d, &config, ErMode::Full);
    let opts = StreamOptions {
        queue_capacity: 4,
        ..StreamOptions::default()
    };
    let mut lazy = genpip::datasets::StreamingSimulator::new(&profile);
    let (reads, _) = collect(&mut lazy, &config, ErMode::Full, &opts);
    assert_eq!(reads, batch.reads);
}

/// Wraps a source and counts pulls, so the test can observe in-flight reads
/// (pulled minus emitted) from outside the executor.
struct CountingSource<S> {
    inner: S,
    pulled: Arc<AtomicUsize>,
}

impl<S: ReadSource> ReadSource for CountingSource<S> {
    fn reference(&self) -> &Genome {
        self.inner.reference()
    }
    fn pore_model(&self) -> &PoreModel {
        self.inner.pore_model()
    }
    fn mean_dwell(&self) -> f64 {
        self.inner.mean_dwell()
    }
    fn next_read(&mut self) -> Option<SimulatedRead> {
        let read = self.inner.next_read()?;
        self.pulled.fetch_add(1, Ordering::SeqCst);
        Some(read)
    }
}

#[test]
fn in_flight_reads_never_exceed_the_configured_bound() {
    let d = dataset();
    let workers = 4usize;
    let queue_capacity = 2usize;
    let config =
        GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(workers));
    let bound = queue_capacity + workers;
    // `max_in_flight` is peak *resident read chains*: an early-rejected
    // read stops counting at its QSR/CMR verdict (permit released there,
    // not at emission), so reads pulled-but-unemitted may exceed the gate
    // bound by exactly the rejected results still awaiting their in-order
    // emission slot. The external invariant is therefore:
    //   pulled − emitted − rejected_pending ≤ queue + workers,
    // where rejected_pending counts rejections among the reads *pulled so
    // far* (pull order is id order), not the whole run — slack never
    // covers reads that have not even been pulled.
    let solo = run_genpip(&d, &config, ErMode::Full);
    // prefix_rejected[i] = ER rejections among the first i reads.
    let mut prefix_rejected = vec![0usize; solo.reads.len() + 1];
    for (i, run) in solo.reads.iter().enumerate() {
        prefix_rejected[i + 1] = prefix_rejected[i] + usize::from(run.outcome.is_early_rejected());
    }
    let pulled = Arc::new(AtomicUsize::new(0));
    let mut source = CountingSource {
        inner: d.stream(),
        pulled: Arc::clone(&pulled),
    };
    let opts = StreamOptions {
        queue_capacity,
        ..StreamOptions::default()
    };
    let mut emitted = 0usize;
    let mut rejected_emitted = 0usize;
    let mut overshoot = 0usize;
    let summary = run_genpip_streaming(&mut source, &config, ErMode::Full, &opts, |event| {
        if let StreamEvent::Read(run) = event {
            // Reads pulled from the source but not yet emitted. Sampling at
            // emission time is conservative: pulls strictly precede this
            // observation, so any overshoot of the residency bound would
            // show up here.
            let pulled_now = pulled.load(Ordering::SeqCst);
            let in_flight = pulled_now - emitted;
            let rejected_pending = prefix_rejected[pulled_now] - rejected_emitted;
            overshoot = overshoot.max(in_flight.saturating_sub(rejected_pending));
            emitted += 1;
            if run.outcome.is_early_rejected() {
                rejected_emitted += 1;
            }
        }
    });
    assert_eq!(emitted, d.reads.len());
    assert!(
        overshoot <= bound,
        "observed {overshoot} permit-holding in-flight reads, bound {bound}"
    );
    assert_eq!(summary.in_flight_limit, bound);
    assert!(
        summary.max_in_flight <= bound,
        "gate high-water {} exceeds bound {bound}",
        summary.max_in_flight
    );
}
