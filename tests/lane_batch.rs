//! Lane-batched decode properties: every decode lane width must be
//! bit-identical to the scalar path (`Lanes::Width(1)`) across the full
//! ErMode × Parallelism × Granularity matrix, including lanes holding
//! chunks of different lengths, chains cancelled by an ER verdict while
//! their neighbours are still in the batch, and faulting reads contained
//! per-lane under the Quarantine policy.
//!
//! The lane sweep includes `GENPIP_LANES` (when set), which CI uses to
//! force an extra width through this suite; the parallelism sweep likewise
//! honors `GENPIP_PARALLELISM`.

use genpip::core::engine::{Flow, Granularity, Session};
use genpip::core::pipeline::{ErMode, ReadOutcome, ReadRun};
use genpip::core::scheduler::Schedule;
use genpip::core::stream::{StreamEvent, StreamOptions};
use genpip::core::{FaultPolicy, GenPipConfig, Lanes, Parallelism};
use genpip::datasets::{DatasetProfile, FaultInjector, SimulatedDataset, StreamingSimulator};

fn dataset() -> SimulatedDataset {
    DatasetProfile::ecoli().scaled(0.03).generate()
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(4)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

/// The widths compared against the scalar oracle: a width that does not
/// divide typical batch sizes, the auto default, plus `GENPIP_LANES` when
/// the environment pins one.
fn lane_sweep() -> Vec<Lanes> {
    let mut sweep = vec![Lanes::Width(3), Lanes::Auto];
    if let Some(from_env) = Lanes::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

fn collect(
    dataset: &SimulatedDataset,
    config: &GenPipConfig,
    er: ErMode,
    granularity: Granularity,
) -> Vec<ReadRun> {
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .granularity(granularity)
        .source("s", dataset.stream())
        .sink("s", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("valid session");
    reads
}

/// The headline property: the decode lane width is a pure throughput knob.
/// For every ER mode, threading path, and scheduling granularity, every
/// lane width produces bit-identical per-read output to the scalar decode.
#[test]
fn lane_widths_are_bit_identical_to_scalar_across_the_matrix() {
    let d = dataset();
    let base = GenPipConfig::for_dataset(&d.profile);
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        for parallelism in parallelism_sweep() {
            for granularity in [Granularity::Read, Granularity::Chunk] {
                let scalar_config = base
                    .clone()
                    .with_parallelism(parallelism)
                    .with_lanes(Lanes::Width(1));
                let scalar = collect(&d, &scalar_config, er, granularity);
                for lanes in lane_sweep() {
                    let config = base.clone().with_parallelism(parallelism).with_lanes(lanes);
                    let batched = collect(&d, &config, er, granularity);
                    assert_eq!(
                        batched, scalar,
                        "{er:?} / {parallelism:?} / {granularity:?} / {lanes:?}"
                    );
                }
            }
        }
    }
}

/// Lanes routinely hold chunks of different lengths: two sources with
/// different chunk sizes and read-length profiles share one worker pool,
/// so a single decode batch mixes full-size chunks from both configs and
/// short tail chunks. Per-source output must match the scalar run exactly.
#[test]
fn mixed_chunk_lengths_across_sources_stay_bit_identical() {
    let long = DatasetProfile::uniform("long", 4, 20_000.0);
    let short = DatasetProfile::uniform("short", 30, 700.0);
    let opts = StreamOptions {
        queue_capacity: 8,
        ..StreamOptions::default()
    };
    let config_long = GenPipConfig::for_dataset(&long);
    let config_short = GenPipConfig::for_dataset(&short).with_chunk_bases(400);
    let mut outputs: Vec<(Vec<ReadRun>, Vec<ReadRun>)> = Vec::new();
    for lanes in [Lanes::Width(1), Lanes::Width(3), Lanes::Auto] {
        let mut long_reads = Vec::new();
        let mut short_reads = Vec::new();
        Session::new(
            config_long
                .clone()
                .with_parallelism(Parallelism::Threads(2))
                .with_lanes(lanes),
        )
        .flow(Flow::GenPip(ErMode::Full))
        .schedule(Schedule::FairShare)
        .granularity(Granularity::Chunk)
        .options(opts)
        .source("long", StreamingSimulator::new(&long))
        .source_with_config(
            "short",
            StreamingSimulator::new(&short),
            config_short
                .clone()
                .with_parallelism(Parallelism::Threads(2))
                .with_lanes(lanes),
        )
        .sink("long", |event| {
            if let StreamEvent::Read(run) = event {
                long_reads.push(run);
            }
        })
        .sink("short", |event| {
            if let StreamEvent::Read(run) = event {
                short_reads.push(run);
            }
        })
        .run()
        .expect("valid session");
        outputs.push((long_reads, short_reads));
    }
    assert_eq!(outputs[0], outputs[1], "width 3 diverged from scalar");
    assert_eq!(outputs[0], outputs[2], "auto width diverged from scalar");
}

/// Chains cancelled by an ER verdict mid-batch: under `ErMode::Full` with
/// chunk granularity, QSR/CMR verdicts retire chains whose sibling chunks
/// may already sit in a worker's lane batch. The verdicts (and everything
/// else) must land exactly as in the scalar run, and the workload must
/// actually exercise both rejection kinds.
#[test]
fn verdict_cancelled_chains_mid_batch_match_scalar() {
    let d = dataset();
    let base = GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(4));
    let scalar = collect(
        &d,
        &base.clone().with_lanes(Lanes::Width(1)),
        ErMode::Full,
        Granularity::Chunk,
    );
    let qsr = scalar
        .iter()
        .filter(|r| matches!(r.outcome, ReadOutcome::RejectedQsr { .. }))
        .count();
    let cmr = scalar
        .iter()
        .filter(|r| matches!(r.outcome, ReadOutcome::RejectedCmr { .. }))
        .count();
    assert!(qsr > 0, "workload must exercise QSR cancellation");
    assert!(cmr > 0, "workload must exercise CMR cancellation");
    for lanes in lane_sweep() {
        let batched = collect(
            &d,
            &base.clone().with_lanes(lanes),
            ErMode::Full,
            Granularity::Chunk,
        );
        assert_eq!(batched, scalar, "{lanes:?}");
    }
}

/// Fault containment composes with lane batching: a corrupt read in a lane
/// batch is pre-screened out of the SoA kernel and faults inside its own
/// task's scalar step, so under Quarantine the quarantined set equals the
/// injected set and every survivor is bit-identical to the fault-free
/// scalar reference.
#[test]
fn faulting_lanes_are_contained_per_read_under_quarantine() {
    let d = dataset();
    let reference = collect(
        &d,
        &GenPipConfig::for_dataset(&d.profile)
            .with_parallelism(Parallelism::Threads(4))
            .with_lanes(Lanes::Width(1)),
        ErMode::Full,
        Granularity::Chunk,
    );
    for lanes in lane_sweep() {
        let config = GenPipConfig::for_dataset(&d.profile)
            .with_parallelism(Parallelism::Threads(4))
            .with_lanes(lanes)
            .with_fault_policy(FaultPolicy::Quarantine);
        let mut injector = FaultInjector::new(StreamingSimulator::new(&d.profile), 0.2, 42);
        let mut survivors = Vec::new();
        let mut failed_ids = Vec::new();
        Session::new(config)
            .flow(Flow::GenPip(ErMode::Full))
            .granularity(Granularity::Chunk)
            .options(StreamOptions {
                queue_capacity: 8,
                ..StreamOptions::default()
            })
            .source("faulty", &mut injector)
            .sink("faulty", |event| match event {
                StreamEvent::Read(run) => survivors.push(run),
                StreamEvent::Failed { read_id, .. } => failed_ids.push(read_id),
                _ => {}
            })
            .run()
            .expect("valid session");
        let mut injected = injector.injected_ids().to_vec();
        injected.sort_unstable();
        assert!(!injected.is_empty(), "injector must fire at 20%");
        failed_ids.sort_unstable();
        assert_eq!(failed_ids, injected, "{lanes:?}: quarantined != injected");
        let expected: Vec<ReadRun> = reference
            .iter()
            .filter(|run| !injected.contains(&run.id))
            .cloned()
            .collect();
        assert_eq!(survivors, expected, "{lanes:?}: survivors diverged");
    }
}
