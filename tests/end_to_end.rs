//! Cross-crate integration tests: the full flow from raw synthetic signal
//! to mapped reads, across both pipeline organizations.

// Identity oracle: the deprecated `run_*` wrappers are the frozen reference
// spelling of both pipeline organizations.
#![allow(deprecated)]

use genpip::core::pipeline::{run_conventional, run_genpip, ErMode, ReadOutcome};
use genpip::core::{GenPipConfig, Parallelism};
use genpip::datasets::DatasetProfile;
use genpip::genomics::ReadOrigin;

fn dataset() -> genpip::datasets::SimulatedDataset {
    DatasetProfile::ecoli().scaled(0.1).generate()
}

/// The profile's operating point, threaded per the `GENPIP_PARALLELISM`
/// environment variable when set — CI's test matrix runs this suite once
/// per threading path.
fn config_for(profile: &DatasetProfile) -> GenPipConfig {
    GenPipConfig::for_dataset(profile).with_parallelism(Parallelism::from_env_or(Parallelism::Auto))
}

#[test]
fn whole_flow_is_deterministic() {
    let d1 = dataset();
    let d2 = dataset();
    let config = config_for(&d1.profile);
    let a = run_genpip(&d1, &config, ErMode::Full);
    let b = run_genpip(&d2, &config, ErMode::Full);
    assert_eq!(a, b, "same seed must give identical runs");
}

#[test]
fn high_quality_reference_reads_map_to_their_origin() {
    let d = dataset();
    let config = config_for(&d.profile);
    let run = run_conventional(&d, &config);
    let mut eligible = 0;
    let mut correct = 0;
    for (rr, sr) in run.reads.iter().zip(&d.reads) {
        let ReadOrigin::Reference {
            start,
            len,
            reverse,
        } = sr.origin
        else {
            continue;
        };
        if sr.is_low_quality_truth() {
            continue;
        }
        eligible += 1;
        if let ReadOutcome::Mapped(m) = &rr.outcome {
            let mid = start + len / 2;
            if m.ref_start <= mid && mid <= m.ref_end {
                let expected_strand = if reverse {
                    genpip::mapping::Strand::Reverse
                } else {
                    genpip::mapping::Strand::Forward
                };
                if m.strand == expected_strand {
                    correct += 1;
                }
            }
        }
    }
    assert!(eligible >= 30, "want a meaningful sample, got {eligible}");
    let accuracy = correct as f64 / eligible as f64;
    // The bound is statistical: the sample is a few dozen reads whose noise
    // realizations depend on the RNG stream, so leave slack below the ~0.95
    // typically observed.
    assert!(
        accuracy >= 0.9,
        "mapping accuracy {accuracy} ({correct}/{eligible})"
    );
}

#[test]
fn contaminants_never_map_in_any_mode() {
    let d = dataset();
    let config = config_for(&d.profile);
    for run in [
        run_conventional(&d, &config),
        run_genpip(&d, &config, ErMode::None),
        run_genpip(&d, &config, ErMode::Full),
    ] {
        for (rr, sr) in run.reads.iter().zip(&d.reads) {
            if sr.origin == ReadOrigin::Contaminant {
                assert!(
                    !rr.outcome.is_mapped(),
                    "contaminant read {} mapped in {:?} mode",
                    rr.id,
                    run.er
                );
            }
        }
    }
}

#[test]
fn er_is_strictly_work_saving_and_never_adds_mappings() {
    let d = dataset();
    let config = config_for(&d.profile);
    let cp = run_genpip(&d, &config, ErMode::None);
    let qsr = run_genpip(&d, &config, ErMode::QsrOnly);
    let full = run_genpip(&d, &config, ErMode::Full);
    let (s_cp, s_qsr, s_full) = (
        cp.totals().samples,
        qsr.totals().samples,
        full.totals().samples,
    );
    assert!(
        s_qsr < s_cp,
        "QSR must reduce basecalling ({s_qsr} vs {s_cp})"
    );
    assert!(
        s_full <= s_qsr,
        "CMR must reduce further ({s_full} vs {s_qsr})"
    );
    // Early-rejected reads are a superset relation: every read QSR rejects
    // under QsrOnly is also rejected under Full.
    for (q, f) in qsr.reads.iter().zip(&full.reads) {
        if matches!(q.outcome, ReadOutcome::RejectedQsr { .. }) {
            assert!(
                matches!(f.outcome, ReadOutcome::RejectedQsr { .. }),
                "read {} rejected under QsrOnly but not under Full",
                q.id
            );
        }
    }
}

#[test]
fn chunk_size_changes_do_not_change_conclusions() {
    let d = dataset();
    for chunk in [300, 400, 500] {
        let config = config_for(&d.profile).with_chunk_bases(chunk);
        let run = run_genpip(&d, &config, ErMode::Full);
        let mapped = run.count_outcomes(ReadOutcome::is_mapped);
        let frac = mapped as f64 / run.reads.len() as f64;
        assert!(
            frac > 0.45,
            "chunk size {chunk}: only {frac:.2} of reads mapped"
        );
    }
}

#[test]
fn chunk_accounting_is_exact() {
    let d = dataset();
    let config = config_for(&d.profile);
    let run = run_genpip(&d, &config, ErMode::Full);
    for (rr, sr) in run.reads.iter().zip(&d.reads) {
        // No chunk is basecalled twice.
        let mut seen = std::collections::HashSet::new();
        for c in &rr.chunks {
            if c.samples > 0 {
                assert!(
                    seen.insert(c.index),
                    "read {} chunk {} basecalled twice",
                    rr.id,
                    c.index
                );
            }
        }
        // Fully processed reads basecalled exactly their signal.
        if !rr.outcome.is_early_rejected() {
            assert_eq!(rr.basecalled_samples(), sr.signal.samples.len());
        } else {
            // Early rejection never basecalls more than the signal. It saves
            // basecalling work strictly unless the read is so short that the
            // QSR samples plus the CMR prefix already cover every chunk.
            assert!(rr.basecalled_samples() <= sr.signal.samples.len());
            if rr.total_chunks > config.n_qs + config.n_cm {
                assert!(rr.basecalled_samples() < sr.signal.samples.len());
            }
        }
    }
}
