//! Cross-crate properties of the *live* session control plane: a source
//! attached mid-run is bit-identical to the same source registered
//! statically (across `ErMode` × `Parallelism` × `Granularity`), a detach
//! drains the source and finalizes its per-source summary without touching
//! the survivors, the `Deadline` schedule changes only *when* chunks run
//! (never results, deterministically so), admission control rejects bad
//! attaches with typed errors, and a drain requested before the run starts
//! is honored.

use genpip::core::engine::{AttachSpec, Flow, Granularity, Session, SessionControl};
use genpip::core::pipeline::ErMode;
use genpip::core::scheduler::Schedule;
use genpip::core::stream::{StreamEvent, StreamOptions};
use genpip::core::{GenPipConfig, Parallelism, ReadRun, SessionError, SessionReport};
use genpip::datasets::{DatasetProfile, ReadSource, StreamingSimulator};
use std::sync::{Arc, Mutex};

type Bucket = Arc<Mutex<Vec<ReadRun>>>;

/// Pulls a control-plane handle parked in a sink-shared slot.
fn take<T>(slot: &Arc<Mutex<Option<T>>>) -> T {
    slot.lock().unwrap().take().expect("handle parked")
}

/// Two sources with *different* references (scaling changes the genome),
/// so attach must install a second per-source context.
fn profiles() -> (DatasetProfile, DatasetProfile) {
    (
        DatasetProfile::ecoli().scaled(0.06),
        DatasetProfile::ecoli().scaled(0.03),
    )
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(3)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

/// The reference run: both sources registered before the session starts.
fn static_two_source(
    a: &DatasetProfile,
    b: &DatasetProfile,
    config: &GenPipConfig,
    er: ErMode,
    granularity: Granularity,
) -> (Vec<ReadRun>, Vec<ReadRun>, SessionReport) {
    let mut reads_a = Vec::new();
    let mut reads_b = Vec::new();
    let report = Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .schedule(Schedule::FairShare)
        .granularity(granularity)
        .source("a", StreamingSimulator::new(a))
        .source_with_config(
            "b",
            StreamingSimulator::new(b),
            GenPipConfig::for_dataset(b),
        )
        .sink("a", |event| {
            if let StreamEvent::Read(run) = event {
                reads_a.push(run);
            }
        })
        .sink("b", |event| {
            if let StreamEvent::Read(run) = event {
                reads_b.push(run);
            }
        })
        .run()
        .expect("static session inputs are valid");
    (reads_a, reads_b, report)
}

#[test]
fn attach_mid_run_is_bit_identical_to_static_registration() {
    let (pa, pb) = profiles();
    for er in [ErMode::Full, ErMode::None] {
        for parallelism in parallelism_sweep() {
            for granularity in [Granularity::Read, Granularity::Chunk] {
                let config = GenPipConfig::for_dataset(&pa).with_parallelism(parallelism);
                let (static_a, static_b, _) = static_two_source(&pa, &pb, &config, er, granularity);

                // Live: "b" attaches (with its own config) from inside
                // "a"'s sink after the third emission.
                let control = SessionControl::new();
                let live_a: Bucket = Arc::new(Mutex::new(Vec::new()));
                let live_b: Bucket = Arc::new(Mutex::new(Vec::new()));
                let a_bucket = Arc::clone(&live_a);
                let b_bucket = Arc::clone(&live_b);
                let control_in_sink = control.clone();
                let pb_for_sink = pb.clone();
                let mut emitted = 0usize;
                let handle = Arc::new(Mutex::new(None));
                let handle_slot = Arc::clone(&handle);
                Session::new(config.clone())
                    .flow(Flow::GenPip(er))
                    .schedule(Schedule::FairShare)
                    .granularity(granularity)
                    .source("a", StreamingSimulator::new(&pa))
                    .sink("a", move |event| {
                        if let StreamEvent::Read(run) = event {
                            a_bucket.lock().unwrap().push(run);
                            emitted += 1;
                            if emitted == 3 {
                                let sink_bucket = Arc::clone(&b_bucket);
                                let pending = control_in_sink.attach_with(
                                    "b",
                                    StreamingSimulator::new(&pb_for_sink),
                                    AttachSpec::new()
                                        .config(GenPipConfig::for_dataset(&pb_for_sink))
                                        .sink(move |event| {
                                            if let StreamEvent::Read(run) = event {
                                                sink_bucket.lock().unwrap().push(run);
                                            }
                                        }),
                                );
                                *handle_slot.lock().unwrap() = Some(pending);
                            }
                        }
                    })
                    .run_with_control(&control)
                    .expect("live session inputs are valid");
                let pending = handle.lock().unwrap().take().expect("attach fired");
                pending.wait().expect("attach accepted");
                assert_eq!(
                    *live_a.lock().unwrap(),
                    static_a,
                    "{er:?}/{parallelism:?}/{granularity:?}: source a diverged"
                );
                assert_eq!(
                    *live_b.lock().unwrap(),
                    static_b,
                    "{er:?}/{parallelism:?}/{granularity:?}: attached source b diverged"
                );
            }
        }
    }
}

#[test]
fn detach_drains_the_source_and_finalizes_its_summary() {
    let (pa, pb) = profiles();
    for parallelism in parallelism_sweep() {
        let config = GenPipConfig::for_dataset(&pa).with_parallelism(parallelism);
        let (solo_a, _, _) = static_two_source(&pa, &pb, &config, ErMode::Full, Granularity::Chunk);

        let control = SessionControl::new();
        let survivor: Bucket = Arc::new(Mutex::new(Vec::new()));
        let b_reads: Bucket = Arc::new(Mutex::new(Vec::new()));
        let handle = Arc::new(Mutex::new(None));
        let emitted = Arc::new(Mutex::new(0usize));
        let mut session = Session::new(config.clone())
            .flow(Flow::GenPip(ErMode::Full))
            .schedule(Schedule::FairShare)
            .source("a", StreamingSimulator::new(&pa))
            .source_with_config(
                "b",
                StreamingSimulator::new(&pb),
                GenPipConfig::for_dataset(&pb),
            );
        for id in ["a", "b"] {
            let control_in_sink = control.clone();
            let handle_slot = Arc::clone(&handle);
            let counter = Arc::clone(&emitted);
            let bucket = Arc::clone(if id == "a" { &survivor } else { &b_reads });
            session = session.sink(id, move |event| {
                if let StreamEvent::Read(run) = event {
                    bucket.lock().unwrap().push(run);
                    let mut n = counter.lock().unwrap();
                    *n += 1;
                    if *n == 4 {
                        *handle_slot.lock().unwrap() = Some(control_in_sink.detach("b"));
                    }
                }
            });
        }
        let report = session
            .run_with_control(&control)
            .expect("live session inputs are valid");

        let pending = handle.lock().unwrap().take().expect("detach fired");
        let summary = pending.wait().expect("detach honored");
        let b_seen = b_reads.lock().unwrap().len();
        assert_eq!(
            summary.outcomes.reads_emitted, b_seen,
            "{parallelism:?}: detach summary disagrees with the sink"
        );
        // The detached source stopped early; the survivor is untouched.
        let b_total = StreamingSimulator::new(&pb)
            .reads_remaining()
            .expect("simulator knows its size");
        assert!(
            b_seen < b_total,
            "{parallelism:?}: source b was never actually cut short \
             ({b_seen} of {b_total} reads emitted)"
        );
        assert_eq!(
            *survivor.lock().unwrap(),
            solo_a,
            "{parallelism:?}: detach disturbed the surviving source"
        );
        // The report still carries the detached source, same counters.
        let b_report = report.source("b").expect("detached source reported");
        assert_eq!(b_report.summary.outcomes, summary.outcomes);
    }
}

#[test]
fn deadline_schedule_preserves_bit_identity_and_is_deterministic() {
    let (pa, pb) = profiles();
    for parallelism in parallelism_sweep() {
        let config = GenPipConfig::for_dataset(&pa).with_parallelism(parallelism);
        let (fair_a, fair_b, _) =
            static_two_source(&pa, &pb, &config, ErMode::Full, Granularity::Chunk);
        let run_deadline = || {
            let mut reads_a = Vec::new();
            let mut reads_b = Vec::new();
            let report = Session::new(config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .schedule(Schedule::Deadline(vec![20, 200]))
                .source("a", StreamingSimulator::new(&pa))
                .source_with_config(
                    "b",
                    StreamingSimulator::new(&pb),
                    GenPipConfig::for_dataset(&pb),
                )
                .sink("a", |event| {
                    if let StreamEvent::Read(run) = event {
                        reads_a.push(run);
                    }
                })
                .sink("b", |event| {
                    if let StreamEvent::Read(run) = event {
                        reads_b.push(run);
                    }
                })
                .run()
                .expect("deadline session inputs are valid");
            (reads_a, reads_b, report)
        };
        let (a1, b1, r1) = run_deadline();
        assert_eq!(a1, fair_a, "{parallelism:?}: Deadline changed source a");
        assert_eq!(b1, fair_b, "{parallelism:?}: Deadline changed source b");
        if parallelism == Parallelism::Serial {
            // Serial runs have no racing workers, so the whole report —
            // including residency percentiles — must be reproducible.
            let (a2, b2, r2) = run_deadline();
            assert_eq!(
                (a1, b1, r1),
                (a2, b2, r2),
                "serial Deadline not deterministic"
            );
        }
    }
}

#[test]
fn admission_control_rejects_bad_attaches_with_typed_errors() {
    let (pa, pb) = profiles();
    let config = GenPipConfig::for_dataset(&pa);
    let opts = StreamOptions {
        max_sources: 2,
        ..StreamOptions::default()
    };

    let control = SessionControl::new();
    let duplicate = Arc::new(Mutex::new(None));
    let over_limit = Arc::new(Mutex::new(None));
    let bad_config = Arc::new(Mutex::new(None));
    let unknown = Arc::new(Mutex::new(None));
    {
        let control_in_sink = control.clone();
        let duplicate = Arc::clone(&duplicate);
        let over_limit = Arc::clone(&over_limit);
        let bad_config = Arc::clone(&bad_config);
        let unknown = Arc::clone(&unknown);
        let pa_for_sink = pa.clone();
        let pb_for_sink = pb.clone();
        let mut emitted = 0usize;
        Session::new(config.clone())
            .flow(Flow::GenPip(ErMode::Full))
            .options(opts)
            .source("a", StreamingSimulator::new(&pa))
            .sink("a", move |event| {
                if let StreamEvent::Read(_) = event {
                    emitted += 1;
                    if emitted == 2 {
                        // Same id as a live source.
                        *duplicate.lock().unwrap() = Some(
                            control_in_sink.attach("a", StreamingSimulator::new(&pa_for_sink)),
                        );
                        // A config the source's chemistry can't satisfy:
                        // QSR gating with zero QSR chunks.
                        let mut zero_qs = GenPipConfig::for_dataset(&pb_for_sink);
                        zero_qs.n_qs = 0;
                        *bad_config.lock().unwrap() = Some(control_in_sink.attach_with(
                            "zero-qs",
                            StreamingSimulator::new(&pb_for_sink),
                            AttachSpec::new().config(zero_qs),
                        ));
                        // Valid second source, then a third over the bound.
                        control_in_sink.attach("b", StreamingSimulator::new(&pb_for_sink));
                        *over_limit.lock().unwrap() = Some(
                            control_in_sink.attach("c", StreamingSimulator::new(&pb_for_sink)),
                        );
                        // Detach of a never-registered id.
                        *unknown.lock().unwrap() = Some(control_in_sink.detach("ghost"));
                    }
                }
            })
            .run_with_control(&control)
            .expect("live session inputs are valid");
    }
    assert_eq!(
        take(&duplicate).wait(),
        Err(SessionError::DuplicateSource("a".into()))
    );
    assert_eq!(
        take(&over_limit).wait(),
        Err(SessionError::TooManySources { limit: 2 })
    );
    assert!(matches!(
        take(&bad_config).wait(),
        Err(SessionError::IncompatibleSourceConfig { .. })
    ));
    assert_eq!(
        take(&unknown).wait().map(|_| ()),
        Err(SessionError::UnknownSource("ghost".into()))
    );

    // The session is over: further commands are refused as closed.
    assert_eq!(
        control.attach("late", StreamingSimulator::new(&pb)).wait(),
        Err(SessionError::SessionClosed)
    );
    assert_eq!(
        control.detach("a").wait().map(|_| ()),
        Err(SessionError::SessionClosed)
    );
}

#[test]
fn builder_sessions_respect_the_max_sources_bound() {
    let (pa, pb) = profiles();
    let err = Session::new(GenPipConfig::for_dataset(&pa))
        .options(StreamOptions {
            max_sources: 1,
            ..StreamOptions::default()
        })
        .source("a", StreamingSimulator::new(&pa))
        .source_with_config(
            "b",
            StreamingSimulator::new(&pb),
            GenPipConfig::for_dataset(&pb),
        )
        .run()
        .expect_err("two sources over a bound of one");
    assert_eq!(err, SessionError::TooManySources { limit: 1 });
}

#[test]
fn deadline_validation_rejects_bad_targets() {
    let (pa, pb) = profiles();
    let config = GenPipConfig::for_dataset(&pa);
    let two_sources = |schedule: Schedule| {
        Session::new(config.clone())
            .schedule(schedule)
            .source("a", StreamingSimulator::new(&pa))
            .source_with_config(
                "b",
                StreamingSimulator::new(&pb),
                GenPipConfig::for_dataset(&pb),
            )
            .run()
    };
    assert_eq!(
        two_sources(Schedule::Deadline(vec![50])).expect_err("count mismatch"),
        SessionError::DeadlineTargetCount {
            sources: 2,
            targets: 1
        }
    );
    assert_eq!(
        two_sources(Schedule::Deadline(vec![50, 0])).expect_err("zero target"),
        SessionError::ZeroDeadlineTarget("b".into())
    );

    // The live twin: a zero deadline target on an attach is refused too.
    let control = SessionControl::new();
    let zero_target = Arc::new(Mutex::new(None));
    {
        let control_in_sink = control.clone();
        let zero_target = Arc::clone(&zero_target);
        let pb_for_sink = pb.clone();
        let mut fired = false;
        Session::new(config.clone())
            .schedule(Schedule::Deadline(vec![50]))
            .source("a", StreamingSimulator::new(&pa))
            .sink("a", move |event| {
                if let StreamEvent::Read(_) = event {
                    if !fired {
                        fired = true;
                        *zero_target.lock().unwrap() = Some(
                            control_in_sink.attach_with(
                                "b",
                                StreamingSimulator::new(&pb_for_sink),
                                AttachSpec::new()
                                    .config(GenPipConfig::for_dataset(&pb_for_sink))
                                    .deadline_target(0),
                            ),
                        );
                    }
                }
            })
            .run_with_control(&control)
            .expect("live session inputs are valid");
    }
    let pending = zero_target.lock().unwrap().take().expect("attach fired");
    assert_eq!(
        pending.wait(),
        Err(SessionError::ZeroDeadlineTarget("b".into()))
    );
}

#[test]
fn drain_requested_before_the_run_starts_is_honored() {
    let (pa, _) = profiles();
    for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
        let config = GenPipConfig::for_dataset(&pa).with_parallelism(parallelism);
        let control = SessionControl::new();
        control.drain();
        let mut reads = Vec::new();
        let report = Session::new(config)
            .flow(Flow::GenPip(ErMode::Full))
            .source("a", StreamingSimulator::new(&pa))
            .sink("a", |event| {
                if let StreamEvent::Read(run) = event {
                    reads.push(run);
                }
            })
            .run_with_control(&control)
            .expect("drained session inputs are valid");
        assert_eq!(
            reads.len(),
            0,
            "{parallelism:?}: drain-before-run still admitted reads"
        );
        assert_eq!(report.outcomes.reads_emitted, 0);
    }
}

#[test]
fn attach_queued_before_the_run_is_applied_at_startup() {
    let (pa, pb) = profiles();
    let config = GenPipConfig::for_dataset(&pa);
    let (static_a, static_b, _) =
        static_two_source(&pa, &pb, &config, ErMode::Full, Granularity::Chunk);

    let control = SessionControl::new();
    let early_b: Bucket = Arc::new(Mutex::new(Vec::new()));
    let sink_bucket = Arc::clone(&early_b);
    let pending = control.attach_with(
        "b",
        StreamingSimulator::new(&pb),
        AttachSpec::new()
            .config(GenPipConfig::for_dataset(&pb))
            .sink(move |event| {
                if let StreamEvent::Read(run) = event {
                    sink_bucket.lock().unwrap().push(run);
                }
            }),
    );
    let mut reads_a = Vec::new();
    Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .schedule(Schedule::FairShare)
        .source("a", StreamingSimulator::new(&pa))
        .sink("a", |event| {
            if let StreamEvent::Read(run) = event {
                reads_a.push(run);
            }
        })
        .run_with_control(&control)
        .expect("live session inputs are valid");
    pending.wait().expect("pre-run attach accepted");
    assert_eq!(reads_a, static_a, "pre-run attach disturbed source a");
    // "b" joined at the first poll — before any admission — so its
    // interleaving matches the static two-source session exactly.
    assert_eq!(
        *early_b.lock().unwrap(),
        static_b,
        "pre-run attach diverged"
    );
}
