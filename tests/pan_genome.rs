//! Pan-genome sessions: mapping every read against a panel of named
//! references must be deterministic — bit-identical across `ErMode`,
//! `Parallelism`, and `Shards` — and each per-reference candidate must be
//! exactly what a standalone mapper over that reference would report. The
//! merged winner follows the documented rule: higher chain score first,
//! then reference name ascending, then position ascending.
//!
//! The single-reference path is the frozen oracle: an empty panel must
//! leave every `ReadRun` byte-for-byte what it always was.

// Identity oracle: the deprecated `run_*` wrappers are the frozen reference
// the pan-genome runs are compared against.
#![allow(deprecated)]

use genpip::core::pipeline::{run_genpip, ErMode, ReadOutcome};
use genpip::core::{GenPipConfig, Parallelism, Shards};
use genpip::datasets::{DatasetProfile, SimulatedDataset};
use genpip::genomics::{DnaSeq, Genome, GenomeBuilder};
use std::sync::Arc;

fn dataset() -> SimulatedDataset {
    DatasetProfile::ecoli().scaled(0.03).generate()
}

/// A second panel member that genuinely competes: a random decoy followed
/// by an exact copy of the back half of the real reference, so reads from
/// that half chain equally well on both references.
fn half_copy_panel(d: &SimulatedDataset) -> Arc<Genome> {
    let reference = d.reference.sequence();
    let half = reference.len() / 2;
    let mut seq = GenomeBuilder::new(20_000)
        .seed(77)
        .repeat_fraction(0.0)
        .build()
        .sequence()
        .clone();
    seq.extend_from_seq(&reference.subseq(half, reference.len() - half));
    Arc::new(Genome::from_seq("zz_half", seq))
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(4)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

#[test]
fn two_reference_runs_are_bit_identical_across_er_parallelism_and_shards() {
    let d = dataset();
    let base =
        GenPipConfig::for_dataset(&d.profile).with_extra_references(vec![half_copy_panel(&d)]);
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        let baseline_config = base
            .clone()
            .with_parallelism(Parallelism::Serial)
            .with_shards(Shards::Single);
        let baseline = run_genpip(&d, &baseline_config, er);
        let mapped = baseline
            .reads
            .iter()
            .filter(|r| r.outcome.is_mapped())
            .count();
        assert!(mapped > 0, "{er:?}: no read mapped");
        for run in &baseline.reads {
            if let ReadOutcome::Mapped(m) = &run.outcome {
                assert_eq!(run.per_reference.len(), 2, "read {}", run.id);
                assert!(
                    matches!(m.ref_name.as_deref(), Some("ecoli") | Some("zz_half")),
                    "read {} winner unattributed: {:?}",
                    run.id,
                    m.ref_name
                );
            }
        }
        for parallelism in parallelism_sweep() {
            for shards in [
                Shards::Single,
                Shards::Fixed(2),
                Shards::Fixed(7),
                Shards::Auto,
            ] {
                let config = base
                    .clone()
                    .with_parallelism(parallelism)
                    .with_shards(shards);
                let run = run_genpip(&d, &config, er);
                assert_eq!(
                    run.reads, baseline.reads,
                    "{er:?} / {parallelism:?} / {shards:?} diverged from the serial single-shard baseline"
                );
            }
        }
    }
}

#[test]
fn empty_panel_leaves_single_reference_runs_byte_identical() {
    let d = dataset();
    let plain = GenPipConfig::for_dataset(&d.profile);
    let with_empty_panel = plain.clone().with_extra_references(Vec::new());
    for er in [ErMode::None, ErMode::Full] {
        let a = run_genpip(&d, &plain, er);
        let b = run_genpip(&d, &with_empty_panel, er);
        assert_eq!(a.reads, b.reads, "{er:?}: empty panel changed output");
        for run in &a.reads {
            assert!(run.per_reference.is_empty(), "read {}", run.id);
            if let ReadOutcome::Mapped(m) = &run.outcome {
                assert!(m.ref_name.is_none(), "read {} gained attribution", run.id);
            }
        }
    }
}

#[test]
fn per_reference_candidates_are_independent_of_the_rest_of_the_panel() {
    let d = dataset();
    let panel = half_copy_panel(&d);
    let decoy = Arc::new(Genome::from_seq(
        "yy_decoy",
        GenomeBuilder::new(40_000)
            .seed(99)
            .repeat_fraction(0.0)
            .build()
            .sequence()
            .clone(),
    ));
    let solo_config = GenPipConfig::for_dataset(&d.profile);
    let two_config = solo_config
        .clone()
        .with_extra_references(vec![panel.clone()]);
    let three_config = solo_config
        .clone()
        .with_extra_references(vec![panel, decoy]);
    // ErMode::None: no early rejection, so every non-QC-filtered read
    // reaches final mapping in all three runs over identical basecalls.
    let solo = run_genpip(&d, &solo_config, ErMode::None);
    let two = run_genpip(&d, &two_config, ErMode::None);
    let three = run_genpip(&d, &three_config, ErMode::None);
    assert_eq!(solo.reads.len(), two.reads.len());
    assert_eq!(solo.reads.len(), three.reads.len());
    for ((s, a), b) in solo.reads.iter().zip(&two.reads).zip(&three.reads) {
        assert_eq!(s.id, a.id);
        if a.per_reference.is_empty() {
            // QC-filtered before mapping; every run must agree.
            assert!(matches!(s.outcome, ReadOutcome::FilteredQc { .. }));
            assert!(b.per_reference.is_empty());
            continue;
        }
        assert_eq!(a.per_reference.len(), 2, "read {}", a.id);
        assert_eq!(b.per_reference.len(), 3, "read {}", b.id);
        // Candidate 0 is the source's own reference: bit-identical to the
        // plain single-reference run.
        assert_eq!(&*a.per_reference[0].reference, "ecoli");
        assert_eq!(
            a.per_reference[0].mapping.as_ref(),
            s.outcome.mapping(),
            "read {}: ecoli candidate diverged from the solo run",
            a.id
        );
        assert_eq!(a.per_reference[0].best_chain_score, s.best_chain_score);
        // A reference's candidate must not depend on which other references
        // share the panel: every candidate present in both the two- and
        // three-member runs is bit-identical.
        assert_eq!(&*a.per_reference[1].reference, "zz_half");
        assert_eq!(&*b.per_reference[2].reference, "yy_decoy");
        assert_eq!(
            a.per_reference[0], b.per_reference[0],
            "read {}: ecoli candidate changed when the panel grew",
            a.id
        );
        assert_eq!(
            a.per_reference[1], b.per_reference[1],
            "read {}: zz_half candidate changed when the panel grew",
            a.id
        );
        // The winner is one of the candidates, attributed by name.
        if let ReadOutcome::Mapped(winner) = &a.outcome {
            let name = winner
                .ref_name
                .as_deref()
                .expect("pan-genome winners are attributed");
            let owner = a
                .per_reference
                .iter()
                .find(|c| &*c.reference == name)
                .expect("winner names a panel member");
            let mut expected = owner.mapping.clone().expect("winner's owner mapped");
            expected.ref_name = Some(Arc::from(name));
            assert_eq!(winner, &expected, "read {}", a.id);
        }
    }
}

#[test]
fn exact_score_ties_resolve_by_reference_name_ascending() {
    let d = dataset();
    // An exact twin of the reference under a name that sorts first: every
    // read scores identically on both, so the tie-break decides every
    // winner, deterministically.
    let twin: DnaSeq = d.reference.sequence().clone();
    let config = GenPipConfig::for_dataset(&d.profile)
        .with_extra_references(vec![Arc::new(Genome::from_seq("aa_twin", twin))]);
    let run = run_genpip(&d, &config, ErMode::None);
    let mapped = run.reads.iter().filter(|r| r.outcome.is_mapped()).count();
    assert!(mapped > 0, "no read mapped");
    for r in &run.reads {
        if let ReadOutcome::Mapped(m) = &r.outcome {
            assert_eq!(
                m.ref_name.as_deref(),
                Some("aa_twin"),
                "read {}: tie must break to the lexicographically first name",
                r.id
            );
            let ecoli = &r.per_reference[0];
            let twin = &r.per_reference[1];
            assert_eq!(&*ecoli.reference, "ecoli");
            assert_eq!(&*twin.reference, "aa_twin");
            assert_eq!(
                ecoli.mapping, twin.mapping,
                "read {}: identical references disagreed",
                r.id
            );
        }
    }
}
