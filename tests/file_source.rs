//! Cross-crate properties of on-disk GSC signal containers: file-backed
//! streaming is bit-identical to in-memory streaming across ErMode ×
//! Parallelism × Granularity, `open_at` yields exact suffixes (statically
//! and through a live attach), fault injection composes with file sources,
//! random byte flips are always detected (never a panic), a mid-run drain
//! still leaves parseable FASTQ behind, and the CLI's checkpoint →
//! drain → resume cycle reproduces an uninterrupted run's FASTQ
//! byte-for-byte.
//!
//! The parallelism sweep includes `GENPIP_PARALLELISM` (when set), which CI
//! uses to force both threading paths through this suite.

use genpip::core::engine::{AttachSpec, Flow, Granularity, Session, SessionControl};
use genpip::core::pipeline::{ErMode, ReadRun};
use genpip::core::stream::{FastqSink, StreamEvent};
use genpip::core::{FaultPolicy, GenPipConfig, Parallelism};
use genpip::datasets::{DatasetProfile, FaultInjector, ReadSource, StreamingSimulator};
use genpip::genomics::fastx;
use genpip::genomics::rng::{seeded, Rng};
use genpip::io::{pack_source, GscReadSource};
use std::cell::Cell;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::process::Command;
use std::sync::{Arc, Mutex};

fn profile() -> DatasetProfile {
    DatasetProfile::ecoli().scaled(0.03)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("genpip-file-source-{}-{tag}", std::process::id()))
}

/// Packs the test profile into a fresh GSC container and returns its path.
fn packed(tag: &str) -> PathBuf {
    let path = temp_path(tag);
    let mut source = StreamingSimulator::new(&profile());
    pack_source(&path, &mut source).expect("pack container");
    path
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(4)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

/// Runs one single-source session and collects the emitted reads.
fn collect_runs(
    source: impl ReadSource + Send,
    config: &GenPipConfig,
    er: ErMode,
    granularity: Granularity,
) -> Vec<ReadRun> {
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .granularity(granularity)
        .source("s", source)
        .sink("s", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("valid session");
    reads
}

#[test]
fn container_streaming_is_bit_identical_to_memory() {
    let path = packed("identity");
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        for granularity in [Granularity::Read, Granularity::Chunk] {
            for parallelism in parallelism_sweep() {
                let label = format!("{er:?} / {granularity:?} / {parallelism:?}");
                let config = GenPipConfig::for_dataset(&profile()).with_parallelism(parallelism);
                let memory = collect_runs(
                    StreamingSimulator::new(&profile()),
                    &config,
                    er,
                    granularity,
                );
                let file = collect_runs(
                    GscReadSource::open(&path).expect("open container"),
                    &config,
                    er,
                    granularity,
                );
                assert_eq!(memory, file, "{label}: file streaming diverged");
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn open_at_streams_the_exact_suffix() {
    let path = packed("seek");
    let config = GenPipConfig::for_dataset(&profile());
    let all = collect_runs(
        GscReadSource::open(&path).expect("open container"),
        &config,
        ErMode::Full,
        Granularity::Chunk,
    );
    assert!(all.len() > 6, "dataset too small for a seek test");
    for k in [0, 1, all.len() / 2, all.len() - 1, all.len()] {
        let suffix = collect_runs(
            GscReadSource::open_at(&path, k).expect("open_at"),
            &config,
            ErMode::Full,
            Granularity::Chunk,
        );
        assert_eq!(
            suffix.as_slice(),
            &all[k..],
            "suffix from read {k} diverged"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn live_attached_container_matches_solo_suffix() {
    let path = packed("attach");
    let config = GenPipConfig::for_dataset(&profile());
    let k = 12;
    let solo = collect_runs(
        GscReadSource::open_at(&path, k).expect("open_at"),
        &config,
        ErMode::Full,
        Granularity::Chunk,
    );

    let control = SessionControl::new();
    let control_in_sink = control.clone();
    let attached: Arc<Mutex<Vec<ReadRun>>> = Arc::new(Mutex::new(Vec::new()));
    let attached_in_spec = Arc::clone(&attached);
    let path_in_sink = path.clone();
    let config_in_spec = config.clone();
    let mut pending = None;
    let mut primary = 0usize;
    Session::new(config.clone())
        .flow(Flow::GenPip(ErMode::Full))
        .source("primary", StreamingSimulator::new(&profile()))
        .sink("primary", |event| {
            if let StreamEvent::Read(_) = event {
                primary += 1;
                if primary == 3 {
                    let source = GscReadSource::open_at(&path_in_sink, k).expect("open_at");
                    let store = Arc::clone(&attached_in_spec);
                    pending = Some(
                        control_in_sink.attach_with(
                            "disk",
                            source,
                            AttachSpec::new()
                                .config(config_in_spec.clone())
                                .sink(move |event| {
                                    if let StreamEvent::Read(run) = event {
                                        store.lock().expect("store poisoned").push(run);
                                    }
                                }),
                        ),
                    );
                }
            }
        })
        .run_with_control(&control)
        .expect("valid session");
    pending
        .expect("attach step fired")
        .wait()
        .expect("attach accepted");
    let attached = attached.lock().expect("store poisoned");
    assert_eq!(
        attached.as_slice(),
        solo.as_slice(),
        "live-attached container output diverged from a solo run's suffix"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_faults_over_container_are_quarantined() {
    let path = packed("faults");
    let config = GenPipConfig::for_dataset(&profile()).with_fault_policy(FaultPolicy::Quarantine);
    let source = GscReadSource::open(&path).expect("open container");
    let status = source.status();
    let mut injector = FaultInjector::new(source, 0.35, 0xFEED);
    let mut survivors = Vec::new();
    let mut failed = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(ErMode::Full))
        .source("s", &mut injector)
        .sink("s", |event| match event {
            StreamEvent::Read(run) => survivors.push(run.id),
            StreamEvent::Failed { read_id, .. } => failed.push(read_id),
            _ => {}
        })
        .run()
        .expect("valid session");
    assert!(status.is_ok(), "container error: {:?}", status.error());
    let mut injected = injector.injected_ids().to_vec();
    assert!(!injected.is_empty(), "injection rate too low for the test");
    injected.sort_unstable();
    failed.sort_unstable();
    assert_eq!(failed, injected, "quarantined set != injected set");
    assert_eq!(
        survivors.len() + failed.len(),
        profile().n_reads,
        "some reads were neither emitted nor quarantined"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn byte_flips_are_always_detected_and_never_panic() {
    let path = packed("fuzz");
    let pristine = std::fs::read(&path).expect("read container");
    let mut rng = seeded(0xF1E7);
    for trial in 0..48 {
        let pos = (rng.next_u64() as usize) % pristine.len();
        let bit = 1u8 << (rng.next_u64() % 8);
        let mut corrupt = pristine.clone();
        corrupt[pos] ^= bit;
        let corrupt_path = temp_path(&format!("fuzz-{trial}"));
        std::fs::write(&corrupt_path, &corrupt).expect("write corrupt copy");
        // Every byte of the container is covered by a checksum, so a flip
        // must surface as a typed error — at open, or parked on the status
        // handle while streaming. It must never panic.
        let detected = match GscReadSource::open(&corrupt_path) {
            Err(_) => true,
            Ok(mut source) => {
                while source.next_read().is_some() {}
                !source.status().is_ok()
            }
        };
        assert!(
            detected,
            "flip of bit {bit:#04b} at byte {pos} went undetected"
        );
        std::fs::remove_file(&corrupt_path).ok();
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mid_run_drain_still_leaves_parseable_fastq() {
    let path = packed("drain");
    let fastq_path = temp_path("drain.fastq");
    let config = GenPipConfig::for_dataset(&profile()).with_keep_bases(true);
    let control = SessionControl::new();
    let control_in_sink = control.clone();
    let emitted = Cell::new(0usize);
    {
        let file = File::create(&fastq_path).expect("create fastq");
        let mut sink = FastqSink::new(BufWriter::new(file));
        Session::new(config.clone())
            .flow(Flow::GenPip(ErMode::Full))
            .source("s", GscReadSource::open(&path).expect("open container"))
            .sink("s", |event| {
                sink.handle(&event);
                if let StreamEvent::Read(_) = event {
                    emitted.set(emitted.get() + 1);
                    if emitted.get() == 5 {
                        control_in_sink.drain();
                    }
                }
            })
            .run_with_control(&control)
            .expect("valid session");
        // `sink` drops here WITHOUT finish(): Drop must flush the records
        // already handed to the writer.
    }
    assert!(
        emitted.get() >= 5,
        "drain fired before 5 reads were emitted"
    );
    let text = std::fs::read_to_string(&fastq_path).expect("read fastq");
    assert!(
        text.ends_with('\n'),
        "flushed FASTQ does not end at a record boundary"
    );
    let records = fastx::read_fastq(BufReader::new(File::open(&fastq_path).expect("open fastq")))
        .expect("drained FASTQ must stay parseable");
    assert!(!records.is_empty(), "no records were flushed");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&fastq_path).ok();
}

#[test]
fn cli_checkpoint_drain_resume_is_byte_identical() {
    let bin = env!("CARGO_BIN_EXE_genpip");
    let dir = temp_path("cli");
    std::fs::create_dir_all(&dir).expect("create test dir");
    let arg = |p: &PathBuf| p.to_str().expect("utf-8 path").to_string();
    let gsc = dir.join("run.gsc");
    let full = dir.join("full.fastq");
    let part = dir.join("part.fastq");
    let ckpt = dir.join("run.ckpt");
    let run = |args: &[String]| {
        let out = Command::new(bin).args(args).output().expect("spawn genpip");
        assert!(
            out.status.success(),
            "genpip {args:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    let s = |v: &str| v.to_string();
    run(&[
        s("pack"),
        s("--profile"),
        s("ecoli"),
        s("--scale"),
        s("0.03"),
        s("--out"),
        arg(&gsc),
        s("--verify"),
    ]);
    let stream_base = [
        s("stream"),
        s("--signal-in"),
        arg(&gsc),
        s("--threads"),
        s("serial"),
        s("--progress"),
        s("0"),
    ];
    let mut uninterrupted = stream_base.to_vec();
    uninterrupted.extend([s("--fastq-out"), arg(&full)]);
    run(&uninterrupted);

    // Interrupted run: drain mid-flight, leaving a checkpoint behind.
    let mut interrupted = stream_base.to_vec();
    interrupted.extend([
        s("--fastq-out"),
        arg(&part),
        s("--checkpoint"),
        arg(&ckpt),
        s("--checkpoint-every"),
        s("4"),
        s("--drain-after"),
        s("9"),
    ]);
    run(&interrupted);
    let full_bytes = std::fs::read(&full).expect("read full fastq");
    let part_bytes = std::fs::read(&part).expect("read partial fastq");
    assert!(
        part_bytes.len() < full_bytes.len(),
        "drained run should have written a strict prefix"
    );
    assert_eq!(
        &full_bytes[..part_bytes.len()],
        part_bytes.as_slice(),
        "drained run's output is not a prefix of the uninterrupted run's"
    );

    // Resume: truncate-and-append must reproduce the full file exactly.
    let mut resumed = stream_base.to_vec();
    resumed.extend([
        s("--fastq-out"),
        arg(&part),
        s("--checkpoint"),
        arg(&ckpt),
        s("--resume"),
        arg(&ckpt),
    ]);
    run(&resumed);
    assert_eq!(
        std::fs::read(&part).expect("read resumed fastq"),
        full_bytes,
        "resumed FASTQ is not byte-identical to the uninterrupted run's"
    );

    // A corrupted container must exit nonzero, not panic.
    let bad = dir.join("bad.gsc");
    let mut bytes = std::fs::read(&gsc).expect("read container");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&bad, bytes).expect("write corrupt container");
    let mut corrupted = stream_base.to_vec();
    corrupted[2] = arg(&bad);
    let out = Command::new(bin)
        .args(&corrupted)
        .output()
        .expect("spawn genpip");
    assert!(
        !out.status.success(),
        "streaming a corrupted container must exit nonzero"
    );
    std::fs::remove_dir_all(&dir).ok();
}
