//! Integration tests of the system cost models: the paper's comparative
//! claims must hold end to end, from synthetic signals to modelled time and
//! energy.

use genpip::core::experiments;
use genpip::core::systems::{
    energy_reductions_vs, evaluate_all, speedups_vs, SystemCosts, SystemKind, WorkloadSet,
};
use genpip::core::GenPipConfig;
use genpip::datasets::DatasetProfile;

fn speedup_map() -> Vec<(SystemKind, f64)> {
    let d = DatasetProfile::ecoli().scaled(0.1).generate();
    let config = GenPipConfig::for_dataset(&d.profile);
    let workloads = WorkloadSet::build(&d, &config);
    let evals = evaluate_all(&workloads, &SystemCosts::default());
    speedups_vs(&evals, SystemKind::Cpu)
}

#[test]
fn figure10_column_ordering_holds_end_to_end() {
    let speedups = speedup_map();
    let get = |k: SystemKind| speedups.iter().find(|(s, _)| *s == k).unwrap().1;
    // The complete ordering the paper's bars show for one dataset column.
    let order = [
        SystemKind::Cpu,
        SystemKind::CpuCp,
        SystemKind::CpuGp,
        SystemKind::Gpu,
        SystemKind::GpuCp,
        SystemKind::GpuGp,
        SystemKind::Pim,
        SystemKind::GenPipCp,
        SystemKind::GenPipCpQsr,
        SystemKind::GenPip,
    ];
    for pair in order.windows(2) {
        assert!(
            get(pair[0]) < get(pair[1]),
            "{} ({:.2}x) should be slower than {} ({:.2}x)",
            pair[0],
            get(pair[0]),
            pair[1],
            get(pair[1])
        );
    }
}

#[test]
fn headline_speedups_land_in_paper_bands() {
    let speedups = speedup_map();
    let get = |k: SystemKind| speedups.iter().find(|(s, _)| *s == k).unwrap().1;
    let genpip = get(SystemKind::GenPip);
    assert!(
        (25.0..70.0).contains(&genpip),
        "GenPIP vs CPU {genpip} (paper 41.6)"
    );
    let vs_gpu = genpip / get(SystemKind::Gpu);
    assert!(
        (5.0..14.0).contains(&vs_gpu),
        "GenPIP vs GPU {vs_gpu} (paper 8.4)"
    );
    let vs_pim = genpip / get(SystemKind::Pim);
    assert!(
        (1.15..1.95).contains(&vs_pim),
        "GenPIP vs PIM {vs_pim} (paper 1.39)"
    );
}

#[test]
fn energy_claims_hold_end_to_end() {
    let d = DatasetProfile::ecoli().scaled(0.1).generate();
    let config = GenPipConfig::for_dataset(&d.profile);
    let workloads = WorkloadSet::build(&d, &config);
    let evals = evaluate_all(&workloads, &SystemCosts::default());
    let reductions = energy_reductions_vs(&evals, SystemKind::Cpu);
    let get = |k: SystemKind| reductions.iter().find(|(s, _)| *s == k).unwrap().1;
    assert!(
        (15.0..60.0).contains(&get(SystemKind::GenPip)),
        "GenPIP energy reduction {} (paper 32.8)",
        get(SystemKind::GenPip)
    );
    let vs_pim = get(SystemKind::GenPip) / get(SystemKind::Pim);
    assert!(
        (1.1..1.9).contains(&vs_pim),
        "GenPIP vs PIM energy {vs_pim} (paper 1.37)"
    );
    // Section 6.2: filtering on both quality and chunk mapping matters.
    assert!(get(SystemKind::GenPip) > get(SystemKind::GenPipCpQsr));
    assert!(get(SystemKind::GenPipCpQsr) > get(SystemKind::GenPipCp));
}

#[test]
fn figure4_staircase_holds_end_to_end() {
    let fig = experiments::fig04::run(0.1);
    let speedups: Vec<f64> = fig.rows.iter().map(|r| r.speedup_vs_a).collect();
    assert!(speedups.windows(2).all(|w| w[1] > w[0]), "{speedups:?}");
    // Paper: B 2.74, C 6.12, D 9.
    assert!((1.6..4.5).contains(&speedups[1]), "B {}", speedups[1]);
    assert!((3.5..9.0).contains(&speedups[2]), "C {}", speedups[2]);
    assert!((5.5..13.0).contains(&speedups[3]), "D {}", speedups[3]);
}

#[test]
fn table2_reproduces_exactly() {
    let tab = experiments::tab02::run();
    assert!((tab.budget.total_power_w() - 147.2).abs() < 0.5);
    assert!((tab.budget.total_area_mm2() - 163.8).abs() < 0.5);
    let rm = tab.budget.module("Read mapping module").unwrap();
    assert!(rm.power_w() / tab.budget.total_power_w() > 0.7);
}
