//! Cross-crate randomized property tests on the reproduction's core
//! invariants, driven by the workspace's own deterministic RNG (no external
//! property-testing dependency).

use genpip::basecall::{Basecaller, CarryState};
use genpip::genomics::quality::{average_quality, AqsAccumulator, Phred};
use genpip::genomics::rng::{seeded, Rng, SeededRng};
use genpip::genomics::{Base, DnaSeq, Kmer};
use genpip::mapping::{minimizers, Anchor, ChainParams, IncrementalChainer};
use genpip::signal::{PoreModel, SignalSynthesizer};
use genpip::sim::{Job, PipelineSim, SimTime, StageSpec};

const CASES: u64 = 64;

fn arb_dna(rng: &mut SeededRng, min: usize, max: usize) -> DnaSeq {
    let len = rng.random_range(min..max.max(min + 1));
    (0..len)
        .map(|_| Base::from_code(rng.random_range(0..4u8)))
        .collect()
}

#[test]
fn reverse_complement_is_involutive() {
    for case in 0..CASES {
        let mut rng = seeded(0x1 ^ case);
        let seq = arb_dna(&mut rng, 0, 300);
        assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }
}

#[test]
fn subseq_concatenation_reconstructs() {
    for case in 0..CASES {
        let mut rng = seeded(0x2 ^ case);
        let seq = arb_dna(&mut rng, 0, 300);
        let cut = rng.random_range(0..300usize).min(seq.len());
        let mut rebuilt = seq.subseq(0, cut);
        rebuilt.extend_from_seq(&seq.subseq(cut, seq.len() - cut));
        assert_eq!(rebuilt, seq);
    }
}

#[test]
fn kmer_roll_matches_fresh_extraction() {
    for case in 0..CASES {
        let mut rng = seeded(0x3 ^ case);
        let seq = arb_dna(&mut rng, 8, 120);
        let k = rng.random_range(2..8usize);
        let mut kmer = Kmer::from_seq(&seq, 0, k);
        for offset in 1..=(seq.len() - k) {
            kmer = kmer.roll(seq.get(offset + k - 1));
            assert_eq!(kmer, Kmer::from_seq(&seq, offset, k));
        }
    }
}

#[test]
fn chunked_aqs_equals_whole_read_aqs() {
    for case in 0..CASES {
        let mut rng = seeded(0x4 ^ case);
        let n = rng.random_range(1..400usize);
        let phreds: Vec<Phred> = (0..n)
            .map(|_| Phred(rng.random_range(0.0f32..30.0)))
            .collect();
        let chunk = rng.random_range(1..64usize);
        let whole = average_quality(&phreds);
        let mut acc = AqsAccumulator::new();
        for c in phreds.chunks(chunk) {
            acc.add_chunk(c);
        }
        assert!((acc.average() - whole).abs() < 1e-9);
    }
}

#[test]
fn minimizers_are_strand_symmetric() {
    use std::collections::HashSet;
    for case in 0..CASES {
        let mut rng = seeded(0x5 ^ case);
        let seq = arb_dna(&mut rng, 40, 400);
        let fwd: HashSet<u64> = minimizers(&seq, 15, 10).iter().map(|m| m.hash).collect();
        let rev: HashSet<u64> = minimizers(&seq.reverse_complement(), 15, 10)
            .iter()
            .map(|m| m.hash)
            .collect();
        assert_eq!(fwd, rev);
    }
}

#[test]
fn chaining_is_batch_order_invariant() {
    for case in 0..CASES {
        let mut rng = seeded(0x6 ^ case);
        let n = rng.random_range(2..40usize);
        let splits = rng.random_range(1..8usize);
        // Build a colinear anchor walk; feeding it in any chunking must give
        // the same best chain score.
        let mut anchors = Vec::new();
        let (mut q, mut r) = (0u64, 1000u64);
        for _ in 0..n {
            anchors.push(Anchor { qpos: q, rpos: r });
            let s = rng.random_range(1..60u64);
            q += s;
            r += s;
        }
        let mut whole = IncrementalChainer::new(ChainParams::for_k(15));
        whole.extend(&anchors);
        let mut chunked = IncrementalChainer::new(ChainParams::for_k(15));
        for part in anchors.chunks(splits) {
            chunked.extend(part);
        }
        assert_eq!(whole.best_score(), chunked.best_score());
    }
}

#[test]
fn chain_score_is_bounded_by_k_per_anchor() {
    for case in 0..CASES {
        let mut rng = seeded(0x7 ^ case);
        let n = rng.random_range(1..60usize);
        let anchors: Vec<Anchor> = (0..n)
            .map(|_| Anchor {
                qpos: rng.random_range(0..5_000u64),
                rpos: rng.random_range(0..5_000u64),
            })
            .collect();
        let mut chainer = IncrementalChainer::new(ChainParams::for_k(15));
        chainer.extend(&anchors);
        if let Some(chain) = chainer.best_chain() {
            assert!(chain.score <= 15.0 * chain.anchor_indices.len() as f64 + 1e-9);
            // Chain is colinear: qpos and rpos strictly increase.
            for w in chain.anchor_indices.windows(2) {
                let a = chainer.anchors()[w[0]];
                let b = chainer.anchors()[w[1]];
                assert!(a.qpos < b.qpos && a.rpos < b.rpos);
            }
        }
    }
}

#[test]
fn pipeline_makespan_bounds() {
    for case in 0..CASES {
        let mut rng = seeded(0x8 ^ case);
        let n = rng.random_range(1..80usize);
        let services: Vec<u64> = (0..n).map(|_| rng.random_range(1..1_000u64)).collect();
        let servers = rng.random_range(1..6usize);
        let jobs: Vec<Job> = services
            .iter()
            .enumerate()
            .map(|(i, &ns)| Job::new(i as u32, 0, vec![SimTime::from_ns(ns as f64)]))
            .collect();
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", servers)]);
        let report = sim.run(&jobs);
        let total: u64 = services.iter().sum();
        let max = *services.iter().max().unwrap();
        // Lower bounds: work conservation and the longest job.
        let lower = (total as f64 / servers as f64).max(max as f64);
        assert!(report.makespan >= SimTime::from_ns(max as f64));
        assert!(report.makespan.as_ns() + 1e-9 >= lower / servers as f64);
        // Upper bound: serial execution.
        assert!(report.makespan <= SimTime::from_ns(total as f64));
    }
}

#[test]
fn basecalled_length_tracks_truth() {
    for seed in 0..30u64 {
        let pore = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(pore.clone());
        let caller = Basecaller::new(&pore, synth.mean_dwell());
        let truth = genpip::genomics::GenomeBuilder::new(500)
            .seed(seed)
            .build()
            .sequence()
            .clone();
        let sig = synth.synthesize(&truth, 1.0, seed);
        let called = caller.call_read(&sig.samples, 2_400);
        let ratio = called.seq.len() as f64 / truth.len() as f64;
        assert!((0.85..1.15).contains(&ratio), "length ratio {ratio}");
        assert_eq!(called.quals.len(), called.seq.len());
    }
}

#[test]
fn chunk_stitching_never_drops_more_than_boundary_bases() {
    for seed in 0..20u64 {
        let mut rng = seeded(0xB ^ seed);
        let chunk_samples = rng.random_range(300..2_000usize);
        let pore = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(pore.clone());
        let caller = Basecaller::new(&pore, synth.mean_dwell());
        let truth = genpip::genomics::GenomeBuilder::new(400)
            .seed(seed ^ 0xABCD)
            .build()
            .sequence()
            .clone();
        let sig = synth.synthesize(&truth, 0.8, seed);
        let whole = caller.call_read(&sig.samples, usize::MAX / 2);
        let chunked = caller.call_read(&sig.samples, chunk_samples);
        let diff = whole.seq.len().abs_diff(chunked.seq.len());
        let boundaries = sig.samples.len() / chunk_samples + 1;
        assert!(
            diff <= 4 * boundaries + 4,
            "length difference {diff} over {boundaries} boundaries"
        );
    }
}

#[test]
fn carry_state_is_consistent_with_final_kmer() {
    for seed in 0..20u64 {
        let pore = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(pore.clone());
        let caller = Basecaller::new(&pore, synth.mean_dwell());
        let truth = genpip::genomics::GenomeBuilder::new(200)
            .seed(seed ^ 0xF00D)
            .build()
            .sequence()
            .clone();
        let sig = synth.synthesize(&truth, 0.3, seed);
        let chunk = caller.call_chunk(&sig.samples, None);
        // The carry state's k-mer must equal the last k decoded bases.
        if let (Some(CarryState(state)), true) = (chunk.carry, chunk.bases.len() >= 3) {
            let n = chunk.bases.len();
            let mut expect = 0u16;
            for i in n - 3..n {
                expect = (expect << 2) | chunk.bases.get(i).code() as u16;
            }
            assert_eq!(state, expect);
        }
    }
}
