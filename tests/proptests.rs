//! Cross-crate property-based tests on the reproduction's core invariants.

use genpip::basecall::{Basecaller, CarryState};
use genpip::genomics::quality::{average_quality, AqsAccumulator, Phred};
use genpip::genomics::{Base, DnaSeq, Kmer};
use genpip::mapping::{minimizers, Anchor, ChainParams, IncrementalChainer};
use genpip::signal::{PoreModel, SignalSynthesizer};
use genpip::sim::{Job, PipelineSim, SimTime, StageSpec};
use proptest::prelude::*;

fn arb_dna(max_len: usize) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, 0..max_len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

fn arb_dna_min(min_len: usize, max_len: usize) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, min_len..max_len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reverse_complement_is_involutive(seq in arb_dna(300)) {
        prop_assert_eq!(seq.reverse_complement().reverse_complement(), seq);
    }

    #[test]
    fn subseq_concatenation_reconstructs(seq in arb_dna(300), cut in 0usize..300) {
        let cut = cut.min(seq.len());
        let mut rebuilt = seq.subseq(0, cut);
        rebuilt.extend_from_seq(&seq.subseq(cut, seq.len() - cut));
        prop_assert_eq!(rebuilt, seq);
    }

    #[test]
    fn kmer_roll_matches_fresh_extraction(seq in arb_dna_min(8, 120), k in 2usize..8) {
        let mut kmer = Kmer::from_seq(&seq, 0, k);
        for offset in 1..=(seq.len() - k) {
            kmer = kmer.roll(seq.get(offset + k - 1));
            prop_assert_eq!(kmer, Kmer::from_seq(&seq, offset, k));
        }
    }

    #[test]
    fn chunked_aqs_equals_whole_read_aqs(
        quals in proptest::collection::vec(0.0f32..30.0, 1..400),
        chunk in 1usize..64,
    ) {
        let phreds: Vec<Phred> = quals.into_iter().map(Phred).collect();
        let whole = average_quality(&phreds);
        let mut acc = AqsAccumulator::new();
        for c in phreds.chunks(chunk) {
            acc.add_chunk(c);
        }
        prop_assert!((acc.average() - whole).abs() < 1e-9);
    }

    #[test]
    fn minimizers_are_strand_symmetric(seq in arb_dna_min(40, 400)) {
        use std::collections::HashSet;
        let fwd: HashSet<u64> = minimizers(&seq, 15, 10).iter().map(|m| m.hash).collect();
        let rev: HashSet<u64> =
            minimizers(&seq.reverse_complement(), 15, 10).iter().map(|m| m.hash).collect();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn chaining_is_batch_order_invariant(
        spacings in proptest::collection::vec(1u32..60, 2..40),
        splits in 1usize..8,
    ) {
        // Build a colinear anchor walk; feeding it in any chunking must give
        // the same best chain score.
        let mut anchors = Vec::new();
        let (mut q, mut r) = (0u32, 1000u32);
        for s in &spacings {
            anchors.push(Anchor { qpos: q, rpos: r });
            q += s;
            r += s;
        }
        let mut whole = IncrementalChainer::new(ChainParams::for_k(15));
        whole.extend(&anchors);
        let mut chunked = IncrementalChainer::new(ChainParams::for_k(15));
        for part in anchors.chunks(splits) {
            chunked.extend(part);
        }
        prop_assert_eq!(whole.best_score(), chunked.best_score());
    }

    #[test]
    fn chain_score_is_bounded_by_k_per_anchor(
        raw in proptest::collection::vec((0u32..5_000, 0u32..5_000), 1..60),
    ) {
        let anchors: Vec<Anchor> =
            raw.into_iter().map(|(q, r)| Anchor { qpos: q, rpos: r }).collect();
        let mut chainer = IncrementalChainer::new(ChainParams::for_k(15));
        chainer.extend(&anchors);
        if let Some(chain) = chainer.best_chain() {
            prop_assert!(chain.score <= 15.0 * chain.anchor_indices.len() as f64 + 1e-9);
            // Chain is colinear: qpos and rpos strictly increase.
            for w in chain.anchor_indices.windows(2) {
                let a = chainer.anchors()[w[0]];
                let b = chainer.anchors()[w[1]];
                prop_assert!(a.qpos < b.qpos && a.rpos < b.rpos);
            }
        }
    }

    #[test]
    fn pipeline_makespan_bounds(
        services in proptest::collection::vec(1u64..1_000, 1..80),
        servers in 1usize..6,
    ) {
        let jobs: Vec<Job> = services
            .iter()
            .enumerate()
            .map(|(i, &ns)| Job::new(i as u32, 0, vec![SimTime::from_ns(ns as f64)]))
            .collect();
        let mut sim = PipelineSim::new(vec![StageSpec::new("s", servers)]);
        let report = sim.run(&jobs);
        let total: u64 = services.iter().sum();
        let max = *services.iter().max().unwrap();
        // Lower bounds: work conservation and the longest job.
        let lower = (total as f64 / servers as f64).max(max as f64);
        prop_assert!(report.makespan >= SimTime::from_ns(max as f64));
        prop_assert!(report.makespan.as_ns() + 1e-9 >= lower / servers as f64);
        // Upper bound: serial execution.
        prop_assert!(report.makespan <= SimTime::from_ns(total as f64));
    }

    #[test]
    fn basecalled_length_tracks_truth(seed in 0u64..30) {
        let pore = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(pore.clone());
        let caller = Basecaller::new(&pore, synth.mean_dwell());
        let truth = genpip::genomics::GenomeBuilder::new(500)
            .seed(seed)
            .build()
            .sequence()
            .clone();
        let sig = synth.synthesize(&truth, 1.0, seed);
        let called = caller.call_read(&sig.samples, 2_400);
        let ratio = called.seq.len() as f64 / truth.len() as f64;
        prop_assert!((0.85..1.15).contains(&ratio), "length ratio {}", ratio);
        prop_assert_eq!(called.quals.len(), called.seq.len());
    }

    #[test]
    fn chunk_stitching_never_drops_more_than_boundary_bases(
        seed in 0u64..20,
        chunk_samples in 300usize..2_000,
    ) {
        let pore = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(pore.clone());
        let caller = Basecaller::new(&pore, synth.mean_dwell());
        let truth = genpip::genomics::GenomeBuilder::new(400)
            .seed(seed ^ 0xABCD)
            .build()
            .sequence()
            .clone();
        let sig = synth.synthesize(&truth, 0.8, seed);
        let whole = caller.call_read(&sig.samples, usize::MAX / 2);
        let chunked = caller.call_read(&sig.samples, chunk_samples);
        let diff = whole.seq.len().abs_diff(chunked.seq.len());
        let boundaries = sig.samples.len() / chunk_samples + 1;
        prop_assert!(
            diff <= 4 * boundaries + 4,
            "length difference {} over {} boundaries",
            diff,
            boundaries
        );
    }

    #[test]
    fn carry_state_is_consistent_with_final_kmer(seed in 0u64..20) {
        let pore = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(pore.clone());
        let caller = Basecaller::new(&pore, synth.mean_dwell());
        let truth = genpip::genomics::GenomeBuilder::new(200)
            .seed(seed ^ 0xF00D)
            .build()
            .sequence()
            .clone();
        let sig = synth.synthesize(&truth, 0.3, seed);
        let chunk = caller.call_chunk(&sig.samples, None);
        // The carry state's k-mer must equal the last k decoded bases.
        if let (Some(CarryState(state)), true) = (chunk.carry, chunk.bases.len() >= 3) {
            let n = chunk.bases.len();
            let mut expect = 0u16;
            for i in n - 3..n {
                expect = (expect << 2) | chunk.bases.get(i).code() as u16;
            }
            prop_assert_eq!(state, expect);
        }
    }
}
