//! Shard-count invariance of the whole pipeline: splitting the reference
//! minimizer index across position-range shards must never change any
//! output bit — mapping, mapq, counters — for any `ErMode`, `Parallelism`,
//! or execution style (batch or streaming), and the streaming executor's
//! bounded-memory guarantee must survive sharded mappers.
//!
//! The parallelism sweep includes `GENPIP_PARALLELISM` (when set), which CI
//! uses to force both threading paths through this suite.

// Identity oracle: the deprecated `run_*` wrappers are the frozen reference
// the sharded runs are compared against.
#![allow(deprecated)]

use genpip::core::pipeline::{run_genpip, ErMode};
use genpip::core::stream::{run_genpip_streaming, StreamEvent, StreamOptions};
use genpip::core::{GenPipConfig, Parallelism, ReadRun, Shards};
use genpip::datasets::{DatasetProfile, SimulatedDataset};
use genpip::genomics::{DnaSeq, Genome, GenomeBuilder};
use genpip::mapping::{Mapper, MapperParams};

fn dataset() -> SimulatedDataset {
    DatasetProfile::ecoli().scaled(0.03).generate()
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(4)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

fn shard_sweep() -> [Shards; 3] {
    [Shards::Fixed(2), Shards::Fixed(7), Shards::Auto]
}

#[test]
fn pipeline_output_is_bit_identical_for_every_shard_count() {
    let d = dataset();
    let base = GenPipConfig::for_dataset(&d.profile);
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        for parallelism in parallelism_sweep() {
            let single = base
                .clone()
                .with_parallelism(parallelism)
                .with_shards(Shards::Single);
            let reference = run_genpip(&d, &single, er);
            for shards in shard_sweep() {
                let config = base
                    .clone()
                    .with_parallelism(parallelism)
                    .with_shards(shards);
                let run = run_genpip(&d, &config, er);
                assert_eq!(
                    run.reads, reference.reads,
                    "{er:?} / {parallelism:?} / {shards:?} diverged from Shards::Single"
                );
            }
        }
    }
}

/// The masking edge case sharding can get wrong: a minimizer whose global
/// occurrence count exceeds the repetitive cap while every per-shard count
/// stays under it. Masking per shard would resurrect its anchors and move
/// mappings; masking on the summed count must keep every result bit-equal.
#[test]
fn repeat_heavy_reference_maps_identically_across_shard_counts() {
    // 140 copies of a 400 bp unit beat the default cap of 128 globally;
    // across 7 shards each holds only ~20 copies.
    let unit = GenomeBuilder::new(400)
        .seed(31)
        .repeat_fraction(0.0)
        .build();
    let mut seq = DnaSeq::new();
    for _ in 0..140 {
        seq.extend_from_seq(unit.sequence());
    }
    seq.extend_from_seq(
        GenomeBuilder::new(30_000)
            .seed(32)
            .repeat_fraction(0.0)
            .build()
            .sequence(),
    );
    let genome = Genome::from_seq("repeat-heavy", seq);
    let single = Mapper::build(&genome, MapperParams::default());

    // Queries: from the repeat, from unique sequence, straddling the join.
    let queries = [
        unit.sequence().subseq(10, 380),
        genome.sequence().subseq(140 * 400 + 8_000, 1_200),
        genome.sequence().subseq(140 * 400 - 600, 1_400),
    ];
    for shards in shard_sweep() {
        let params = MapperParams {
            shards,
            ..MapperParams::default()
        };
        let sharded = Mapper::build(&genome, params);
        assert!(
            sharded.index().masked_keys() > 0,
            "repeat genome must trip the global mask"
        );
        if sharded.index().shard_count() > 1 {
            // Prove the edge case is actually exercised: some globally
            // masked key sits below the cap inside at least one shard, so a
            // per-shard mask would have let it through.
            let cap = sharded.index().max_occurrences();
            let split_repeat = (0..sharded.index().shard_count()).any(|s| {
                sharded.index().shard(s).iter().any(|(h, hits)| {
                    sharded.index().is_masked(*h) && !hits.is_empty() && hits.len() <= cap
                })
            });
            assert!(split_repeat, "{shards:?}: masked keys never split");
        }
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(
                sharded.map(q),
                single.map(q),
                "{shards:?}: query {i} diverged"
            );
        }
    }
}

#[test]
fn streaming_with_sharded_mappers_matches_batch_and_keeps_the_memory_bound() {
    let d = dataset();
    let workers = 4usize;
    let queue_capacity = 2usize;
    let config = GenPipConfig::for_dataset(&d.profile)
        .with_parallelism(Parallelism::Threads(workers))
        .with_shards(Shards::Fixed(3));
    let batch = run_genpip(&d, &config, ErMode::Full);
    let opts = StreamOptions {
        queue_capacity,
        ..StreamOptions::default()
    };
    let mut reads: Vec<ReadRun> = Vec::new();
    let summary = run_genpip_streaming(&mut d.stream(), &config, ErMode::Full, &opts, |event| {
        if let StreamEvent::Read(run) = event {
            reads.push(run);
        }
    });
    assert_eq!(reads, batch.reads, "sharded streaming diverged from batch");
    assert_eq!(summary.totals, batch.totals());
    assert_eq!(summary.in_flight_limit, queue_capacity + workers);
    assert!(
        summary.max_in_flight <= summary.in_flight_limit,
        "sharded mappers broke the in-flight bound: {} > {}",
        summary.max_in_flight,
        summary.in_flight_limit
    );
}
