//! Fault-tolerance properties of the `Session` engine under deterministic
//! fault injection: containment (one corrupt read never kills the run),
//! the quarantined == injected oracle, bit-identity of the surviving reads
//! with a fault-free run, the bounded retry path, the rejection-backlog
//! soft gate, graceful drain, and prompt teardown under
//! `FaultPolicy::Fail`.
//!
//! The injector corrupts whole signals, so every injected read faults on
//! its first decoded chunk under every `ErMode` — which is what makes the
//! quarantined set exactly predictable.

use genpip::core::engine::{Flow, Granularity, Session, SessionControl};
use genpip::core::pipeline::ErMode;
use genpip::core::stream::{FastqSink, StreamEvent, StreamOptions};
use genpip::core::{FaultPolicy, GenPipConfig, Parallelism, ReadRun, SessionReport};
use genpip::datasets::{DatasetProfile, FaultInjector, StreamingSimulator};

const INJECT_RATE: f64 = 0.15;
const SEED: u64 = 2026;

fn profile() -> DatasetProfile {
    DatasetProfile::ecoli().scaled(0.05)
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(3)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

/// A fault-free session run: the reference output the survivors of a
/// faulted run must match bit for bit.
fn baseline(config: &GenPipConfig, er: ErMode, granularity: Granularity) -> Vec<ReadRun> {
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .granularity(granularity)
        .source("s", StreamingSimulator::new(&profile()))
        .sink("s", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("baseline session is valid");
    reads
}

/// Runs one faulted session, returning (surviving reads, failed ids,
/// injected ids, report).
fn run_faulted(
    config: &GenPipConfig,
    er: ErMode,
    granularity: Granularity,
    opts: StreamOptions,
) -> (Vec<ReadRun>, Vec<u32>, Vec<u32>, SessionReport) {
    let mut injector = FaultInjector::new(StreamingSimulator::new(&profile()), INJECT_RATE, SEED);
    let mut survivors = Vec::new();
    let mut failed = Vec::new();
    let report = Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .granularity(granularity)
        .options(opts)
        .source("s", &mut injector)
        .sink("s", |event| match event {
            StreamEvent::Read(run) => survivors.push(run),
            StreamEvent::Failed { read_id, .. } => failed.push(read_id),
            _ => {}
        })
        .run()
        .expect("faulted session is valid");
    let injected = injector.injected_ids().to_vec();
    (survivors, failed, injected, report)
}

#[test]
fn quarantine_contains_faults_and_survivors_stay_bit_identical() {
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        for parallelism in parallelism_sweep() {
            for granularity in [Granularity::Read, Granularity::Chunk] {
                let label = format!("{er:?} / {parallelism:?} / {granularity:?}");
                let config = GenPipConfig::for_dataset(&profile())
                    .with_parallelism(parallelism)
                    .with_fault_policy(FaultPolicy::Quarantine);
                let reference = baseline(&config, er, granularity);
                let (survivors, failed, injected, report) =
                    run_faulted(&config, er, granularity, StreamOptions::default());

                assert!(!injected.is_empty(), "{label}: injection rate too low");
                let mut sorted_failed = failed.clone();
                sorted_failed.sort_unstable();
                let mut sorted_injected = injected.clone();
                sorted_injected.sort_unstable();
                assert_eq!(
                    sorted_failed, sorted_injected,
                    "{label}: quarantined set != injected set"
                );

                let expected: Vec<ReadRun> = reference
                    .into_iter()
                    .filter(|run| !injected.contains(&run.id))
                    .collect();
                assert_eq!(survivors, expected, "{label}: survivors diverged");

                assert_eq!(report.outcomes.failed, injected.len(), "{label}");
                assert_eq!(report.retried, 0, "{label}: quarantine never retries");
                assert!(
                    report.max_in_flight <= report.in_flight_limit,
                    "{label}: in-flight bound broken"
                );
                // Emission order is preserved: failures land in pull order.
                assert_eq!(failed, injected, "{label}: failure order diverged");
            }
        }
    }
}

#[test]
fn heavy_fault_sweep_runs_under_genpip_faults_env() {
    // An extra-heavy sweep for the CI fault-injection leg: opt in with
    // GENPIP_FAULTS=1 (it multiplies the default suite's runtime), and the
    // quarantined == injected / bit-identity oracles must hold all the way
    // up to a 60% fault rate.
    if std::env::var("GENPIP_FAULTS").as_deref() != Ok("1") {
        eprintln!("heavy fault sweep skipped (set GENPIP_FAULTS=1 to run it)");
        return;
    }
    for rate_mil in [300u32, 600] {
        let rate = f64::from(rate_mil) / 1000.0;
        for parallelism in parallelism_sweep() {
            let label = format!("rate {rate} / {parallelism:?}");
            let config = GenPipConfig::for_dataset(&profile())
                .with_parallelism(parallelism)
                .with_fault_policy(FaultPolicy::Quarantine);
            let reference = baseline(&config, ErMode::Full, Granularity::Chunk);
            let mut injector = FaultInjector::new(
                StreamingSimulator::new(&profile()),
                rate,
                SEED ^ u64::from(rate_mil),
            );
            let mut survivors = Vec::new();
            let mut failed = Vec::new();
            let report = Session::new(config)
                .flow(Flow::GenPip(ErMode::Full))
                .granularity(Granularity::Chunk)
                .source("s", &mut injector)
                .sink("s", |event| match event {
                    StreamEvent::Read(run) => survivors.push(run),
                    StreamEvent::Failed { read_id, .. } => failed.push(read_id),
                    _ => {}
                })
                .run()
                .expect("heavy-sweep session is valid");
            let injected = injector.injected_ids().to_vec();
            assert!(!injected.is_empty(), "{label}");
            failed.sort_unstable();
            let mut sorted_injected = injected.clone();
            sorted_injected.sort_unstable();
            assert_eq!(failed, sorted_injected, "{label}: quarantined != injected");
            let expected: Vec<ReadRun> = reference
                .into_iter()
                .filter(|run| !injected.contains(&run.id))
                .collect();
            assert_eq!(survivors, expected, "{label}: survivors diverged");
            assert!(
                report.max_in_flight <= report.in_flight_limit,
                "{label}: in-flight bound broken"
            );
        }
    }
}

#[test]
fn retry_spends_its_budget_then_quarantines_permanent_faults() {
    // Injector faults are permanent (the signal itself is corrupt), so
    // Retry must burn its full budget per injected read and then converge
    // on the exact same outcome as Quarantine.
    let attempts = 2u32;
    for parallelism in parallelism_sweep() {
        let label = format!("{parallelism:?}");
        let config = GenPipConfig::for_dataset(&profile())
            .with_parallelism(parallelism)
            .with_fault_policy(FaultPolicy::Retry { attempts });
        let reference = baseline(&config, ErMode::Full, Granularity::Chunk);
        let (survivors, failed, injected, report) = run_faulted(
            &config,
            ErMode::Full,
            Granularity::Chunk,
            StreamOptions::default(),
        );
        assert!(!injected.is_empty(), "{label}");
        let mut sorted_failed = failed;
        sorted_failed.sort_unstable();
        let mut sorted_injected = injected.clone();
        sorted_injected.sort_unstable();
        assert_eq!(sorted_failed, sorted_injected, "{label}");
        assert_eq!(
            report.retried,
            injected.len() * attempts as usize,
            "{label}: every injected read should retry exactly {attempts} times"
        );
        let expected: Vec<ReadRun> = reference
            .into_iter()
            .filter(|run| !injected.contains(&run.id))
            .collect();
        assert_eq!(survivors, expected, "{label}: survivors diverged");
    }
}

#[test]
fn reject_backlog_soft_gate_bound_holds_under_heavy_faults() {
    // A tiny backlog bound with a high fault rate: the gate must throttle
    // admission, the run must still complete (no deadlock), and the
    // backlog high-water must stay within bound + in_flight_limit (each
    // already-resident chain may add one entry after admission stops).
    let reject_backlog = 2usize;
    let config = GenPipConfig::for_dataset(&profile())
        .with_parallelism(Parallelism::Threads(3))
        .with_fault_policy(FaultPolicy::Quarantine);
    let mut injector = FaultInjector::new(StreamingSimulator::new(&profile()), 0.5, 7);
    let mut failed = 0usize;
    let mut emitted = 0usize;
    let report = Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .options(StreamOptions {
            queue_capacity: 2,
            reject_backlog,
            ..StreamOptions::default()
        })
        .source("s", &mut injector)
        .sink("s", |event| match event {
            StreamEvent::Read(_) => emitted += 1,
            StreamEvent::Failed { .. } => failed += 1,
            _ => {}
        })
        .run()
        .expect("heavy-fault session is valid");
    assert_eq!(failed, injector.injected_ids().len());
    assert_eq!(emitted + failed, profile().n_reads);
    assert!(
        report.max_reject_backlog <= reject_backlog + report.in_flight_limit,
        "backlog high-water {} exceeds soft bound {} + in-flight limit {}",
        report.max_reject_backlog,
        reject_backlog,
        report.in_flight_limit
    );
    assert!(
        report.max_reject_backlog > 0,
        "a 50% fault rate must exercise the backlog"
    );
}

#[test]
fn drain_finishes_resident_reads_and_stops_pulling() {
    for parallelism in parallelism_sweep() {
        let label = format!("{parallelism:?}");
        let config = GenPipConfig::for_dataset(&profile()).with_parallelism(parallelism);
        let control = SessionControl::new();
        let drain_after = 3usize;
        let mut emitted = 0usize;
        let control_for_sink = control.clone();
        let report = Session::new(config)
            .flow(Flow::GenPip(ErMode::Full))
            .source("s", StreamingSimulator::new(&profile()))
            .sink("s", move |event| {
                if let StreamEvent::Read(_) = event {
                    emitted += 1;
                    if emitted == drain_after {
                        control_for_sink.drain();
                    }
                }
            })
            .run_with_control(&control)
            .expect("drained session is valid");
        assert!(control.is_draining(), "{label}");
        assert!(
            report.outcomes.reads_emitted >= drain_after,
            "{label}: drained before the trigger"
        );
        assert!(
            report.outcomes.reads_emitted < profile().n_reads,
            "{label}: drain never stopped the pull ({} of {} reads)",
            report.outcomes.reads_emitted,
            profile().n_reads
        );
    }
}

#[test]
fn failing_fastq_writer_drains_the_session_via_the_control_handle() {
    /// A writer that goes bad after a few bytes — a full disk in miniature.
    struct FailingWriter {
        written: usize,
        budget: usize,
    }
    impl std::io::Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written + buf.len() > self.budget {
                return Err(std::io::Error::other("disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let config = GenPipConfig::for_dataset(&profile())
        .with_parallelism(Parallelism::Threads(2))
        .with_keep_bases(true);
    let control = SessionControl::new();
    let mut sink = FastqSink::new(FailingWriter {
        written: 0,
        budget: 2000,
    });
    let control_for_sink = control.clone();
    let report = Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .source("s", StreamingSimulator::new(&profile()))
        .sink("s", |event| {
            sink.handle(&event);
            if sink.has_error() && !control_for_sink.is_draining() {
                control_for_sink.drain();
            }
        })
        .run_with_control(&control)
        .expect("session with failing writer is valid");
    assert!(control.is_draining(), "writer error never triggered drain");
    assert!(
        report.outcomes.reads_emitted < profile().n_reads,
        "drain never stopped the pull ({} of {} reads)",
        report.outcomes.reads_emitted,
        profile().n_reads
    );
    assert!(sink.finish().is_err(), "the write error must stay sticky");
}

#[test]
fn fail_policy_still_tears_down_promptly_at_chunk_granularity() {
    // The PR 2 watchdog regression, extended to the chunk-granular engine
    // with a corrupt-signal fault: under `FaultPolicy::Fail` the injected
    // fault must abort the run (propagated panic), not hang it.
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let config = GenPipConfig::for_dataset(&profile())
            .with_parallelism(Parallelism::Threads(2))
            .with_fault_policy(FaultPolicy::Fail);
        let injector = FaultInjector::new(StreamingSimulator::new(&profile()), INJECT_RATE, SEED);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Session::new(config)
                .flow(Flow::GenPip(ErMode::Full))
                .granularity(Granularity::Chunk)
                .source("s", injector)
                .run()
        }));
        let _ = done_tx.send(result.is_err());
    });
    match done_rx.recv_timeout(std::time::Duration::from_secs(120)) {
        Ok(panicked) => assert!(panicked, "Fail policy swallowed the fault"),
        Err(_) => panic!("engine deadlocked on an uncontained fault"),
    }
}
