//! Cross-crate properties of the `Session` engine: per-source bit-identity
//! with solo runs under every scheduling policy, across `ErMode` ×
//! `Parallelism` × shard counts; the shared in-flight bound with N sources;
//! and starvation-freedom of the `Priority` schedule.
//!
//! The parallelism sweep includes `GENPIP_PARALLELISM` (when set), which CI
//! uses to force both threading paths through this suite.

// Identity oracle: the deprecated `run_*` wrappers are the frozen reference
// the Session engine is compared against.
#![allow(deprecated)]

use genpip::core::engine::{Flow, Session};
use genpip::core::pipeline::{run_genpip, ErMode};
use genpip::core::scheduler::Schedule;
use genpip::core::stream::{StreamEvent, StreamOptions};
use genpip::core::{GenPipConfig, Parallelism, ReadRun, SessionReport, Shards};
use genpip::datasets::{
    DatasetProfile, ReadSource, SimulatedDataset, SimulatedRead, StreamingSimulator,
};
use genpip::genomics::Genome;
use genpip::signal::PoreModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Two sources with *different* references (scaling changes the genome),
/// so the session must keep one context per source.
fn profiles() -> (DatasetProfile, DatasetProfile) {
    (
        DatasetProfile::ecoli().scaled(0.1),
        DatasetProfile::ecoli().scaled(0.04),
    )
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(4)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

/// Runs a two-source session (lazy sources) and returns the per-source
/// read collections plus the report.
fn run_two_source_session(
    a: &DatasetProfile,
    b: &DatasetProfile,
    config: &GenPipConfig,
    er: ErMode,
    schedule: Schedule,
    opts: &StreamOptions,
) -> (Vec<ReadRun>, Vec<ReadRun>, SessionReport) {
    let mut reads_a = Vec::new();
    let mut reads_b = Vec::new();
    let report = Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .schedule(schedule)
        .options(*opts)
        .source("a", StreamingSimulator::new(a))
        .source("b", StreamingSimulator::new(b))
        .sink("a", |event| {
            if let StreamEvent::Read(run) = event {
                reads_a.push(run);
            }
        })
        .sink("b", |event| {
            if let StreamEvent::Read(run) = event {
                reads_b.push(run);
            }
        })
        .run()
        .expect("two-source session inputs are valid");
    (reads_a, reads_b, report)
}

#[test]
fn interleaved_sources_are_bit_identical_to_solo_runs() {
    let (pa, pb) = profiles();
    let (da, db) = (pa.generate(), pb.generate());
    // One session config serves both sources; base it on profile A.
    let base = GenPipConfig::for_dataset(&pa);
    let opts = StreamOptions {
        queue_capacity: 3,
        ..StreamOptions::default()
    };
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        for parallelism in parallelism_sweep() {
            for shards in [Shards::Single, Shards::Fixed(2)] {
                let config = base
                    .clone()
                    .with_parallelism(parallelism)
                    .with_shards(shards);
                let solo_a = run_genpip(&da, &config, er);
                let solo_b = run_genpip(&db, &config, er);
                for schedule in [Schedule::FairShare, Schedule::Priority(vec![3, 1])] {
                    let label = format!("{er:?} / {parallelism:?} / {shards:?} / {schedule:?}");
                    let (reads_a, reads_b, report) =
                        run_two_source_session(&pa, &pb, &config, er, schedule, &opts);
                    assert_eq!(reads_a, solo_a.reads, "source a diverged: {label}");
                    assert_eq!(reads_b, solo_b.reads, "source b diverged: {label}");
                    let sa = report.source("a").expect("source a reported");
                    let sb = report.source("b").expect("source b reported");
                    assert_eq!(sa.summary.totals, solo_a.totals(), "{label}");
                    assert_eq!(sb.summary.totals, solo_b.totals(), "{label}");
                    assert_eq!(
                        report.outcomes.reads_emitted,
                        da.reads.len() + db.reads.len(),
                        "{label}"
                    );
                    assert!(
                        report.max_in_flight <= report.in_flight_limit,
                        "{label}: {} in flight exceeds bound {}",
                        report.max_in_flight,
                        report.in_flight_limit
                    );
                }
            }
        }
    }
}

#[test]
fn conventional_flow_sessions_match_solo_runs_too() {
    use genpip::core::pipeline::run_conventional;
    let (pa, pb) = profiles();
    let (da, db) = (pa.generate(), pb.generate());
    let config = GenPipConfig::for_dataset(&pa)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Threads(3)));
    let solo_a = run_conventional(&da, &config);
    let solo_b = run_conventional(&db, &config);
    let mut reads_a = Vec::new();
    let mut reads_b = Vec::new();
    Session::new(config)
        .flow(Flow::Conventional)
        .schedule(Schedule::FairShare)
        .source("a", StreamingSimulator::new(&pa))
        .source("b", StreamingSimulator::new(&pb))
        .sink("a", |event| {
            if let StreamEvent::Read(run) = event {
                reads_a.push(run);
            }
        })
        .sink("b", |event| {
            if let StreamEvent::Read(run) = event {
                reads_b.push(run);
            }
        })
        .run()
        .expect("valid session");
    assert_eq!(reads_a, solo_a.reads);
    assert_eq!(reads_b, solo_b.reads);
}

/// Wraps a source and counts pulls into a shared counter, so tests can
/// observe total in-flight reads (pulled minus emitted) from outside the
/// engine.
struct CountingSource<S> {
    inner: S,
    pulled: Arc<AtomicUsize>,
}

impl<S: ReadSource> ReadSource for CountingSource<S> {
    fn reference(&self) -> &Genome {
        self.inner.reference()
    }
    fn pore_model(&self) -> &PoreModel {
        self.inner.pore_model()
    }
    fn mean_dwell(&self) -> f64 {
        self.inner.mean_dwell()
    }
    fn next_read(&mut self) -> Option<SimulatedRead> {
        let read = self.inner.next_read()?;
        self.pulled.fetch_add(1, Ordering::SeqCst);
        Some(read)
    }
}

#[test]
fn in_flight_reads_stay_bounded_across_n_sources() {
    let profile = DatasetProfile::ecoli().scaled(0.05);
    let dataset = profile.generate();
    let workers = 3usize;
    let queue_capacity = 2usize;
    let bound = queue_capacity + workers;
    let config =
        GenPipConfig::for_dataset(&profile).with_parallelism(Parallelism::Threads(workers));
    let opts = StreamOptions {
        queue_capacity,
        ..StreamOptions::default()
    };
    // ER rejections release their permit at the verdict (not at emission),
    // which is the only way pulled-minus-emitted may exceed the gate
    // bound. Each source pulls the same dataset in id order, so the
    // rejections among its first p pulls are a prefix sum of the solo
    // run's outcome tape — slack never covers reads not yet pulled.
    let solo = run_genpip(&dataset, &config, ErMode::Full);
    let mut prefix_rejected = vec![0usize; solo.reads.len() + 1];
    for (i, run) in solo.reads.iter().enumerate() {
        prefix_rejected[i + 1] = prefix_rejected[i] + usize::from(run.outcome.is_early_rejected());
    }
    // Three sources over the same dataset with per-source pull counters;
    // the sinks share one emitted counter (they all run on the emitting
    // thread). Sampling at emission time is conservative: pulls strictly
    // precede this observation, so any overshoot of the residency bound
    // would show up here. Since the chunk-granular engine, the bound on
    // *unemitted* reads is `gate + rejected reads awaiting emission`:
    // every unemitted read either holds a permit (≤ bound of them) or is
    // an early-rejected read whose permit was released at its QSR/CMR
    // verdict (≤ rejections pulled − rejections already emitted).
    let pulled_counters: Vec<Arc<AtomicUsize>> =
        (0..3).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let emitted = std::cell::Cell::new(0usize);
    let rejected_emitted = std::cell::Cell::new(0usize);
    let overshoot = std::cell::Cell::new(0usize);
    let mut session = Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .schedule(Schedule::FairShare)
        .options(opts);
    for (i, counter) in pulled_counters.iter().enumerate() {
        let id = format!("src{i}");
        let all_pulled = &pulled_counters;
        session = session
            .source(
                id.as_str(),
                CountingSource {
                    inner: dataset.stream(),
                    pulled: Arc::clone(counter),
                },
            )
            .sink(id.as_str(), |event| {
                if let StreamEvent::Read(run) = event {
                    let pulls: Vec<usize> = all_pulled
                        .iter()
                        .map(|p| p.load(Ordering::SeqCst))
                        .collect();
                    let in_flight = pulls.iter().sum::<usize>() - emitted.get();
                    let rejected_pending = pulls.iter().map(|&p| prefix_rejected[p]).sum::<usize>()
                        - rejected_emitted.get();
                    overshoot.set(
                        overshoot
                            .get()
                            .max(in_flight.saturating_sub(rejected_pending)),
                    );
                    emitted.set(emitted.get() + 1);
                    if run.outcome.is_early_rejected() {
                        rejected_emitted.set(rejected_emitted.get() + 1);
                    }
                }
            });
    }
    let report = session.run().expect("valid session");
    assert_eq!(emitted.get(), 3 * dataset.reads.len());
    assert!(
        overshoot.get() <= bound,
        "observed {} permit-holding in-flight reads across 3 sources, bound {bound}",
        overshoot.get()
    );
    assert_eq!(report.in_flight_limit, bound);
    assert!(
        report.max_in_flight <= bound,
        "gate high-water {} exceeds bound {bound}",
        report.max_in_flight
    );
    // Per-source high-water marks are each within the shared bound, and
    // every source emitted its full read count.
    for source in &report.sources {
        assert!(source.summary.max_in_flight <= bound);
        assert_eq!(source.summary.outcomes.reads_emitted, dataset.reads.len());
    }
}

#[test]
fn priority_schedule_never_starves_low_weight_sources() {
    // Serial execution emits in exact pull order, so the emission tape *is*
    // the schedule's pull sequence: with weights [5, 1] the weight-1 source
    // must appear within every 6 pulls while both sources are live — not
    // just "eventually drain".
    let (pa, pb) = profiles();
    let config = GenPipConfig::for_dataset(&pa).with_parallelism(Parallelism::Serial);
    let mut tape: Vec<&'static str> = Vec::new();
    {
        let tape = std::cell::RefCell::new(&mut tape);
        Session::new(config)
            .flow(Flow::GenPip(ErMode::Full))
            .schedule(Schedule::Priority(vec![5, 1]))
            .source("heavy", StreamingSimulator::new(&pa))
            .source("light", StreamingSimulator::new(&pb))
            .sink("heavy", |event| {
                if let StreamEvent::Read(_) = event {
                    tape.borrow_mut().push("heavy");
                }
            })
            .sink("light", |event| {
                if let StreamEvent::Read(_) = event {
                    tape.borrow_mut().push("light");
                }
            })
            .run()
            .expect("valid session");
    }
    let n_light = pb.n_reads;
    assert_eq!(
        tape.iter().filter(|&&t| t == "light").count(),
        n_light,
        "priority schedule failed to drain the low-weight source"
    );
    // While the light source still has reads, it is served at least once
    // per sum-of-weights (6) pulls.
    let last_light = tape
        .iter()
        .rposition(|&t| t == "light")
        .expect("light source emitted");
    for window in tape[..=last_light].windows(6) {
        assert!(
            window.contains(&"light"),
            "light source starved for a full weight period: {window:?}"
        );
    }
}

#[test]
fn sequential_schedule_drains_sources_in_registration_order() {
    let (pa, pb) = profiles();
    let config = GenPipConfig::for_dataset(&pa)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Threads(2)));
    let order = std::cell::RefCell::new(Vec::<&'static str>::new());
    Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .schedule(Schedule::Sequential)
        .source("first", StreamingSimulator::new(&pa))
        .source("second", StreamingSimulator::new(&pb))
        .sink("first", |event| {
            if let StreamEvent::Read(_) = event {
                order.borrow_mut().push("first");
            }
        })
        .sink("second", |event| {
            if let StreamEvent::Read(_) = event {
                order.borrow_mut().push("second");
            }
        })
        .run()
        .expect("valid session");
    let order = order.into_inner();
    assert_eq!(order.len(), pa.n_reads + pb.n_reads);
    let first_second = order
        .iter()
        .position(|&t| t == "second")
        .expect("second source emitted");
    assert_eq!(
        first_second, pa.n_reads,
        "sequential schedule interleaved sources"
    );
}

/// The same dataset registered twice under different ids: both copies must
/// produce identical results — interleaving two instances of one workload
/// perturbs nothing (the CI bench-smoke two-source run relies on this).
#[test]
fn duplicate_workloads_under_different_ids_agree() {
    let profile = DatasetProfile::ecoli().scaled(0.04);
    let dataset: SimulatedDataset = profile.generate();
    let config = GenPipConfig::for_dataset(&profile)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Auto));
    let mut reads_x = Vec::new();
    let mut reads_y = Vec::new();
    Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .schedule(Schedule::FairShare)
        .source("x", dataset.stream())
        .source("y", dataset.stream())
        .sink("x", |event| {
            if let StreamEvent::Read(run) = event {
                reads_x.push(run);
            }
        })
        .sink("y", |event| {
            if let StreamEvent::Read(run) = event {
                reads_y.push(run);
            }
        })
        .run()
        .expect("valid session");
    assert_eq!(reads_x, reads_y);
    assert_eq!(reads_x.len(), dataset.reads.len());
}
