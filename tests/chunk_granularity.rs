//! Cross-crate properties of the chunk-granular engine: read-granular vs
//! chunk-granular bit-identity, the cancellation guarantee (no chunk work
//! past an ER verdict, witnessed by `ChunkWork` counters), per-source
//! config overrides, head-of-line latency on mixed workloads, and the
//! FASTQ sink.
//!
//! The parallelism sweep includes `GENPIP_PARALLELISM` (when set), which CI
//! uses to force both threading paths through this suite.

// Identity oracle: the deprecated `run_*` wrappers are the frozen reference
// the Session engine is compared against.
#![allow(deprecated)]

use genpip::core::early_reject::qsr_sample_indices;
use genpip::core::engine::{Flow, Granularity, Session};
use genpip::core::pipeline::{run_genpip, ErMode, ReadOutcome, ReadRun};
use genpip::core::scheduler::Schedule;
use genpip::core::stream::{FastqSink, StreamEvent, StreamOptions};
use genpip::core::{GenPipConfig, Parallelism};
use genpip::datasets::{DatasetProfile, SimulatedDataset, StreamingSimulator};

fn dataset() -> SimulatedDataset {
    DatasetProfile::ecoli().scaled(0.04).generate()
}

fn parallelism_sweep() -> Vec<Parallelism> {
    let mut sweep = vec![Parallelism::Serial, Parallelism::Threads(4)];
    if let Some(from_env) = Parallelism::from_env() {
        if !sweep.contains(&from_env) {
            sweep.push(from_env);
        }
    }
    sweep
}

fn collect_with_granularity(
    dataset: &SimulatedDataset,
    config: &GenPipConfig,
    er: ErMode,
    granularity: Granularity,
) -> Vec<ReadRun> {
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .granularity(granularity)
        .source("s", dataset.stream())
        .sink("s", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("valid session");
    reads
}

#[test]
fn chunk_granularity_is_bit_identical_to_read_granularity() {
    let d = dataset();
    let base = GenPipConfig::for_dataset(&d.profile);
    for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
        for parallelism in parallelism_sweep() {
            let config = base.clone().with_parallelism(parallelism);
            let by_read = collect_with_granularity(&d, &config, er, Granularity::Read);
            let by_chunk = collect_with_granularity(&d, &config, er, Granularity::Chunk);
            assert_eq!(by_read, by_chunk, "{er:?} / {parallelism:?}");
            // And both match the batch driver (itself chunk-granular now).
            let batch = run_genpip(&d, &config, er);
            assert_eq!(by_chunk, batch.reads, "{er:?} / {parallelism:?} vs batch");
        }
    }
}

/// The cancellation guarantee: for every ER-rejected read, no chunk beyond
/// the decision point is ever basecalled or seeded. The witness is the
/// read's `ChunkWork` entries — every executed chunk task records exactly
/// one (basecall) or two (basecall + seed) entries, so post-verdict work
/// would be visible here.
#[test]
fn cancellation_schedules_no_post_verdict_chunk_work() {
    let d = dataset();
    let base = GenPipConfig::for_dataset(&d.profile);
    for parallelism in parallelism_sweep() {
        let config = base.clone().with_parallelism(parallelism);
        let runs = collect_with_granularity(&d, &config, ErMode::Full, Granularity::Chunk);
        let mut qsr_seen = 0usize;
        let mut cmr_seen = 0usize;
        for run in &runs {
            let sample_idx = qsr_sample_indices(run.total_chunks, config.n_qs);
            match &run.outcome {
                ReadOutcome::RejectedQsr { .. } => {
                    qsr_seen += 1;
                    // Exactly the QSR sample chunks, basecall-only: nothing
                    // was seeded, and nothing past the sampled set ran.
                    let basecalled: Vec<usize> = run.chunks.iter().map(|c| c.index).collect();
                    assert_eq!(basecalled, sample_idx, "read {}: {parallelism:?}", run.id);
                    for c in &run.chunks {
                        assert!(c.samples > 0, "read {}: basecall entry", run.id);
                        assert_eq!(c.seed_bases, 0, "read {}: QSR must not seed", run.id);
                        assert_eq!(c.minimizers, 0, "read {}: QSR must not sketch", run.id);
                    }
                }
                ReadOutcome::RejectedCmr { .. } => {
                    cmr_seen += 1;
                    // Seeding ran for exactly chunks 0..N_cm (in order);
                    // basecalling ran for exactly those chunks plus the QSR
                    // samples, each at most once.
                    let seeded: Vec<usize> = run
                        .chunks
                        .iter()
                        .filter(|c| c.seed_bases > 0 || c.samples == 0)
                        .map(|c| c.index)
                        .collect();
                    let expected_seeded: Vec<usize> = (0..config.n_cm).collect();
                    assert_eq!(seeded, expected_seeded, "read {}: {parallelism:?}", run.id);
                    let mut basecalled: Vec<usize> = run
                        .chunks
                        .iter()
                        .filter(|c| c.samples > 0)
                        .map(|c| c.index)
                        .collect();
                    let mut expected: Vec<usize> = sample_idx
                        .iter()
                        .copied()
                        .chain(0..config.n_cm)
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    basecalled.sort_unstable();
                    expected.sort_unstable();
                    assert_eq!(basecalled, expected, "read {}: {parallelism:?}", run.id);
                    // The decision point itself: nothing at or past N_cm was
                    // seeded, and nothing past it was basecalled except the
                    // pre-verdict QSR samples.
                    for c in &run.chunks {
                        if c.index >= config.n_cm {
                            assert!(
                                c.samples > 0 && sample_idx.contains(&c.index),
                                "read {}: post-verdict work on chunk {}",
                                run.id,
                                c.index
                            );
                        }
                    }
                }
                _ => {}
            }
        }
        assert!(qsr_seen > 0, "{parallelism:?}: no QSR rejections exercised");
        assert!(cmr_seen > 0, "{parallelism:?}: no CMR rejections exercised");
    }
}

/// The tentpole's latency claim: on a mixed short/long workload, chunk
/// granularity stops long reads from head-of-line-blocking short ones. The
/// short source's p99 residency (in chunk-work units — deterministic
/// currency, not wall time) must drop versus read-granular scheduling,
/// while per-read output stays bit-identical.
#[test]
fn short_reads_stop_head_of_line_blocking_under_chunk_granularity() {
    // ~120-chunk long reads vs ~2-chunk short reads, interleaved fair-share
    // over 2 workers with a roomy queue: read-granular scheduling admits
    // shorts into the FIFO task queue *behind whole long reads*, so once
    // both workers hold a long read every queued short is resident for a
    // long read's worth of chunk work. Chunk-granular scheduling dispatches
    // one chunk at a time, so a short chain retires after a few interleaved
    // rounds regardless of how long its neighbours are.
    let long = DatasetProfile::uniform("long", 4, 36_000.0);
    let short = DatasetProfile::uniform("short", 40, 600.0);
    let config = GenPipConfig::for_dataset(&long).with_parallelism(Parallelism::Threads(2));
    let opts = StreamOptions {
        queue_capacity: 8,
        ..StreamOptions::default()
    };
    let mut short_p99 = Vec::new();
    let mut outputs: Vec<(Vec<ReadRun>, Vec<ReadRun>)> = Vec::new();
    for granularity in [Granularity::Read, Granularity::Chunk] {
        let mut long_reads = Vec::new();
        let mut short_reads = Vec::new();
        let report = Session::new(config.clone())
            .flow(Flow::GenPip(ErMode::None))
            .schedule(Schedule::FairShare)
            .granularity(granularity)
            .options(opts)
            .source("short", StreamingSimulator::new(&short))
            .source("long", StreamingSimulator::new(&long))
            .sink("short", |event| {
                if let StreamEvent::Read(run) = event {
                    short_reads.push(run);
                }
            })
            .sink("long", |event| {
                if let StreamEvent::Read(run) = event {
                    long_reads.push(run);
                }
            })
            .run()
            .expect("valid session");
        let s = report.source("short").expect("short source reported");
        assert_eq!(s.summary.latency.reads, short.n_reads);
        assert!(s.summary.latency.p50 <= s.summary.latency.p99);
        assert!(s.summary.latency.p99 <= s.summary.latency.max);
        short_p99.push(s.summary.latency.p99);
        outputs.push((short_reads, long_reads));
    }
    // Identical results either way — granularity is pure scheduling.
    assert_eq!(outputs[0], outputs[1]);
    let (read_p99, chunk_p99) = (short_p99[0], short_p99[1]);
    // A long read is ~240 chunk-work units; a short chain retires within a
    // few dozen units once chunks interleave. Read-granular scheduling
    // queues many shorts behind whole long reads, so its short-source p99
    // carries a long read's bulk.
    assert!(
        chunk_p99 < read_p99,
        "chunk-granular short-read p99 ({chunk_p99}) should beat read-granular ({read_p99})"
    );
}

#[test]
fn per_source_config_overrides_match_their_solo_runs() {
    // Two sources with different operating points (N_qs, N_cm, chunk size)
    // in one session: each must be bit-identical to a solo run under its
    // own config — the ecoli+human scenario from the ROADMAP, kept cheap
    // with two differently-tuned ecoli-like sources.
    let pa = DatasetProfile::ecoli().scaled(0.05);
    let pb = DatasetProfile::ecoli().scaled(0.03);
    let (da, db) = (pa.generate(), pb.generate());
    let parallelism = Parallelism::from_env_or(Parallelism::Threads(3));
    let config_a = GenPipConfig::for_dataset(&pa).with_parallelism(parallelism);
    let mut config_b = GenPipConfig::for_dataset(&pb)
        .with_parallelism(parallelism)
        .with_chunk_bases(400);
    config_b.n_qs = 5;
    config_b.n_cm = 3;
    let solo_a = run_genpip(&da, &config_a, ErMode::Full);
    let solo_b = run_genpip(&db, &config_b, ErMode::Full);
    assert!(
        !solo_a.reads.is_empty() && !solo_b.reads.is_empty(),
        "sanity: runs are non-trivial"
    );

    let mut reads_a = Vec::new();
    let mut reads_b = Vec::new();
    let report = Session::new(config_a.clone())
        .flow(Flow::GenPip(ErMode::Full))
        .schedule(Schedule::FairShare)
        .source("a", StreamingSimulator::new(&pa))
        .source_with_config("b", StreamingSimulator::new(&pb), config_b.clone())
        .sink("a", |event| {
            if let StreamEvent::Read(run) = event {
                reads_a.push(run);
            }
        })
        .sink("b", |event| {
            if let StreamEvent::Read(run) = event {
                reads_b.push(run);
            }
        })
        .run()
        .expect("valid session");
    assert_eq!(reads_a, solo_a.reads, "session config source diverged");
    assert_eq!(reads_b, solo_b.reads, "override config source diverged");
    assert_eq!(
        report.source("b").expect("b").summary.totals,
        solo_b.totals()
    );
}

#[test]
fn fastq_sink_writes_every_fully_basecalled_read() {
    let d = dataset();
    let config = GenPipConfig::for_dataset(&d.profile)
        .with_parallelism(Parallelism::from_env_or(Parallelism::Threads(2)))
        .with_keep_bases(true);
    let mut sink = FastqSink::with_prefix(Vec::new(), "ecoli/");
    let mut runs = Vec::new();
    Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .source("only", d.stream())
        .sink("only", |event| {
            if let StreamEvent::Read(run) = &event {
                runs.push(run.clone());
            }
            sink.handle(&event);
        })
        .run()
        .expect("valid session");

    let survivors = runs.iter().filter(|r| !r.outcome.is_early_rejected());
    let expected: Vec<&ReadRun> = survivors.collect();
    for run in &expected {
        let called = run.called.as_ref().expect("survivor keeps its bases");
        assert_eq!(called.seq.len(), run.called_len);
        assert_eq!(called.quals.len(), called.seq.len());
    }
    let rejected = runs.len() - expected.len();
    assert!(rejected > 0, "dataset should exercise skipping");
    assert_eq!(sink.written(), expected.len());
    assert_eq!(sink.skipped(), rejected);
    let (written, bytes) = sink.finish().expect("no I/O errors on a Vec");
    assert_eq!(written, expected.len());

    // The file round-trips: every record parses back with its sequence.
    let parsed = genpip::genomics::fastx::read_fastq(bytes.as_slice()).expect("valid FASTQ");
    assert_eq!(parsed.len(), expected.len());
    for (record, run) in parsed.into_iter().zip(&expected) {
        let called = run.called.as_ref().expect("survivor");
        assert_eq!(&record.seq, &called.seq, "read {}", run.id);
    }

    // Without keep_bases, no read carries its sequence (and the sink would
    // skip everything).
    let plain = run_genpip(&d, &GenPipConfig::for_dataset(&d.profile), ErMode::Full);
    assert!(plain.reads.iter().all(|r| r.called.is_none()));
}

#[test]
fn serial_latency_is_each_reads_own_chunk_work() {
    // With one chain resident at a time, a read's residency is exactly its
    // own chunk-work entry count — pinning the unit of LatencyStats.
    let d = dataset();
    let config = GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Serial);
    let mut runs = Vec::new();
    let report = Session::new(config)
        .flow(Flow::GenPip(ErMode::Full))
        .source("s", d.stream())
        .sink("s", |event| {
            if let StreamEvent::Read(run) = event {
                runs.push(run);
            }
        })
        .run()
        .expect("valid session");
    let mut units: Vec<u64> = runs.iter().map(|r| r.chunks.len() as u64).collect();
    units.sort_unstable();
    assert_eq!(report.latency.reads, runs.len());
    assert_eq!(report.latency.max, *units.last().expect("reads exist"));
    assert_eq!(report.latency.p50, units[(runs.len().div_ceil(2)) - 1]);
}
