//! The `Session` engine: one execution core serving any number of read
//! sources, scheduling **chunks**, not reads.
//!
//! Every driver in this crate — batch ([`crate::pipeline::run_genpip`] /
//! [`crate::pipeline::run_conventional`]), streaming
//! ([`crate::stream::run_genpip_streaming`] /
//! [`crate::stream::run_conventional_streaming`]), the CLI, and the bench
//! harness — is a thin wrapper over the [`Session`] built here. A session
//! is *configured*, not called: you register named sources, attach
//! per-source sinks, pick a [`Flow`] and a [`Schedule`], and run. GenPIP's
//! end-to-end gain comes from tight integration at **chunk granularity**
//! (paper §3): the session brings that granularity to the execution core
//! itself, interleaving many concurrent reads' chunks over one worker pool.
//!
//! ```no_run
//! use genpip_core::engine::{Flow, Session};
//! use genpip_core::scheduler::Schedule;
//! use genpip_core::stream::StreamEvent;
//! use genpip_core::{ErMode, GenPipConfig};
//! use genpip_datasets::{DatasetProfile, StreamingSimulator};
//!
//! let ecoli = DatasetProfile::ecoli().scaled(0.05);
//! let human = DatasetProfile::human().scaled(0.05);
//! let report = Session::new(GenPipConfig::for_dataset(&ecoli))
//!     .flow(Flow::GenPip(ErMode::Full))
//!     .schedule(Schedule::Priority(vec![3, 1]))
//!     .source("ecoli", StreamingSimulator::new(&ecoli))
//!     // The human flowcell runs its own operating point (N_qs, N_cm).
//!     .source_with_config(
//!         "human",
//!         StreamingSimulator::new(&human),
//!         GenPipConfig::for_dataset(&human),
//!     )
//!     .sink("ecoli", |event| {
//!         if let StreamEvent::Read(run) = event {
//!             println!("ecoli read {} done", run.id);
//!         }
//!     })
//!     .run()
//!     .expect("session inputs are valid");
//! println!("{} reads total, p99 residency {} chunk-units",
//!          report.outcomes.reads_emitted, report.latency.p99);
//! ```
//!
//! # Execution model
//!
//! ```text
//!              read = chain of chunk tasks (decoder carry forces order)
//!  source "a" ─┐  admit ▼ (gate ≤ Q+W chains)
//!  source "b" ─┼─▶ [chain chain chain …] ─┐
//!  source "c" ─┘        ▲ park            │ Schedule picks, per chunk task
//!                       │                 ▼
//!                       └──────────── W workers (spawned lazily)
//!                   ER verdict ╳ cancels the chain's remaining chunks
//!                              │ and frees its permit immediately
//!                              ▼
//!  sink "a"/"b"/"c" ◀── emit in global admission order (per-source = read order)
//! ```
//!
//! A dispatcher thread owns the sources and a pool of **resident chains**
//! — reads whose next chunk may run. For every chunk task it consults the
//! [`Schedule`] to pick a source, then either advances that source's oldest
//! parked chain or admits a new read under a flow-gate permit. Within a
//! read, chunks are strictly sequential (the decoder's
//! [`genpip_basecall::CarryState`] forces it); across reads, chunks
//! interleave freely — chunk *i*'s mapping overlaps chunk *i+1*'s
//! basecalling at the system level, and a long read no longer monopolizes a
//! worker. An early-rejection verdict ends a chain **before its next chunk
//! is scheduled**, and the cancelled read's permit is released at the
//! verdict rather than at emission, so a doomed read stops consuming
//! resources the moment QSR/CMR fires. Worker threads are spawned lazily,
//! one per unit of concurrent chunk work actually reached, up to the
//! configured count.
//!
//! # Guarantees
//!
//! * **Per-source bit-identity** — a source's per-read output in a
//!   multi-source session is bit-identical to running that source alone,
//!   and chunk-granular execution is bit-identical to read-granular
//!   execution ([`Granularity::Read`]), for every [`Schedule`],
//!   [`crate::Parallelism`], [`ErMode`], and shard count
//!   (`tests/session.rs` and `tests/chunk_granularity.rs` assert this).
//!   Scheduling changes latency, never results.
//! * **Bounded residency** — at most `queue_capacity + workers` read
//!   chains are resident (live decode/chain state), no matter how many
//!   sources are registered ([`SessionReport::max_in_flight`] proves the
//!   bound held). Early-rejected reads leave the bound at their verdict;
//!   only their O(`N_qs` + `N_cm`)-sized results wait for in-order
//!   emission.
//! * **Typed validation** — invalid inputs (zero queue, zero workers, no
//!   sources, duplicate ids, bad priority weights, per-source configs
//!   incompatible with their source's reference or chemistry) fail up
//!   front with a [`SessionError`] instead of deadlocking or panicking
//!   mid-run.
//! * **Fault containment** — under [`crate::FaultPolicy::Quarantine`] or
//!   [`crate::FaultPolicy::Retry`], a chunk task that panics (or trips the
//!   basecaller's signal-integrity check) takes out only its own read: the
//!   chain's remaining chunks are cancelled through the verdict path, its
//!   permit is released, and the read is emitted as
//!   [`StreamEvent::Failed`] in its normal in-order slot. Retries rebuild
//!   the chain from the untouched signal, so a read that succeeds on retry
//!   is bit-identical to one that never faulted. The default
//!   [`crate::FaultPolicy::Fail`] keeps the historical behaviour: any
//!   panic tears the session down promptly. [`Session::run_with_control`]
//!   additionally hands out a [`SessionControl`] whose
//!   [`SessionControl::drain`] stops pulling new reads, finishes every
//!   resident chain, and returns normally — the graceful-shutdown
//!   primitive for long-lived sessions.

use crate::config::{FaultPolicy, GenPipConfig, Parallelism};
use crate::pipeline::{ErMode, ReadChain, ReadRun, RunContext, WorkerScratch, WorkloadTotals};
use crate::scheduler::{Schedule, SchedulerState};
use crate::stream::{
    FaultKind, LatencyStats, ProgressSnapshot, ReadFault, StreamEvent, StreamOptions, StreamSummary,
};
use genpip_datasets::{ReadSource, SourceId};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, Once, RwLock};

/// Which pipeline a [`Session`] runs over its reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// GenPIP's chunk-based pipeline (paper Figure 5b / Figure 6) with the
    /// given early-rejection mode.
    GenPip(ErMode),
    /// The conventional whole-read pipeline (paper Figure 5a).
    Conventional,
}

impl Flow {
    fn er(self) -> Option<ErMode> {
        match self {
            Flow::GenPip(er) => Some(er),
            Flow::Conventional => None,
        }
    }
}

/// The schedulable unit of a [`Session`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Granularity {
    /// Schedule whole reads: every read is one task, permits are held from
    /// pull to emission. The pre-chunk-granular engine's behaviour, kept for
    /// comparison (the kernels bench measures both) and as a reference
    /// execution — output is bit-identical to [`Granularity::Chunk`].
    Read,
    /// Schedule chunk tasks: each read is a sequential chain, the
    /// [`Schedule`] applies per chunk pulled, and ER verdicts cancel a
    /// chain's remaining chunks before they are scheduled. The default.
    #[default]
    Chunk,
}

/// A cloneable remote control for a [`Session`] — its **control plane**
/// (see [`Session::run_with_control`]).
///
/// Four verbs:
///
/// * [`SessionControl::attach`] (plus [`SessionControl::attach_with_config`]
///   and the full-spec [`SessionControl::attach_with`]) adds a named source
///   to the *running* session. The source is validated exactly like
///   [`Session::source_with_config`] validates at startup — a typed
///   [`SessionError`] comes back through the returned [`PendingAttach`] —
///   and admission is bounded by [`StreamOptions::max_sources`]. Once
///   accepted, the source joins the schedule and its first read can be
///   admitted immediately.
/// * [`SessionControl::detach`] removes a named source: the session stops
///   pulling from it, its resident chains finish normally (bit-identity is
///   preserved — detach changes *when* pulling stops, never a read's
///   result), and its finalized per-source [`StreamSummary`] is delivered
///   through the returned [`PendingDetach`]. Source ids are never reused
///   within a session, even after detach.
/// * [`SessionControl::stats`] snapshots per-source progress counters
///   without blocking the session.
/// * [`SessionControl::drain`] is the whole-session graceful shutdown:
///   stop pulling from every source, finish what is resident, return the
///   [`SessionReport`] normally. Calling `drain` before the run starts
///   makes the session return immediately with empty counters; calling it
///   more than once is harmless.
///
/// The handle is `Send + Sync + Clone`, so it can be driven from another
/// thread (a service's admission path, a signal handler) or from inside a
/// sink (e.g. [`crate::stream::FastqSink`] hitting a disk-full error, or a
/// sink attaching the next flowcell after the current one's Nth read).
/// Commands are applied by the running session at deterministic points in
/// its dispatch loop; commands still queued when the session finishes are
/// refused with [`SessionError::SessionClosed`].
///
/// Do **not** block on [`PendingAttach::wait`] / [`PendingDetach::wait`]
/// from inside a sink — the session applies commands on its own threads and
/// a sink that waits for the response it is itself blocking would deadlock
/// the run. Fire the command in the sink, keep the pending handle, and
/// resolve it after [`Session::run_with_control`] returns (or from another
/// thread).
#[derive(Clone, Default)]
pub struct SessionControl {
    state: Arc<ControlState>,
}

/// The shared state behind every clone of a [`SessionControl`].
#[derive(Default)]
struct ControlState {
    draining: AtomicBool,
    inner: Mutex<ControlInner>,
}

#[derive(Default)]
struct ControlInner {
    /// Commands enqueued by control-plane calls, drained by the running
    /// session at its poll points.
    commands: VecDeque<Command>,
    /// Live per-source progress, updated at every in-order emission.
    stats: SessionStats,
    /// `true` outside a run: enqueue-time refusal with
    /// [`SessionError::SessionClosed`] rather than a command that would
    /// never be polled. A fresh control is *open* so sources can be
    /// attached before the run starts — they are applied at the session's
    /// first poll.
    closed: bool,
}

/// A control-plane command in flight to the running session.
enum Command {
    Attach(Box<AttachRequest>),
    Detach {
        id: SourceId,
        responder: mpsc::Sender<Result<StreamSummary, SessionError>>,
    },
}

/// A fully-specified attach on its way to the session.
struct AttachRequest {
    id: SourceId,
    source: Box<dyn ReadSource + Send>,
    config: Option<GenPipConfig>,
    sink: Option<AttachedSink>,
    weight: u32,
    target: Option<u64>,
    responder: mpsc::Sender<Result<(), SessionError>>,
}

/// Everything [`SessionControl::attach_with`] can say about a new source
/// beyond its id: a per-source config override (validated like
/// [`Session::source_with_config`]), a sink, a [`Schedule::Priority`]
/// weight, and a [`Schedule::Deadline`] residency target.
#[derive(Default)]
pub struct AttachSpec {
    config: Option<GenPipConfig>,
    sink: Option<AttachedSink>,
    weight: Option<u32>,
    target: Option<u64>,
}

impl AttachSpec {
    /// An empty spec: session-wide config, no sink, priority weight 1, and
    /// (under [`Schedule::Deadline`]) the laxest target already registered.
    pub fn new() -> AttachSpec {
        AttachSpec::default()
    }

    /// Per-source config override, validated against the source's reference
    /// and chemistry exactly like [`Session::source_with_config`].
    pub fn config(mut self, config: GenPipConfig) -> AttachSpec {
        self.config = Some(config);
        self
    }

    /// Per-source sink. It runs on the session's emitting thread, so unlike
    /// builder sinks it must be `Send`; it is installed before the source's
    /// first read is emitted.
    pub fn sink(mut self, sink: impl FnMut(StreamEvent) + Send + 'static) -> AttachSpec {
        self.sink = Some(Box::new(sink));
        self
    }

    /// [`Schedule::Priority`] weight (default 1). Rejected with
    /// [`SessionError::ZeroPriorityWeight`] if 0 on a priority session;
    /// ignored under other schedules.
    pub fn weight(mut self, weight: u32) -> AttachSpec {
        self.weight = Some(weight);
        self
    }

    /// [`Schedule::Deadline`] residency target in chunk-work units.
    /// Rejected with [`SessionError::ZeroDeadlineTarget`] if 0 on a
    /// deadline session; ignored under other schedules.
    pub fn deadline_target(mut self, target: u64) -> AttachSpec {
        self.target = Some(target);
        self
    }
}

/// The pending response to a [`SessionControl::attach`]. The session
/// validates the source at its next poll point and answers here.
#[derive(Debug)]
pub struct PendingAttach {
    rx: mpsc::Receiver<Result<(), SessionError>>,
}

impl PendingAttach {
    /// Blocks until the session accepts or refuses the attach. If the
    /// session finishes (or its control is dropped) without answering, this
    /// resolves to [`SessionError::SessionClosed`]. Never call from inside
    /// a sink (see [`SessionControl`]); if no session ever runs with this
    /// control, `wait` blocks indefinitely — prefer
    /// [`PendingAttach::try_result`] when that is possible.
    pub fn wait(self) -> Result<(), SessionError> {
        self.rx.recv().unwrap_or(Err(SessionError::SessionClosed))
    }

    /// The response if it has arrived, without blocking.
    pub fn try_result(&self) -> Option<Result<(), SessionError>> {
        self.rx.try_recv().ok()
    }
}

/// The pending response to a [`SessionControl::detach`]: the detached
/// source's finalized [`StreamSummary`] once its resident chains have
/// finished and their results were emitted.
#[derive(Debug)]
pub struct PendingDetach {
    rx: mpsc::Receiver<Result<StreamSummary, SessionError>>,
}

impl PendingDetach {
    /// Blocks until the source has fully drained (its summary arrives) or
    /// the detach is refused. Resolves to [`SessionError::SessionClosed`]
    /// if the session finishes without answering. The same caveats as
    /// [`PendingAttach::wait`] apply.
    pub fn wait(self) -> Result<StreamSummary, SessionError> {
        self.rx.recv().unwrap_or(Err(SessionError::SessionClosed))
    }

    /// The response if it has arrived, without blocking.
    pub fn try_result(&self) -> Option<Result<StreamSummary, SessionError>> {
        self.rx.try_recv().ok()
    }
}

/// One source's progress in a [`SessionStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceStats {
    /// The id the source is registered under.
    pub id: SourceId,
    /// Outcome counters as of the source's last in-order emission.
    pub outcomes: ProgressSnapshot,
    /// `true` once the source was detached and its summary delivered.
    pub detached: bool,
}

/// A point-in-time snapshot of a running session, from
/// [`SessionControl::stats`]. O(sources) to take; never blocks the
/// session's dispatch or workers (only the emitter's counter updates).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Per-source progress, in registration/attach order.
    pub sources: Vec<SourceStats>,
    /// Whether [`SessionControl::drain`] has been called.
    pub draining: bool,
    /// `true` while a session is actually running with this control.
    pub live: bool,
}

impl fmt::Debug for SessionControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionControl")
            .field("draining", &self.is_draining())
            .finish_non_exhaustive()
    }
}

impl SessionControl {
    /// A fresh handle: not draining, open for pre-run attaches.
    pub fn new() -> SessionControl {
        SessionControl::default()
    }

    /// Asks the session to stop pulling new reads and finish what is
    /// resident. Idempotent; never blocks.
    pub fn drain(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`SessionControl::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Attaches a new source under `id`, processed with the session-wide
    /// config — the live twin of [`Session::source`]. Returns immediately;
    /// the typed verdict arrives through the [`PendingAttach`]. May be
    /// called before the run starts (applied at the session's first poll).
    pub fn attach(
        &self,
        id: impl Into<SourceId>,
        source: impl ReadSource + Send + 'static,
    ) -> PendingAttach {
        self.attach_with(id, source, AttachSpec::new())
    }

    /// Attaches a new source with its own config override — the live twin
    /// of [`Session::source_with_config`], validated identically
    /// ([`SessionError::IncompatibleSourceConfig`] on mismatch).
    pub fn attach_with_config(
        &self,
        id: impl Into<SourceId>,
        source: impl ReadSource + Send + 'static,
        config: GenPipConfig,
    ) -> PendingAttach {
        self.attach_with(id, source, AttachSpec::new().config(config))
    }

    /// Attaches a new source with a full [`AttachSpec`] (config override,
    /// sink, priority weight, deadline target).
    pub fn attach_with(
        &self,
        id: impl Into<SourceId>,
        source: impl ReadSource + Send + 'static,
        spec: AttachSpec,
    ) -> PendingAttach {
        let (tx, rx) = mpsc::channel();
        let request = AttachRequest {
            id: id.into(),
            source: Box::new(source),
            config: spec.config,
            sink: spec.sink,
            weight: spec.weight.unwrap_or(1),
            target: spec.target,
            responder: tx,
        };
        let mut inner = self.state.inner.lock().expect("control poisoned");
        if inner.closed {
            let _ = request.responder.send(Err(SessionError::SessionClosed));
        } else {
            inner.commands.push_back(Command::Attach(Box::new(request)));
        }
        PendingAttach { rx }
    }

    /// Detaches the source registered under `id`: stop pulling from it, let
    /// its resident chains finish and emit, then deliver its finalized
    /// [`StreamSummary`] through the [`PendingDetach`]. Unknown ids — and
    /// ids already detached or already being detached — are refused with
    /// [`SessionError::UnknownSource`].
    pub fn detach(&self, id: impl Into<SourceId>) -> PendingDetach {
        let (tx, rx) = mpsc::channel();
        let id = id.into();
        let mut inner = self.state.inner.lock().expect("control poisoned");
        if inner.closed {
            let _ = tx.send(Err(SessionError::SessionClosed));
        } else {
            inner
                .commands
                .push_back(Command::Detach { id, responder: tx });
        }
        PendingDetach { rx }
    }

    /// A snapshot of per-source progress. Sources appear in
    /// registration/attach order; counters are as of each source's last
    /// in-order emission.
    pub fn stats(&self) -> SessionStats {
        let inner = self.state.inner.lock().expect("control poisoned");
        let mut stats = inner.stats.clone();
        stats.draining = self.is_draining();
        stats
    }
}

impl ControlState {
    /// Marks the control live for a starting run and seeds its stats with
    /// the builder-registered sources. The draining flag is deliberately
    /// *not* reset: a drain requested before the run starts is honored by
    /// draining immediately.
    fn begin_run(&self, ids: &[SourceId]) {
        let mut inner = self.inner.lock().expect("control poisoned");
        inner.closed = false;
        inner.stats = SessionStats {
            sources: ids
                .iter()
                .map(|id| SourceStats {
                    id: id.clone(),
                    outcomes: ProgressSnapshot::default(),
                    detached: false,
                })
                .collect(),
            draining: false,
            live: true,
        };
    }

    /// Closes the control at the end of a run: marks it not-live and
    /// refuses every command still queued (enqueued after the session's
    /// last poll) with [`SessionError::SessionClosed`].
    fn close(&self) {
        let mut inner = self.inner.lock().expect("control poisoned");
        inner.closed = true;
        inner.stats.live = false;
        for command in inner.commands.drain(..) {
            match command {
                Command::Attach(request) => {
                    let _ = request.responder.send(Err(SessionError::SessionClosed));
                }
                Command::Detach { responder, .. } => {
                    let _ = responder.send(Err(SessionError::SessionClosed));
                }
            }
        }
    }
}

/// Why a per-source [`GenPipConfig`] cannot drive its source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceConfigIssue {
    /// `chunk_bases` is 0 — the signal could never be chunked.
    ZeroChunkBases,
    /// `n_qs` is 0 — QSR must sample at least one chunk. Only raised when
    /// the session's [`Flow`] actually runs QSR ([`Flow::GenPip`] with
    /// [`ErMode::QsrOnly`] or [`ErMode::Full`]); other flows never consult
    /// `n_qs`.
    ZeroQsrSamples,
    /// The source reports a non-positive (or non-finite) mean dwell, so no
    /// chunk geometry exists for it.
    NonPositiveDwell,
    /// The mapper's k-mer length exceeds the source's reference, so the
    /// index would be empty and every read unmappable. Only raised for
    /// explicit [`Session::source_with_config`] overrides — the session
    /// config keeps the historical lenient behaviour (empty index ⇒
    /// unmapped reads) that the never-fail legacy wrappers rely on.
    KmerExceedsReference {
        /// Configured minimizer k-mer length.
        k: usize,
        /// The source's reference length in bases.
        reference_len: usize,
    },
    /// Two references in the effective pan-genome panel (the source's own
    /// reference plus [`GenPipConfig::extra_references`]) share a name.
    /// Per-reference attribution keys results by name, so the panel must
    /// be unique; catching it here turns what would be a worker-thread
    /// panic inside `ReferenceSet::build` into an up-front error.
    DuplicateReferenceName {
        /// The colliding reference name.
        name: String,
    },
}

impl fmt::Display for SourceConfigIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceConfigIssue::ZeroChunkBases => write!(f, "chunk size is 0"),
            SourceConfigIssue::ZeroQsrSamples => write!(f, "N_qs is 0 (QSR samples no chunks)"),
            SourceConfigIssue::NonPositiveDwell => {
                write!(f, "source mean dwell is not positive")
            }
            SourceConfigIssue::KmerExceedsReference { k, reference_len } => write!(
                f,
                "minimizer k-mer length {k} exceeds the {reference_len} bp reference"
            ),
            SourceConfigIssue::DuplicateReferenceName { name } => write!(
                f,
                "duplicate reference name {name:?} in the pan-genome panel"
            ),
        }
    }
}

/// Finds a name collision in the pan-genome panel a source would map
/// against: its own reference plus the config's extra references.
fn duplicate_reference_name(
    config: &GenPipConfig,
    reference: &genpip_genomics::Genome,
) -> Option<String> {
    let mut names: Vec<&str> = Vec::with_capacity(1 + config.extra_references.len());
    names.push(reference.name());
    names.extend(config.extra_references.iter().map(|g| g.name()));
    names.sort_unstable();
    names
        .windows(2)
        .find(|pair| pair[0] == pair[1])
        .map(|pair| pair[0].to_string())
}

/// Why a [`Session`] refused to run. All variants are detected up front,
/// before any read is pulled or any worker is spawned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// `StreamOptions::queue_capacity` was 0 — the work queue could never
    /// stage a read.
    ZeroQueueCapacity,
    /// `StreamOptions::reject_backlog` was 0 — the soft gate on the
    /// verdict-released emission backlog would block the very first
    /// admission.
    ZeroRejectBacklog,
    /// `Parallelism::Threads(0)` — an explicit request for no workers.
    ZeroWorkers,
    /// No source was registered.
    NoSources,
    /// Two sources were registered under the same id.
    DuplicateSource(SourceId),
    /// A sink was attached to an id with no registered source.
    SinkWithoutSource(SourceId),
    /// `Schedule::Priority` weights don't line up with the sources.
    PriorityWeightCount {
        /// Registered sources.
        sources: usize,
        /// Provided weights.
        weights: usize,
    },
    /// A priority weight of 0 would starve its source forever.
    ZeroPriorityWeight(SourceId),
    /// A source's (session or per-source) config is incompatible with that
    /// source's reference genome or signal chemistry.
    IncompatibleSourceConfig {
        /// The offending source.
        id: SourceId,
        /// What is wrong.
        issue: SourceConfigIssue,
    },
    /// `Schedule::Deadline` targets don't line up with the sources.
    DeadlineTargetCount {
        /// Registered sources.
        sources: usize,
        /// Provided targets.
        targets: usize,
    },
    /// A deadline target of 0 chunk-work units is unsatisfiable (and would
    /// divide the urgency feedback by zero-intent).
    ZeroDeadlineTarget(SourceId),
    /// A control-plane command named a source this session does not know —
    /// never registered, already detached, or already being detached.
    UnknownSource(SourceId),
    /// Admitting the source would exceed [`StreamOptions::max_sources`].
    TooManySources {
        /// The configured admission bound.
        limit: usize,
    },
    /// The control-plane command arrived when no session was running on
    /// this control (before any run, or after the run returned).
    SessionClosed,
    /// A checkpoint cadence of 0 reads would never fire.
    ZeroCheckpointInterval,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::ZeroQueueCapacity => {
                write!(f, "queue capacity must be at least 1 (got 0)")
            }
            SessionError::ZeroRejectBacklog => {
                write!(f, "rejection backlog bound must be at least 1 (got 0)")
            }
            SessionError::ZeroWorkers => {
                write!(f, "worker count must be at least 1 (got Threads(0))")
            }
            SessionError::NoSources => write!(f, "session has no sources"),
            SessionError::DuplicateSource(id) => {
                write!(f, "source id {:?} registered twice", id.as_str())
            }
            SessionError::SinkWithoutSource(id) => {
                write!(f, "sink attached to unknown source id {:?}", id.as_str())
            }
            SessionError::PriorityWeightCount { sources, weights } => write!(
                f,
                "priority schedule has {weights} weight(s) for {sources} source(s)"
            ),
            SessionError::ZeroPriorityWeight(id) => {
                write!(
                    f,
                    "priority weight for source {:?} is 0 (would starve it)",
                    id.as_str()
                )
            }
            SessionError::IncompatibleSourceConfig { id, issue } => {
                write!(f, "config for source {:?}: {issue}", id.as_str())
            }
            SessionError::DeadlineTargetCount { sources, targets } => write!(
                f,
                "deadline schedule has {targets} target(s) for {sources} source(s)"
            ),
            SessionError::ZeroDeadlineTarget(id) => {
                write!(
                    f,
                    "deadline target for source {:?} is 0 (unsatisfiable)",
                    id.as_str()
                )
            }
            SessionError::UnknownSource(id) => {
                write!(
                    f,
                    "source id {:?} is not attached to this session",
                    id.as_str()
                )
            }
            SessionError::TooManySources { limit } => {
                write!(f, "session is at its max_sources bound ({limit})")
            }
            SessionError::SessionClosed => {
                write!(f, "no session is running on this control")
            }
            SessionError::ZeroCheckpointInterval => {
                write!(f, "checkpoint cadence must be at least 1 read (got 0)")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// What one source contributed to a [`SessionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourceReport {
    /// The id the source was registered under.
    pub id: SourceId,
    /// This source's own counters. `workers` and `in_flight_limit` are the
    /// session-wide values (sources share the pool and the gate);
    /// `max_in_flight` and `latency` are this source's own.
    pub summary: StreamSummary,
}

/// What a finished [`Session`] leaves behind: per-source summaries plus the
/// aggregate, O(sources) in size regardless of how many reads flowed.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Per-source summaries, in registration order.
    pub sources: Vec<SourceReport>,
    /// Aggregate outcome counters over all sources.
    pub outcomes: ProgressSnapshot,
    /// Aggregate workload counters over all sources.
    pub totals: WorkloadTotals,
    /// Worker threads configured (lazily spawned, so short runs may have
    /// used fewer).
    pub workers: usize,
    /// The enforced bound on resident read chains across **all** sources
    /// (`queue_capacity + workers`; 1 for the serial in-line path).
    pub in_flight_limit: usize,
    /// High-water mark of resident read chains, summed over sources.
    /// Always ≤ `in_flight_limit`. See [`StreamSummary::max_in_flight`] for
    /// the precise residency definition.
    pub max_in_flight: usize,
    /// Fault-retry attempts consumed across all sources (see
    /// [`StreamSummary::retried`]).
    pub retried: usize,
    /// High-water mark of the verdict-released emission backlog: results of
    /// early-rejected and quarantined reads (permit already returned)
    /// waiting for their in-order emission slot. The soft gate stops
    /// admitting new reads once the backlog reaches
    /// [`StreamOptions::reject_backlog`], so this never exceeds
    /// `reject_backlog + in_flight_limit` (already-resident chains may each
    /// add one entry after admission stops).
    pub max_reject_backlog: usize,
    /// Aggregate read-residency percentiles over all sources
    /// ([`LatencyStats`], in chunk-work units).
    pub latency: LatencyStats,
}

impl SessionReport {
    /// The report of the source registered under `id`, if any.
    pub fn source(&self, id: impl Into<SourceId>) -> Option<&SourceReport> {
        let id = id.into();
        self.sources.iter().find(|s| s.id == id)
    }
}

/// One source's share of a [`SessionCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceCheckpoint {
    /// The id the source was registered (or attached) under.
    pub id: SourceId,
    /// The source's outcome counters at the cut. Emission is in-order per
    /// source, so `outcomes.reads_emitted` is exactly the length of the
    /// source's fully-delivered prefix — the read index to resume a
    /// seekable source at.
    pub outcomes: ProgressSnapshot,
    /// `true` once the source has retired (ran dry, or was detached).
    pub done: bool,
}

/// A consistent cut of a running session, handed to the sink registered
/// with [`Session::checkpoint`].
///
/// Checkpoints are taken on the emitting thread between in-order result
/// deliveries, so every counter refers to results that have already passed
/// through the sinks — nothing in a checkpoint is ahead of what a sink
/// (e.g. a FASTQ writer) has seen. Persisting one (see
/// `genpip_io::CheckpointFile`) is enough to restart a killed run with a
/// byte-identical output suffix, provided the sources can be reopened at
/// their recorded offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCheckpoint {
    /// Per-source state, in registration order (attached sources included).
    pub sources: Vec<SourceCheckpoint>,
    /// Aggregate outcome counters over all sources.
    pub outcomes: ProgressSnapshot,
    /// Fault-retry attempts consumed so far across all sources.
    pub retried: usize,
    /// `false` for periodic mid-run checkpoints; `true` for the final
    /// checkpoint emitted after the session finishes (including a
    /// [`SessionControl::drain`]).
    pub complete: bool,
}

/// A boxed per-source event sink.
type BoxedSink<'a> = Box<dyn FnMut(StreamEvent) + 'a>;

/// A boxed checkpoint sink with its cadence (in emitted reads).
type BoxedCheckpointSink<'a> = Box<dyn FnMut(&SessionCheckpoint) + 'a>;

struct SourceSlot<'a> {
    id: SourceId,
    source: Box<dyn ReadSource + Send + 'a>,
    config: Option<GenPipConfig>,
    sink: Option<BoxedSink<'a>>,
}

/// A configured execution of the pipeline over one or more named read
/// sources — the one public execution API behind every `run_*` wrapper.
///
/// Build with [`Session::new`], register sources with [`Session::source`]
/// (or [`Session::source_with_config`] for per-source operating points, and
/// optionally per-source sinks with [`Session::sink`]), pick a [`Flow`] and
/// [`Schedule`], then [`Session::run`]. See the
/// [module docs](crate::engine) for the execution model and guarantees.
pub struct Session<'a> {
    config: GenPipConfig,
    flow: Flow,
    schedule: Schedule,
    options: StreamOptions,
    granularity: Granularity,
    slots: Vec<SourceSlot<'a>>,
    /// Sinks attached before their source was registered — matched up at
    /// [`Session::run`], so builder call order doesn't matter.
    pending_sinks: Vec<(SourceId, BoxedSink<'a>)>,
    /// Checkpoint cadence and sink, if checkpointing was requested.
    checkpoint: Option<(usize, BoxedCheckpointSink<'a>)>,
}

impl<'a> Session<'a> {
    /// Starts a session with the full GenPIP flow ([`Flow::GenPip`] with
    /// [`ErMode::Full`]), a [`Schedule::FairShare`] scheduler, default
    /// [`StreamOptions`], chunk granularity, and no sources.
    pub fn new(config: GenPipConfig) -> Session<'a> {
        Session {
            config,
            flow: Flow::GenPip(ErMode::Full),
            schedule: Schedule::FairShare,
            options: StreamOptions::default(),
            granularity: Granularity::Chunk,
            slots: Vec::new(),
            pending_sinks: Vec::new(),
            checkpoint: None,
        }
    }

    /// Selects which pipeline the session runs.
    pub fn flow(mut self, flow: Flow) -> Session<'a> {
        self.flow = flow;
        self
    }

    /// Selects how the registered sources are interleaved.
    pub fn schedule(mut self, schedule: Schedule) -> Session<'a> {
        self.schedule = schedule;
        self
    }

    /// Selects the schedulable unit ([`Granularity::Chunk`] by default).
    /// Never changes results — only scheduling, latency, and when
    /// early-rejected reads release their flow permit.
    pub fn granularity(mut self, granularity: Granularity) -> Session<'a> {
        self.granularity = granularity;
        self
    }

    /// Sets the transport knobs (queue capacity, progress cadence). The
    /// progress cadence is per source: each source's sink receives a
    /// [`StreamEvent::Progress`] every `progress_every` of *its own* reads.
    pub fn options(mut self, options: StreamOptions) -> Session<'a> {
        self.options = options;
        self
    }

    /// Registers a source under `id`, processed with the session-wide
    /// config. Sources are pulled in the order the [`Schedule`] dictates;
    /// each source's reads are processed against its own reference and pore
    /// model, and emitted in its own read order.
    pub fn source(
        mut self,
        id: impl Into<SourceId>,
        source: impl ReadSource + Send + 'a,
    ) -> Session<'a> {
        self.slots.push(SourceSlot {
            id: id.into(),
            source: Box::new(source),
            config: None,
            sink: None,
        });
        self
    }

    /// Registers a source under `id` with its **own** [`GenPipConfig`], so
    /// different sources can run different operating points (`N_qs`,
    /// `N_cm`, thresholds, chunk size, shards) in one session — e.g. an
    /// E. coli flowcell next to a human one. Transport-level knobs on the
    /// override are ignored: `parallelism` (the pool is session-wide) comes
    /// from the session config. The override is validated against the
    /// source's reference and chemistry at [`Session::run`]
    /// ([`SessionError::IncompatibleSourceConfig`]).
    pub fn source_with_config(
        mut self,
        id: impl Into<SourceId>,
        source: impl ReadSource + Send + 'a,
        config: GenPipConfig,
    ) -> Session<'a> {
        self.slots.push(SourceSlot {
            id: id.into(),
            source: Box::new(source),
            config: Some(config),
            sink: None,
        });
        self
    }

    /// Attaches a sink to the source registered under `id`, replacing any
    /// previous sink for it. The sink receives that source's events only —
    /// every [`ReadRun`] in the source's read order, plus periodic
    /// [`ProgressSnapshot`]s of that source's counters. Sinks run on the
    /// calling thread; a slow sink applies backpressure to the whole
    /// session. Call order is flexible — a sink may be attached before its
    /// source is registered; an id that still has no source when
    /// [`Session::run`] is called fails it with
    /// [`SessionError::SinkWithoutSource`].
    pub fn sink(
        mut self,
        id: impl Into<SourceId>,
        sink: impl FnMut(StreamEvent) + 'a,
    ) -> Session<'a> {
        self.pending_sinks.push((id.into(), Box::new(sink)));
        self
    }

    /// Registers a checkpoint sink, invoked on the calling thread with a
    /// [`SessionCheckpoint`] every `every` emitted reads (counted across
    /// all sources) and once more — with
    /// [`SessionCheckpoint::complete`] set — after the session finishes,
    /// whether it ran dry or was drained via [`SessionControl::drain`].
    ///
    /// Checkpoints are cut between in-order emissions, so the counters
    /// never run ahead of what the sinks have seen; a sink that persists
    /// them (plus its own output offsets) makes the run resumable. A later
    /// call replaces an earlier one.
    pub fn checkpoint(
        mut self,
        every: usize,
        sink: impl FnMut(&SessionCheckpoint) + 'a,
    ) -> Session<'a> {
        self.checkpoint = Some((every, Box::new(sink)));
        self
    }

    /// Moves pending sinks onto their slots (later attachments win), then
    /// reports the first sink whose source never appeared.
    fn attach_sinks(&mut self) -> Result<(), SessionError> {
        for (id, sink) in self.pending_sinks.drain(..) {
            match self.slots.iter_mut().find(|s| s.id == id) {
                Some(slot) => slot.sink = Some(sink),
                None => return Err(SessionError::SinkWithoutSource(id)),
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), SessionError> {
        if self.options.queue_capacity == 0 {
            return Err(SessionError::ZeroQueueCapacity);
        }
        if self.options.reject_backlog == 0 {
            return Err(SessionError::ZeroRejectBacklog);
        }
        if matches!(self.config.parallelism, Parallelism::Threads(0)) {
            return Err(SessionError::ZeroWorkers);
        }
        if self.slots.is_empty() {
            return Err(SessionError::NoSources);
        }
        if matches!(self.checkpoint, Some((0, _))) {
            return Err(SessionError::ZeroCheckpointInterval);
        }
        if self.slots.len() > self.options.max_sources {
            return Err(SessionError::TooManySources {
                limit: self.options.max_sources,
            });
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if self.slots[..i].iter().any(|s| s.id == slot.id) {
                return Err(SessionError::DuplicateSource(slot.id.clone()));
            }
        }
        if let Schedule::Priority(weights) = &self.schedule {
            if weights.len() != self.slots.len() {
                return Err(SessionError::PriorityWeightCount {
                    sources: self.slots.len(),
                    weights: weights.len(),
                });
            }
            if let Some(i) = weights.iter().position(|&w| w == 0) {
                return Err(SessionError::ZeroPriorityWeight(self.slots[i].id.clone()));
            }
        }
        if let Schedule::Deadline(targets) = &self.schedule {
            if targets.len() != self.slots.len() {
                return Err(SessionError::DeadlineTargetCount {
                    sources: self.slots.len(),
                    targets: targets.len(),
                });
            }
            if let Some(i) = targets.iter().position(|&t| t == 0) {
                return Err(SessionError::ZeroDeadlineTarget(self.slots[i].id.clone()));
            }
        }
        // Each source's effective config must be able to drive that
        // source's reference and chemistry. Only conditions this run would
        // actually trip are errors: `n_qs` is consulted solely by QSR, and
        // the k-vs-reference check applies to explicit per-source overrides
        // only — a degenerate *session* config (k longer than the
        // reference ⇒ empty index ⇒ every read unmapped) has always been
        // accepted by the never-fail legacy wrappers, and stays so.
        let uses_qsr = matches!(self.flow, Flow::GenPip(ErMode::QsrOnly | ErMode::Full));
        for slot in &self.slots {
            let config = slot.config.as_ref().unwrap_or(&self.config);
            let issue = if config.chunk_bases == 0 {
                Some(SourceConfigIssue::ZeroChunkBases)
            } else if uses_qsr && config.n_qs == 0 {
                Some(SourceConfigIssue::ZeroQsrSamples)
            } else if !(slot.source.mean_dwell() > 0.0 && slot.source.mean_dwell().is_finite()) {
                Some(SourceConfigIssue::NonPositiveDwell)
            } else if slot.config.is_some() && config.mapper.k > slot.source.reference().len() {
                Some(SourceConfigIssue::KmerExceedsReference {
                    k: config.mapper.k,
                    reference_len: slot.source.reference().len(),
                })
            } else {
                duplicate_reference_name(config, slot.source.reference())
                    .map(|name| SourceConfigIssue::DuplicateReferenceName { name })
            };
            if let Some(issue) = issue {
                return Err(SessionError::IncompatibleSourceConfig {
                    id: slot.id.clone(),
                    issue,
                });
            }
        }
        Ok(())
    }

    /// Validates the configuration, then pulls every registered source dry
    /// through the shared worker pool, delivering results to the per-source
    /// sinks as they complete.
    ///
    /// Blocks until all sources are exhausted. A panic in a source, worker,
    /// or sink tears the session down and propagates rather than
    /// deadlocking — unless the faulting source's
    /// [`crate::FaultPolicy`] contains worker faults (see the
    /// [module docs](crate::engine)).
    pub fn run(self) -> Result<SessionReport, SessionError> {
        self.run_with_control(&SessionControl::new())
    }

    /// [`Session::run`] with an external [`SessionControl`]: clone the
    /// handle before calling and any thread (or any sink) can drive the
    /// running session — [`SessionControl::drain`] it, snapshot
    /// [`SessionControl::stats`], [`SessionControl::attach`] new sources,
    /// or [`SessionControl::detach`] existing ones. Commands enqueued
    /// before the run starts are applied at the session's first poll (in
    /// particular, a pre-run `drain` makes the session return immediately
    /// with empty counters).
    pub fn run_with_control(
        mut self,
        control: &SessionControl,
    ) -> Result<SessionReport, SessionError> {
        self.validate()?;
        self.attach_sinks()?;
        let Session {
            config,
            flow,
            schedule,
            options,
            granularity,
            slots,
            checkpoint,
            ..
        } = self;
        let n = slots.len();
        let er = flow.er();
        let uses_qsr = matches!(flow, Flow::GenPip(ErMode::QsrOnly | ErMode::Full));
        let workers = config.parallelism.workers().max(1);
        // The Viterbi lane width: how many dispatchable chunk tasks a worker
        // may drain into one lane-batched decode. Captured here because
        // `config` moves into the feed below. Per-source overrides narrow
        // this inside the prefetch hook; the session-level width only caps
        // the worker's batch drain.
        let decode_lanes = config.lanes.width();
        // The engine's resident-chain bound, mirrored here so detach-time
        // summaries can carry it before the engine returns.
        let in_flight_limit = if workers <= 1 {
            1
        } else {
            options.queue_capacity.max(1) + workers
        };

        let mut ids = Vec::with_capacity(n);
        let mut sources = Vec::with_capacity(n);
        let mut configs = Vec::with_capacity(n);
        let mut sinks: Vec<Option<BoxedSink<'a>>> = Vec::with_capacity(n);
        for slot in slots {
            ids.push(slot.id);
            configs.push(slot.config.unwrap_or_else(|| config.clone()));
            sources.push(slot.source);
            sinks.push(slot.sink);
        }
        // One immutable context per source (its reference index, basecaller,
        // chunk geometry, effective config), shared by every worker. The
        // vector is append-only, growing under its lock when the control
        // plane attaches a source mid-run.
        let contexts: Arc<RwLock<Vec<Arc<RunContext>>>> = Arc::new(RwLock::new(
            sources
                .iter()
                .zip(&configs)
                .map(|(s, c)| Arc::new(RunContext::from_source(&**s, c)))
                .collect(),
        ));
        let policies: Vec<FaultPolicy> = configs.iter().map(|c| c.fault_policy).collect();
        let default_target = match &schedule {
            Schedule::Deadline(targets) => targets.iter().copied().max().unwrap_or(1),
            _ => 1,
        };

        let control_state = Arc::clone(&control.state);
        control_state.begin_run(&ids);
        let registry = Arc::new(Mutex::new(Registry {
            ids,
            detach_requested: vec![false; n],
            detaching: (0..n).map(|_| None).collect(),
            pending_sinks: (0..n).map(|_| None).collect(),
        }));

        let feed = SessionFeed {
            sources,
            er,
            granularity,
            control: Arc::clone(&control_state),
            registry: Arc::clone(&registry),
            contexts: Arc::clone(&contexts),
            session_config: config,
            uses_qsr,
            max_sources: options.max_sources,
            priority: matches!(schedule, Schedule::Priority(_)),
            deadline: matches!(schedule, Schedule::Deadline(_)),
            default_target,
        };

        let mut per_outcomes = vec![ProgressSnapshot::default(); n];
        let mut per_totals = vec![WorkloadTotals::default(); n];
        let mut outcomes = ProgressSnapshot::default();
        let mut totals = WorkloadTotals::default();

        // Checkpoint plumbing. The sink is shared (Rc) between the emit
        // closure (periodic cuts) and the post-run code (the final,
        // `complete` cut) — both run on the calling thread. The retry
        // counter is the one number the emitter can't see locally (retries
        // happen on the dispatcher), so it crosses over atomically.
        let checkpoint = checkpoint.map(|(every, sink)| (every, Rc::new(RefCell::new(sink))));
        let retried_live = Arc::new(AtomicUsize::new(0));

        /// What a retired chain hands the emitter: a normal result or a
        /// quarantined fault, both delivered in-order through the sink.
        /// `Run` dwarfs `Faulted` but is also the overwhelmingly common
        /// case, so boxing it would cost an allocation per emitted read
        /// to shrink the rare variant.
        #[allow(clippy::large_enum_variant)]
        enum ChainOutput {
            Run(ReadRun),
            Failed { id: u32, fault: ReadFault },
        }

        let stats = {
            let step_contexts = Arc::clone(&contexts);
            let prefetch_contexts = Arc::clone(&contexts);
            let emit_registry = Arc::clone(&registry);
            let emit_control = Arc::clone(&control_state);
            let per_outcomes = &mut per_outcomes;
            let per_totals = &mut per_totals;
            let outcomes = &mut outcomes;
            let totals = &mut totals;
            let mut sinks = sinks;
            let emit_checkpoint = checkpoint
                .as_ref()
                .map(|(every, sink)| (*every, Rc::clone(sink)));
            let emit_retried = Arc::clone(&retried_live);
            let retry_retried = Arc::clone(&retried_live);
            let mut checkpoint_emitted = 0usize;
            let mut lane_done: Vec<bool> = vec![false; n];
            session_engine(
                EngineConfig {
                    workers,
                    queue_capacity: options.queue_capacity,
                    reject_backlog: options.reject_backlog,
                    lanes: n,
                    decode_lanes,
                    schedule: &schedule,
                    policies: &policies,
                    control,
                },
                || -> Vec<Option<WorkerScratch>> { Vec::new() },
                feed,
                move |scratch, lane, chain: &mut ReadChain| {
                    // Per-chunk context lookup: a cheap read-lock + Arc
                    // clone, because attached lanes may grow the vector
                    // while this worker runs.
                    let ctx = Arc::clone(&step_contexts.read().expect("contexts poisoned")[lane]);
                    // Scratch is per (worker, source): lazily built because
                    // a worker may never see some sources' chunks, and
                    // grown on demand for attached lanes.
                    if scratch.len() <= lane {
                        scratch.resize_with(lane + 1, || None);
                    }
                    let slot = scratch[lane].get_or_insert_with(|| WorkerScratch::new(&ctx));
                    match chain.step(&ctx, slot) {
                        ChainStep::Parked { units } => ChainStep::Parked { units },
                        ChainStep::Finished {
                            output,
                            units,
                            cancelled,
                        } => ChainStep::Finished {
                            output: ChainOutput::Run(output),
                            units,
                            cancelled,
                        },
                    }
                },
                move |scratch, batch: &mut [Task<ReadChain>]| {
                    crate::pipeline::prefetch_lane_batch(&prefetch_contexts, scratch, batch);
                },
                move |_lane, chain: ReadChain| {
                    retry_retried.fetch_add(1, Ordering::Relaxed);
                    chain.retry()
                },
                |_lane, chain: ReadChain, info: FaultInfo| ChainOutput::Failed {
                    id: chain.read_id(),
                    fault: ReadFault {
                        kind: info.kind,
                        message: info.message,
                        chunk: chain.fault_chunk(),
                        attempts: info.attempts,
                    },
                },
                move |lane, event: LaneEvent<ChainOutput>| {
                    // Attached lanes grow the per-lane state on first
                    // contact (their Attached marker precedes any output).
                    if per_outcomes.len() <= lane {
                        per_outcomes.resize_with(lane + 1, Default::default);
                        per_totals.resize_with(lane + 1, Default::default);
                    }
                    if sinks.len() <= lane {
                        sinks.resize_with(lane + 1, || None);
                    }
                    match event {
                        LaneEvent::Attached => {
                            let pending = emit_registry
                                .lock()
                                .expect("registry poisoned")
                                .pending_sinks[lane]
                                .take();
                            if let Some(sink) = pending {
                                sinks[lane] = Some(sink);
                            }
                        }
                        LaneEvent::Detached(lane_stats) => {
                            if lane_done.len() <= lane {
                                lane_done.resize(lane + 1, false);
                            }
                            lane_done[lane] = true;
                            // The lane's last output has been emitted:
                            // finalize and deliver its summary.
                            let summary = StreamSummary {
                                outcomes: per_outcomes[lane],
                                totals: per_totals[lane],
                                workers,
                                in_flight_limit,
                                max_in_flight: lane_stats.max_in_flight,
                                retried: lane_stats.retried,
                                latency: lane_stats.latency,
                            };
                            let responder =
                                emit_registry.lock().expect("registry poisoned").detaching[lane]
                                    .take();
                            if let Some(responder) = responder {
                                let _ = responder.send(Ok(summary));
                            }
                            let mut inner = emit_control.inner.lock().expect("control poisoned");
                            if let Some(stats) = inner.stats.sources.get_mut(lane) {
                                stats.detached = true;
                            }
                        }
                        LaneEvent::Output(output) => {
                            let event = match output {
                                ChainOutput::Run(run) => {
                                    totals.accumulate(&run);
                                    outcomes.observe(&run);
                                    per_totals[lane].accumulate(&run);
                                    per_outcomes[lane].observe(&run);
                                    StreamEvent::Read(run)
                                }
                                ChainOutput::Failed { id, fault } => {
                                    outcomes.observe_failed();
                                    per_outcomes[lane].observe_failed();
                                    StreamEvent::Failed { read_id: id, fault }
                                }
                            };
                            let snapshot_due = options.progress_every > 0
                                && per_outcomes[lane].reads_emitted % options.progress_every == 0;
                            if let Some(sink) = sinks[lane].as_mut() {
                                sink(event);
                                if snapshot_due {
                                    sink(StreamEvent::Progress(per_outcomes[lane]));
                                }
                            }
                            {
                                let mut inner =
                                    emit_control.inner.lock().expect("control poisoned");
                                if let Some(stats) = inner.stats.sources.get_mut(lane) {
                                    stats.outcomes = per_outcomes[lane];
                                }
                            }
                            if let Some((every, sink)) = &emit_checkpoint {
                                checkpoint_emitted += 1;
                                if checkpoint_emitted.is_multiple_of(*every) {
                                    let ids = emit_registry
                                        .lock()
                                        .expect("registry poisoned")
                                        .ids
                                        .clone();
                                    let cut = SessionCheckpoint {
                                        sources: ids
                                            .into_iter()
                                            .enumerate()
                                            .map(|(s, id)| SourceCheckpoint {
                                                id,
                                                outcomes: per_outcomes
                                                    .get(s)
                                                    .copied()
                                                    .unwrap_or_default(),
                                                done: lane_done.get(s).copied().unwrap_or(false),
                                            })
                                            .collect(),
                                        outcomes: *outcomes,
                                        retried: emit_retried.load(Ordering::Relaxed),
                                        complete: false,
                                    };
                                    (sink.borrow_mut())(&cut);
                                }
                            }
                        }
                    }
                },
            )
        };
        control_state.close();
        debug_assert_eq!(stats.in_flight_limit, in_flight_limit);

        let ids: Vec<SourceId> = registry.lock().expect("registry poisoned").ids.clone();
        per_outcomes.resize_with(ids.len(), Default::default);
        per_totals.resize_with(ids.len(), Default::default);
        // The final checkpoint: every lane has retired (run dry, detached,
        // or drained), all results are through the sinks, and the engine's
        // exact retry total is in hand.
        if let Some((_, sink)) = &checkpoint {
            let cut = SessionCheckpoint {
                sources: ids
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(s, id)| SourceCheckpoint {
                        id,
                        outcomes: per_outcomes[s],
                        done: true,
                    })
                    .collect(),
                outcomes,
                retried: stats.retried,
                complete: true,
            };
            (sink.borrow_mut())(&cut);
        }
        let sources = ids
            .into_iter()
            .enumerate()
            .map(|(s, id)| SourceReport {
                id,
                summary: StreamSummary {
                    outcomes: per_outcomes[s],
                    totals: per_totals[s],
                    workers,
                    in_flight_limit: stats.in_flight_limit,
                    max_in_flight: stats.lanes[s].max_in_flight,
                    retried: stats.lanes[s].retried,
                    latency: stats.lanes[s].latency,
                },
            })
            .collect();
        Ok(SessionReport {
            sources,
            outcomes,
            totals,
            workers,
            in_flight_limit: stats.in_flight_limit,
            max_in_flight: stats.max_in_flight,
            retried: stats.retried,
            max_reject_backlog: stats.max_reject_backlog,
            latency: stats.latency,
        })
    }
}

/// The session-layer registry shared between the dispatcher-side
/// [`SessionFeed`] and the emitting thread: the authoritative id↔lane map
/// (ids are never reused, even after detach), pending detach responders,
/// and sinks for attached lanes awaiting their in-order install.
struct Registry {
    ids: Vec<SourceId>,
    /// `true` from the moment a detach is accepted; never reset, so a
    /// second detach of the same id is refused as unknown.
    detach_requested: Vec<bool>,
    /// The detach responder, taken by the emitter when the lane's summary
    /// is finalized.
    detaching: Vec<Option<mpsc::Sender<Result<StreamSummary, SessionError>>>>,
    /// Sinks for attached lanes, installed by the emitter at the lane's
    /// in-order [`LaneEvent::Attached`] marker — before its first output.
    pending_sinks: Vec<Option<AttachedSink>>,
}

/// A sink supplied with a live attach: unlike builder sinks it must be
/// `Send` (it crosses into the session thread) and `'static` (it outlives
/// the caller's frame).
type AttachedSink = Box<dyn FnMut(StreamEvent) + Send>;

/// The [`LaneFeed`] of a real [`Session`]: owns the sources (pulled on the
/// dispatcher) and applies control-plane commands — attach validation
/// mirrors [`Session::source_with_config`]'s, detach resolves ids to lanes
/// — turning accepted commands into [`EngineCommand`]s for the engine.
struct SessionFeed<'a> {
    sources: Vec<Box<dyn ReadSource + Send + 'a>>,
    er: Option<ErMode>,
    granularity: Granularity,
    control: Arc<ControlState>,
    registry: Arc<Mutex<Registry>>,
    contexts: Arc<RwLock<Vec<Arc<RunContext>>>>,
    session_config: GenPipConfig,
    uses_qsr: bool,
    max_sources: usize,
    priority: bool,
    deadline: bool,
    /// Target for attached lanes that don't specify one (the laxest target
    /// registered at startup): neutral until feedback arrives either way.
    default_target: u64,
}

impl SessionFeed<'_> {
    /// The attach-time twin of [`Session::validate`]'s per-slot checks,
    /// plus the live-session admission rules (unique-forever ids,
    /// [`StreamOptions::max_sources`], schedule parameters).
    fn validate_attach(&self, request: &AttachRequest) -> Result<(), SessionError> {
        {
            let registry = self.registry.lock().expect("registry poisoned");
            if registry.ids.contains(&request.id) {
                return Err(SessionError::DuplicateSource(request.id.clone()));
            }
            let live = registry.detach_requested.iter().filter(|d| !**d).count();
            if live >= self.max_sources {
                return Err(SessionError::TooManySources {
                    limit: self.max_sources,
                });
            }
        }
        if self.priority && request.weight == 0 {
            return Err(SessionError::ZeroPriorityWeight(request.id.clone()));
        }
        if self.deadline && request.target == Some(0) {
            return Err(SessionError::ZeroDeadlineTarget(request.id.clone()));
        }
        let config = request.config.as_ref().unwrap_or(&self.session_config);
        let dwell = request.source.mean_dwell();
        let issue = if config.chunk_bases == 0 {
            Some(SourceConfigIssue::ZeroChunkBases)
        } else if self.uses_qsr && config.n_qs == 0 {
            Some(SourceConfigIssue::ZeroQsrSamples)
        } else if !(dwell > 0.0 && dwell.is_finite()) {
            Some(SourceConfigIssue::NonPositiveDwell)
        } else if request.config.is_some() && config.mapper.k > request.source.reference().len() {
            Some(SourceConfigIssue::KmerExceedsReference {
                k: config.mapper.k,
                reference_len: request.source.reference().len(),
            })
        } else {
            duplicate_reference_name(config, request.source.reference())
                .map(|name| SourceConfigIssue::DuplicateReferenceName { name })
        };
        match issue {
            Some(issue) => Err(SessionError::IncompatibleSourceConfig {
                id: request.id.clone(),
                issue,
            }),
            None => Ok(()),
        }
    }

    /// Validates and registers one attach, answering its responder either
    /// way; `Some` is the engine-side lane addition for an accepted one.
    fn admit(&mut self, request: AttachRequest) -> Option<EngineCommand> {
        if let Err(error) = self.validate_attach(&request) {
            let _ = request.responder.send(Err(error));
            return None;
        }
        let AttachRequest {
            id,
            source,
            config,
            sink,
            weight,
            target,
            responder,
        } = request;
        let effective = config.unwrap_or_else(|| self.session_config.clone());
        {
            let mut registry = self.registry.lock().expect("registry poisoned");
            registry.ids.push(id.clone());
            registry.detach_requested.push(false);
            registry.detaching.push(None);
            registry.pending_sinks.push(sink);
        }
        self.contexts
            .write()
            .expect("contexts poisoned")
            .push(Arc::new(RunContext::from_source(&*source, &effective)));
        self.sources.push(source);
        {
            let mut inner = self.control.inner.lock().expect("control poisoned");
            inner.stats.sources.push(SourceStats {
                id,
                outcomes: ProgressSnapshot::default(),
                detached: false,
            });
        }
        let _ = responder.send(Ok(()));
        Some(EngineCommand::AddLane {
            policy: effective.fault_policy,
            weight,
            target: target.unwrap_or(self.default_target),
        })
    }
}

impl LaneFeed<ReadChain> for SessionFeed<'_> {
    fn pull(&mut self, lane: usize) -> Option<ReadChain> {
        self.sources[lane]
            .next_read()
            .map(|read| ReadChain::new(self.er, self.granularity, read))
    }

    fn poll(&mut self) -> Vec<EngineCommand> {
        let drained: Vec<Command> = {
            let mut inner = self.control.inner.lock().expect("control poisoned");
            inner.commands.drain(..).collect()
        };
        let mut commands = Vec::with_capacity(drained.len());
        for command in drained {
            match command {
                Command::Attach(request) => {
                    if let Some(command) = self.admit(*request) {
                        commands.push(command);
                    }
                }
                Command::Detach { id, responder } => {
                    let mut registry = self.registry.lock().expect("registry poisoned");
                    match registry.ids.iter().position(|i| *i == id) {
                        Some(lane) if !registry.detach_requested[lane] => {
                            registry.detach_requested[lane] = true;
                            registry.detaching[lane] = Some(responder);
                            commands.push(EngineCommand::DrainLane { lane });
                        }
                        _ => {
                            let _ = responder.send(Err(SessionError::UnknownSource(id)));
                        }
                    }
                }
            }
        }
        commands
    }
}

/// A counting gate bounding how many read chains are resident: `acquire`
/// blocks while `limit` permits are out, `release` frees one. Tracks the
/// high-water mark so tests (and the bench report) can assert the bound
/// really held.
///
/// A permit is taken when a read is admitted and released when its chain
/// retires — at the ER verdict for cancelled reads (early release: the
/// paper's "rejected reads stop consuming resources"), at in-order emission
/// for surviving reads.
///
/// The gate carries a second, *soft* bound: the backlog of verdict-released
/// results (early-rejected or quarantined reads whose permit is already
/// back but whose small result record still waits for its in-order emission
/// slot). Once `backlog` reaches `backlog_limit`, `acquire`/`has_room`
/// report no room — new reads stop being admitted — but permits stay
/// decoupled from emission: parked chains keep advancing, so the
/// head-of-line survivor always retires and the emitter drains the backlog.
/// The backlog can transiently exceed the soft bound by at most `limit`
/// (already-admitted chains may each add one entry after admission stops).
///
/// The gate can also be `open`ed — permits stop mattering and blocked
/// acquirers return `false`. That is the shutdown path: if the sink or a
/// worker panics, permits held by dropped items would never be released and
/// the dispatcher would block forever; opening the gate turns that hang
/// into a propagated panic.
struct FlowGate {
    state: Mutex<GateState>,
    freed: Condvar,
    limit: usize,
    backlog_limit: usize,
    high: AtomicUsize,
    backlog_high: AtomicUsize,
}

struct GateState {
    used: usize,
    backlog: usize,
    open: bool,
}

impl FlowGate {
    fn new(limit: usize, backlog_limit: usize) -> FlowGate {
        FlowGate {
            state: Mutex::new(GateState {
                used: 0,
                backlog: 0,
                open: false,
            }),
            freed: Condvar::new(),
            limit,
            backlog_limit,
            high: AtomicUsize::new(0),
            backlog_high: AtomicUsize::new(0),
        }
    }

    fn admittable(&self, state: &GateState) -> bool {
        state.used < self.limit && state.backlog < self.backlog_limit
    }

    /// Takes a permit, blocking while the limit is reached or the rejection
    /// backlog is over its soft bound. `false` means the gate was opened
    /// for shutdown and no permit was taken.
    fn acquire(&self) -> bool {
        let mut state = self.state.lock().expect("gate poisoned");
        while !state.open && !self.admittable(&state) {
            state = self.freed.wait(state).expect("gate poisoned");
        }
        if state.open {
            return false;
        }
        state.used += 1;
        self.high.fetch_max(state.used, Ordering::Relaxed);
        true
    }

    /// `true` while a permit is immediately available (or the gate is open
    /// for shutdown, in which case `acquire` reports the shutdown). Only the
    /// dispatcher acquires, so room seen here cannot be taken by anyone
    /// else before it does.
    fn has_room(&self) -> bool {
        let state = self.state.lock().expect("gate poisoned");
        state.open || self.admittable(&state)
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.used -= 1;
        drop(state);
        self.freed.notify_one();
    }

    /// Records one verdict-released result entering the emission backlog
    /// (called by the dispatcher when a chain retires cancelled or
    /// quarantined, right after its permit goes back).
    fn push_backlog(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.backlog += 1;
        self.backlog_high
            .fetch_max(state.backlog, Ordering::Relaxed);
    }

    /// Records one verdict-released result leaving the backlog at its
    /// in-order emission (called by the emitter).
    fn pop_backlog(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.backlog -= 1;
        drop(state);
        self.freed.notify_one();
    }

    fn backlog_high_water(&self) -> usize {
        self.backlog_high.load(Ordering::Relaxed)
    }

    /// Blocks until every permit is back and the emission backlog is empty
    /// — i.e. every admitted read has been emitted — or the gate was opened
    /// for shutdown (`false`). The dispatcher parks here before concluding
    /// an idle session, so sinks get to run (and possibly enqueue control
    /// commands) before the final poll. Only the dispatcher ever waits on
    /// the gate, so the emitter's `release`/`pop_backlog` notifications
    /// cannot be stolen by another waiter.
    fn await_idle(&self) -> bool {
        let mut state = self.state.lock().expect("gate poisoned");
        while !state.open && (state.used > 0 || state.backlog > 0) {
            state = self.freed.wait(state).expect("gate poisoned");
        }
        !state.open
    }

    /// Lets every current and future `acquire` through empty-handed.
    fn open(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.open = true;
        drop(state);
        self.freed.notify_all();
    }

    fn high_water(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }
}

/// Opens the gate when dropped — normally after the emit loop (harmless:
/// the dispatcher has already exited), and crucially during unwinding, so a
/// panicking sink or worker pool releases the dispatcher instead of
/// deadlocking the scope join.
struct OpenOnDrop<'a>(&'a FlowGate);

impl Drop for OpenOnDrop<'_> {
    fn drop(&mut self) {
        self.0.open();
    }
}

/// What one task of a chain reported back to the engine. Generic twin of
/// the concrete steps produced by [`crate::pipeline::ReadChain`].
pub(crate) enum ChainStep<O> {
    /// The chain has more tasks; park it until its lane is picked again.
    Parked {
        /// Chunk-work units this task performed (the tick currency of
        /// [`LatencyStats`]).
        units: u64,
    },
    /// The chain retired with `output`. `cancelled` marks an early verdict:
    /// the chain's permit is released immediately instead of at emission.
    Finished {
        /// The chain's result.
        output: O,
        /// Chunk-work units this task performed.
        units: u64,
        /// `true` when the chain was cancelled by an ER verdict.
        cancelled: bool,
    },
}

/// Per-lane engine observations.
pub(crate) struct LaneStats {
    /// High-water mark of this lane's resident chains (plus
    /// finished-but-unemitted surviving reads, which still hold permits).
    pub(crate) max_in_flight: usize,
    /// Fault retries this lane's reads consumed.
    pub(crate) retried: usize,
    /// Residency percentiles of this lane's reads.
    pub(crate) latency: LatencyStats,
}

/// What the engine enforced and observed: the single source of truth for
/// the in-flight bound and the latency percentiles, so callers never
/// re-derive them.
pub(crate) struct EngineStats {
    /// The enforced bound on resident chains (`queue_capacity + workers`,
    /// or 1 for the serial in-line path).
    pub(crate) in_flight_limit: usize,
    /// High-water mark of resident chains across all lanes.
    pub(crate) max_in_flight: usize,
    /// Fault retries across all lanes.
    pub(crate) retried: usize,
    /// High-water mark of the verdict-released emission backlog (0 on the
    /// serial path, where emission is immediate).
    pub(crate) max_reject_backlog: usize,
    /// Aggregate residency percentiles.
    pub(crate) latency: LatencyStats,
    /// Per-lane observations, indexed like the engine's lanes.
    pub(crate) lanes: Vec<LaneStats>,
}

/// What the engine reports to its `emit` callback, strictly in global
/// admission/marker order per session (and hence in per-lane order).
pub(crate) enum LaneEvent<O> {
    /// An in-order chain output.
    Output(O),
    /// The lane's attach marker: delivered before the lane's first output,
    /// the emitter's cue to install the lane's sink and per-lane state.
    Attached,
    /// The lane's detach marker: delivered after the lane's last output,
    /// carrying the lane's finalized engine-side stats.
    Detached(LaneStats),
}

/// Where the engine's chains come from, plus its control plane. `pull` is
/// called on the dispatcher when the schedule picks a lane with admission
/// room; `poll` is called at the top of every dispatch round and once more
/// after the session goes idle, so commands raised by the final emissions
/// still apply before the engine concludes.
pub(crate) trait LaneFeed<C>: Send {
    /// The next chain from `lane`, or `None` when that source is exhausted.
    fn pull(&mut self, lane: usize) -> Option<C>;

    /// Control-plane commands to apply before the next dispatch round.
    /// The default feed has no control plane.
    fn poll(&mut self) -> Vec<EngineCommand> {
        Vec::new()
    }
}

/// Any plain closure is a control-plane-less feed.
impl<C, T: FnMut(usize) -> Option<C> + Send> LaneFeed<C> for T {
    fn pull(&mut self, lane: usize) -> Option<C> {
        self(lane)
    }
}

/// A control-plane command after feed-side validation, ready for the
/// engine to apply.
pub(crate) enum EngineCommand {
    /// A new lane joins the schedule with the given fault policy,
    /// [`Schedule::Priority`] weight, and [`Schedule::Deadline`] target.
    /// The engine sends the lane's [`LaneEvent::Attached`] marker through
    /// the in-order path before the lane's first output.
    AddLane {
        policy: FaultPolicy,
        weight: u32,
        target: u64,
    },
    /// Stop pulling from `lane`; once its resident chains have finished
    /// and emitted, the lane's [`LaneEvent::Detached`] marker delivers its
    /// finalized [`LaneStats`].
    DrainLane { lane: usize },
}

/// Per-lane permit attribution and retry counts, shared between the
/// dispatcher (admission, cancellation, retries) and the emitter (permit
/// release at emission, detach-marker stats). One mutex instead of
/// per-lane atomics because the vectors must grow when lanes attach
/// mid-run.
struct LaneCounters {
    inflight: Vec<usize>,
    high: Vec<usize>,
    retried: Vec<usize>,
}

impl LaneCounters {
    fn new(lanes: usize) -> LaneCounters {
        LaneCounters {
            inflight: vec![0; lanes],
            high: vec![0; lanes],
            retried: vec![0; lanes],
        }
    }

    fn ensure(&mut self, lane: usize) {
        if self.inflight.len() <= lane {
            self.inflight.resize(lane + 1, 0);
            self.high.resize(lane + 1, 0);
            self.retried.resize(lane + 1, 0);
        }
    }

    fn admitted(&mut self, lane: usize) {
        self.inflight[lane] += 1;
        self.high[lane] = self.high[lane].max(self.inflight[lane]);
    }
}

/// A chunk task in flight to a worker. Carries its lane's fault policy so
/// workers never index shared per-lane state (which grows when lanes
/// attach mid-run). Visible to [`crate::pipeline`] so the lane-batch
/// prefetch hook can inspect a worker's drained batch in place.
pub(crate) struct Task<C> {
    pub(crate) token: usize,
    pub(crate) lane: usize,
    pub(crate) policy: FaultPolicy,
    pub(crate) chain: C,
}

/// What a worker sends back after running one task. `Faulted` is a
/// contained panic — the chain survived and the dispatcher decides retry
/// vs. quarantine. `Panicked` is a worker's dying gasp under
/// [`FaultPolicy::Fail`]: "I panicked on this task — abort."
enum WorkerMsg<C, O> {
    Parked {
        token: usize,
        chain: C,
        units: u64,
    },
    Finished {
        token: usize,
        output: O,
        units: u64,
        cancelled: bool,
    },
    Faulted {
        token: usize,
        chain: C,
        kind: FaultKind,
        message: String,
    },
    Panicked,
}

/// A retired chain — or a lane lifecycle marker — on its way to in-order
/// emission. Markers consume a sequence number like outputs do, which is
/// exactly what orders them: an Attached marker's seq precedes every
/// admission of its lane, a Detached marker's seq follows them all.
struct EmitMsg<O> {
    seq: u64,
    lane: usize,
    kind: EmitKind<O>,
}

enum EmitKind<O> {
    Output {
        output: O,
        holds_permit: bool,
        resident_units: u64,
    },
    Attached,
    Detached,
}

/// A resident chain's dispatcher-side bookkeeping. `chain` is `Some` while
/// parked here, `None` while its task is on a worker.
struct ChainSlot<C> {
    lane: usize,
    seq: u64,
    start_tick: u64,
    attempts: u32,
    chain: Option<C>,
}

/// The engine's scalar knobs, bundled so the closure parameters stay
/// readable at the call site.
pub(crate) struct EngineConfig<'s> {
    pub(crate) workers: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) reject_backlog: usize,
    pub(crate) lanes: usize,
    /// How many dispatchable chunk tasks a worker may drain into one decode
    /// batch before calling `prefetch` (the Viterbi lane width, W). `1`
    /// disables batching: every task is received and stepped one at a time,
    /// exactly the pre-lane worker loop.
    pub(crate) decode_lanes: usize,
    pub(crate) schedule: &'s Schedule,
    pub(crate) policies: &'s [FaultPolicy],
    pub(crate) control: &'s SessionControl,
}

/// What the engine learned about a contained fault, handed to the caller's
/// `fault` closure when a chain is quarantined.
pub(crate) struct FaultInfo {
    pub(crate) kind: FaultKind,
    pub(crate) message: String,
    pub(crate) attempts: u32,
}

/// Turns a caught panic payload into a fault classification. A typed
/// [`genpip_basecall::SignalFault`] is corrupt input; anything else is an
/// unexpected panic, described by its string payload when it has one.
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> (FaultKind, String) {
    match payload.downcast::<genpip_basecall::SignalFault>() {
        Ok(fault) => (FaultKind::CorruptSignal, fault.to_string()),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            (FaultKind::Panic, message)
        }
    }
}

thread_local! {
    /// `true` while this thread is inside a contained `step` call: the
    /// quiet hook drops the panic report instead of spamming stderr for
    /// every injected fault.
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Installs (once, process-wide) a panic hook that stays silent for panics
/// raised inside [`step_contained`] and defers to the previous hook for
/// everything else. Only called when some lane's policy actually contains
/// faults, so `FaultPolicy::Fail` runs keep the stock hook untouched.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let suppressed = SUPPRESS_PANIC_OUTPUT.with(Cell::get);
            if !suppressed {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with panic output suppressed, returning the payload on panic.
fn step_contained<T>(f: impl FnOnce() -> T) -> Result<T, Box<dyn std::any::Any + Send>> {
    SUPPRESS_PANIC_OUTPUT.with(|c| c.set(true));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|c| c.set(false));
    outcome
}

/// The one execution core behind every driver: admits chains from `pull`
/// (one per read, per lane), schedules their tasks one at a time — the
/// `schedule` picks the lane of every task — onto up to `workers` lazily
/// spawned threads (each with its own state from `worker_state`), and calls
/// `emit` with chain outputs **in global admission order** (which makes
/// each lane's emission order its own pull order). At most
/// `queue_capacity + workers` chains are resident; cancelled chains leave
/// the bound at their verdict.
///
/// With one worker the engine degenerates to the in-line serial loop — the
/// reference execution: one chain at a time, stepped to completion, with
/// the schedule consulted per admission.
///
/// A panic in a chain task is *contained* when the lane's
/// [`FaultPolicy`] is not `Fail`: the chain survives the unwind, the
/// dispatcher re-enqueues it (`retry`, up to the policy's attempts) or
/// retires it through `fault` as a quarantined output, and the run keeps
/// going. Under `Fail` — and for panics outside chain tasks (source,
/// sink) — the engine tears the pipeline down (gate opened, channels
/// closed) and propagates out of the scope join rather than deadlocking;
/// already-finished earlier items may still be emitted first.
///
/// `cfg.control` is the cooperative drain switch: once `drain()` is
/// observed, no new reads are pulled, resident chains run to their
/// verdicts, and the engine returns normally. The rest of the control
/// plane arrives through `feed.poll()`: lanes can be added ([`EngineCommand::AddLane`],
/// announced through the in-order [`LaneEvent::Attached`] marker) and
/// drained individually ([`EngineCommand::DrainLane`], concluded by the
/// in-order [`LaneEvent::Detached`] marker carrying the lane's stats).
/// Before concluding an idle session the engine waits for the emitter to
/// catch up and polls once more, so commands raised by the final
/// emissions (a sink attaching the next flowcell) still revive the run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn session_engine<C, O, S, B, L, F, P, R, Q, G>(
    cfg: EngineConfig<'_>,
    worker_state: B,
    mut feed: L,
    step: F,
    prefetch: P,
    mut retry: R,
    mut fault: Q,
    mut emit: G,
) -> EngineStats
where
    C: Send,
    O: Send,
    B: Fn() -> S + Sync,
    L: LaneFeed<C>,
    F: Fn(&mut S, usize, &mut C) -> ChainStep<O> + Sync,
    P: Fn(&mut S, &mut [Task<C>]) + Sync,
    R: FnMut(usize, C) -> C + Send,
    Q: FnMut(usize, C, FaultInfo) -> O + Send,
    G: FnMut(usize, LaneEvent<O>),
{
    let EngineConfig {
        workers,
        queue_capacity,
        reject_backlog,
        lanes,
        decode_lanes,
        schedule,
        policies,
        control,
    } = cfg;
    debug_assert_eq!(policies.len(), lanes);
    if policies.iter().any(|p| *p != FaultPolicy::Fail) {
        install_quiet_hook();
    }
    let mut lane_samples: Vec<Vec<u64>> = vec![Vec::new(); lanes];

    if workers <= 1 {
        let mut sched = SchedulerState::new(schedule, lanes);
        let mut policies = policies.to_vec();
        let mut state = worker_state();
        let mut lane_any = vec![false; lanes];
        let mut lane_retried = vec![0usize; lanes];
        let mut pending_commands: VecDeque<EngineCommand> = VecDeque::new();
        let mut tick = 0u64;
        let mut any = false;
        loop {
            // Control plane first. The serial path applies commands
            // inline: an attach joins the schedule before the next pick, a
            // detach retires its lane immediately (nothing is ever
            // resident between picks here).
            pending_commands.extend(feed.poll());
            while let Some(command) = pending_commands.pop_front() {
                match command {
                    EngineCommand::AddLane {
                        policy,
                        weight,
                        target,
                    } => {
                        if policy != FaultPolicy::Fail {
                            install_quiet_hook();
                        }
                        let lane = lane_any.len();
                        sched.add_lane(weight, target);
                        policies.push(policy);
                        lane_any.push(false);
                        lane_retried.push(0);
                        lane_samples.push(Vec::new());
                        emit(lane, LaneEvent::Attached);
                    }
                    EngineCommand::DrainLane { lane } => {
                        sched.exhausted(lane);
                        let latency = LatencyStats::from_samples(&mut lane_samples[lane]);
                        emit(
                            lane,
                            LaneEvent::Detached(LaneStats {
                                max_in_flight: usize::from(lane_any[lane]),
                                retried: lane_retried[lane],
                                latency,
                            }),
                        );
                    }
                }
            }
            // A drain request is equivalent to every source running dry at
            // once. `exhausted` is idempotent, so racing a natural
            // exhaustion is fine.
            if control.is_draining() {
                for lane in 0..lane_any.len() {
                    sched.exhausted(lane);
                }
            }
            let Some(lane) = sched.next() else {
                // Every lane exhausted — but the last emission may have
                // enqueued a command (a sink attaching the next
                // flowcell). One final poll decides.
                pending_commands.extend(feed.poll());
                if pending_commands.is_empty() {
                    break;
                }
                continue;
            };
            match feed.pull(lane) {
                None => sched.exhausted(lane),
                Some(mut chain) => {
                    any = true;
                    lane_any[lane] = true;
                    let contain = policies[lane] != FaultPolicy::Fail;
                    let max_retry = policies[lane].retry_attempts();
                    let mut attempts = 0u32;
                    let start = tick;
                    let output = loop {
                        if contain {
                            match step_contained(|| step(&mut state, lane, &mut chain)) {
                                Ok(ChainStep::Parked { units }) => tick += units,
                                Ok(ChainStep::Finished { output, units, .. }) => {
                                    tick += units;
                                    break output;
                                }
                                Err(payload) => {
                                    let (kind, message) = classify_panic(payload);
                                    attempts += 1;
                                    if attempts <= max_retry {
                                        lane_retried[lane] += 1;
                                        chain = retry(lane, chain);
                                    } else {
                                        break fault(
                                            lane,
                                            chain,
                                            FaultInfo {
                                                kind,
                                                message,
                                                attempts,
                                            },
                                        );
                                    }
                                }
                            }
                        } else {
                            match step(&mut state, lane, &mut chain) {
                                ChainStep::Parked { units } => tick += units,
                                ChainStep::Finished { output, units, .. } => {
                                    tick += units;
                                    break output;
                                }
                            }
                        }
                    };
                    lane_samples[lane].push(tick - start);
                    sched.observe(lane, tick - start);
                    emit(lane, LaneEvent::Output(output));
                }
            }
        }
        return EngineStats {
            in_flight_limit: 1,
            max_in_flight: usize::from(any),
            retried: lane_retried.iter().sum(),
            max_reject_backlog: 0,
            latency: aggregate_latency(&mut lane_samples),
            lanes: lane_samples
                .iter_mut()
                .zip(lane_any)
                .zip(lane_retried)
                .map(|((samples, any), retried)| LaneStats {
                    max_in_flight: usize::from(any),
                    retried,
                    latency: LatencyStats::from_samples(samples),
                })
                .collect(),
        };
    }

    let capacity = queue_capacity.max(1);
    let limit = capacity + workers;
    let gate = FlowGate::new(limit, reject_backlog.max(1));
    // Per-lane permit attribution (admitted on the dispatcher, released on
    // the dispatcher at cancellation or on the emitting thread otherwise);
    // the *global* bound is the gate's, these only attribute high-waters.
    let counters = Mutex::new(LaneCounters::new(lanes));

    // All channels are unbounded; the gate alone bounds what can be in them
    // (≤ `limit` chains exist, each with at most one task or emit message
    // outstanding, plus the cancelled-result backlog which is the early
    // release working as intended).
    let (task_tx, task_rx) = mpsc::channel::<Task<C>>();
    let task_rx = Mutex::new(task_rx);
    let (msg_tx, msg_rx) = mpsc::channel::<WorkerMsg<C, O>>();
    let (emit_tx, emit_rx) = mpsc::channel::<EmitMsg<O>>();

    std::thread::scope(|scope| {
        let _shutdown = OpenOnDrop(&gate);

        // Dispatcher: owns the feed (sources plus control plane) and every
        // parked chain; consults the schedule once per chunk task; spawns
        // workers lazily as concurrent chunk work actually materializes.
        {
            let gate = &gate;
            let counters = &counters;
            let worker_state = &worker_state;
            let step = &step;
            let prefetch = &prefetch;
            let task_rx = &task_rx;
            let feed = &mut feed;
            let retry = &mut retry;
            let fault = &mut fault;
            scope.spawn(move || {
                let mut sched = SchedulerState::new(schedule, lanes);
                let mut policies: Vec<FaultPolicy> = policies.to_vec();
                let mut src_dry = vec![false; lanes];
                let mut detaching = vec![false; lanes];
                let mut live = vec![0usize; lanes];
                let mut ready: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
                let mut slots: Vec<ChainSlot<C>> = Vec::new();
                let mut free_tokens: Vec<usize> = Vec::new();
                let mut pending_commands: VecDeque<EngineCommand> = VecDeque::new();
                let mut tick = 0u64;
                let mut next_seq = 0u64;
                let mut outstanding = 0usize;
                let mut spawned = 0usize;

                'run: loop {
                    // Control plane: attach new lanes, start per-lane
                    // drains. The Attached marker's seq is allocated here —
                    // before any admission of the new lane — which is what
                    // orders it ahead of the lane's first output.
                    pending_commands.extend(feed.poll());
                    while let Some(command) = pending_commands.pop_front() {
                        match command {
                            EngineCommand::AddLane {
                                policy,
                                weight,
                                target,
                            } => {
                                if policy != FaultPolicy::Fail {
                                    install_quiet_hook();
                                }
                                let lane = src_dry.len();
                                sched.add_lane(weight, target);
                                policies.push(policy);
                                src_dry.push(false);
                                detaching.push(false);
                                live.push(0);
                                ready.push(VecDeque::new());
                                counters.lock().expect("counters poisoned").ensure(lane);
                                let seq = next_seq;
                                next_seq += 1;
                                let sent = emit_tx.send(EmitMsg {
                                    seq,
                                    lane,
                                    kind: EmitKind::Attached,
                                });
                                if sent.is_err() {
                                    break 'run; // emitter gone (sink panicked)
                                }
                            }
                            EngineCommand::DrainLane { lane } => {
                                detaching[lane] = true;
                                src_dry[lane] = true;
                                if live[lane] == 0
                                    && !retire_lane(
                                        &mut sched,
                                        &mut detaching,
                                        &emit_tx,
                                        &mut next_seq,
                                        lane,
                                    )
                                {
                                    break 'run;
                                }
                            }
                        }
                    }

                    // A drain request is equivalent to every source running
                    // dry at once: stop pulling, let resident chains retire.
                    // `exhausted` is idempotent, so racing a natural
                    // exhaustion is fine.
                    if control.is_draining() {
                        for lane in 0..src_dry.len() {
                            if !src_dry[lane] {
                                src_dry[lane] = true;
                                if live[lane] == 0
                                    && !retire_lane(
                                        &mut sched,
                                        &mut detaching,
                                        &emit_tx,
                                        &mut next_seq,
                                        lane,
                                    )
                                {
                                    break 'run;
                                }
                            }
                        }
                    }

                    // Dispatch everything dispatchable, in schedule order: a
                    // lane is available if it has a parked chain to advance
                    // or a new read can be admitted under a fresh permit.
                    loop {
                        let picked = sched.next_where(|l| {
                            !ready[l].is_empty() || (!src_dry[l] && gate.has_room())
                        });
                        let Some(lane) = picked else { break };
                        let token = match ready[lane].pop_front() {
                            Some(token) => token,
                            None => {
                                if !gate.acquire() {
                                    break 'run; // shutdown
                                }
                                let Some(chain) = feed.pull(lane) else {
                                    gate.release();
                                    src_dry[lane] = true;
                                    if live[lane] == 0
                                        && !retire_lane(
                                            &mut sched,
                                            &mut detaching,
                                            &emit_tx,
                                            &mut next_seq,
                                            lane,
                                        )
                                    {
                                        break 'run;
                                    }
                                    continue;
                                };
                                counters.lock().expect("counters poisoned").admitted(lane);
                                live[lane] += 1;
                                let slot = ChainSlot {
                                    lane,
                                    seq: next_seq,
                                    start_tick: tick,
                                    attempts: 0,
                                    chain: Some(chain),
                                };
                                next_seq += 1;
                                match free_tokens.pop() {
                                    Some(token) => {
                                        slots[token] = slot;
                                        token
                                    }
                                    None => {
                                        slots.push(slot);
                                        slots.len() - 1
                                    }
                                }
                            }
                        };
                        let chain = slots[token].chain.take().expect("parked chain present");
                        outstanding += 1;
                        if outstanding > spawned && spawned < workers {
                            // One more unit of concurrent chunk work than
                            // workers to run it: grow the pool.
                            spawned += 1;
                            let msg_tx = msg_tx.clone();
                            scope.spawn(move || {
                                let mut state = worker_state();
                                let mut batch: Vec<Task<C>> = Vec::new();
                                'worker: loop {
                                    // Drain up to `decode_lanes` dispatchable
                                    // tasks into one lane batch: one blocking
                                    // recv (the worker is idle anyway), then
                                    // whatever is already queued, without ever
                                    // blocking mid-batch — so a lone task
                                    // proceeds immediately and batching never
                                    // adds latency, only amortizes work that
                                    // had already piled up.
                                    batch.clear();
                                    {
                                        let rx = task_rx.lock().expect("queue poisoned");
                                        match rx.recv() {
                                            Ok(task) => batch.push(task),
                                            Err(_) => break 'worker,
                                        }
                                        while batch.len() < decode_lanes {
                                            match rx.try_recv() {
                                                Ok(task) => batch.push(task),
                                                Err(_) => break,
                                            }
                                        }
                                    }
                                    if batch.len() > 1 {
                                        // Best-effort lane-batched decode
                                        // across the batch's chains. Contained
                                        // so a prefetch bug can never take
                                        // down chains that `step` would have
                                        // processed fine — any panic here is
                                        // swallowed and every task simply
                                        // falls through to its own scalar
                                        // step (which re-faults in the
                                        // faulting task's own context, with
                                        // correct attribution).
                                        let _ = step_contained(|| prefetch(&mut state, &mut batch));
                                    }
                                    for task in batch.drain(..) {
                                        let Task {
                                            token,
                                            lane,
                                            policy,
                                            mut chain,
                                        } = task;
                                        // A panicking `step` would otherwise
                                        // strand this chain's permit and deadlock
                                        // the dispatcher: catch it. Under a
                                        // containing policy the chain survives
                                        // and the dispatcher decides its fate;
                                        // under `Fail`, tell the dispatcher to
                                        // abort, then rethrow so the scope
                                        // propagates it after teardown.
                                        let contain = policy != FaultPolicy::Fail;
                                        let outcome = if contain {
                                            step_contained(|| step(&mut state, lane, &mut chain))
                                        } else {
                                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                                || step(&mut state, lane, &mut chain),
                                            ))
                                        };
                                        let msg = match outcome {
                                            Ok(ChainStep::Parked { units }) => WorkerMsg::Parked {
                                                token,
                                                chain,
                                                units,
                                            },
                                            Ok(ChainStep::Finished {
                                                output,
                                                units,
                                                cancelled,
                                            }) => WorkerMsg::Finished {
                                                token,
                                                output,
                                                units,
                                                cancelled,
                                            },
                                            Err(panic) if contain => {
                                                // The closure only borrowed the
                                                // chain, so it survived the
                                                // unwind intact.
                                                let (kind, message) = classify_panic(panic);
                                                WorkerMsg::Faulted {
                                                    token,
                                                    chain,
                                                    kind,
                                                    message,
                                                }
                                            }
                                            Err(panic) => {
                                                let _ = msg_tx.send(WorkerMsg::Panicked);
                                                std::panic::resume_unwind(panic);
                                            }
                                        };
                                        if msg_tx.send(msg).is_err() {
                                            break 'worker;
                                        }
                                    }
                                }
                            });
                        }
                        let lane = slots[token].lane;
                        let policy = policies[lane];
                        if task_tx
                            .send(Task {
                                token,
                                lane,
                                policy,
                                chain,
                            })
                            .is_err()
                        {
                            break 'run; // workers gone: shutdown underway
                        }
                    }

                    if outstanding == 0 {
                        if sched.all_exhausted() {
                            // Every source drained, every chain retired.
                            // Let the emitter catch up — its sinks run and
                            // may enqueue control commands — then poll once
                            // more before concluding.
                            if !gate.await_idle() {
                                break 'run; // shutdown
                            }
                            pending_commands.extend(feed.poll());
                            if pending_commands.is_empty() {
                                break 'run; // truly done
                            }
                            continue 'run;
                        }
                        // No chain is live, yet the gate is full: every
                        // permit is held by finished reads awaiting in-order
                        // emission. Wait for the emitter to free one.
                        if !gate.acquire() {
                            break 'run; // shutdown
                        }
                        gate.release();
                        continue;
                    }

                    // Wait for a worker to park or retire a chain.
                    let Ok(msg) = msg_rx.recv() else { break 'run };
                    match msg {
                        WorkerMsg::Parked {
                            token,
                            chain,
                            units,
                        } => {
                            outstanding -= 1;
                            tick += units;
                            slots[token].chain = Some(chain);
                            ready[slots[token].lane].push_back(token);
                        }
                        WorkerMsg::Finished {
                            token,
                            output,
                            units,
                            cancelled,
                        } => {
                            outstanding -= 1;
                            tick += units;
                            let lane = slots[token].lane;
                            let seq = slots[token].seq;
                            let start_tick = slots[token].start_tick;
                            free_tokens.push(token);
                            live[lane] -= 1;
                            // Residency feedback for Schedule::Deadline: the
                            // same number that becomes this read's latency
                            // sample.
                            sched.observe(lane, tick - start_tick);
                            if src_dry[lane]
                                && live[lane] == 0
                                && !retire_lane(
                                    &mut sched,
                                    &mut detaching,
                                    &emit_tx,
                                    &mut next_seq,
                                    lane,
                                )
                            {
                                break 'run;
                            }
                            if cancelled {
                                // The ER verdict: the read's remaining
                                // chunks were never scheduled, and its
                                // permit goes back *now*, not at emission.
                                // Its result joins the soft-gated backlog
                                // until its in-order emission slot.
                                counters.lock().expect("counters poisoned").inflight[lane] -= 1;
                                gate.release();
                                gate.push_backlog();
                            }
                            let sent = emit_tx.send(EmitMsg {
                                seq,
                                lane,
                                kind: EmitKind::Output {
                                    output,
                                    holds_permit: !cancelled,
                                    resident_units: tick - start_tick,
                                },
                            });
                            if sent.is_err() {
                                break 'run; // emitter gone (sink panicked)
                            }
                        }
                        WorkerMsg::Faulted {
                            token,
                            chain,
                            kind,
                            message,
                        } => {
                            outstanding -= 1;
                            slots[token].attempts += 1;
                            let lane = slots[token].lane;
                            let attempts = slots[token].attempts;
                            if attempts <= policies[lane].retry_attempts() {
                                // Transient budget left: rewind the chain
                                // and park it; the schedule will pick it
                                // back up like any other resident chain.
                                counters.lock().expect("counters poisoned").retried[lane] += 1;
                                slots[token].chain = Some(retry(lane, chain));
                                ready[lane].push_back(token);
                            } else {
                                // Quarantine: retire the chain like a
                                // cancelled read — permit back now, result
                                // into the backlog for in-order emission.
                                let seq = slots[token].seq;
                                let start_tick = slots[token].start_tick;
                                free_tokens.push(token);
                                live[lane] -= 1;
                                sched.observe(lane, tick - start_tick);
                                if src_dry[lane]
                                    && live[lane] == 0
                                    && !retire_lane(
                                        &mut sched,
                                        &mut detaching,
                                        &emit_tx,
                                        &mut next_seq,
                                        lane,
                                    )
                                {
                                    break 'run;
                                }
                                counters.lock().expect("counters poisoned").inflight[lane] -= 1;
                                gate.release();
                                gate.push_backlog();
                                let output = fault(
                                    lane,
                                    chain,
                                    FaultInfo {
                                        kind,
                                        message,
                                        attempts,
                                    },
                                );
                                let sent = emit_tx.send(EmitMsg {
                                    seq,
                                    lane,
                                    kind: EmitKind::Output {
                                        output,
                                        holds_permit: false,
                                        resident_units: tick - start_tick,
                                    },
                                });
                                if sent.is_err() {
                                    break 'run; // emitter gone (sink panicked)
                                }
                            }
                        }
                        WorkerMsg::Panicked => break 'run,
                    }
                }
                // `task_tx`, `msg_rx`, and `emit_tx` drop here: workers and
                // the emit loop wind down with the dispatcher.
            });
        }

        // Reorder + emit on the calling thread, in global admission order.
        // Chains retire out of order; outputs wait in the map until every
        // earlier-admitted read has been emitted. Surviving reads hold
        // their permit to this point; cancelled reads released theirs at
        // the verdict, so this backlog is what the early release bought.
        let mut pending: BTreeMap<u64, EmitMsg<O>> = BTreeMap::new();
        let mut next_emit = 0u64;
        for msg in emit_rx.iter() {
            pending.insert(msg.seq, msg);
            while let Some(m) = pending.remove(&next_emit) {
                next_emit += 1;
                match m.kind {
                    EmitKind::Output {
                        output,
                        holds_permit,
                        resident_units,
                    } => {
                        lane_samples[m.lane].push(resident_units);
                        emit(m.lane, LaneEvent::Output(output));
                        if holds_permit {
                            counters.lock().expect("counters poisoned").inflight[m.lane] -= 1;
                            gate.release();
                        } else {
                            gate.pop_backlog();
                        }
                    }
                    EmitKind::Attached => {
                        // The marker precedes the lane's first output, so
                        // growing here keeps every later Output index in
                        // bounds.
                        if lane_samples.len() <= m.lane {
                            lane_samples.resize_with(m.lane + 1, Vec::new);
                        }
                        emit(m.lane, LaneEvent::Attached);
                    }
                    EmitKind::Detached => {
                        // The lane's last output was emitted above (lower
                        // seq): its stats are final.
                        let (max_in_flight, retried) = {
                            let counters = counters.lock().expect("counters poisoned");
                            (counters.high[m.lane], counters.retried[m.lane])
                        };
                        let latency = LatencyStats::from_samples(&mut lane_samples[m.lane]);
                        emit(
                            m.lane,
                            LaneEvent::Detached(LaneStats {
                                max_in_flight,
                                retried,
                                latency,
                            }),
                        );
                    }
                }
            }
        }
    });

    let mut counters = counters.into_inner().expect("counters poisoned");
    // Attached lanes grew the sample map (on the emitter) and the counters
    // (on the dispatcher) independently; normalize to one final width.
    let final_lanes = lane_samples.len().max(counters.high.len());
    lane_samples.resize_with(final_lanes, Vec::new);
    if final_lanes > 0 {
        counters.ensure(final_lanes - 1);
    }
    EngineStats {
        in_flight_limit: limit,
        max_in_flight: gate.high_water(),
        retried: counters.retried.iter().sum(),
        max_reject_backlog: gate.backlog_high_water(),
        latency: aggregate_latency(&mut lane_samples),
        lanes: lane_samples
            .iter_mut()
            .zip(&counters.high)
            .zip(&counters.retried)
            .map(|((samples, high), retried)| LaneStats {
                max_in_flight: *high,
                retried: *retried,
                latency: LatencyStats::from_samples(samples),
            })
            .collect(),
    }
}

/// Retires a lane on the dispatcher: marks it exhausted in the schedule
/// and, if the lane is being detached, sends its in-order
/// [`EmitKind::Detached`] marker. `false` means the emitter is gone and
/// the dispatcher must shut down.
fn retire_lane<O>(
    sched: &mut SchedulerState,
    detaching: &mut [bool],
    emit_tx: &mpsc::Sender<EmitMsg<O>>,
    next_seq: &mut u64,
    lane: usize,
) -> bool {
    sched.exhausted(lane);
    if std::mem::replace(&mut detaching[lane], false) {
        let seq = *next_seq;
        *next_seq += 1;
        return emit_tx
            .send(EmitMsg {
                seq,
                lane,
                kind: EmitKind::Detached,
            })
            .is_ok();
    }
    true
}

/// The percentile summary of all lanes' residency samples together.
fn aggregate_latency(lane_samples: &mut [Vec<u64>]) -> LatencyStats {
    let mut all: Vec<u64> = lane_samples.iter().flatten().copied().collect();
    LatencyStats::from_samples(&mut all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{process_read, ErMode};
    use genpip_datasets::{DatasetProfile, SimulatedDataset, StreamingSimulator};

    fn dataset() -> SimulatedDataset {
        DatasetProfile::ecoli().scaled(0.03).generate()
    }

    fn tiny_session<'a>() -> Session<'a> {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        Session::new(GenPipConfig::for_dataset(&profile))
            .source("a", StreamingSimulator::new(&profile))
    }

    #[test]
    fn zero_queue_capacity_is_rejected() {
        let err = tiny_session()
            .options(StreamOptions {
                queue_capacity: 0,
                ..StreamOptions::default()
            })
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroQueueCapacity);
    }

    #[test]
    fn zero_reject_backlog_is_rejected() {
        let err = tiny_session()
            .options(StreamOptions {
                reject_backlog: 0,
                ..StreamOptions::default()
            })
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroRejectBacklog);
    }

    #[test]
    fn zero_checkpoint_interval_is_rejected() {
        let err = tiny_session().checkpoint(0, |_| {}).run().unwrap_err();
        assert_eq!(err, SessionError::ZeroCheckpointInterval);
    }

    #[test]
    fn checkpoints_cut_consistent_prefixes() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let cuts: Rc<RefCell<Vec<SessionCheckpoint>>> = Rc::new(RefCell::new(Vec::new()));
        let sink_cuts = Rc::clone(&cuts);
        let report = Session::new(GenPipConfig::for_dataset(&profile))
            .source("a", StreamingSimulator::new(&profile))
            .checkpoint(5, move |cut| sink_cuts.borrow_mut().push(cut.clone()))
            .run()
            .expect("valid session");
        let cuts = cuts.borrow();
        let (finals, mids): (Vec<_>, Vec<_>) = cuts.iter().partition(|c| c.complete);
        assert_eq!(finals.len(), 1, "exactly one final checkpoint");
        assert!(report.outcomes.reads_emitted / 5 >= 2, "cadence exercised");
        assert_eq!(mids.len(), report.outcomes.reads_emitted / 5);
        let mut last = 0;
        for (i, cut) in mids.iter().enumerate() {
            assert_eq!(cut.outcomes.reads_emitted, 5 * (i + 1));
            assert_eq!(cut.sources.len(), 1);
            assert_eq!(cut.sources[0].id.as_str(), "a");
            // Single source: the aggregate is the source's own prefix.
            assert_eq!(cut.sources[0].outcomes, cut.outcomes);
            assert!(cut.outcomes.reads_emitted > last);
            last = cut.outcomes.reads_emitted;
        }
        let fin = finals[0];
        assert_eq!(fin.outcomes, report.outcomes);
        assert_eq!(fin.retried, report.retried);
        assert!(fin.sources[0].done);
    }

    #[test]
    fn drain_emits_a_final_complete_checkpoint() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let control = SessionControl::new();
        let drainer = control.clone();
        let seen = Rc::new(Cell::new(0usize));
        let sink_seen = Rc::clone(&seen);
        let cuts: Rc<RefCell<Vec<SessionCheckpoint>>> = Rc::new(RefCell::new(Vec::new()));
        let sink_cuts = Rc::clone(&cuts);
        let report = Session::new(GenPipConfig::for_dataset(&profile))
            .source("a", StreamingSimulator::new(&profile))
            .sink("a", move |event| {
                if matches!(event, StreamEvent::Read(_) | StreamEvent::Failed { .. }) {
                    sink_seen.set(sink_seen.get() + 1);
                    if sink_seen.get() == 7 {
                        drainer.drain();
                    }
                }
            })
            .checkpoint(3, move |cut| sink_cuts.borrow_mut().push(cut.clone()))
            .run_with_control(&control)
            .expect("valid session");
        assert!(
            report.outcomes.reads_emitted < DatasetProfile::ecoli().scaled(0.03).n_reads,
            "drain cut the run short"
        );
        let cuts = cuts.borrow();
        let fin = cuts.last().expect("final checkpoint");
        assert!(fin.complete);
        assert_eq!(fin.outcomes, report.outcomes);
        // The drained prefix is exactly what the sinks saw.
        assert_eq!(fin.outcomes.reads_emitted, seen.get());
    }

    #[test]
    fn zero_workers_is_rejected() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let config = GenPipConfig::for_dataset(&profile).with_parallelism(Parallelism::Threads(0));
        let err = Session::new(config)
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroWorkers);
    }

    #[test]
    fn empty_source_set_is_rejected() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let err = Session::new(GenPipConfig::for_dataset(&profile))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::NoSources);
    }

    #[test]
    fn duplicate_source_ids_are_rejected() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let err = tiny_session()
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::DuplicateSource("a".into()));
    }

    #[test]
    fn sink_for_unknown_source_is_rejected() {
        let err = tiny_session().sink("ghost", |_| {}).run().unwrap_err();
        assert_eq!(err, SessionError::SinkWithoutSource("ghost".into()));
    }

    #[test]
    fn sink_may_be_attached_before_its_source() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let mut seen = 0usize;
        let report = Session::new(GenPipConfig::for_dataset(&profile))
            .sink("late", |event| {
                if let StreamEvent::Read(_) = event {
                    seen += 1;
                }
            })
            .source("late", StreamingSimulator::new(&profile))
            .run()
            .expect("sink-before-source is a valid order");
        assert_eq!(seen, profile.n_reads);
        assert_eq!(report.outcomes.reads_emitted, profile.n_reads);
    }

    #[test]
    fn priority_weight_mismatches_are_rejected() {
        let err = tiny_session()
            .schedule(Schedule::Priority(vec![1, 2]))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::PriorityWeightCount {
                sources: 1,
                weights: 2
            }
        );
        let err = tiny_session()
            .schedule(Schedule::Priority(vec![0]))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroPriorityWeight("a".into()));
    }

    #[test]
    fn incompatible_per_source_configs_are_rejected() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let session_config = GenPipConfig::for_dataset(&profile);

        let mut bad = GenPipConfig::for_dataset(&profile);
        bad.n_qs = 0;
        let err = Session::new(session_config.clone())
            .source_with_config("b", StreamingSimulator::new(&profile), bad)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::IncompatibleSourceConfig {
                id: "b".into(),
                issue: SourceConfigIssue::ZeroQsrSamples
            }
        );

        let mut bad = GenPipConfig::for_dataset(&profile);
        bad.chunk_bases = 0;
        let err = Session::new(session_config.clone())
            .source_with_config("b", StreamingSimulator::new(&profile), bad)
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::IncompatibleSourceConfig {
                id: "b".into(),
                issue: SourceConfigIssue::ZeroChunkBases
            }
        );

        let mut bad = GenPipConfig::for_dataset(&profile);
        bad.mapper.k = usize::MAX;
        let err = Session::new(session_config)
            .source_with_config("b", StreamingSimulator::new(&profile), bad)
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            SessionError::IncompatibleSourceConfig {
                issue: SourceConfigIssue::KmerExceedsReference { .. },
                ..
            }
        ));
    }

    #[test]
    fn duplicate_panel_reference_names_are_rejected_up_front() {
        // A pan-genome panel that repeats the source's own reference name
        // (or repeats an extra) would panic inside a worker thread when
        // `ReferenceSet::build` runs; validate() must catch it first.
        use genpip_genomics::GenomeBuilder;

        let profile = DatasetProfile::ecoli().scaled(0.03);
        let clash = Arc::new(GenomeBuilder::new(512).seed(7).name(profile.name).build());
        let config = GenPipConfig::for_dataset(&profile).with_extra_references(vec![clash]);
        let err = Session::new(config)
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::IncompatibleSourceConfig {
                id: "a".into(),
                issue: SourceConfigIssue::DuplicateReferenceName {
                    name: profile.name.to_string(),
                },
            }
        );

        let twin_a = Arc::new(GenomeBuilder::new(512).seed(8).name("panel").build());
        let twin_b = Arc::new(GenomeBuilder::new(768).seed(9).name("panel").build());
        let config =
            GenPipConfig::for_dataset(&profile).with_extra_references(vec![twin_a, twin_b]);
        let err = Session::new(config)
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::IncompatibleSourceConfig {
                id: "a".into(),
                issue: SourceConfigIssue::DuplicateReferenceName {
                    name: "panel".to_string(),
                },
            }
        );

        // Distinct names pass validation and the session runs.
        let extra = Arc::new(GenomeBuilder::new(512).seed(8).name("panel").build());
        let config = GenPipConfig::for_dataset(&profile).with_extra_references(vec![extra]);
        let report = Session::new(config)
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .expect("unique panel names are valid");
        assert_eq!(report.outcomes.reads_emitted, profile.n_reads);
    }

    #[test]
    fn qsr_free_flows_accept_zero_qsr_samples() {
        // `n_qs` is only consulted by QSR, so flows that never run QSR must
        // keep accepting configs with n_qs = 0 — the legacy never-fail
        // wrappers depend on this leniency.
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let mut config = GenPipConfig::for_dataset(&profile);
        config.n_qs = 0;
        for flow in [Flow::Conventional, Flow::GenPip(ErMode::None)] {
            let report = Session::new(config.clone())
                .flow(flow)
                .source("a", StreamingSimulator::new(&profile))
                .run()
                .expect("n_qs is unused by this flow");
            assert_eq!(report.outcomes.reads_emitted, profile.n_reads, "{flow:?}");
        }
        // …while QSR-running flows still reject it up front.
        let err = Session::new(config)
            .flow(Flow::GenPip(ErMode::QsrOnly))
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::IncompatibleSourceConfig {
                id: "a".into(),
                issue: SourceConfigIssue::ZeroQsrSamples
            }
        );
    }

    #[test]
    fn session_errors_display_their_cause() {
        let messages = [
            SessionError::ZeroQueueCapacity.to_string(),
            SessionError::ZeroRejectBacklog.to_string(),
            SessionError::ZeroWorkers.to_string(),
            SessionError::NoSources.to_string(),
            SessionError::DuplicateSource("x".into()).to_string(),
            SessionError::SinkWithoutSource("x".into()).to_string(),
            SessionError::PriorityWeightCount {
                sources: 2,
                weights: 1,
            }
            .to_string(),
            SessionError::ZeroPriorityWeight("x".into()).to_string(),
            SessionError::IncompatibleSourceConfig {
                id: "x".into(),
                issue: SourceConfigIssue::ZeroChunkBases,
            }
            .to_string(),
            SessionError::IncompatibleSourceConfig {
                id: "x".into(),
                issue: SourceConfigIssue::NonPositiveDwell,
            }
            .to_string(),
            SessionError::IncompatibleSourceConfig {
                id: "x".into(),
                issue: SourceConfigIssue::KmerExceedsReference {
                    k: 99,
                    reference_len: 10,
                },
            }
            .to_string(),
            SessionError::IncompatibleSourceConfig {
                id: "x".into(),
                issue: SourceConfigIssue::DuplicateReferenceName {
                    name: "panel".into(),
                },
            }
            .to_string(),
            SessionError::DeadlineTargetCount {
                sources: 2,
                targets: 1,
            }
            .to_string(),
            SessionError::ZeroDeadlineTarget("x".into()).to_string(),
            SessionError::UnknownSource("x".into()).to_string(),
            SessionError::TooManySources { limit: 4 }.to_string(),
            SessionError::SessionClosed.to_string(),
        ];
        for m in &messages {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn single_source_session_matches_the_batch_driver() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        let batch = crate::pipeline::batch_genpip(&d, &config, ErMode::Full);
        let mut reads = Vec::new();
        let report = Session::new(config)
            .flow(Flow::GenPip(ErMode::Full))
            .source("only", d.stream())
            .sink("only", |event| {
                if let StreamEvent::Read(run) = event {
                    reads.push(run);
                }
            })
            .run()
            .expect("valid session");
        assert_eq!(reads, batch.reads);
        assert_eq!(report.totals, batch.totals());
        assert_eq!(report.sources.len(), 1);
        assert_eq!(report.sources[0].summary.totals, batch.totals());
        assert_eq!(
            report.source("only").expect("registered").summary.outcomes,
            report.outcomes
        );
        assert!(report.max_in_flight <= report.in_flight_limit);
        assert_eq!(report.latency.reads, d.reads.len());
        assert!(report.latency.p50 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.max);
    }

    #[test]
    fn read_granularity_matches_chunk_granularity() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        for flow in [Flow::GenPip(ErMode::Full), Flow::Conventional] {
            let mut by_read = Vec::new();
            Session::new(config.clone())
                .flow(flow)
                .granularity(Granularity::Read)
                .source("s", d.stream())
                .sink("s", |event| {
                    if let StreamEvent::Read(run) = event {
                        by_read.push(run);
                    }
                })
                .run()
                .expect("valid session");
            let mut by_chunk = Vec::new();
            Session::new(config.clone())
                .flow(flow)
                .granularity(Granularity::Chunk)
                .source("s", d.stream())
                .sink("s", |event| {
                    if let StreamEvent::Read(run) = event {
                        by_chunk.push(run);
                    }
                })
                .run()
                .expect("valid session");
            assert_eq!(by_read, by_chunk, "{flow:?}");
        }
    }

    #[test]
    fn sinkless_sources_still_count() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let report = Session::new(config)
            .source("quiet", d.stream())
            .run()
            .expect("valid session");
        assert_eq!(report.outcomes.reads_emitted, d.reads.len());
    }

    #[test]
    fn transient_faults_succeed_on_retry() {
        // A step that panics on its first attempt per read but succeeds on
        // the retry: under `Retry { attempts: 1 }` every read must come out
        // exactly once, with the retry counter recording one attempt each.
        // This is the transient-fault path the injector (whose faults are
        // permanent, baked into the data) cannot exercise.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        let ctx = RunContext::from_source(&d.stream(), &config);
        let first_attempts = std::sync::Mutex::new(std::collections::HashSet::new());
        let mut pending = d.reads.iter();
        let control = SessionControl::new();
        let emitted = AtomicUsize::new(0);
        let stats = session_engine(
            EngineConfig {
                workers: 2,
                queue_capacity: 2,
                reject_backlog: 256,
                lanes: 1,
                decode_lanes: 1,
                schedule: &Schedule::Sequential,
                policies: &[FaultPolicy::Retry { attempts: 1 }],
                control: &control,
            },
            || WorkerScratch::new(&ctx),
            |_| pending.next().cloned(),
            |scratch, _lane, read: &mut genpip_datasets::SimulatedRead| {
                if first_attempts.lock().unwrap().insert(read.id) {
                    panic!("transient fault on read {}", read.id);
                }
                let run = process_read(&ctx, Some(ErMode::Full), read, scratch);
                ChainStep::Finished {
                    units: run.chunks.len() as u64,
                    cancelled: false,
                    output: run,
                }
            },
            |_, _: &mut [Task<_>]| {},
            |_lane, chain| chain,
            |_lane, _chain, info: FaultInfo| -> crate::pipeline::ReadRun {
                unreachable!("no read should exhaust its retry budget: {}", info.message)
            },
            |_, _run| {
                emitted.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(emitted.load(Ordering::Relaxed), d.reads.len());
        assert_eq!(stats.retried, d.reads.len());
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // Run the engine with a step function that panics partway through,
        // under a watchdog: a regression back to the deadlock (stranded
        // gate permit → dispatcher and emit loop blocked forever) fails the
        // test at the timeout instead of hanging the suite.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let d = dataset();
            let config =
                GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
            let ctx = RunContext::from_source(&d.stream(), &config);
            let mut pending = d.reads.iter();
            let control = SessionControl::new();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session_engine(
                    EngineConfig {
                        workers: 2,
                        queue_capacity: 1,
                        reject_backlog: 256,
                        lanes: 1,
                        decode_lanes: 1,
                        schedule: &Schedule::Sequential,
                        policies: &[FaultPolicy::Fail],
                        control: &control,
                    },
                    || WorkerScratch::new(&ctx),
                    |_| pending.next().cloned(),
                    |scratch, _lane, read| {
                        assert!(read.id != 3, "injected failure on read 3");
                        let run = process_read(&ctx, Some(ErMode::Full), read, scratch);
                        ChainStep::Finished {
                            units: run.chunks.len() as u64,
                            cancelled: false,
                            output: run,
                        }
                    },
                    |_, _: &mut [Task<_>]| {},
                    |_lane, chain| chain,
                    |_lane, _chain, _info| -> crate::pipeline::ReadRun {
                        unreachable!("FaultPolicy::Fail never quarantines")
                    },
                    |_, _| {},
                )
            }));
            let _ = done_tx.send(result.is_err());
        });
        match done_rx.recv_timeout(std::time::Duration::from_secs(120)) {
            Ok(panicked) => assert!(panicked, "engine swallowed the worker panic"),
            Err(_) => panic!("engine deadlocked on a worker panic"),
        }
    }
}
