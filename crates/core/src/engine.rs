//! The `Session` engine: one execution core serving any number of read
//! sources.
//!
//! Every driver in this crate — batch ([`crate::pipeline::run_genpip`] /
//! [`crate::pipeline::run_conventional`]), streaming
//! ([`crate::stream::run_genpip_streaming`] /
//! [`crate::stream::run_conventional_streaming`]), the CLI, and the bench
//! harness — is a thin wrapper over the [`Session`] built here. A session
//! is *configured*, not called: you register named sources, attach
//! per-source sinks, pick a [`Flow`] and a [`Schedule`], and run. GenPIP's
//! end-to-end gain comes from executing the whole pipeline as one tightly
//! integrated flow per read; the session generalizes that flow from "one
//! dataset at a time" to "one service instance interleaving many concurrent
//! runs over one worker pool".
//!
//! ```no_run
//! use genpip_core::engine::{Flow, Session};
//! use genpip_core::scheduler::Schedule;
//! use genpip_core::stream::StreamEvent;
//! use genpip_core::{ErMode, GenPipConfig};
//! use genpip_datasets::{DatasetProfile, StreamingSimulator};
//!
//! let ecoli = DatasetProfile::ecoli().scaled(0.05);
//! let human = DatasetProfile::human().scaled(0.05);
//! let report = Session::new(GenPipConfig::for_dataset(&ecoli))
//!     .flow(Flow::GenPip(ErMode::Full))
//!     .schedule(Schedule::Priority(vec![3, 1]))
//!     .source("ecoli", StreamingSimulator::new(&ecoli))
//!     .source("human", StreamingSimulator::new(&human))
//!     .sink("ecoli", |event| {
//!         if let StreamEvent::Read(run) = event {
//!             println!("ecoli read {} done", run.id);
//!         }
//!     })
//!     .run()
//!     .expect("session inputs are valid");
//! println!("{} reads total, peak in-flight {}",
//!          report.outcomes.reads_emitted, report.max_in_flight);
//! ```
//!
//! # Execution model
//!
//! ```text
//!  source "a" ─┐
//!  source "b" ─┼─ Schedule picks ──pull──▶ [gate ≤ Q+W] ─▶ queue(Q) ─▶ W workers
//!  source "c" ─┘   the next source                                        │
//!                                                                         ▼
//!  sink "a" ◀─┬── per-source in-order emit ◀── reorder slots ◀────────────┘
//!  sink "b" ◀─┤
//!  sink "c" ◀─┘
//! ```
//!
//! One feeder thread pulls reads from whichever source the [`Schedule`]
//! picks, one permit gate bounds reads in flight **across all sources** to
//! `queue_capacity + workers`, and one worker pool processes every read
//! against its own source's context (reference index, pore model). Results
//! are emitted in global pull order, which makes each source's emission
//! order its own pull order — per-source in-order delivery, regardless of
//! how sources interleave.
//!
//! # Guarantees
//!
//! * **Per-source bit-identity** — a source's per-read output in a
//!   multi-source session is bit-identical to running that source alone,
//!   for every [`Schedule`], [`crate::Parallelism`], [`ErMode`], and shard
//!   count (`tests/session.rs` asserts this). Scheduling changes latency,
//!   never results.
//! * **Bounded memory** — at most `queue_capacity + workers` reads are
//!   resident anywhere in the session, no matter how many sources are
//!   registered ([`SessionReport::max_in_flight`] proves the bound held).
//! * **Typed validation** — invalid inputs (zero queue, zero workers, no
//!   sources, duplicate ids, bad priority weights) fail up front with a
//!   [`SessionError`] instead of deadlocking or panicking mid-run.

use crate::config::{GenPipConfig, Parallelism};
use crate::pipeline::{process_read, ErMode, ReadRun, RunContext, WorkerScratch, WorkloadTotals};
use crate::scheduler::{Schedule, SchedulerState};
use crate::stream::{ProgressSnapshot, StreamEvent, StreamOptions, StreamSummary};
use genpip_datasets::{ReadSource, SimulatedRead, SourceId};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// Which pipeline a [`Session`] runs over its reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// GenPIP's chunk-based pipeline (paper Figure 5b / Figure 6) with the
    /// given early-rejection mode.
    GenPip(ErMode),
    /// The conventional whole-read pipeline (paper Figure 5a).
    Conventional,
}

impl Flow {
    fn er(self) -> Option<ErMode> {
        match self {
            Flow::GenPip(er) => Some(er),
            Flow::Conventional => None,
        }
    }
}

/// Why a [`Session`] refused to run. All variants are detected up front,
/// before any read is pulled or any worker is spawned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// `StreamOptions::queue_capacity` was 0 — the work queue could never
    /// stage a read.
    ZeroQueueCapacity,
    /// `Parallelism::Threads(0)` — an explicit request for no workers.
    ZeroWorkers,
    /// No source was registered.
    NoSources,
    /// Two sources were registered under the same id.
    DuplicateSource(SourceId),
    /// A sink was attached to an id with no registered source.
    SinkWithoutSource(SourceId),
    /// `Schedule::Priority` weights don't line up with the sources.
    PriorityWeightCount {
        /// Registered sources.
        sources: usize,
        /// Provided weights.
        weights: usize,
    },
    /// A priority weight of 0 would starve its source forever.
    ZeroPriorityWeight(SourceId),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::ZeroQueueCapacity => {
                write!(f, "queue capacity must be at least 1 (got 0)")
            }
            SessionError::ZeroWorkers => {
                write!(f, "worker count must be at least 1 (got Threads(0))")
            }
            SessionError::NoSources => write!(f, "session has no sources"),
            SessionError::DuplicateSource(id) => {
                write!(f, "source id {:?} registered twice", id.as_str())
            }
            SessionError::SinkWithoutSource(id) => {
                write!(f, "sink attached to unknown source id {:?}", id.as_str())
            }
            SessionError::PriorityWeightCount { sources, weights } => write!(
                f,
                "priority schedule has {weights} weight(s) for {sources} source(s)"
            ),
            SessionError::ZeroPriorityWeight(id) => {
                write!(
                    f,
                    "priority weight for source {:?} is 0 (would starve it)",
                    id.as_str()
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// What one source contributed to a [`SessionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SourceReport {
    /// The id the source was registered under.
    pub id: SourceId,
    /// This source's own counters. `workers` and `in_flight_limit` are the
    /// session-wide values (sources share the pool and the gate);
    /// `max_in_flight` is this source's own high-water mark.
    pub summary: StreamSummary,
}

/// What a finished [`Session`] leaves behind: per-source summaries plus the
/// aggregate, O(sources) in size regardless of how many reads flowed.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Per-source summaries, in registration order.
    pub sources: Vec<SourceReport>,
    /// Aggregate outcome counters over all sources.
    pub outcomes: ProgressSnapshot,
    /// Aggregate workload counters over all sources.
    pub totals: WorkloadTotals,
    /// Worker threads used.
    pub workers: usize,
    /// The enforced bound on reads in flight across **all** sources
    /// (`queue_capacity + workers`; 1 for the serial in-line path).
    pub in_flight_limit: usize,
    /// High-water mark of reads simultaneously in flight, summed over
    /// sources. Always ≤ `in_flight_limit`.
    pub max_in_flight: usize,
}

impl SessionReport {
    /// The report of the source registered under `id`, if any.
    pub fn source(&self, id: impl Into<SourceId>) -> Option<&SourceReport> {
        let id = id.into();
        self.sources.iter().find(|s| s.id == id)
    }
}

/// A boxed per-source event sink.
type BoxedSink<'a> = Box<dyn FnMut(StreamEvent) + 'a>;

struct SourceSlot<'a> {
    id: SourceId,
    source: Box<dyn ReadSource + Send + 'a>,
    sink: Option<BoxedSink<'a>>,
}

/// A configured execution of the pipeline over one or more named read
/// sources — the one public execution API behind every `run_*` wrapper.
///
/// Build with [`Session::new`], register sources with [`Session::source`]
/// (and optionally per-source sinks with [`Session::sink`]), pick a
/// [`Flow`] and [`Schedule`], then [`Session::run`]. See the
/// [module docs](crate::engine) for the execution model and guarantees.
pub struct Session<'a> {
    config: GenPipConfig,
    flow: Flow,
    schedule: Schedule,
    options: StreamOptions,
    slots: Vec<SourceSlot<'a>>,
    /// Sinks attached before their source was registered — matched up at
    /// [`Session::run`], so builder call order doesn't matter.
    pending_sinks: Vec<(SourceId, BoxedSink<'a>)>,
}

impl<'a> Session<'a> {
    /// Starts a session with the full GenPIP flow ([`Flow::GenPip`] with
    /// [`ErMode::Full`]), a [`Schedule::FairShare`] scheduler, default
    /// [`StreamOptions`], and no sources.
    pub fn new(config: GenPipConfig) -> Session<'a> {
        Session {
            config,
            flow: Flow::GenPip(ErMode::Full),
            schedule: Schedule::FairShare,
            options: StreamOptions::default(),
            slots: Vec::new(),
            pending_sinks: Vec::new(),
        }
    }

    /// Selects which pipeline the session runs.
    pub fn flow(mut self, flow: Flow) -> Session<'a> {
        self.flow = flow;
        self
    }

    /// Selects how the registered sources are interleaved.
    pub fn schedule(mut self, schedule: Schedule) -> Session<'a> {
        self.schedule = schedule;
        self
    }

    /// Sets the transport knobs (queue capacity, progress cadence). The
    /// progress cadence is per source: each source's sink receives a
    /// [`StreamEvent::Progress`] every `progress_every` of *its own* reads.
    pub fn options(mut self, options: StreamOptions) -> Session<'a> {
        self.options = options;
        self
    }

    /// Registers a source under `id`. Sources are pulled in the order the
    /// [`Schedule`] dictates; each source's reads are processed against its
    /// own reference and pore model, and emitted in its own read order.
    pub fn source(
        mut self,
        id: impl Into<SourceId>,
        source: impl ReadSource + Send + 'a,
    ) -> Session<'a> {
        self.slots.push(SourceSlot {
            id: id.into(),
            source: Box::new(source),
            sink: None,
        });
        self
    }

    /// Attaches a sink to the source registered under `id`, replacing any
    /// previous sink for it. The sink receives that source's events only —
    /// every [`ReadRun`] in the source's read order, plus periodic
    /// [`ProgressSnapshot`]s of that source's counters. Sinks run on the
    /// calling thread; a slow sink applies backpressure to the whole
    /// session. Call order is flexible — a sink may be attached before its
    /// source is registered; an id that still has no source when
    /// [`Session::run`] is called fails it with
    /// [`SessionError::SinkWithoutSource`].
    pub fn sink(
        mut self,
        id: impl Into<SourceId>,
        sink: impl FnMut(StreamEvent) + 'a,
    ) -> Session<'a> {
        self.pending_sinks.push((id.into(), Box::new(sink)));
        self
    }

    /// Moves pending sinks onto their slots (later attachments win), then
    /// reports the first sink whose source never appeared.
    fn attach_sinks(&mut self) -> Result<(), SessionError> {
        for (id, sink) in self.pending_sinks.drain(..) {
            match self.slots.iter_mut().find(|s| s.id == id) {
                Some(slot) => slot.sink = Some(sink),
                None => return Err(SessionError::SinkWithoutSource(id)),
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), SessionError> {
        if self.options.queue_capacity == 0 {
            return Err(SessionError::ZeroQueueCapacity);
        }
        if matches!(self.config.parallelism, Parallelism::Threads(0)) {
            return Err(SessionError::ZeroWorkers);
        }
        if self.slots.is_empty() {
            return Err(SessionError::NoSources);
        }
        for (i, slot) in self.slots.iter().enumerate() {
            if self.slots[..i].iter().any(|s| s.id == slot.id) {
                return Err(SessionError::DuplicateSource(slot.id.clone()));
            }
        }
        if let Schedule::Priority(weights) = &self.schedule {
            if weights.len() != self.slots.len() {
                return Err(SessionError::PriorityWeightCount {
                    sources: self.slots.len(),
                    weights: weights.len(),
                });
            }
            if let Some(i) = weights.iter().position(|&w| w == 0) {
                return Err(SessionError::ZeroPriorityWeight(self.slots[i].id.clone()));
            }
        }
        Ok(())
    }

    /// Validates the configuration, then pulls every registered source dry
    /// through the shared worker pool, delivering results to the per-source
    /// sinks as they complete.
    ///
    /// Blocks until all sources are exhausted. A panic in a source, worker,
    /// or sink tears the session down and propagates rather than
    /// deadlocking.
    pub fn run(mut self) -> Result<SessionReport, SessionError> {
        self.validate()?;
        self.attach_sinks()?;
        let Session {
            config,
            flow,
            schedule,
            options,
            slots,
            ..
        } = self;
        let n = slots.len();
        let er = flow.er();
        let workers = config.parallelism.workers().max(1);

        let mut ids = Vec::with_capacity(n);
        let mut sources = Vec::with_capacity(n);
        let mut sinks = Vec::with_capacity(n);
        for slot in slots {
            ids.push(slot.id);
            sources.push(slot.source);
            sinks.push(slot.sink);
        }
        // One immutable context per source (its reference index, basecaller,
        // chunk geometry), shared by every worker. Built before the sources
        // move into the feeder closure — contexts copy what they need.
        let contexts: Vec<RunContext<'_>> = sources
            .iter()
            .map(|s| RunContext::from_source(&**s, &config))
            .collect();

        let mut sched = SchedulerState::new(&schedule, n);
        // Per-source in-flight accounting (pulled on the feeder thread,
        // released on the emitting thread); the *global* bound is enforced
        // by the engine's gate, these only attribute the high-water marks.
        let in_flight: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let high: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();

        let mut per_outcomes = vec![ProgressSnapshot::default(); n];
        let mut per_totals = vec![WorkloadTotals::default(); n];
        let mut outcomes = ProgressSnapshot::default();
        let mut totals = WorkloadTotals::default();

        let stats = {
            let contexts = &contexts;
            let in_flight = &in_flight;
            let high = &high;
            let per_outcomes = &mut per_outcomes;
            let per_totals = &mut per_totals;
            let outcomes = &mut outcomes;
            let totals = &mut totals;
            let sinks = &mut sinks;
            session_engine(
                workers,
                options.queue_capacity,
                || -> Vec<Option<WorkerScratch>> { (0..n).map(|_| None).collect() },
                move || loop {
                    let s = sched.next()?;
                    match sources[s].next_read() {
                        Some(read) => {
                            let now = in_flight[s].fetch_add(1, Ordering::Relaxed) + 1;
                            high[s].fetch_max(now, Ordering::Relaxed);
                            break Some((s, read));
                        }
                        None => sched.exhausted(s),
                    }
                },
                move |scratch, (s, read): (usize, SimulatedRead)| {
                    // Scratch is per (worker, source): lazily built because a
                    // worker may never see some sources' reads.
                    let slot = scratch[s].get_or_insert_with(|| WorkerScratch::new(&contexts[s]));
                    (s, process_read(&contexts[s], er, &read, slot))
                },
                move |(s, run): (usize, ReadRun)| {
                    in_flight[s].fetch_sub(1, Ordering::Relaxed);
                    totals.accumulate(&run);
                    outcomes.observe(&run);
                    per_totals[s].accumulate(&run);
                    per_outcomes[s].observe(&run);
                    let snapshot_due = options.progress_every > 0
                        && per_outcomes[s].reads_emitted % options.progress_every == 0;
                    if let Some(sink) = sinks[s].as_mut() {
                        sink(StreamEvent::Read(run));
                        if snapshot_due {
                            sink(StreamEvent::Progress(per_outcomes[s]));
                        }
                    }
                },
            )
        };

        let sources = ids
            .into_iter()
            .enumerate()
            .map(|(s, id)| SourceReport {
                id,
                summary: StreamSummary {
                    outcomes: per_outcomes[s],
                    totals: per_totals[s],
                    workers,
                    in_flight_limit: stats.in_flight_limit,
                    max_in_flight: high[s].load(Ordering::Relaxed),
                },
            })
            .collect();
        Ok(SessionReport {
            sources,
            outcomes,
            totals,
            workers,
            in_flight_limit: stats.in_flight_limit,
            max_in_flight: stats.max_in_flight,
        })
    }
}

/// A counting gate bounding how many items are in flight: `acquire` blocks
/// while `limit` permits are out, `release` frees one. Tracks the high-water
/// mark so tests (and the bench report) can assert the bound really held.
///
/// The gate can also be `open`ed — permits stop mattering and blocked
/// acquirers return `false`. That is the shutdown path: if the sink or a
/// worker panics, permits held by dropped items would never be released and
/// the feeder would block forever; opening the gate turns that hang into a
/// propagated panic.
struct FlowGate {
    state: Mutex<GateState>,
    freed: Condvar,
    limit: usize,
    high: AtomicUsize,
}

struct GateState {
    used: usize,
    open: bool,
}

impl FlowGate {
    fn new(limit: usize) -> FlowGate {
        FlowGate {
            state: Mutex::new(GateState {
                used: 0,
                open: false,
            }),
            freed: Condvar::new(),
            limit,
            high: AtomicUsize::new(0),
        }
    }

    /// Takes a permit, blocking while the limit is reached. `false` means
    /// the gate was opened for shutdown and no permit was taken.
    fn acquire(&self) -> bool {
        let mut state = self.state.lock().expect("gate poisoned");
        while !state.open && state.used >= self.limit {
            state = self.freed.wait(state).expect("gate poisoned");
        }
        if state.open {
            return false;
        }
        state.used += 1;
        self.high.fetch_max(state.used, Ordering::Relaxed);
        true
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.used -= 1;
        drop(state);
        self.freed.notify_one();
    }

    /// Lets every current and future `acquire` through empty-handed.
    fn open(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.open = true;
        drop(state);
        self.freed.notify_all();
    }

    fn high_water(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }
}

/// Opens the gate when dropped — normally after the emit loop (harmless:
/// the feeder has already exited), and crucially during unwinding, so a
/// panicking sink or worker pool releases the feeder instead of deadlocking
/// the scope join.
struct OpenOnDrop<'a>(&'a FlowGate);

impl Drop for OpenOnDrop<'_> {
    fn drop(&mut self) {
        self.0.open();
    }
}

/// What the engine enforced and observed: the single source of truth for
/// the in-flight bound, so callers never re-derive it.
pub(crate) struct EngineStats {
    /// The enforced bound on in-flight items (`queue_capacity + workers`,
    /// or 1 for the serial in-line path).
    pub(crate) in_flight_limit: usize,
    /// High-water mark of items simultaneously in flight.
    pub(crate) max_in_flight: usize,
}

/// The one execution core behind every driver: pulls items from `pull`,
/// processes them with `work` on `workers` threads (each with its own state
/// from `worker_state`) under a `queue_capacity`-bounded work queue, and
/// calls `emit` with the results **in pull order**. Returns the enforced
/// in-flight limit and its high-water mark.
///
/// With one worker the engine degenerates to the in-line serial loop — the
/// reference execution, with exactly one item in flight and no threads.
///
/// A panic anywhere — source, worker, or sink — tears the pipeline down
/// (gate opened, channels closed) and propagates out of the scope join
/// rather than deadlocking; already-finished earlier items may still be
/// emitted first.
pub(crate) fn session_engine<T, O, S, B, P, F, G>(
    workers: usize,
    queue_capacity: usize,
    worker_state: B,
    mut pull: P,
    work: F,
    mut emit: G,
) -> EngineStats
where
    T: Send,
    O: Send,
    B: Fn() -> S + Sync,
    P: FnMut() -> Option<T> + Send,
    F: Fn(&mut S, T) -> O + Sync,
    G: FnMut(O),
{
    if workers <= 1 {
        let mut state = worker_state();
        let mut any = false;
        while let Some(item) = pull() {
            any = true;
            emit(work(&mut state, item));
        }
        return EngineStats {
            in_flight_limit: 1,
            max_in_flight: usize::from(any),
        };
    }

    let capacity = queue_capacity.max(1);
    let limit = capacity + workers;
    // Both channels are unbounded; the gate alone enforces the in-flight
    // bound (≤ `limit` items hold permits, so neither channel can hold more
    // than `limit` entries). Keeping `acquire` the feeder's only blocking
    // point means opening the gate is a complete shutdown path.
    let gate = FlowGate::new(limit);
    let (work_tx, work_rx) = mpsc::channel::<(usize, T)>();
    let work_rx = Mutex::new(work_rx);
    // `None` is a worker's dying gasp: "I panicked on this index — abort."
    let (done_tx, done_rx) = mpsc::channel::<(usize, Option<O>)>();

    std::thread::scope(|scope| {
        // Feeder: pulls from the sources (serially — sources are stateful
        // cursors) and stages work, blocking on the gate when the pipeline
        // is full. Holding a permit from pull to emit is what bounds
        // in-flight items end to end.
        {
            let gate = &gate;
            let pull = &mut pull;
            scope.spawn(move || {
                let mut index = 0usize;
                loop {
                    if !gate.acquire() {
                        break; // shutdown: no permit taken
                    }
                    let Some(item) = pull() else {
                        gate.release();
                        break;
                    };
                    if work_tx.send((index, item)).is_err() {
                        gate.release();
                        break;
                    }
                    index += 1;
                }
                // `work_tx` drops here; workers drain the queue and exit.
            });
        }

        for _ in 0..workers {
            let done_tx = done_tx.clone();
            let work_rx = &work_rx;
            let work = &work;
            let worker_state = &worker_state;
            scope.spawn(move || {
                let mut state = worker_state();
                loop {
                    let received = work_rx.lock().expect("queue poisoned").recv();
                    let Ok((index, item)) = received else { break };
                    // A panicking `work` would otherwise strand this item's
                    // permit and deadlock the reorder loop on its index:
                    // catch it, tell the consumer to abort, then rethrow so
                    // the scope propagates it after teardown.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        work(&mut state, item)
                    }));
                    match outcome {
                        Ok(out) => {
                            if done_tx.send((index, Some(out))).is_err() {
                                break;
                            }
                        }
                        Err(panic) => {
                            let _ = done_tx.send((index, None));
                            std::panic::resume_unwind(panic);
                        }
                    }
                }
            });
        }
        drop(done_tx); // the workers' clones keep the channel open
        let _shutdown = OpenOnDrop(&gate);

        // Reorder + emit on the calling thread. Workers finish out of
        // order; results wait in a preallocated per-index slot ring until
        // every earlier item has been emitted. A slot index never collides:
        // at most `limit` items are in flight, and a result only waits on
        // items pulled before it.
        let mut slots: Vec<Option<O>> = (0..limit).map(|_| None).collect();
        let mut next_emit = 0usize;
        for (index, out) in done_rx.iter() {
            let Some(out) = out else {
                break; // a worker panicked: stop consuming, let _shutdown
                       // open the gate; the scope join rethrows the panic.
            };
            debug_assert!(index >= next_emit && index - next_emit < limit);
            slots[index % limit] = Some(out);
            while let Some(ready) = slots[next_emit % limit].take() {
                emit(ready);
                gate.release();
                next_emit += 1;
            }
        }
    });
    EngineStats {
        in_flight_limit: limit,
        max_in_flight: gate.high_water(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_datasets::{DatasetProfile, SimulatedDataset, StreamingSimulator};

    fn dataset() -> SimulatedDataset {
        DatasetProfile::ecoli().scaled(0.03).generate()
    }

    fn tiny_session<'a>() -> Session<'a> {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        Session::new(GenPipConfig::for_dataset(&profile))
            .source("a", StreamingSimulator::new(&profile))
    }

    #[test]
    fn zero_queue_capacity_is_rejected() {
        let err = tiny_session()
            .options(StreamOptions {
                queue_capacity: 0,
                progress_every: 0,
            })
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroQueueCapacity);
    }

    #[test]
    fn zero_workers_is_rejected() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let config = GenPipConfig::for_dataset(&profile).with_parallelism(Parallelism::Threads(0));
        let err = Session::new(config)
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroWorkers);
    }

    #[test]
    fn empty_source_set_is_rejected() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let err = Session::new(GenPipConfig::for_dataset(&profile))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::NoSources);
    }

    #[test]
    fn duplicate_source_ids_are_rejected() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let err = tiny_session()
            .source("a", StreamingSimulator::new(&profile))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::DuplicateSource("a".into()));
    }

    #[test]
    fn sink_for_unknown_source_is_rejected() {
        let err = tiny_session().sink("ghost", |_| {}).run().unwrap_err();
        assert_eq!(err, SessionError::SinkWithoutSource("ghost".into()));
    }

    #[test]
    fn sink_may_be_attached_before_its_source() {
        let profile = DatasetProfile::ecoli().scaled(0.03);
        let mut seen = 0usize;
        let report = Session::new(GenPipConfig::for_dataset(&profile))
            .sink("late", |event| {
                if let StreamEvent::Read(_) = event {
                    seen += 1;
                }
            })
            .source("late", StreamingSimulator::new(&profile))
            .run()
            .expect("sink-before-source is a valid order");
        assert_eq!(seen, profile.n_reads);
        assert_eq!(report.outcomes.reads_emitted, profile.n_reads);
    }

    #[test]
    fn priority_weight_mismatches_are_rejected() {
        let err = tiny_session()
            .schedule(Schedule::Priority(vec![1, 2]))
            .run()
            .unwrap_err();
        assert_eq!(
            err,
            SessionError::PriorityWeightCount {
                sources: 1,
                weights: 2
            }
        );
        let err = tiny_session()
            .schedule(Schedule::Priority(vec![0]))
            .run()
            .unwrap_err();
        assert_eq!(err, SessionError::ZeroPriorityWeight("a".into()));
    }

    #[test]
    fn session_errors_display_their_cause() {
        let messages = [
            SessionError::ZeroQueueCapacity.to_string(),
            SessionError::ZeroWorkers.to_string(),
            SessionError::NoSources.to_string(),
            SessionError::DuplicateSource("x".into()).to_string(),
            SessionError::SinkWithoutSource("x".into()).to_string(),
            SessionError::PriorityWeightCount {
                sources: 2,
                weights: 1,
            }
            .to_string(),
            SessionError::ZeroPriorityWeight("x".into()).to_string(),
        ];
        for m in &messages {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn single_source_session_matches_the_batch_driver() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        let batch = crate::pipeline::run_genpip(&d, &config, ErMode::Full);
        let mut reads = Vec::new();
        let report = Session::new(config)
            .flow(Flow::GenPip(ErMode::Full))
            .source("only", d.stream())
            .sink("only", |event| {
                if let StreamEvent::Read(run) = event {
                    reads.push(run);
                }
            })
            .run()
            .expect("valid session");
        assert_eq!(reads, batch.reads);
        assert_eq!(report.totals, batch.totals());
        assert_eq!(report.sources.len(), 1);
        assert_eq!(report.sources[0].summary.totals, batch.totals());
        assert_eq!(
            report.source("only").expect("registered").summary.outcomes,
            report.outcomes
        );
        assert!(report.max_in_flight <= report.in_flight_limit);
    }

    #[test]
    fn sinkless_sources_still_count() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let report = Session::new(config)
            .source("quiet", d.stream())
            .run()
            .expect("valid session");
        assert_eq!(report.outcomes.reads_emitted, d.reads.len());
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // Run the engine with a work function that panics partway through,
        // under a watchdog: a regression back to the deadlock (stranded
        // gate permit → feeder and reorder loop blocked forever) fails the
        // test at the timeout instead of hanging the suite.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let d = dataset();
            let config =
                GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
            let ctx = RunContext::from_source(&d.stream(), &config);
            let mut pending = d.reads.iter();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                session_engine(
                    2,
                    1,
                    || WorkerScratch::new(&ctx),
                    || pending.next(),
                    |scratch, read| {
                        assert!(read.id != 3, "injected failure on read 3");
                        process_read(&ctx, Some(ErMode::Full), read, scratch)
                    },
                    |_| {},
                )
            }));
            let _ = done_tx.send(result.is_err());
        });
        match done_rx.recv_timeout(std::time::Duration::from_secs(120)) {
            Ok(panicked) => assert!(panicked, "engine swallowed the worker panic"),
            Err(_) => panic!("engine deadlocked on a worker panic"),
        }
    }
}
