//! Figure 11: energy reduction of the ten systems over CPU.

use crate::experiments::fig10::{systems_matrix, SystemsMatrix};
use crate::experiments::FigureTable;
use crate::systems::SystemKind;
use std::fmt;

/// Paper GMEAN energy reductions vs CPU (Figure 11 and Section 6.2).
/// `None` where the paper gives no precise number.
pub fn paper_energy_reduction(kind: SystemKind) -> Option<f64> {
    match kind {
        SystemKind::Cpu => Some(1.0),
        SystemKind::Gpu => Some(32.8 / 20.8),
        SystemKind::Pim => Some(32.8 / 1.37),
        SystemKind::GenPipCp => Some(32.8 / 1.37),
        SystemKind::GenPipCpQsr => Some(32.8 / 1.07),
        SystemKind::GenPip => Some(32.8),
        // The CPU/GPU ±CP/GP energy bars are only readable approximately
        // from the figure; no reference value.
        _ => None,
    }
}

/// Result of the Figure 11 experiment.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// The underlying matrix (shared with Figure 10).
    pub matrix: SystemsMatrix,
}

/// Runs the Figure 11 experiment at `scale`.
pub fn run(scale: f64) -> Fig11 {
    Fig11 {
        matrix: systems_matrix(scale),
    }
}

/// Builds the Figure 11 report from an existing matrix (so a harness that
/// already ran Figure 10 does not recompute the workloads).
pub fn from_matrix(matrix: SystemsMatrix) -> Fig11 {
    Fig11 { matrix }
}

impl Fig11 {
    /// The energy-reduction table.
    pub fn table(&self) -> FigureTable {
        self.matrix.table(
            "Figure 11 — energy reduction over CPU (higher is better)",
            |e| e.energy_j(),
            paper_energy_reduction,
        )
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::SystemEvaluation;

    #[test]
    fn energy_orderings_hold() {
        let fig = run(0.05);
        let metric = |e: &SystemEvaluation| e.energy_j();
        let g = |k: SystemKind| fig.matrix.gmean(k, metric);
        assert!(g(SystemKind::GenPip) > g(SystemKind::GenPipCpQsr));
        assert!(g(SystemKind::GenPipCpQsr) > g(SystemKind::GenPipCp));
        assert!(g(SystemKind::GenPip) > g(SystemKind::Pim));
        assert!(g(SystemKind::Gpu) > 1.0);
        assert!(g(SystemKind::GenPip) / g(SystemKind::Pim) > 1.1);
    }

    #[test]
    fn table_renders_with_paper_column() {
        let fig = run(0.05);
        let t = fig.table();
        assert_eq!(t.value("CPU", 7), Some(1.0));
        assert!((t.value("GenPIP", 7).unwrap() - 32.8).abs() < 1e-9);
        assert!(fig.to_string().contains("Figure 11"));
    }
}
