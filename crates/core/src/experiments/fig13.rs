//! Figure 13: ER-CMR sensitivity to the number of combined chunks.
//!
//! For `N_cm ∈ {1..5}` on both datasets: CMR rejection ratio and
//! false-negative ratio against the conventional oracle. QSR runs at its
//! operating point throughout, as in GenPIP's actual flow (Figure 6).

use crate::analysis::{cmr_analysis, RejectionAnalysis};
use crate::config::GenPipConfig;
use crate::experiments::FigureTable;
use crate::pipeline::{batch_conventional, batch_genpip, ErMode};
use genpip_datasets::DatasetProfile;
use std::fmt;

/// The combined-chunk counts the paper sweeps.
pub const N_CM_RANGE: [usize; 5] = [1, 2, 3, 4, 5];

/// One dataset's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CmrSweep {
    /// Dataset name.
    pub dataset: String,
    /// `(n_cm, analysis)` per swept value.
    pub points: Vec<(usize, RejectionAnalysis)>,
}

/// Result of the Figure 13 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// E. coli and human sweeps.
    pub sweeps: Vec<CmrSweep>,
}

/// Runs the sweep at `scale`.
pub fn run(scale: f64) -> Fig13 {
    let mut sweeps = Vec::new();
    for profile in [DatasetProfile::ecoli(), DatasetProfile::human()] {
        let profile = profile.scaled(scale);
        let dataset = profile.generate();
        let base_config = GenPipConfig::for_dataset(&profile);
        let oracle = batch_conventional(&dataset, &base_config);
        let mut points = Vec::new();
        for n_cm in N_CM_RANGE {
            let mut config = base_config.clone();
            config.n_cm = n_cm;
            let er = batch_genpip(&dataset, &config, ErMode::Full);
            points.push((n_cm, cmr_analysis(&er, &oracle)));
        }
        sweeps.push(CmrSweep {
            dataset: profile.name.to_string(),
            points,
        });
    }
    Fig13 { sweeps }
}

impl Fig13 {
    /// Rejection-ratio table (paper Figure 13a).
    pub fn rejection_table(&self) -> FigureTable {
        self.metric_table(
            "Figure 13(a) — ER-CMR rejection ratio vs combined chunks (decreasing in N_cm)",
            |a| a.rejection_ratio(),
        )
    }

    /// False-negative-ratio table (paper Figure 13b).
    pub fn false_negative_table(&self) -> FigureTable {
        self.metric_table(
            "Figure 13(b) — ER-CMR false negative ratio vs combined chunks (→ ≈0)",
            |a| a.false_negative_ratio(),
        )
    }

    fn metric_table(&self, title: &str, metric: impl Fn(&RejectionAnalysis) -> f64) -> FigureTable {
        let columns = N_CM_RANGE.iter().map(|n| format!("Ncm={n}")).collect();
        let mut t = FigureTable::new(title, columns);
        for sweep in &self.sweeps {
            t.push_row(
                sweep.dataset.clone(),
                sweep.points.iter().map(|(_, a)| Some(metric(a))).collect(),
            );
        }
        t
    }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.rejection_table())?;
        write!(f, "{}", self.false_negative_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_the_paper() {
        let fig = run(0.15);
        for sweep in &fig.sweeps {
            let rejections: Vec<f64> = sweep
                .points
                .iter()
                .map(|(_, a)| a.rejection_ratio())
                .collect();
            let fns: Vec<f64> = sweep
                .points
                .iter()
                .map(|(_, a)| a.false_negative_ratio())
                .collect();
            // Paper observation 1: rejection ratio decreases with N_cm.
            assert!(
                rejections[0] >= *rejections.last().unwrap(),
                "{}: rejections {rejections:?}",
                sweep.dataset
            );
            // Paper observation 2: FN ratio decreases and ends near zero.
            assert!(
                fns.last().unwrap() <= &(fns[0] + 1e-9),
                "{}: fns {fns:?}",
                sweep.dataset
            );
            assert!(
                *fns.last().unwrap() < 0.25,
                "{}: terminal FN {}",
                sweep.dataset,
                fns.last().unwrap()
            );
            // Operating-point rejection in a plausible band (paper: 6.3 %
            // E. coli at N_cm = 5, 5.5 % human at N_cm = 3).
            let last = *rejections.last().unwrap();
            assert!((0.01..0.25).contains(&last), "{}: {last}", sweep.dataset);
        }
    }

    #[test]
    fn tables_render() {
        let fig = run(0.08);
        let s = fig.to_string();
        assert!(s.contains("Figure 13(a)"));
        assert!(s.contains("Ncm=5"));
    }
}
