//! Table 1: dataset statistics of the basecalled reads.
//!
//! The paper's Table 1 describes the *basecalled* datasets (read lengths and
//! qualities as the basecaller reports them), so this experiment basecalls
//! every simulated read and computes the same six statistics. The synthetic
//! profiles are scaled down ~40× from the real datasets; lengths are
//! therefore compared in *shape* (orderings, mean-vs-median skew), while the
//! quality columns are directly comparable.

use crate::experiments::FigureTable;
use genpip_basecall::Basecaller;
use genpip_datasets::{DatasetProfile, SimulatedDataset};
use genpip_genomics::stats::ReadSetStats;
use genpip_genomics::{Read, ReadSet};
use std::fmt;

/// Paper values for (mean length, mean quality, median length, median
/// quality, reads, total bases).
pub const PAPER_ECOLI: [f64; 6] = [9005.9, 7.9, 8652.0, 9.3, 58_221.0, 524_330_535.0];
/// Paper values for the human dataset.
pub const PAPER_HUMAN: [f64; 6] = [5738.3, 11.3, 6124.0, 12.1, 449_212.0, 2_577_692_011.0];

/// One dataset's measured statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// Dataset name.
    pub dataset: String,
    /// Measured statistics of the basecalled reads.
    pub stats: ReadSetStats,
}

/// Result of the Table 1 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Tab01 {
    /// E. coli and human rows.
    pub rows: Vec<DatasetRow>,
}

/// Basecalls a whole simulated dataset into a [`ReadSet`] (300-base chunks).
pub fn basecall_dataset(dataset: &SimulatedDataset) -> ReadSet {
    let caller = Basecaller::new(dataset.pore_model(), dataset.synthesizer().mean_dwell());
    let spc = genpip_signal::chunk::samples_per_chunk(300, dataset.synthesizer().mean_dwell());
    dataset
        .reads
        .iter()
        .map(|r| {
            let called = caller.call_read(&r.signal.samples, spc);
            Read::new(r.id, called.seq, called.quals, r.origin)
        })
        .collect()
}

/// Runs the experiment at `scale`.
pub fn run(scale: f64) -> Tab01 {
    let rows = [DatasetProfile::ecoli(), DatasetProfile::human()]
        .into_iter()
        .map(|p| {
            let profile = p.scaled(scale);
            let dataset = profile.generate();
            let reads = basecall_dataset(&dataset);
            DatasetRow {
                dataset: profile.name.to_string(),
                stats: ReadSetStats::of(&reads),
            }
        })
        .collect();
    Tab01 { rows }
}

impl Tab01 {
    /// Renders the measured-vs-paper table.
    pub fn table(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Table 1 — dataset statistics (synthetic, ≈40× scaled down in size)",
            vec![
                "mean len".into(),
                "mean qual".into(),
                "median len".into(),
                "median qual".into(),
                "reads".into(),
                "total bases".into(),
            ],
        );
        for row in &self.rows {
            let s = &row.stats;
            t.push_row(
                row.dataset.clone(),
                vec![
                    Some(s.mean_read_length),
                    Some(s.mean_read_quality),
                    Some(s.median_read_length),
                    Some(s.median_read_quality),
                    Some(s.number_of_reads as f64),
                    Some(s.total_bases as f64),
                ],
            );
            let paper = if row.dataset == "human" {
                PAPER_HUMAN
            } else {
                PAPER_ECOLI
            };
            t.push_row(
                format!("{} (paper)", row.dataset),
                paper.into_iter().map(Some).collect(),
            );
        }
        t
    }
}

impl fmt::Display for Tab01 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_structure_matches_the_paper() {
        let tab = run(0.15);
        let ecoli = &tab.rows[0].stats;
        let human = &tab.rows[1].stats;
        // Quality columns are directly comparable to Table 1.
        assert!(
            (ecoli.mean_read_quality - 7.9).abs() < 1.8,
            "ecoli mean quality {}",
            ecoli.mean_read_quality
        );
        assert!(
            (human.mean_read_quality - 11.3).abs() < 1.8,
            "human mean quality {}",
            human.mean_read_quality
        );
        // Structural facts: human higher quality; both datasets have
        // median quality above mean quality (low-quality tail).
        assert!(human.mean_read_quality > ecoli.mean_read_quality);
        assert!(ecoli.median_read_quality > ecoli.mean_read_quality);
        assert!(human.median_read_quality > human.mean_read_quality);
    }

    #[test]
    fn length_skews_match_the_paper() {
        let tab = run(0.15);
        let ecoli = &tab.rows[0].stats;
        let human = &tab.rows[1].stats;
        // E. coli: right-skewed (mean > median); human: left-skewed.
        assert!(ecoli.mean_read_length > ecoli.median_read_length);
        assert!(human.mean_read_length < human.median_read_length);
        // E. coli reads are longer.
        assert!(ecoli.mean_read_length > human.mean_read_length);
    }

    #[test]
    fn table_renders_paper_rows() {
        let tab = run(0.08);
        let s = tab.to_string();
        assert!(s.contains("ecoli (paper)"));
        assert!(s.contains("human (paper)"));
    }
}
