//! Section 2.3: the useless-read statistics that motivate early rejection.
//!
//! The paper measures, on the real E. coli dataset, that 20.5 % of reads are
//! basecalled but discarded as low-quality and a further 10 % are
//! high-quality but unmapped — 30.5 % of all basecalling work wasted. This
//! experiment reproduces the measurement on the synthetic dataset, plus the
//! false-negative audit of Section 6.3.1.

use crate::analysis::{false_negative_audit, FalseNegativeAudit, UselessReadStats};
use crate::config::GenPipConfig;
use crate::experiments::FigureTable;
use crate::pipeline::{batch_conventional, batch_genpip, ErMode};
use genpip_datasets::DatasetProfile;
use std::fmt;

/// Paper values for E. coli: (low-quality, unmapped, useless) fractions.
pub const PAPER_ECOLI: (f64, f64, f64) = (0.205, 0.10, 0.305);

/// Result of the useless-reads experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct UselessReads {
    /// Per-dataset statistics.
    pub rows: Vec<(String, UselessReadStats)>,
    /// The E. coli false-negative audit.
    pub audit: FalseNegativeAudit,
}

/// Runs the experiment at `scale`.
pub fn run(scale: f64) -> UselessReads {
    let mut rows = Vec::new();
    let mut audit = None;
    for profile in [DatasetProfile::ecoli(), DatasetProfile::human()] {
        let profile = profile.scaled(scale);
        let dataset = profile.generate();
        let config = GenPipConfig::for_dataset(&profile);
        let oracle = batch_conventional(&dataset, &config);
        rows.push((profile.name.to_string(), UselessReadStats::of(&oracle)));
        if profile.name == "ecoli" {
            let er = batch_genpip(&dataset, &config, ErMode::Full);
            audit = Some(false_negative_audit(&er, &oracle));
        }
    }
    UselessReads {
        rows,
        audit: audit.expect("ecoli profile present"),
    }
}

impl UselessReads {
    /// The fractions table.
    pub fn table(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Section 2.3 — useless reads (fractions of all reads)",
            vec!["low quality".into(), "unmapped".into(), "useless".into()],
        );
        for (name, stats) in &self.rows {
            t.push_row(
                name.clone(),
                vec![
                    Some(stats.low_quality_fraction()),
                    Some(stats.unmapped_fraction()),
                    Some(stats.useless_fraction()),
                ],
            );
        }
        t.push_row(
            "ecoli (paper)",
            vec![
                Some(PAPER_ECOLI.0),
                Some(PAPER_ECOLI.1),
                Some(PAPER_ECOLI.2),
            ],
        );
        t
    }
}

impl fmt::Display for UselessReads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.table())?;
        writeln!(
            f,
            "FN audit (E. coli, whole-read AQS): false negatives {:.2} vs low-quality {:.2} vs all {:.2} ({} FNs; FN chain/base {:.2})",
            self.audit.mean_aqs_false_negatives,
            self.audit.mean_aqs_low_quality,
            self.audit.mean_aqs_all,
            self.audit.false_negatives,
            self.audit.mean_chain_per_base_false_negatives,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecoli_useless_fraction_is_in_band() {
        let u = run(0.15);
        let (name, stats) = &u.rows[0];
        assert_eq!(name, "ecoli");
        assert!(
            (stats.useless_fraction() - PAPER_ECOLI.2).abs() < 0.12,
            "useless {}",
            stats.useless_fraction()
        );
    }

    #[test]
    fn report_renders() {
        let u = run(0.08);
        let s = u.to_string();
        assert!(s.contains("ecoli (paper)"));
        assert!(s.contains("FN audit"));
    }
}
