//! Table 2: GenPIP's area and power breakdown.

use crate::experiments::FigureTable;
use genpip_pim::area_power::{genpip_table2, Table2};
use std::fmt;

/// Paper totals: (power W, area mm²).
pub const PAPER_TOTALS: (f64, f64) = (147.2, 163.8);

/// Result of the Table 2 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Tab02 {
    /// The computed budget.
    pub budget: Table2,
}

/// Builds the Table 2 report (no dataset needed — this is a hardware-model
/// property).
pub fn run() -> Tab02 {
    Tab02 {
        budget: genpip_table2(),
    }
}

impl Tab02 {
    /// Summary table of module subtotals and chip totals vs the paper.
    pub fn summary(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Table 2 — area and power breakdown (32 nm)",
            vec!["power W".into(), "area mm²".into()],
        );
        for module in &self.budget.modules {
            t.push_row(
                module.name,
                vec![Some(module.power_w()), Some(module.area_mm2())],
            );
        }
        t.push_row(
            "GenPIP total",
            vec![
                Some(self.budget.total_power_w()),
                Some(self.budget.total_area_mm2()),
            ],
        );
        t.push_row(
            "paper total",
            vec![Some(PAPER_TOTALS.0), Some(PAPER_TOTALS.1)],
        );
        t
    }
}

impl fmt::Display for Tab02 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.budget)?;
        writeln!(f)?;
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_reproduce_the_paper() {
        let tab = run();
        assert!((tab.budget.total_power_w() - PAPER_TOTALS.0).abs() < 0.5);
        assert!((tab.budget.total_area_mm2() - PAPER_TOTALS.1).abs() < 0.5);
    }

    #[test]
    fn report_renders_components_and_totals() {
        let s = run().to_string();
        assert!(s.contains("PIM Basecaller"));
        assert!(s.contains("GenPIP total"));
        assert!(s.contains("paper total"));
    }
}
