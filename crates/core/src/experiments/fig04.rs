//! Figure 4: the potential study (Systems A–D).

use crate::config::GenPipConfig;
use crate::experiments::FigureTable;
use crate::pipeline::batch_conventional;
use crate::systems::potential::{potential_study, PotentialRow};
use crate::systems::SystemCosts;
use genpip_datasets::DatasetProfile;
use std::fmt;

/// The paper's normalized speedups for Systems A–D.
pub const PAPER_SPEEDUPS: [f64; 4] = [1.0, 2.74, 6.12, 9.0];

/// Result of the Figure 4 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig04 {
    /// The four system rows.
    pub rows: Vec<PotentialRow>,
}

/// Runs the potential study on the E. coli profile at `scale`.
pub fn run(scale: f64) -> Fig04 {
    let dataset = DatasetProfile::ecoli().scaled(scale).generate();
    let config = GenPipConfig::for_dataset(&dataset.profile);
    let conventional = batch_conventional(&dataset, &config);
    let costs = SystemCosts::default();
    Fig04 {
        rows: potential_study(&conventional, &costs.software, &costs.tech),
    }
}

impl Fig04 {
    /// Renders the measured-vs-paper table.
    pub fn table(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Figure 4 — potential study (speedup normalized to System A)",
            vec!["measured".into(), "paper".into()],
        );
        for (row, paper) in self.rows.iter().zip(PAPER_SPEEDUPS) {
            t.push_row(
                format!("System {}", row.system),
                vec![Some(row.speedup_vs_a), Some(paper)],
            );
        }
        t
    }
}

impl fmt::Display for Fig04 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.table())?;
        for row in &self.rows {
            writeln!(f, "  {}: {}", row.system, row.description)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staircase_shape_reproduces() {
        let fig = run(0.08);
        assert_eq!(fig.rows.len(), 4);
        let speedups: Vec<f64> = fig.rows.iter().map(|r| r.speedup_vs_a).collect();
        assert!(speedups.windows(2).all(|w| w[1] > w[0]), "{speedups:?}");
        let table = fig.table();
        assert_eq!(table.value("System A", 1), Some(1.0));
        assert!(fig.to_string().contains("System B"));
    }
}
