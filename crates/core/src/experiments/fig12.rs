//! Figure 12: ER-QSR sensitivity to the number of sampled chunks.
//!
//! For `N_qs ∈ {2..6}` on both datasets: rejection ratio and false-negative
//! ratio, judged against the conventional oracle.

use crate::analysis::{qsr_analysis, RejectionAnalysis};
use crate::config::GenPipConfig;
use crate::experiments::FigureTable;
use crate::pipeline::{batch_conventional, batch_genpip, ErMode};
use genpip_datasets::DatasetProfile;
use std::fmt;

/// The sampled-chunk counts the paper sweeps.
pub const N_QS_RANGE: [usize; 5] = [2, 3, 4, 5, 6];

/// One dataset's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct QsrSweep {
    /// Dataset name.
    pub dataset: String,
    /// `(n_qs, analysis)` per swept value.
    pub points: Vec<(usize, RejectionAnalysis)>,
}

/// Result of the Figure 12 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// E. coli and human sweeps.
    pub sweeps: Vec<QsrSweep>,
}

/// Runs the sweep at `scale`.
pub fn run(scale: f64) -> Fig12 {
    let mut sweeps = Vec::new();
    for profile in [DatasetProfile::ecoli(), DatasetProfile::human()] {
        let profile = profile.scaled(scale);
        let dataset = profile.generate();
        let base_config = GenPipConfig::for_dataset(&profile);
        let oracle = batch_conventional(&dataset, &base_config);
        let mut points = Vec::new();
        for n_qs in N_QS_RANGE {
            let mut config = base_config.clone();
            config.n_qs = n_qs;
            let er = batch_genpip(&dataset, &config, ErMode::QsrOnly);
            points.push((n_qs, qsr_analysis(&er, &oracle, config.theta_qs)));
        }
        sweeps.push(QsrSweep {
            dataset: profile.name.to_string(),
            points,
        });
    }
    Fig12 { sweeps }
}

impl Fig12 {
    /// Rejection-ratio table (paper Figure 12a).
    pub fn rejection_table(&self) -> FigureTable {
        self.metric_table(
            "Figure 12(a) — ER-QSR rejection ratio vs sampled chunks (paper ≈0.10–0.15)",
            |a| a.rejection_ratio(),
        )
    }

    /// False-negative-ratio table (paper Figure 12b).
    pub fn false_negative_table(&self) -> FigureTable {
        self.metric_table(
            "Figure 12(b) — ER-QSR false negative ratio vs sampled chunks (paper ≲0.3)",
            |a| a.false_negative_ratio(),
        )
    }

    fn metric_table(&self, title: &str, metric: impl Fn(&RejectionAnalysis) -> f64) -> FigureTable {
        let columns = N_QS_RANGE.iter().map(|n| format!("Nqs={n}")).collect();
        let mut t = FigureTable::new(title, columns);
        for sweep in &self.sweeps {
            t.push_row(
                sweep.dataset.clone(),
                sweep.points.iter().map(|(_, a)| Some(metric(a))).collect(),
            );
        }
        t
    }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.rejection_table())?;
        write!(f, "{}", self.false_negative_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_match_the_paper() {
        let fig = run(0.15);
        assert_eq!(fig.sweeps.len(), 2);
        for sweep in &fig.sweeps {
            assert_eq!(sweep.points.len(), N_QS_RANGE.len());
            let rejections: Vec<f64> = sweep
                .points
                .iter()
                .map(|(_, a)| a.rejection_ratio())
                .collect();
            // Rejection ratio in a plausible band around the low-quality
            // population, mildly varying with N_qs.
            for &r in &rejections {
                assert!(
                    (0.02..0.40).contains(&r),
                    "{}: rejection {r}",
                    sweep.dataset
                );
            }
            // Paper: rejection ratio slightly decreases as N_qs grows.
            assert!(
                rejections.last().unwrap() <= &(rejections[0] + 0.05),
                "{}: {rejections:?}",
                sweep.dataset
            );
            for (_, a) in &sweep.points {
                assert!(a.false_negative_ratio() < 0.5);
            }
        }
    }

    #[test]
    fn tables_render() {
        let fig = run(0.08);
        let s = fig.to_string();
        assert!(s.contains("Figure 12(a)"));
        assert!(s.contains("Figure 12(b)"));
        assert!(s.contains("Nqs=6"));
    }
}
