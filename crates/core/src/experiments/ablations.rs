//! Ablation studies beyond the paper's sweeps.
//!
//! Three design choices DESIGN.md calls out get their own sensitivity
//! studies:
//!
//! * **chunk size** beyond the paper's 300–500 range
//!   ([`chunk_size_sweep`]) — very small chunks lose minimizers at
//!   boundaries and inflate per-chunk overheads; very large chunks delay
//!   early rejection;
//! * **DP-unit count** ([`dp_unit_sweep`]) — the paper provisions 1024
//!   units; how over-provisioned is that for the chunk pipeline?
//! * **basecaller initiation interval** ([`basecaller_ii_sweep`]) — the
//!   pipeline is basecall-bound, so module throughput translates almost
//!   linearly into end-to-end speed, which is why Helix-class acceleration
//!   matters more than mapping-side tuning.

use crate::config::GenPipConfig;
use crate::experiments::FigureTable;
use crate::pipeline::{batch_conventional, batch_genpip, ErMode, PipelineRun, ReadOutcome};
use crate::systems::hardware::evaluate_genpip;
use crate::systems::software::{evaluate_software, BasecallDevice};
use crate::systems::SystemCosts;
use genpip_datasets::{DatasetProfile, SimulatedDataset};
use std::fmt;

/// One chunk-size ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkSizePoint {
    /// Chunk size in bases.
    pub chunk_bases: usize,
    /// GenPIP speedup over the conventional CPU flow.
    pub speedup_vs_cpu: f64,
    /// Fraction of reads mapped under full ER.
    pub mapped_fraction: f64,
    /// Fraction of basecalling work saved by ER.
    pub work_saved: f64,
}

/// The chunk sizes swept (the paper covers only 300–500).
pub const CHUNK_SWEEP: [usize; 6] = [100, 200, 300, 500, 800, 1200];

/// Runs the chunk-size ablation on the E. coli profile.
pub fn chunk_size_sweep(scale: f64) -> Vec<ChunkSizePoint> {
    let profile = DatasetProfile::ecoli().scaled(scale);
    let dataset = profile.generate();
    let costs = SystemCosts::default();
    CHUNK_SWEEP
        .iter()
        .map(|&chunk| {
            let config = GenPipConfig::for_dataset(&profile).with_chunk_bases(chunk);
            let conventional = batch_conventional(&dataset, &config);
            let er = batch_genpip(&dataset, &config, ErMode::Full);
            let cpu = evaluate_software(&conventional, &costs.software, BasecallDevice::Cpu, false);
            let genpip = evaluate_genpip(&er, &costs.software, &costs.tech);
            ChunkSizePoint {
                chunk_bases: chunk,
                speedup_vs_cpu: cpu.time.as_secs() / genpip.time.as_secs(),
                mapped_fraction: mapped_fraction(&er),
                work_saved: 1.0 - er.totals().samples as f64 / conventional.totals().samples as f64,
            }
        })
        .collect()
}

fn mapped_fraction(run: &PipelineRun) -> f64 {
    run.count_outcomes(ReadOutcome::is_mapped) as f64 / run.reads.len().max(1) as f64
}

/// One hardware-provisioning ablation point.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwarePoint {
    /// The swept parameter's value.
    pub value: usize,
    /// GenPIP makespan in seconds.
    pub makespan_s: f64,
}

/// Sweeps the DP-unit count on a fixed full-ER workload. Cheap: the
/// functional run happens once; only the schedule is recomputed.
pub fn dp_unit_sweep(dataset: &SimulatedDataset, units: &[usize]) -> Vec<HardwarePoint> {
    let config = GenPipConfig::for_dataset(&dataset.profile);
    let run = batch_genpip(dataset, &config, ErMode::Full);
    let costs = SystemCosts::default();
    units
        .iter()
        .map(|&u| {
            let mut tech = costs.tech;
            tech.dp_units = u.max(1);
            HardwarePoint {
                value: u,
                makespan_s: evaluate_genpip(&run, &costs.software, &tech).time.as_secs(),
            }
        })
        .collect()
}

/// Sweeps the basecaller initiation interval on a fixed full-ER workload.
pub fn basecaller_ii_sweep(dataset: &SimulatedDataset, intervals: &[usize]) -> Vec<HardwarePoint> {
    let config = GenPipConfig::for_dataset(&dataset.profile);
    let run = batch_genpip(dataset, &config, ErMode::Full);
    let costs = SystemCosts::default();
    intervals
        .iter()
        .map(|&ii| {
            let mut tech = costs.tech;
            tech.bc_initiation_interval_cycles = ii.max(1);
            HardwarePoint {
                value: ii,
                makespan_s: evaluate_genpip(&run, &costs.software, &tech).time.as_secs(),
            }
        })
        .collect()
}

/// The full ablation report.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablations {
    /// Chunk-size sweep points.
    pub chunk_sizes: Vec<ChunkSizePoint>,
    /// DP-unit sweep points.
    pub dp_units: Vec<HardwarePoint>,
    /// Initiation-interval sweep points.
    pub basecaller_ii: Vec<HardwarePoint>,
}

/// Runs all three ablations at `scale`.
pub fn run(scale: f64) -> Ablations {
    let chunk_sizes = chunk_size_sweep(scale);
    let dataset = DatasetProfile::ecoli().scaled(scale).generate();
    Ablations {
        chunk_sizes,
        dp_units: dp_unit_sweep(&dataset, &[16, 64, 256, 1024, 4096]),
        basecaller_ii: basecaller_ii_sweep(&dataset, &[1, 2, 4, 8]),
    }
}

impl Ablations {
    /// The chunk-size table.
    pub fn chunk_table(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Ablation — chunk size (paper evaluates only 300–500)",
            vec![
                "speedup vs CPU".into(),
                "mapped frac".into(),
                "work saved".into(),
            ],
        );
        for p in &self.chunk_sizes {
            t.push_row(
                format!("{} bases", p.chunk_bases),
                vec![
                    Some(p.speedup_vs_cpu),
                    Some(p.mapped_fraction),
                    Some(p.work_saved),
                ],
            );
        }
        t
    }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.chunk_table())?;
        writeln!(f, "DP-unit sweep (fixed workload):")?;
        for p in &self.dp_units {
            writeln!(f, "  {:>5} units: makespan {:.4} s", p.value, p.makespan_s)?;
        }
        writeln!(f, "basecaller initiation-interval sweep:")?;
        for p in &self.basecaller_ii {
            writeln!(
                f,
                "  II = {:>2} cycles: makespan {:.4} s",
                p.value, p.makespan_s
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_barely_moves_the_needle_in_paper_range() {
        // The paper's observation: results are robust to chunk size. Check
        // it on the 300/500 pair.
        let points = chunk_size_sweep(0.08);
        let get = |c: usize| {
            points
                .iter()
                .find(|p| p.chunk_bases == c)
                .unwrap()
                .speedup_vs_cpu
        };
        let ratio = get(300) / get(500);
        assert!((0.7..1.4).contains(&ratio), "300 vs 500 ratio {ratio}");
        // Mapped fraction stays healthy at every size.
        for p in &points {
            assert!(
                p.mapped_fraction > 0.4,
                "chunk {}: {}",
                p.chunk_bases,
                p.mapped_fraction
            );
        }
    }

    #[test]
    fn dp_units_are_overprovisioned_and_ii_matters() {
        let dataset = DatasetProfile::ecoli().scaled(0.05).generate();
        let dp = dp_unit_sweep(&dataset, &[16, 1024]);
        // The chunk pipeline is basecall-bound: 16 DP units are nearly as
        // good as 1024.
        let slowdown = dp[0].makespan_s / dp[1].makespan_s;
        assert!(slowdown < 1.2, "16 vs 1024 DP units slowdown {slowdown}");

        let ii = basecaller_ii_sweep(&dataset, &[1, 2, 8]);
        // Basecaller throughput translates ~linearly into makespan.
        assert!(ii[2].makespan_s > 2.5 * ii[0].makespan_s);
        assert!(ii[1].makespan_s > ii[0].makespan_s);
    }

    #[test]
    fn report_renders() {
        let a = run(0.04);
        let s = a.to_string();
        assert!(s.contains("Ablation"));
        assert!(s.contains("DP-unit sweep"));
        assert!(s.contains("II ="));
    }
}
