//! Experiment drivers — one per paper figure/table.
//!
//! Each driver regenerates its figure/table from scratch (dataset synthesis
//! → functional pipeline → cost models) and renders a report comparing the
//! measured values with the paper's published numbers. The bench harness in
//! `crates/bench` is a thin wrapper around these.
//!
//! All drivers accept a `scale` factor for dataset size; `1.0` is the
//! default experiment scale defined by the profiles (seconds per run on a
//! laptop), smaller values give quick smoke runs. [`default_scale`] honours
//! the `GENPIP_SCALE` environment variable.

pub mod ablations;
pub mod fig04;
pub mod fig07;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod tab01;
pub mod tab02;
pub mod useless;

use std::fmt;

/// The experiment scale: `GENPIP_SCALE` env var, defaulting to 1.0.
pub fn default_scale() -> f64 {
    std::env::var("GENPIP_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0)
}

/// A labelled numeric table with optional paper-reference values, rendered
/// by every experiment report.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureTable {
    /// Table title.
    pub title: String,
    /// Column headers (after the row-label column).
    pub columns: Vec<String>,
    /// Rows: label + one value per column.
    pub rows: Vec<TableRow>,
}

/// One row of a [`FigureTable`].
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Row label.
    pub label: String,
    /// Values, one per column (`None` renders as a dash).
    pub values: Vec<Option<f64>>,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> FigureTable {
        FigureTable {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push(TableRow {
            label: label.into(),
            values,
        });
    }

    /// Looks up a cell by row label and column index.
    pub fn value(&self, label: &str, column: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .and_then(|r| r.values.get(column).copied().flatten())
    }
}

impl FigureTable {
    /// Renders the table as CSV (label column + data columns), for plotting
    /// outside the harness.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("label");
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.replace(',', ";"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.label.replace(',', ";"));
            for v in &row.values {
                out.push(',');
                if let Some(x) = v {
                    out.push_str(&format!("{x}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for FigureTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        write!(f, "{:<18}", "")?;
        for c in &self.columns {
            write!(f, "{c:>12}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<18}", row.label)?;
            for v in &row.values {
                match v {
                    Some(x) if x.abs() >= 1000.0 => write!(f, "{x:>12.0}")?,
                    Some(x) => write!(f, "{x:>12.2}")?,
                    None => write!(f, "{:>12}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Renders a numeric series as a one-line ASCII sparkline (used by the
/// Figure 7 report to show chunk-quality profiles).
pub fn sparkline(values: &[f64], lo: f64, hi: f64) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span).clamp(0.0, 1.0);
            LEVELS[((t * (LEVELS.len() - 1) as f64).round()) as usize]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_and_lookup() {
        let mut t = FigureTable::new("demo", vec!["a".into(), "b".into()]);
        t.push_row("row1", vec![Some(1.5), None]);
        t.push_row("row2", vec![Some(2000.0), Some(0.25)]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("row1"));
        assert!(s.contains('-'));
        assert_eq!(t.value("row1", 0), Some(1.5));
        assert_eq!(t.value("row1", 1), None);
        assert_eq!(t.value("missing", 0), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = FigureTable::new("demo", vec!["a".into()]);
        t.push_row("r", vec![Some(1.0), Some(2.0)]);
    }

    #[test]
    fn csv_export_round_trips_structure() {
        let mut t = FigureTable::new("demo", vec!["a,b".into(), "c".into()]);
        t.push_row("r,1", vec![Some(1.25), None]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,a;b,c"));
        assert_eq!(lines.next(), Some("r;1,1.25,"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn sparkline_maps_range() {
        let s = sparkline(&[0.0, 5.0, 10.0], 0.0, 10.0);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn default_scale_is_sane() {
        let s = default_scale();
        assert!(s > 0.0 && s <= 1.0);
    }
}
