//! Figure 10: speedups of the ten systems over CPU, across both datasets and
//! chunk sizes 300/400/500, with GMEAN.
//!
//! This module also owns the shared systems matrix that Figure 11 (energy)
//! reuses.

use crate::config::GenPipConfig;
use crate::experiments::FigureTable;
use crate::systems::{evaluate_all, SystemCosts, SystemEvaluation, SystemKind, WorkloadSet};
use genpip_datasets::DatasetProfile;
use genpip_genomics::stats::geometric_mean;
use std::fmt;

/// Paper GMEAN speedups vs CPU (Figure 10 plus the ratios quoted in
/// Section 6.1). `None` where the paper gives no precise number.
pub fn paper_speedup(kind: SystemKind) -> Option<f64> {
    match kind {
        SystemKind::Cpu => Some(1.0),
        SystemKind::CpuCp => Some(1.20),
        SystemKind::CpuGp => Some(1.42),
        SystemKind::Gpu => Some(41.6 / 8.4),
        SystemKind::GpuCp => Some(41.6 / 8.4 * 1.32),
        SystemKind::GpuGp => Some(41.6 / 8.4 * 1.46),
        SystemKind::Pim => Some(41.6 / 1.39),
        SystemKind::GenPipCp => Some(41.6 / 1.39 * 1.16),
        SystemKind::GenPipCpQsr => Some(41.6 / 1.39 * 1.32),
        SystemKind::GenPip => Some(41.6),
    }
}

/// One dataset × chunk-size cell of the evaluation matrix.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Dataset name.
    pub dataset: String,
    /// Chunk size in bases.
    pub chunk_bases: usize,
    /// All ten system evaluations.
    pub evals: Vec<SystemEvaluation>,
}

impl MatrixCell {
    /// Column label, e.g. `"Ecoli.300"`.
    pub fn label(&self) -> String {
        let mut name = self.dataset.clone();
        if let Some(first) = name.get_mut(0..1) {
            first.make_ascii_uppercase();
        }
        format!("{name}.{}", self.chunk_bases)
    }

    /// The evaluation of one system.
    ///
    /// # Panics
    ///
    /// Panics if the system is missing.
    pub fn eval(&self, kind: SystemKind) -> &SystemEvaluation {
        self.evals
            .iter()
            .find(|e| e.kind == kind)
            .expect("all systems evaluated")
    }
}

/// The full evaluation matrix (Figures 10 and 11 share it).
#[derive(Debug, Clone)]
pub struct SystemsMatrix {
    /// Cells in presentation order (E. coli 300/400/500, human 300/400/500).
    pub cells: Vec<MatrixCell>,
}

/// The chunk sizes the paper evaluates.
pub const CHUNK_SIZES: [usize; 3] = [300, 400, 500];

/// Builds the matrix: both datasets × three chunk sizes × ten systems.
pub fn systems_matrix(scale: f64) -> SystemsMatrix {
    let costs = SystemCosts::default();
    let mut cells = Vec::new();
    for profile in [DatasetProfile::ecoli(), DatasetProfile::human()] {
        let profile = profile.scaled(scale);
        let dataset = profile.generate();
        for chunk in CHUNK_SIZES {
            let config = GenPipConfig::for_dataset(&profile).with_chunk_bases(chunk);
            let workloads = WorkloadSet::build(&dataset, &config);
            cells.push(MatrixCell {
                dataset: profile.name.to_string(),
                chunk_bases: chunk,
                evals: evaluate_all(&workloads, &costs),
            });
        }
    }
    SystemsMatrix { cells }
}

impl SystemsMatrix {
    /// Per-cell metric values for one system, normalized to the CPU system
    /// of the same cell; `metric` maps an evaluation to the raw quantity
    /// (time or energy), and normalization is `cpu / system` so bigger is
    /// better.
    fn normalized(&self, kind: SystemKind, metric: impl Fn(&SystemEvaluation) -> f64) -> Vec<f64> {
        self.cells
            .iter()
            .map(|cell| metric(cell.eval(SystemKind::Cpu)) / metric(cell.eval(kind)))
            .collect()
    }

    /// Builds the Figure 10/11-style table for a metric.
    pub fn table(
        &self,
        title: &str,
        metric: impl Fn(&SystemEvaluation) -> f64 + Copy,
        paper: impl Fn(SystemKind) -> Option<f64>,
    ) -> FigureTable {
        let mut columns: Vec<String> = self.cells.iter().map(MatrixCell::label).collect();
        columns.push("GMEAN".into());
        columns.push("paper".into());
        let mut t = FigureTable::new(title, columns);
        for kind in SystemKind::ALL {
            let values = self.normalized(kind, metric);
            let gmean = geometric_mean(&values);
            let mut row: Vec<Option<f64>> = values.into_iter().map(Some).collect();
            row.push(Some(gmean));
            row.push(paper(kind));
            t.push_row(kind.name(), row);
        }
        t
    }

    /// GMEAN of the normalized metric for one system.
    pub fn gmean(&self, kind: SystemKind, metric: impl Fn(&SystemEvaluation) -> f64) -> f64 {
        geometric_mean(&self.normalized(kind, &metric))
    }
}

/// Result of the Figure 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// The underlying matrix.
    pub matrix: SystemsMatrix,
}

/// Runs the Figure 10 experiment at `scale`.
pub fn run(scale: f64) -> Fig10 {
    Fig10 {
        matrix: systems_matrix(scale),
    }
}

impl Fig10 {
    /// The speedup table.
    pub fn table(&self) -> FigureTable {
        self.matrix.table(
            "Figure 10 — speedup over CPU (higher is better)",
            |e| e.time.as_secs(),
            paper_speedup,
        )
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_cells_and_orderings_hold() {
        let fig = run(0.05);
        assert_eq!(fig.matrix.cells.len(), 6);
        let metric = |e: &SystemEvaluation| e.time.as_secs();
        // Orderings on the GMEAN (Figure 10's key claims).
        let g = |k: SystemKind| fig.matrix.gmean(k, metric);
        assert!(g(SystemKind::GenPip) > g(SystemKind::GenPipCpQsr));
        assert!(g(SystemKind::GenPipCpQsr) > g(SystemKind::GenPipCp));
        assert!(g(SystemKind::GenPipCp) > g(SystemKind::Pim));
        assert!(g(SystemKind::Pim) > g(SystemKind::Gpu));
        assert!(g(SystemKind::Gpu) > g(SystemKind::Cpu));
        // Robust to chunk size: per-system spread across chunk sizes of the
        // same dataset stays small (paper: "performance benefits do not
        // change significantly with chunk size").
        let genpip: Vec<f64> = fig.matrix.normalized(SystemKind::GenPip, metric);
        for window in genpip.chunks(3) {
            let max = window.iter().cloned().fold(f64::MIN, f64::max);
            let min = window.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                max / min < 1.5,
                "chunk-size sensitivity too high: {window:?}"
            );
        }
    }

    #[test]
    fn table_has_gmean_and_paper_columns() {
        let fig = run(0.05);
        let t = fig.table();
        assert_eq!(t.columns.len(), 8);
        assert_eq!(t.value("CPU", 6), Some(1.0));
        assert!(t.value("GenPIP", 7).unwrap() > 40.0);
        assert!(t.value("GenPIP", 6).unwrap() > 10.0);
    }
}
