//! Figure 7: chunk quality scores along a low-quality and a high-quality
//! read.
//!
//! The paper's observations, which QSR's design rests on:
//! 1. the two reads' chunk-score bands are clearly separated
//!    (≈4–10 vs ≈11–18),
//! 2. a single chunk cannot classify a read (bands are wide),
//! 3. consecutive chunks are correlated, so QSR must sample *spread-out*
//!    chunks.

use crate::experiments::{sparkline, FigureTable};
use genpip_basecall::Basecaller;
use genpip_datasets::{DatasetProfile, SimulatedDataset};
use genpip_signal::chunk_boundaries;
use std::fmt;

/// Chunk-quality profile of one read.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkQualityProfile {
    /// Read id in the dataset.
    pub read_id: u32,
    /// Ground-truth noise multiplier.
    pub noise_sigma: f64,
    /// Average quality score of each chunk, in read order.
    pub chunk_scores: Vec<f64>,
}

impl ChunkQualityProfile {
    /// Minimum chunk score.
    pub fn min(&self) -> f64 {
        self.chunk_scores.iter().cloned().fold(f64::MAX, f64::min)
    }

    /// Maximum chunk score.
    pub fn max(&self) -> f64 {
        self.chunk_scores.iter().cloned().fold(f64::MIN, f64::max)
    }

    /// Mean chunk score.
    pub fn mean(&self) -> f64 {
        self.chunk_scores.iter().sum::<f64>() / self.chunk_scores.len().max(1) as f64
    }

    /// Lag-1 autocorrelation of the chunk scores — the paper's
    /// "consecutive chunks are close to each other" observation.
    pub fn lag1_autocorrelation(&self) -> f64 {
        let n = self.chunk_scores.len();
        if n < 3 {
            return 0.0;
        }
        let mean = self.mean();
        let var: f64 = self.chunk_scores.iter().map(|x| (x - mean).powi(2)).sum();
        if var < 1e-12 {
            return 0.0;
        }
        let cov: f64 = self
            .chunk_scores
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        cov / var
    }
}

/// Result of the Figure 7 experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig07 {
    /// The representative low-quality read.
    pub low: ChunkQualityProfile,
    /// The representative high-quality read.
    pub high: ChunkQualityProfile,
}

/// Runs the experiment on the E. coli profile at `scale`: basecalls the
/// longest low-quality and the longest high-quality read chunk by chunk
/// (300-base chunks) and records per-chunk average quality.
///
/// # Panics
///
/// Panics if the generated dataset lacks either population (it cannot at
/// the profile's fractions and the minimum scale).
pub fn run(scale: f64) -> Fig07 {
    let dataset = DatasetProfile::ecoli().scaled(scale).generate();
    let pick = |low: bool| -> u32 {
        dataset
            .reads
            .iter()
            .filter(|r| r.is_low_quality_truth() == low)
            .max_by_key(|r| r.signal.samples.len())
            .expect("population present")
            .id
    };
    Fig07 {
        low: profile_read(&dataset, pick(true)),
        high: profile_read(&dataset, pick(false)),
    }
}

/// Computes the chunk-quality profile of one read.
pub fn profile_read(dataset: &SimulatedDataset, read_id: u32) -> ChunkQualityProfile {
    let read = &dataset.reads[read_id as usize];
    let caller = Basecaller::new(dataset.pore_model(), dataset.synthesizer().mean_dwell());
    let spc = genpip_signal::chunk::samples_per_chunk(300, dataset.synthesizer().mean_dwell());
    let mut scores = Vec::new();
    let mut carry = None;
    for spec in chunk_boundaries(read.signal.samples.len(), spc) {
        let chunk = caller.call_chunk(&read.signal.samples[spec.start..spec.end], carry);
        carry = chunk.carry;
        if !chunk.quals.is_empty() {
            scores.push(chunk.average_quality());
        }
    }
    ChunkQualityProfile {
        read_id,
        noise_sigma: read.noise_sigma,
        chunk_scores: scores,
    }
}

impl Fig07 {
    /// Summary table (band extents, means, autocorrelation).
    pub fn table(&self) -> FigureTable {
        let mut t = FigureTable::new(
            "Figure 7 — chunk quality scores (paper bands: low ≈4–10, high ≈11–18)",
            vec![
                "min".into(),
                "mean".into(),
                "max".into(),
                "lag1-corr".into(),
            ],
        );
        for (label, p) in [("low-quality", &self.low), ("high-quality", &self.high)] {
            t.push_row(
                label,
                vec![
                    Some(p.min()),
                    Some(p.mean()),
                    Some(p.max()),
                    Some(p.lag1_autocorrelation()),
                ],
            );
        }
        t
    }
}

impl fmt::Display for Fig07 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.table())?;
        let lo = self.low.min().min(self.high.min());
        let hi = self.low.max().max(self.high.max());
        writeln!(
            f,
            "low  (σ={:.2}, {} chunks): {}",
            self.low.noise_sigma,
            self.low.chunk_scores.len(),
            sparkline(&self.low.chunk_scores, lo, hi)
        )?;
        writeln!(
            f,
            "high (σ={:.2}, {} chunks): {}",
            self.high.noise_sigma,
            self.high.chunk_scores.len(),
            sparkline(&self.high.chunk_scores, lo, hi)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_are_separated_and_correlated() {
        let fig = run(0.2);
        // Observation 1: separated bands.
        assert!(
            fig.high.min() > fig.low.max() - 1.0,
            "bands overlap badly: high {:?} vs low {:?}",
            (fig.high.min(), fig.high.max()),
            (fig.low.min(), fig.low.max())
        );
        assert!(fig.high.mean() > 8.0, "high mean {}", fig.high.mean());
        assert!(fig.low.mean() < 7.0, "low mean {}", fig.low.mean());
        // Observation 3: consecutive chunks correlate (positive lag-1).
        assert!(
            fig.high.lag1_autocorrelation() > 0.1,
            "autocorrelation {}",
            fig.high.lag1_autocorrelation()
        );
    }

    #[test]
    fn report_renders() {
        let fig = run(0.1);
        let s = fig.to_string();
        assert!(s.contains("low"));
        assert!(s.contains("high"));
        assert!(!fig.low.chunk_scores.is_empty());
        assert!(!fig.high.chunk_scores.is_empty());
    }
}
