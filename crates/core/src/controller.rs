//! The GenPIP controller (paper Figure 8 ⓒ, Sections 4.1–4.2).
//!
//! The controller owns the read queue (raw signals from the sequencer), the
//! chunk buffer (basecalled chunks awaiting alignment), the AQS calculator,
//! and the two early-rejection controllers. The *decisions* it makes are
//! already folded into the functional pipeline (`crate::pipeline`); this
//! module adds the **resource view**: replaying a pipeline run through the
//! controller's buffers verifies the paper's sizing claims — a 6 MB read
//! queue fits the longest raw signal and a 2.3 Mbase chunk buffer fits the
//! longest basecalled read — and counts the ER signals issued.

use crate::pipeline::{PipelineRun, ReadOutcome};
use genpip_pim::EdramBuffer;
use std::fmt;

/// Outcome of replaying a run through the controller's buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerReport {
    /// Read-queue high-water mark in bytes.
    pub read_queue_high_water: usize,
    /// Chunk-buffer high-water mark in bytes.
    pub chunk_buffer_high_water: usize,
    /// Reads whose raw signal did not fit the read queue.
    pub read_queue_overflows: usize,
    /// Reads whose basecalled output did not fit the chunk buffer.
    pub chunk_buffer_overflows: usize,
    /// ER-QSR termination signals issued (Section 4.3.1).
    pub qsr_signals: usize,
    /// ER-CMR termination signals issued (Section 4.3.2).
    pub cmr_signals: usize,
    /// Total eDRAM access energy of both buffers (joules).
    pub buffer_energy_j: f64,
}

impl fmt::Display for ControllerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "read queue high water:  {} B ({} overflows)",
            self.read_queue_high_water, self.read_queue_overflows
        )?;
        writeln!(
            f,
            "chunk buffer high water: {} B ({} overflows)",
            self.chunk_buffer_high_water, self.chunk_buffer_overflows
        )?;
        writeln!(
            f,
            "ER signals issued: {} QSR, {} CMR",
            self.qsr_signals, self.cmr_signals
        )?;
        write!(f, "buffer access energy: {:.3e} J", self.buffer_energy_j)
    }
}

/// The controller's buffer pair.
#[derive(Debug, Clone)]
pub struct GenPipController {
    read_queue: EdramBuffer,
    chunk_buffer: EdramBuffer,
}

impl GenPipController {
    /// Creates a controller with the paper's buffer sizes.
    pub fn new() -> GenPipController {
        GenPipController {
            read_queue: EdramBuffer::read_queue(),
            chunk_buffer: EdramBuffer::chunk_buffer(),
        }
    }

    /// Replays a pipeline run read by read: the raw signal is enqueued in
    /// the read queue while the read is processed; every basecalled chunk
    /// occupies the chunk buffer until the read's outcome resolves
    /// (Section 4.2: "the chunk buffer keeps the basecalled chunks until
    /// the end of the sequence alignment process for an entire read, unless
    /// ER terminates the process").
    pub fn replay(&mut self, run: &PipelineRun) -> ControllerReport {
        let mut report = ControllerReport {
            read_queue_high_water: 0,
            chunk_buffer_high_water: 0,
            read_queue_overflows: 0,
            chunk_buffer_overflows: 0,
            qsr_signals: 0,
            cmr_signals: 0,
            buffer_energy_j: 0.0,
        };
        for read in &run.reads {
            // Raw signal enters the read queue.
            let raw = read.raw_bytes();
            let raw_held = match self.read_queue.reserve(raw) {
                Ok(()) => true,
                Err(_) => {
                    report.read_queue_overflows += 1;
                    false
                }
            };

            // Basecalled chunks accumulate in the chunk buffer.
            let mut held = 0usize;
            for chunk in &read.chunks {
                if chunk.bases_called == 0 {
                    continue;
                }
                let bytes = chunk.bases_called.div_ceil(4) + chunk.bases_called;
                match self.chunk_buffer.reserve(bytes) {
                    Ok(()) => held += bytes,
                    Err(_) => report.chunk_buffer_overflows += 1,
                }
            }

            match &read.outcome {
                ReadOutcome::RejectedQsr { .. } => report.qsr_signals += 1,
                ReadOutcome::RejectedCmr { .. } => report.cmr_signals += 1,
                _ => {}
            }

            // The read resolves: everything is released.
            self.chunk_buffer.release(held);
            if raw_held {
                self.read_queue.release(raw);
            }
        }
        report.read_queue_high_water = self.read_queue.high_water();
        report.chunk_buffer_high_water = self.chunk_buffer.high_water();
        report.buffer_energy_j =
            self.read_queue.access_energy() + self.chunk_buffer.access_energy();
        report
    }
}

impl Default for GenPipController {
    fn default() -> GenPipController {
        GenPipController::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenPipConfig;
    use crate::pipeline::{batch_genpip, ErMode};
    use genpip_datasets::DatasetProfile;

    #[test]
    fn paper_buffer_sizes_suffice_for_the_datasets() {
        let d = DatasetProfile::ecoli().scaled(0.1).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_genpip(&d, &config, ErMode::Full);
        let report = GenPipController::new().replay(&run);
        assert_eq!(report.read_queue_overflows, 0);
        assert_eq!(report.chunk_buffer_overflows, 0);
        assert!(report.read_queue_high_water > 0);
        assert!(report.chunk_buffer_high_water > 0);
        assert!(report.buffer_energy_j > 0.0);
    }

    #[test]
    fn er_signal_counts_match_outcomes() {
        let d = DatasetProfile::ecoli().scaled(0.1).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_genpip(&d, &config, ErMode::Full);
        let report = GenPipController::new().replay(&run);
        let qsr = run.count_outcomes(|o| matches!(o, ReadOutcome::RejectedQsr { .. }));
        let cmr = run.count_outcomes(|o| matches!(o, ReadOutcome::RejectedCmr { .. }));
        assert_eq!(report.qsr_signals, qsr);
        assert_eq!(report.cmr_signals, cmr);
        assert!(qsr > 0, "expect some QSR rejections at this scale");
    }

    #[test]
    fn high_water_tracks_longest_read() {
        let d = DatasetProfile::ecoli().scaled(0.1).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_genpip(&d, &config, ErMode::None);
        let report = GenPipController::new().replay(&run);
        let longest_raw = run.reads.iter().map(|r| r.raw_bytes()).max().unwrap();
        assert_eq!(report.read_queue_high_water, longest_raw);
    }

    #[test]
    fn report_renders() {
        let d = DatasetProfile::ecoli().scaled(0.05).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_genpip(&d, &config, ErMode::Full);
        let s = GenPipController::new().replay(&run).to_string();
        assert!(s.contains("read queue"));
        assert!(s.contains("ER signals"));
    }
}
