//! Early rejection (ER): QSR and CMR.
//!
//! The paper's Section 3.2. ER predicts, from a few basecalled chunks,
//! whether a read will be useless downstream (low-quality or unmapped) and
//! stops the pipeline for such reads:
//!
//! * **QSR** (Quality-Score-based Rejection, Algorithm 1) samples `N_qs`
//!   chunks *evenly distributed* along the read — the paper's Figure 7
//!   analysis shows consecutive chunks are correlated, so spreading the
//!   samples is essential — and rejects if their average quality falls below
//!   `θ_qs`.
//! * **CMR** (Chunk-Mapping-based Rejection) combines the first `N_cm`
//!   consecutive chunks into one large chunk, maps it, and rejects if the
//!   chaining score falls below `θ_cm`.

/// The chunk indices QSR samples: `n_qs` indices evenly spread over
/// `0..total_chunks`, always including the first and last chunk, duplicates
/// removed (short reads may have fewer chunks than `n_qs`).
///
/// # Panics
///
/// Panics if `n_qs` is 0.
///
/// # Example
///
/// ```
/// use genpip_core::early_reject::qsr_sample_indices;
///
/// assert_eq!(qsr_sample_indices(30, 2), vec![0, 29]);
/// assert_eq!(qsr_sample_indices(30, 3), vec![0, 15, 29]);
/// assert_eq!(qsr_sample_indices(2, 5), vec![0, 1]);
/// assert_eq!(qsr_sample_indices(0, 3), Vec::<usize>::new());
/// ```
pub fn qsr_sample_indices(total_chunks: usize, n_qs: usize) -> Vec<usize> {
    assert!(n_qs > 0, "QSR must sample at least one chunk");
    if total_chunks == 0 {
        return Vec::new();
    }
    if n_qs == 1 || total_chunks == 1 {
        return vec![0];
    }
    let mut out = Vec::with_capacity(n_qs.min(total_chunks));
    for i in 0..n_qs {
        // Evenly spaced over [0, total-1], first and last inclusive
        // (the intent of Algorithm 1's ⌊i·⌊N/C⌋/(N_qs−1)⌋ sampling).
        let idx = (i * (total_chunks - 1) + (n_qs - 1) / 2) / (n_qs - 1);
        if out.last() != Some(&idx) {
            out.push(idx);
        }
    }
    out
}

/// QSR verdict for one read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QsrDecision {
    /// Average quality over the sampled chunks.
    pub sampled_aqs: f64,
    /// `true` if the read is predicted low-quality and must be rejected.
    pub reject: bool,
}

/// Applies Algorithm 1's check to the sampled chunks' quality sums:
/// `(sqs, bases)` pairs, one per sampled chunk.
///
/// Reads whose samples contain no bases (all-empty chunks) are rejected:
/// a read that produces no bases is useless by definition.
pub fn qsr_check(sampled: &[(f64, usize)], theta_qs: f64) -> QsrDecision {
    let bases: usize = sampled.iter().map(|&(_, b)| b).sum();
    if bases == 0 {
        return QsrDecision {
            sampled_aqs: 0.0,
            reject: true,
        };
    }
    let sum: f64 = sampled.iter().map(|&(s, _)| s).sum();
    let sampled_aqs = sum / bases as f64;
    QsrDecision {
        sampled_aqs,
        reject: sampled_aqs < theta_qs,
    }
}

/// CMR verdict for one read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmrDecision {
    /// Chaining score of the combined large chunk.
    pub chain_score: f64,
    /// `true` if the read is predicted unmapped and must be rejected.
    pub reject: bool,
}

/// Applies the CMR check: the large chunk's chaining score against `θ_cm`.
pub fn cmr_check(chain_score: f64, theta_cm: f64) -> CmrDecision {
    CmrDecision {
        chain_score,
        reject: chain_score < theta_cm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_even_and_cover_ends() {
        for total in [2usize, 3, 7, 10, 30, 100] {
            for n in 2..=6usize {
                let idx = qsr_sample_indices(total, n);
                assert_eq!(*idx.first().unwrap(), 0, "total {total} n {n}");
                assert_eq!(*idx.last().unwrap(), total - 1, "total {total} n {n}");
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted unique");
                assert!(idx.len() <= n.min(total));
                // Even spacing: gaps differ by at most 1 chunk.
                if idx.len() > 2 {
                    let gaps: Vec<usize> = idx.windows(2).map(|w| w[1] - w[0]).collect();
                    let (min, max) = (gaps.iter().min().unwrap(), gaps.iter().max().unwrap());
                    assert!(
                        max - min <= 1,
                        "uneven gaps {gaps:?} for total {total} n {n}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_chunk_and_single_sample() {
        assert_eq!(qsr_sample_indices(1, 4), vec![0]);
        assert_eq!(qsr_sample_indices(9, 1), vec![0]);
    }

    #[test]
    fn qsr_rejects_below_threshold() {
        // Two chunks of 300 bases each: one Q9, one Q4 → average Q6.5 < 7.
        let d = qsr_check(&[(9.0 * 300.0, 300), (4.0 * 300.0, 300)], 7.0);
        assert!(d.reject);
        assert!((d.sampled_aqs - 6.5).abs() < 1e-9);

        let d = qsr_check(&[(9.0 * 300.0, 300), (8.0 * 300.0, 300)], 7.0);
        assert!(!d.reject);
    }

    #[test]
    fn qsr_weighs_chunks_by_length() {
        // A short low-quality tail chunk must not dominate.
        let d = qsr_check(&[(10.0 * 300.0, 300), (2.0 * 10.0, 10)], 7.0);
        assert!(!d.reject, "AQS {}", d.sampled_aqs);
    }

    #[test]
    fn qsr_rejects_empty_reads() {
        assert!(qsr_check(&[], 7.0).reject);
        assert!(qsr_check(&[(0.0, 0)], 7.0).reject);
    }

    #[test]
    fn cmr_thresholding() {
        assert!(cmr_check(10.0, 55.0).reject);
        assert!(!cmr_check(80.0, 55.0).reject);
        assert!(!cmr_check(55.0, 55.0).reject, "boundary score passes");
    }
}
