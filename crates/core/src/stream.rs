//! Streaming pipeline execution with bounded memory.
//!
//! The batch drivers in [`crate::pipeline`] materialize every input read and
//! every [`ReadRun`] at once — O(dataset) peak memory. This module is the
//! constant-memory alternative: reads are **pulled** one at a time from a
//! [`ReadSource`], flow through a bounded work queue to the worker pool, and
//! leave through a sink callback the moment they finish, in read order. The
//! number of reads resident anywhere in the pipeline (queued, being
//! processed, or waiting for an earlier read to be emitted) never exceeds
//! `queue_capacity + workers` — enforced by an in-flight gate whose permits
//! are acquired before a read is pulled and released only when its result is
//! emitted, so peak memory is O(workers + queue), not O(dataset).
//!
//! ```text
//!  source ──pull──▶ [gate ≤ Q+W] ──▶ bounded queue(Q) ──▶ W workers
//!                                                            │
//!  sink ◀──in-order emit ◀── per-index reorder slots ◀───────┘
//! ```
//!
//! Backpressure is end-to-end: a slow sink stalls emission, which keeps gate
//! permits held, which blocks the puller, which (for a lazy source such as
//! [`genpip_datasets::StreamingSimulator`]) stops reads from even being
//! synthesized. Output is **bit-identical** to the batch drivers for every
//! [`ErMode`] and [`crate::Parallelism`] setting: per-read computation is
//! deterministic and emission order is read order, so the transport cannot
//! change results — asserted by this module's tests and the
//! `tests/streaming.rs` property suite.
//!
//! The batch drivers themselves are thin wrappers over the same engine
//! (`stream_engine`) with a materialized source and a `Vec` sink, so there
//! is exactly one execution core.

use crate::config::GenPipConfig;
use crate::pipeline::{
    process_read, ErMode, ReadOutcome, ReadRun, RunContext, WorkerScratch, WorkloadTotals,
};
use genpip_datasets::{ReadSource, SimulatedRead};
use std::borrow::Borrow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

/// Knobs of the streaming executor (transport only — never affects
/// results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Staging headroom between the source and the workers (clamped to
    /// ≥ 1). The enforced invariant is on the *total*: reads in flight
    /// anywhere (queued, processing, or awaiting in-order emission) never
    /// exceed `queue_capacity + workers` — one permit gate bounds the
    /// whole pipeline rather than each channel separately; see
    /// [`StreamSummary::in_flight_limit`].
    pub queue_capacity: usize,
    /// Emit a [`ProgressSnapshot`] through the sink every this many reads
    /// (0 disables snapshots).
    pub progress_every: usize,
}

impl Default for StreamOptions {
    /// A small queue (8) and no progress snapshots.
    fn default() -> StreamOptions {
        StreamOptions {
            queue_capacity: 8,
            progress_every: 0,
        }
    }
}

/// Running outcome counters, emitted periodically through the sink and
/// returned (final values) in the [`StreamSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Reads emitted so far.
    pub reads_emitted: usize,
    /// …of which mapped.
    pub mapped: usize,
    /// …of which ER-QSR rejected.
    pub rejected_qsr: usize,
    /// …of which ER-CMR rejected.
    pub rejected_cmr: usize,
    /// …of which discarded by whole-read quality control.
    pub filtered_qc: usize,
    /// …of which fully processed but unmapped.
    pub unmapped: usize,
    /// Raw samples basecalled so far.
    pub samples_basecalled: usize,
}

impl ProgressSnapshot {
    fn observe(&mut self, run: &ReadRun) {
        self.reads_emitted += 1;
        self.samples_basecalled += run.basecalled_samples();
        match run.outcome {
            ReadOutcome::Mapped(_) => self.mapped += 1,
            ReadOutcome::RejectedQsr { .. } => self.rejected_qsr += 1,
            ReadOutcome::RejectedCmr { .. } => self.rejected_cmr += 1,
            ReadOutcome::FilteredQc { .. } => self.filtered_qc += 1,
            ReadOutcome::Unmapped { .. } => self.unmapped += 1,
        }
    }
}

/// What the streaming drivers hand to the sink callback.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// One finished read, delivered in read order.
    Read(ReadRun),
    /// Periodic counters (cadence set by [`StreamOptions::progress_every`]),
    /// delivered immediately after the read that triggered them.
    Progress(ProgressSnapshot),
}

/// What a streaming run leaves behind: aggregate counters only, O(1) in the
/// dataset size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Final outcome counters (its `reads_emitted` is the total read
    /// count).
    pub outcomes: ProgressSnapshot,
    /// Aggregate workload counters over all emitted reads — what
    /// `PipelineRun::totals()` would report for the equivalent batch run.
    pub totals: WorkloadTotals,
    /// Worker threads used.
    pub workers: usize,
    /// The enforced bound on in-flight reads (`queue_capacity + workers`;
    /// 1 for the serial in-line path).
    pub in_flight_limit: usize,
    /// High-water mark of reads simultaneously in flight (pulled from the
    /// source but not yet emitted). Always ≤ `in_flight_limit`.
    pub max_in_flight: usize,
}

/// A counting gate bounding how many reads are in flight: `acquire` blocks
/// while `limit` permits are out, `release` frees one. Tracks the high-water
/// mark so tests (and the bench report) can assert the bound really held.
///
/// The gate can also be `open`ed — permits stop mattering and blocked
/// acquirers return `false`. That is the shutdown path: if the sink or a
/// worker panics, permits held by dropped reads would never be released and
/// the feeder would block forever; opening the gate turns that hang into a
/// propagated panic.
struct FlowGate {
    state: Mutex<GateState>,
    freed: Condvar,
    limit: usize,
    high: AtomicUsize,
}

struct GateState {
    used: usize,
    open: bool,
}

impl FlowGate {
    fn new(limit: usize) -> FlowGate {
        FlowGate {
            state: Mutex::new(GateState {
                used: 0,
                open: false,
            }),
            freed: Condvar::new(),
            limit,
            high: AtomicUsize::new(0),
        }
    }

    /// Takes a permit, blocking while the limit is reached. `false` means
    /// the gate was opened for shutdown and no permit was taken.
    fn acquire(&self) -> bool {
        let mut state = self.state.lock().expect("gate poisoned");
        while !state.open && state.used >= self.limit {
            state = self.freed.wait(state).expect("gate poisoned");
        }
        if state.open {
            return false;
        }
        state.used += 1;
        self.high.fetch_max(state.used, Ordering::Relaxed);
        true
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.used -= 1;
        drop(state);
        self.freed.notify_one();
    }

    /// Lets every current and future `acquire` through empty-handed.
    fn open(&self) {
        let mut state = self.state.lock().expect("gate poisoned");
        state.open = true;
        drop(state);
        self.freed.notify_all();
    }

    fn high_water(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }
}

/// Opens the gate when dropped — normally after the emit loop (harmless:
/// the feeder has already exited), and crucially during unwinding, so a
/// panicking sink or worker pool releases the feeder instead of deadlocking
/// the scope join.
struct OpenOnDrop<'a>(&'a FlowGate);

impl Drop for OpenOnDrop<'_> {
    fn drop(&mut self) {
        self.0.open();
    }
}

/// What the engine enforced and observed: the single source of truth for
/// the in-flight bound, so callers never re-derive it.
pub(crate) struct EngineStats {
    /// The enforced bound on in-flight reads (`queue_capacity + workers`,
    /// or 1 for the serial in-line path).
    pub(crate) in_flight_limit: usize,
    /// High-water mark of reads simultaneously in flight.
    pub(crate) max_in_flight: usize,
}

/// The one execution core behind every driver: pulls items from `pull`,
/// processes them with `work` on `workers` threads under a
/// `queue_capacity`-bounded work queue, and calls `emit` with the results
/// **in pull order**. Returns the enforced in-flight limit and its
/// high-water mark.
///
/// `R` is anything that lends a [`SimulatedRead`]: the batch drivers pass
/// `&SimulatedRead` (no copies for materialized datasets), the streaming
/// drivers pass owned reads from the source.
///
/// With one worker the engine degenerates to the in-line serial loop — the
/// reference execution, with exactly one read in flight and no threads.
///
/// A panic anywhere — source, worker, or sink — tears the pipeline down
/// (gate opened, channels closed) and propagates out of the scope join
/// rather than deadlocking; already-finished earlier reads may still be
/// emitted first.
pub(crate) fn stream_engine<R, P, F, G>(
    ctx: &RunContext<'_>,
    workers: usize,
    queue_capacity: usize,
    mut pull: P,
    work: F,
    mut emit: G,
) -> EngineStats
where
    R: Borrow<SimulatedRead> + Send,
    P: FnMut() -> Option<R> + Send,
    F: Fn(&mut WorkerScratch, &SimulatedRead) -> ReadRun + Sync,
    G: FnMut(ReadRun),
{
    if workers <= 1 {
        let mut scratch = WorkerScratch::new(ctx);
        let mut any = false;
        while let Some(read) = pull() {
            any = true;
            emit(work(&mut scratch, read.borrow()));
        }
        return EngineStats {
            in_flight_limit: 1,
            max_in_flight: usize::from(any),
        };
    }

    let capacity = queue_capacity.max(1);
    let limit = capacity + workers;
    // Both channels are unbounded; the gate alone enforces the in-flight
    // bound (≤ `limit` reads hold permits, so neither channel can hold more
    // than `limit` entries). Keeping `acquire` the feeder's only blocking
    // point means opening the gate is a complete shutdown path.
    let gate = FlowGate::new(limit);
    let (work_tx, work_rx) = mpsc::channel::<(usize, R)>();
    let work_rx = Mutex::new(work_rx);
    // `None` is a worker's dying gasp: "I panicked on this index — abort."
    let (done_tx, done_rx) = mpsc::channel::<(usize, Option<ReadRun>)>();

    std::thread::scope(|scope| {
        // Feeder: pulls from the source (serially — sources are stateful
        // cursors) and stages work, blocking on the gate or the queue when
        // the pipeline is full. Holding a permit from pull to emit is what
        // bounds in-flight reads end to end.
        {
            let gate = &gate;
            let pull = &mut pull;
            scope.spawn(move || {
                let mut index = 0usize;
                loop {
                    if !gate.acquire() {
                        break; // shutdown: no permit taken
                    }
                    let Some(read) = pull() else {
                        gate.release();
                        break;
                    };
                    if work_tx.send((index, read)).is_err() {
                        gate.release();
                        break;
                    }
                    index += 1;
                }
                // `work_tx` drops here; workers drain the queue and exit.
            });
        }

        for _ in 0..workers {
            let done_tx = done_tx.clone();
            let work_rx = &work_rx;
            let work = &work;
            scope.spawn(move || {
                let mut scratch = WorkerScratch::new(ctx);
                loop {
                    let received = work_rx.lock().expect("queue poisoned").recv();
                    let Ok((index, read)) = received else { break };
                    // A panicking `work` would otherwise strand this read's
                    // permit and deadlock the reorder loop on its index:
                    // catch it, tell the consumer to abort, then rethrow so
                    // the scope propagates it after teardown.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        work(&mut scratch, read.borrow())
                    }));
                    match outcome {
                        Ok(run) => {
                            if done_tx.send((index, Some(run))).is_err() {
                                break;
                            }
                        }
                        Err(panic) => {
                            let _ = done_tx.send((index, None));
                            std::panic::resume_unwind(panic);
                        }
                    }
                }
            });
        }
        drop(done_tx); // the workers' clones keep the channel open
        let _shutdown = OpenOnDrop(&gate);

        // Reorder + emit on the calling thread. Workers finish out of
        // order; results wait in a preallocated per-index slot ring until
        // every earlier read has been emitted. A slot index never collides:
        // at most `limit` reads are in flight, and a result only waits on
        // reads pulled before it.
        let mut slots: Vec<Option<ReadRun>> = (0..limit).map(|_| None).collect();
        let mut next_emit = 0usize;
        for (index, run) in done_rx.iter() {
            let Some(run) = run else {
                break; // a worker panicked: stop consuming, let _shutdown
                       // open the gate; the scope join rethrows the panic.
            };
            debug_assert!(index >= next_emit && index - next_emit < limit);
            slots[index % limit] = Some(run);
            while let Some(ready) = slots[next_emit % limit].take() {
                emit(ready);
                gate.release();
                next_emit += 1;
            }
        }
    });
    EngineStats {
        in_flight_limit: limit,
        max_in_flight: gate.high_water(),
    }
}

fn run_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    er: Option<ErMode>,
    opts: &StreamOptions,
    sink: &mut dyn FnMut(StreamEvent),
) -> StreamSummary {
    let ctx = RunContext::from_source(source, config);
    let workers = config.parallelism.workers().max(1);
    let mut outcomes = ProgressSnapshot::default();
    let mut totals = WorkloadTotals::default();
    let stats = stream_engine(
        &ctx,
        workers,
        opts.queue_capacity,
        || source.next_read(),
        |scratch, read| process_read(&ctx, er, read, scratch),
        |run| {
            totals.accumulate(&run);
            outcomes.observe(&run);
            let snapshot_due =
                opts.progress_every > 0 && outcomes.reads_emitted % opts.progress_every == 0;
            sink(StreamEvent::Read(run));
            if snapshot_due {
                sink(StreamEvent::Progress(outcomes));
            }
        },
    );
    StreamSummary {
        outcomes,
        totals,
        workers,
        in_flight_limit: stats.in_flight_limit,
        max_in_flight: stats.max_in_flight,
    }
}

/// Streams GenPIP's chunk-based pipeline (Figure 5b / Figure 6) over any
/// [`ReadSource`], delivering each [`ReadRun`] through `sink` in read order
/// the moment it (and every earlier read) is done.
///
/// Produces bit-identical `ReadRun`s — and therefore bit-identical
/// [`ReadOutcome`]s — to [`crate::pipeline::run_genpip`] on the same reads,
/// for every [`ErMode`] and [`crate::Parallelism`] setting, while keeping at
/// most `queue_capacity + workers` reads in memory.
pub fn run_genpip_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    er: ErMode,
    opts: &StreamOptions,
    mut sink: impl FnMut(StreamEvent),
) -> StreamSummary {
    run_streaming(source, config, Some(er), opts, &mut sink)
}

/// Streams the conventional whole-read pipeline (Figure 5a) over any
/// [`ReadSource`] — the streaming twin of
/// [`crate::pipeline::run_conventional`], with the same bit-identity and
/// memory-bound guarantees as [`run_genpip_streaming`].
pub fn run_conventional_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    opts: &StreamOptions,
    mut sink: impl FnMut(StreamEvent),
) -> StreamSummary {
    run_streaming(source, config, None, opts, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Parallelism;
    use crate::pipeline::run_genpip;
    use genpip_datasets::{DatasetProfile, SimulatedDataset};

    fn dataset() -> SimulatedDataset {
        DatasetProfile::ecoli().scaled(0.03).generate()
    }

    fn collect_streaming(
        dataset: &SimulatedDataset,
        config: &GenPipConfig,
        er: ErMode,
        opts: &StreamOptions,
    ) -> (Vec<ReadRun>, StreamSummary) {
        let mut reads = Vec::new();
        let mut source = dataset.stream();
        let summary = run_genpip_streaming(&mut source, config, er, opts, |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        });
        (reads, summary)
    }

    #[test]
    fn streaming_is_bit_identical_to_batch_and_respects_the_bound() {
        let d = dataset();
        let base = GenPipConfig::for_dataset(&d.profile);
        for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
            let config = base.clone().with_parallelism(parallelism);
            let batch = run_genpip(&d, &config, ErMode::Full);
            let opts = StreamOptions {
                queue_capacity: 2,
                progress_every: 0,
            };
            let (reads, summary) = collect_streaming(&d, &config, ErMode::Full, &opts);
            assert_eq!(reads, batch.reads, "{parallelism:?}");
            assert_eq!(summary.totals, batch.totals(), "{parallelism:?}");
            assert_eq!(summary.outcomes.reads_emitted, d.reads.len());
            assert!(
                summary.max_in_flight <= summary.in_flight_limit,
                "{parallelism:?}: {} in flight, limit {}",
                summary.max_in_flight,
                summary.in_flight_limit
            );
        }
    }

    #[test]
    fn serial_streaming_keeps_one_read_in_flight() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Serial);
        let (_, summary) = collect_streaming(&d, &config, ErMode::Full, &StreamOptions::default());
        assert_eq!(summary.workers, 1);
        assert_eq!(summary.in_flight_limit, 1);
        assert_eq!(summary.max_in_flight, 1);
    }

    #[test]
    fn progress_snapshots_fire_on_cadence_and_count_outcomes() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        let every = 5usize;
        let opts = StreamOptions {
            queue_capacity: 4,
            progress_every: every,
        };
        let mut snapshots = Vec::new();
        let mut reads_seen = 0usize;
        let mut source = d.stream();
        let summary =
            run_genpip_streaming(
                &mut source,
                &config,
                ErMode::Full,
                &opts,
                |event| match event {
                    StreamEvent::Read(_) => reads_seen += 1,
                    StreamEvent::Progress(snap) => {
                        assert_eq!(snap.reads_emitted, reads_seen, "snapshot lags its read");
                        snapshots.push(snap);
                    }
                },
            );
        assert_eq!(snapshots.len(), d.reads.len() / every);
        for pair in snapshots.windows(2) {
            assert!(pair[1].reads_emitted == pair[0].reads_emitted + every);
            assert!(pair[1].samples_basecalled >= pair[0].samples_basecalled);
        }
        let f = summary.outcomes;
        assert_eq!(
            f.mapped + f.rejected_qsr + f.rejected_cmr + f.filtered_qc + f.unmapped,
            f.reads_emitted
        );
        assert_eq!(f.reads_emitted, d.reads.len());
    }

    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        // Run the engine with a work function that panics partway through,
        // under a watchdog: a regression back to the deadlock (stranded
        // gate permit → feeder and reorder loop blocked forever) fails the
        // test at the timeout instead of hanging the suite.
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let d = dataset();
            let config =
                GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
            let ctx = crate::pipeline::RunContext::from_source(&d.stream(), &config);
            let mut pending = d.reads.iter();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                stream_engine(
                    &ctx,
                    2,
                    1,
                    || pending.next(),
                    |scratch, read| {
                        assert!(read.id != 3, "injected failure on read 3");
                        process_read(&ctx, Some(ErMode::Full), read, scratch)
                    },
                    |_| {},
                )
            }));
            let _ = done_tx.send(result.is_err());
        });
        match done_rx.recv_timeout(std::time::Duration::from_secs(120)) {
            Ok(panicked) => assert!(panicked, "engine swallowed the worker panic"),
            Err(_) => panic!("engine deadlocked on a worker panic"),
        }
    }

    #[test]
    fn empty_source_streams_cleanly() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        struct Empty<'a>(genpip_datasets::DatasetStream<'a>);
        impl ReadSource for Empty<'_> {
            fn reference(&self) -> &genpip_genomics::Genome {
                self.0.reference()
            }
            fn pore_model(&self) -> &genpip_signal::PoreModel {
                self.0.pore_model()
            }
            fn mean_dwell(&self) -> f64 {
                self.0.mean_dwell()
            }
            fn next_read(&mut self) -> Option<genpip_datasets::SimulatedRead> {
                None
            }
        }
        let mut source = Empty(d.stream());
        let mut events = 0usize;
        let summary = run_genpip_streaming(
            &mut source,
            &config,
            ErMode::Full,
            &StreamOptions::default(),
            |_| events += 1,
        );
        assert_eq!(events, 0);
        assert_eq!(summary.outcomes, ProgressSnapshot::default());
        // The feeder holds one permit while probing the (empty) source — a
        // read being pulled counts as in flight — so the high-water mark is
        // at most the probe itself.
        assert!(summary.max_in_flight <= 1);
    }
}
