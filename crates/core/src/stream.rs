//! Streaming vocabulary and the legacy single-source streaming drivers.
//!
//! This module owns the types every streaming consumer speaks —
//! [`StreamOptions`], [`StreamEvent`], [`ProgressSnapshot`],
//! [`StreamSummary`] — plus the original single-source entry points
//! [`run_genpip_streaming`] and [`run_conventional_streaming`]. Since the
//! `Session` redesign these drivers are one-expression wrappers over
//! [`crate::engine::Session`]: they register the caller's source under a
//! single id, forward every event to the caller's sink, and flatten the
//! [`crate::engine::SessionReport`] back into the original
//! [`StreamSummary`]. All of their guarantees (bounded memory, in-order
//! emission, bit-identity with the batch drivers for every [`ErMode`] and
//! [`crate::Parallelism`]) are now *session* guarantees — see the
//! [`crate::engine`] module docs for the execution model.
//!
//! New code should build a [`crate::engine::Session`] directly: it accepts
//! multiple named sources with per-source sinks and a scheduling policy,
//! which these fixed signatures cannot express.

use crate::config::{GenPipConfig, Parallelism};
use crate::engine::{Flow, Session};
use crate::pipeline::{ErMode, ReadOutcome, ReadRun, WorkloadTotals};
use crate::scheduler::Schedule;
use genpip_datasets::ReadSource;

/// Knobs of the streaming transport (never affects results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Staging headroom between the sources and the workers. The enforced
    /// invariant is on the *total*: reads in flight anywhere (queued,
    /// processing, or awaiting in-order emission) never exceed
    /// `queue_capacity + workers` — one permit gate bounds the whole
    /// pipeline rather than each channel separately; see
    /// [`StreamSummary::in_flight_limit`]. A `Session` rejects 0 with a
    /// typed error ([`crate::engine::SessionError::ZeroQueueCapacity`]);
    /// the legacy `run_*` wrappers clamp it to 1 instead, as they always
    /// did.
    pub queue_capacity: usize,
    /// Emit a [`ProgressSnapshot`] through the sink every this many reads
    /// (0 disables snapshots). In a multi-source session the cadence is per
    /// source, counted in that source's own reads.
    pub progress_every: usize,
}

impl Default for StreamOptions {
    /// A small queue (8) and no progress snapshots.
    fn default() -> StreamOptions {
        StreamOptions {
            queue_capacity: 8,
            progress_every: 0,
        }
    }
}

/// Running outcome counters, emitted periodically through the sink and
/// returned (final values) in the [`StreamSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Reads emitted so far.
    pub reads_emitted: usize,
    /// …of which mapped.
    pub mapped: usize,
    /// …of which ER-QSR rejected.
    pub rejected_qsr: usize,
    /// …of which ER-CMR rejected.
    pub rejected_cmr: usize,
    /// …of which discarded by whole-read quality control.
    pub filtered_qc: usize,
    /// …of which fully processed but unmapped.
    pub unmapped: usize,
    /// Raw samples basecalled so far.
    pub samples_basecalled: usize,
}

impl ProgressSnapshot {
    pub(crate) fn observe(&mut self, run: &ReadRun) {
        self.reads_emitted += 1;
        self.samples_basecalled += run.basecalled_samples();
        match run.outcome {
            ReadOutcome::Mapped(_) => self.mapped += 1,
            ReadOutcome::RejectedQsr { .. } => self.rejected_qsr += 1,
            ReadOutcome::RejectedCmr { .. } => self.rejected_cmr += 1,
            ReadOutcome::FilteredQc { .. } => self.filtered_qc += 1,
            ReadOutcome::Unmapped { .. } => self.unmapped += 1,
        }
    }
}

/// What streaming sinks receive.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// One finished read, delivered in its source's read order.
    Read(ReadRun),
    /// Periodic counters (cadence set by [`StreamOptions::progress_every`]),
    /// delivered immediately after the read that triggered them.
    Progress(ProgressSnapshot),
}

/// What a streaming run leaves behind: aggregate counters only, O(1) in the
/// dataset size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Final outcome counters (its `reads_emitted` is the total read
    /// count).
    pub outcomes: ProgressSnapshot,
    /// Aggregate workload counters over all emitted reads — what
    /// `PipelineRun::totals()` would report for the equivalent batch run.
    pub totals: WorkloadTotals,
    /// Worker threads used.
    pub workers: usize,
    /// The enforced bound on in-flight reads (`queue_capacity + workers`;
    /// 1 for the serial in-line path).
    pub in_flight_limit: usize,
    /// High-water mark of reads simultaneously in flight (pulled from the
    /// source but not yet emitted). Always ≤ `in_flight_limit`.
    pub max_in_flight: usize,
}

/// The id the legacy wrappers register their single source under.
const LEGACY_SOURCE: &str = "stream";

/// Preserves the legacy drivers' never-fail semantics: inputs a `Session`
/// rejects with a typed error are clamped to the nearest valid value, as
/// the pre-`Session` engine always did.
fn clamp_legacy(config: &GenPipConfig, opts: &StreamOptions) -> (GenPipConfig, StreamOptions) {
    let mut config = config.clone();
    if matches!(config.parallelism, Parallelism::Threads(0)) {
        config.parallelism = Parallelism::Threads(1);
    }
    let opts = StreamOptions {
        queue_capacity: opts.queue_capacity.max(1),
        ..*opts
    };
    (config, opts)
}

fn run_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    flow: Flow,
    opts: &StreamOptions,
    sink: &mut dyn FnMut(StreamEvent),
) -> StreamSummary {
    let (config, opts) = clamp_legacy(config, opts);
    let workers = config.parallelism.workers().max(1);
    let report = Session::new(config)
        .flow(flow)
        .schedule(Schedule::Sequential)
        .options(opts)
        .source(LEGACY_SOURCE, &mut *source)
        .sink(LEGACY_SOURCE, sink)
        .run()
        .expect("legacy streaming inputs are pre-clamped to valid values");
    StreamSummary {
        outcomes: report.outcomes,
        totals: report.totals,
        workers,
        in_flight_limit: report.in_flight_limit,
        max_in_flight: report.max_in_flight,
    }
}

/// Streams GenPIP's chunk-based pipeline (Figure 5b / Figure 6) over any
/// [`ReadSource`], delivering each [`ReadRun`] through `sink` in read order
/// the moment it (and every earlier read) is done.
///
/// Produces bit-identical `ReadRun`s — and therefore bit-identical
/// [`ReadOutcome`]s — to [`crate::pipeline::run_genpip`] on the same reads,
/// for every [`ErMode`] and [`crate::Parallelism`] setting, while keeping at
/// most `queue_capacity + workers` reads in memory.
///
/// # Deprecated in favor of `Session`
///
/// This is a fixed single-source spelling of [`crate::engine::Session`];
/// prefer the builder, which also handles multiple sources, per-source
/// sinks, and scheduling policies:
///
/// ```no_run
/// use genpip_core::engine::{Flow, Session};
/// use genpip_core::stream::StreamEvent;
/// use genpip_core::{ErMode, GenPipConfig};
/// use genpip_datasets::{DatasetProfile, StreamingSimulator};
///
/// let profile = DatasetProfile::ecoli().scaled(0.05);
/// let report = Session::new(GenPipConfig::for_dataset(&profile))
///     .flow(Flow::GenPip(ErMode::Full))
///     .source("run", StreamingSimulator::new(&profile))
///     .sink("run", |event| {
///         if let StreamEvent::Read(run) = event {
///             println!("read {} done", run.id);
///         }
///     })
///     .run()
///     .expect("valid session");
/// assert!(report.max_in_flight <= report.in_flight_limit);
/// ```
pub fn run_genpip_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    er: ErMode,
    opts: &StreamOptions,
    mut sink: impl FnMut(StreamEvent),
) -> StreamSummary {
    run_streaming(source, config, Flow::GenPip(er), opts, &mut sink)
}

/// Streams the conventional whole-read pipeline (Figure 5a) over any
/// [`ReadSource`] — the streaming twin of
/// [`crate::pipeline::run_conventional`], with the same bit-identity and
/// memory-bound guarantees as [`run_genpip_streaming`].
///
/// # Deprecated in favor of `Session`
///
/// Equivalent to a single-source [`crate::engine::Session`] with
/// [`Flow::Conventional`]:
///
/// ```no_run
/// use genpip_core::engine::{Flow, Session};
/// use genpip_core::GenPipConfig;
/// use genpip_datasets::{DatasetProfile, StreamingSimulator};
///
/// let profile = DatasetProfile::ecoli().scaled(0.05);
/// let report = Session::new(GenPipConfig::for_dataset(&profile))
///     .flow(Flow::Conventional)
///     .source("run", StreamingSimulator::new(&profile))
///     .run()
///     .expect("valid session");
/// assert_eq!(report.sources.len(), 1);
/// ```
pub fn run_conventional_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    opts: &StreamOptions,
    mut sink: impl FnMut(StreamEvent),
) -> StreamSummary {
    run_streaming(source, config, Flow::Conventional, opts, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Parallelism;
    use crate::pipeline::run_genpip;
    use genpip_datasets::{DatasetProfile, SimulatedDataset};

    fn dataset() -> SimulatedDataset {
        DatasetProfile::ecoli().scaled(0.03).generate()
    }

    fn collect_streaming(
        dataset: &SimulatedDataset,
        config: &GenPipConfig,
        er: ErMode,
        opts: &StreamOptions,
    ) -> (Vec<ReadRun>, StreamSummary) {
        let mut reads = Vec::new();
        let mut source = dataset.stream();
        let summary = run_genpip_streaming(&mut source, config, er, opts, |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        });
        (reads, summary)
    }

    #[test]
    fn streaming_is_bit_identical_to_batch_and_respects_the_bound() {
        let d = dataset();
        let base = GenPipConfig::for_dataset(&d.profile);
        for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
            let config = base.clone().with_parallelism(parallelism);
            let batch = run_genpip(&d, &config, ErMode::Full);
            let opts = StreamOptions {
                queue_capacity: 2,
                progress_every: 0,
            };
            let (reads, summary) = collect_streaming(&d, &config, ErMode::Full, &opts);
            assert_eq!(reads, batch.reads, "{parallelism:?}");
            assert_eq!(summary.totals, batch.totals(), "{parallelism:?}");
            assert_eq!(summary.outcomes.reads_emitted, d.reads.len());
            assert!(
                summary.max_in_flight <= summary.in_flight_limit,
                "{parallelism:?}: {} in flight, limit {}",
                summary.max_in_flight,
                summary.in_flight_limit
            );
        }
    }

    #[test]
    fn serial_streaming_keeps_one_read_in_flight() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Serial);
        let (_, summary) = collect_streaming(&d, &config, ErMode::Full, &StreamOptions::default());
        assert_eq!(summary.workers, 1);
        assert_eq!(summary.in_flight_limit, 1);
        assert_eq!(summary.max_in_flight, 1);
    }

    #[test]
    fn legacy_wrappers_clamp_invalid_inputs_instead_of_erroring() {
        // The Session API rejects these with a typed error; the legacy
        // signatures (which cannot return errors) keep their historical
        // clamping behaviour.
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(0));
        let opts = StreamOptions {
            queue_capacity: 0,
            progress_every: 0,
        };
        let (reads, summary) = collect_streaming(&d, &config, ErMode::Full, &opts);
        assert_eq!(reads.len(), d.reads.len());
        assert_eq!(summary.workers, 1);
    }

    #[test]
    fn progress_snapshots_fire_on_cadence_and_count_outcomes() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        let every = 5usize;
        let opts = StreamOptions {
            queue_capacity: 4,
            progress_every: every,
        };
        let mut snapshots = Vec::new();
        let mut reads_seen = 0usize;
        let mut source = d.stream();
        let summary =
            run_genpip_streaming(
                &mut source,
                &config,
                ErMode::Full,
                &opts,
                |event| match event {
                    StreamEvent::Read(_) => reads_seen += 1,
                    StreamEvent::Progress(snap) => {
                        assert_eq!(snap.reads_emitted, reads_seen, "snapshot lags its read");
                        snapshots.push(snap);
                    }
                },
            );
        assert_eq!(snapshots.len(), d.reads.len() / every);
        for pair in snapshots.windows(2) {
            assert!(pair[1].reads_emitted == pair[0].reads_emitted + every);
            assert!(pair[1].samples_basecalled >= pair[0].samples_basecalled);
        }
        let f = summary.outcomes;
        assert_eq!(
            f.mapped + f.rejected_qsr + f.rejected_cmr + f.filtered_qc + f.unmapped,
            f.reads_emitted
        );
        assert_eq!(f.reads_emitted, d.reads.len());
    }

    #[test]
    fn empty_source_streams_cleanly() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        struct Empty<'a>(genpip_datasets::DatasetStream<'a>);
        impl ReadSource for Empty<'_> {
            fn reference(&self) -> &genpip_genomics::Genome {
                self.0.reference()
            }
            fn pore_model(&self) -> &genpip_signal::PoreModel {
                self.0.pore_model()
            }
            fn mean_dwell(&self) -> f64 {
                self.0.mean_dwell()
            }
            fn next_read(&mut self) -> Option<genpip_datasets::SimulatedRead> {
                None
            }
        }
        let mut source = Empty(d.stream());
        let mut events = 0usize;
        let summary = run_genpip_streaming(
            &mut source,
            &config,
            ErMode::Full,
            &StreamOptions::default(),
            |_| events += 1,
        );
        assert_eq!(events, 0);
        assert_eq!(summary.outcomes, ProgressSnapshot::default());
        // The feeder holds one permit while probing the (empty) source — a
        // read being pulled counts as in flight — so the high-water mark is
        // at most the probe itself.
        assert!(summary.max_in_flight <= 1);
    }
}
