//! Streaming vocabulary and the legacy single-source streaming drivers.
//!
//! This module owns the types every streaming consumer speaks —
//! [`StreamOptions`], [`StreamEvent`], [`ProgressSnapshot`],
//! [`StreamSummary`] — plus the original single-source entry points
//! [`run_genpip_streaming`] and [`run_conventional_streaming`]. Since the
//! `Session` redesign these drivers are one-expression wrappers over
//! [`crate::engine::Session`]: they register the caller's source under a
//! single id, forward every event to the caller's sink, and flatten the
//! [`crate::engine::SessionReport`] back into the original
//! [`StreamSummary`]. All of their guarantees (bounded memory, in-order
//! emission, bit-identity with the batch drivers for every [`ErMode`] and
//! [`crate::Parallelism`]) are now *session* guarantees — see the
//! [`crate::engine`] module docs for the execution model.
//!
//! New code should build a [`crate::engine::Session`] directly: it accepts
//! multiple named sources with per-source sinks and a scheduling policy,
//! which these fixed signatures cannot express.

use crate::config::{GenPipConfig, Parallelism};
use crate::engine::{Flow, Session};
use crate::pipeline::{ErMode, ReadOutcome, ReadRun, WorkloadTotals};
use crate::scheduler::Schedule;
use genpip_datasets::ReadSource;
use genpip_genomics::fastx::FastqWriter;
use std::io;

/// Knobs of the streaming transport (never affects results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Staging headroom between the sources and the workers. The enforced
    /// invariant is on the *total*: read chains resident anywhere (parked,
    /// processing, or — for surviving reads — awaiting in-order emission)
    /// never exceed `queue_capacity + workers`; one permit gate bounds the
    /// whole pipeline rather than each channel separately, and an
    /// early-rejected read leaves the bound at its verdict (see
    /// [`StreamSummary::max_in_flight`]). A `Session` rejects 0 with a
    /// typed error ([`crate::engine::SessionError::ZeroQueueCapacity`]);
    /// the legacy `run_*` wrappers clamp it to 1 instead, as they always
    /// did.
    pub queue_capacity: usize,
    /// Emit a [`ProgressSnapshot`] through the sink every this many reads
    /// (0 disables snapshots). In a multi-source session the cadence is per
    /// source, counted in that source's own reads.
    pub progress_every: usize,
    /// Soft bound on the emission backlog of **verdict-released** results:
    /// early-rejected and quarantined reads return their flow permit before
    /// their (small) result record reaches its in-order emission slot, so
    /// those records can pile up behind a slow head-of-line read. Once the
    /// backlog reaches this bound the engine stops *admitting new reads*
    /// until the emitter drains it — permits are never re-coupled to
    /// emission, so resident chains keep advancing and the backlog always
    /// drains. Peak backlog can transiently exceed the bound by at most the
    /// in-flight limit (already-resident chains may each add one record
    /// after admission stops). A `Session` rejects 0 with a typed error
    /// ([`crate::engine::SessionError::ZeroRejectBacklog`]); the legacy
    /// wrappers clamp it to 1.
    pub reject_backlog: usize,
    /// Admission control for live sessions: the most sources that may be
    /// attached (builder-registered plus control-plane
    /// [`crate::engine::SessionControl::attach`]) and not yet detached at
    /// any one time. A builder that already exceeds the bound is rejected
    /// up front, an attach that would exceed it is refused with
    /// [`crate::engine::SessionError::TooManySources`] — sources whose
    /// detach has been requested no longer count.
    pub max_sources: usize,
}

impl Default for StreamOptions {
    /// A small queue (8), no progress snapshots, a generous (but bounded)
    /// rejection backlog, and room for 64 concurrently-attached sources.
    fn default() -> StreamOptions {
        StreamOptions {
            queue_capacity: 8,
            progress_every: 0,
            reject_backlog: 256,
            max_sources: 64,
        }
    }
}

/// Running outcome counters, emitted periodically through the sink and
/// returned (final values) in the [`StreamSummary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Reads emitted so far.
    pub reads_emitted: usize,
    /// …of which mapped.
    pub mapped: usize,
    /// …of which ER-QSR rejected.
    pub rejected_qsr: usize,
    /// …of which ER-CMR rejected.
    pub rejected_cmr: usize,
    /// …of which discarded by whole-read quality control.
    pub filtered_qc: usize,
    /// …of which fully processed but unmapped.
    pub unmapped: usize,
    /// Reads quarantined after a fault (counted in `reads_emitted`; see
    /// [`StreamEvent::Failed`]).
    pub failed: usize,
    /// Raw samples basecalled so far.
    pub samples_basecalled: usize,
}

impl ProgressSnapshot {
    pub(crate) fn observe(&mut self, run: &ReadRun) {
        self.reads_emitted += 1;
        self.samples_basecalled += run.basecalled_samples();
        match run.outcome {
            ReadOutcome::Mapped(_) => self.mapped += 1,
            ReadOutcome::RejectedQsr { .. } => self.rejected_qsr += 1,
            ReadOutcome::RejectedCmr { .. } => self.rejected_cmr += 1,
            ReadOutcome::FilteredQc { .. } => self.filtered_qc += 1,
            ReadOutcome::Unmapped { .. } => self.unmapped += 1,
        }
    }

    pub(crate) fn observe_failed(&mut self) {
        self.reads_emitted += 1;
        self.failed += 1;
    }
}

/// What kind of fault took a read out of its run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The signal failed an integrity check (non-finite samples) before
    /// decoding — the typed fault the basecaller raises for corrupt input.
    CorruptSignal,
    /// A chunk task panicked for any other reason.
    Panic,
}

/// Why a read was quarantined: the fault kind, where in the chain it
/// struck, and how many retries were burned first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadFault {
    /// What struck (see [`FaultKind`]).
    pub kind: FaultKind,
    /// The panic payload, rendered as a string.
    pub message: String,
    /// Chunk index the fault struck at, when the chain knows (whole-read
    /// granularity reports `None`).
    pub chunk: Option<usize>,
    /// Attempts consumed before quarantine (1 = failed on first try with no
    /// retry budget; `1 + n` under `FaultPolicy::Retry { attempts: n }`).
    pub attempts: u32,
}

impl std::fmt::Display for ReadFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.kind)?;
        if let Some(chunk) = self.chunk {
            write!(f, " at chunk {chunk}")?;
        }
        write!(f, " after {} attempt(s): {}", self.attempts, self.message)
    }
}

/// What streaming sinks receive.
//
// `Read` dwarfs the other variants, but it is also ~all of the traffic:
// boxing it would cost an allocation per emitted read to shrink the rare
// control-flow variants, and would churn every sink's match arms.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum StreamEvent {
    /// One finished read, delivered in its source's read order.
    Read(ReadRun),
    /// One quarantined read, delivered in its source's read order like any
    /// other result. Only emitted under `FaultPolicy::Quarantine`/`Retry`;
    /// under the default `FaultPolicy::Fail` a fault tears the session down
    /// instead.
    Failed {
        /// The faulting read's id.
        read_id: u32,
        /// What happened to it.
        fault: ReadFault,
    },
    /// Periodic counters (cadence set by [`StreamOptions::progress_every`]),
    /// delivered immediately after the read that triggered them.
    Progress(ProgressSnapshot),
}

/// Read-latency percentiles of a run, in **chunk-work units**: for each
/// read, how many chunk-work entries (basecall or seeding steps, across
/// *all* reads and sources) completed between the read's admission and its
/// retirement. The engine's clock is work, not wall time, which keeps the
/// metric deterministic in serial runs and hardware-independent in
/// parallel ones.
///
/// Under read-granular scheduling a short read admitted behind long reads
/// is resident while every one of their chunks completes — head-of-line
/// blocking that shows up directly as a high `p99`. Chunk-granular
/// scheduling interleaves chains, so a short read retires after roughly its
/// own chunk count times the number of resident chains. The kernels bench
/// (`chunk_granularity` section) records both on a mixed short/long
/// workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Reads the percentiles are over.
    pub reads: usize,
    /// Median residency (nearest-rank), in chunk-work units.
    pub p50: u64,
    /// 99th-percentile residency (nearest-rank), in chunk-work units.
    pub p99: u64,
    /// Worst residency observed.
    pub max: u64,
}

impl LatencyStats {
    /// Nearest-rank percentiles of `samples` (sorted in place).
    pub(crate) fn from_samples(samples: &mut [u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let rank = |p: f64| {
            let idx = ((p * samples.len() as f64).ceil() as usize).max(1) - 1;
            samples[idx.min(samples.len() - 1)]
        };
        LatencyStats {
            reads: samples.len(),
            p50: rank(0.50),
            p99: rank(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// What a streaming run leaves behind: aggregate counters only, O(1) in the
/// dataset size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSummary {
    /// Final outcome counters (its `reads_emitted` is the total read
    /// count).
    pub outcomes: ProgressSnapshot,
    /// Aggregate workload counters over all emitted reads — what
    /// `PipelineRun::totals()` would report for the equivalent batch run.
    pub totals: WorkloadTotals,
    /// Worker threads used.
    pub workers: usize,
    /// The enforced bound on resident read chains (`queue_capacity +
    /// workers`; 1 for the serial in-line path).
    pub in_flight_limit: usize,
    /// High-water mark of **resident read chains**: reads admitted and not
    /// yet retired. A surviving read is resident from its pull until its
    /// in-order emission; an early-rejected read leaves residency at its
    /// QSR/CMR verdict (its remaining chunks are cancelled and its permit
    /// returns immediately), even though its small result record may wait
    /// longer for in-order emission. Always ≤ `in_flight_limit` — reads
    /// *pulled but not yet emitted* may transiently exceed the limit by the
    /// number of verdict-released rejected reads awaiting emission.
    pub max_in_flight: usize,
    /// Fault-retry attempts consumed across the run (reads re-enqueued
    /// after a transient fault under `FaultPolicy::Retry`; final
    /// quarantines are in [`ProgressSnapshot::failed`] instead).
    pub retried: usize,
    /// Read-residency percentiles (see [`LatencyStats`]).
    pub latency: LatencyStats,
}

/// The id the legacy wrappers register their single source under.
const LEGACY_SOURCE: &str = "stream";

/// Preserves the legacy drivers' never-fail semantics: inputs a `Session`
/// rejects with a typed error are clamped to the nearest valid value, as
/// the pre-`Session` engine always did.
fn clamp_legacy(config: &GenPipConfig, opts: &StreamOptions) -> (GenPipConfig, StreamOptions) {
    let mut config = config.clone();
    if matches!(config.parallelism, Parallelism::Threads(0)) {
        config.parallelism = Parallelism::Threads(1);
    }
    let opts = StreamOptions {
        queue_capacity: opts.queue_capacity.max(1),
        reject_backlog: opts.reject_backlog.max(1),
        max_sources: opts.max_sources.max(1),
        ..*opts
    };
    (config, opts)
}

fn run_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    flow: Flow,
    opts: &StreamOptions,
    sink: &mut dyn FnMut(StreamEvent),
) -> StreamSummary {
    let (config, opts) = clamp_legacy(config, opts);
    let workers = config.parallelism.workers().max(1);
    let report = Session::new(config)
        .flow(flow)
        .schedule(Schedule::Sequential)
        .options(opts)
        .source(LEGACY_SOURCE, &mut *source)
        .sink(LEGACY_SOURCE, sink)
        .run()
        .expect("legacy streaming inputs are pre-clamped to valid values");
    StreamSummary {
        outcomes: report.outcomes,
        totals: report.totals,
        workers,
        in_flight_limit: report.in_flight_limit,
        max_in_flight: report.max_in_flight,
        retried: report.retried,
        latency: report.latency,
    }
}

/// A [`StreamEvent`] consumer that writes every fully-basecalled read as a
/// FASTQ record — the on-disk half of a streaming session.
///
/// Requires the run's [`crate::GenPipConfig::keep_bases`] to be set so
/// emitted [`ReadRun`]s carry their sequence; reads without assembled bases
/// (early-rejected ones, or any read when `keep_bases` is off) are counted
/// in [`FastqSink::skipped`] instead of written. I/O errors are sticky:
/// writing stops at the first one and [`FastqSink::finish`] reports it.
///
/// ```no_run
/// use genpip_core::engine::{Flow, Session};
/// use genpip_core::stream::FastqSink;
/// use genpip_core::{ErMode, GenPipConfig};
/// use genpip_datasets::{DatasetProfile, StreamingSimulator};
///
/// let profile = DatasetProfile::ecoli().scaled(0.05);
/// let config = GenPipConfig::for_dataset(&profile).with_keep_bases(true);
/// let file = std::fs::File::create("reads.fastq").expect("create");
/// let mut sink = FastqSink::new(std::io::BufWriter::new(file));
/// Session::new(config)
///     .flow(Flow::GenPip(ErMode::Full))
///     .source("run", StreamingSimulator::new(&profile))
///     .sink("run", |event| sink.handle(&event))
///     .run()
///     .expect("valid session");
/// let (written, _) = sink.finish().expect("fastq written");
/// println!("{written} records");
/// ```
pub struct FastqSink<W: io::Write> {
    writer: FastqWriter<W>,
    prefix: String,
    skipped: usize,
    error: Option<io::Error>,
}

impl<W: io::Write> FastqSink<W> {
    /// Wraps a writer; records are named `read<id>`.
    pub fn new(writer: W) -> FastqSink<W> {
        FastqSink::with_prefix(writer, "")
    }

    /// Wraps a writer with a record-name prefix (`<prefix>read<id>`), so
    /// multi-source sessions writing into one file stay distinguishable.
    pub fn with_prefix(writer: W, prefix: impl Into<String>) -> FastqSink<W> {
        FastqSink {
            writer: FastqWriter::new(writer),
            prefix: prefix.into(),
            skipped: 0,
            error: None,
        }
    }

    /// Consumes one stream event: [`StreamEvent::Read`]s with assembled
    /// bases become FASTQ records, everything else is ignored.
    pub fn handle(&mut self, event: &StreamEvent) {
        let StreamEvent::Read(run) = event else {
            return;
        };
        let Some(called) = &run.called else {
            self.skipped += 1;
            return;
        };
        if self.error.is_some() {
            return;
        }
        let name = format!("{}read{}", self.prefix, run.id);
        if let Err(e) = self.writer.write_record(&name, &called.seq, &called.quals) {
            self.error = Some(e);
        }
    }

    /// Records written so far.
    pub fn written(&self) -> usize {
        self.writer.records()
    }

    /// Reads skipped because they carried no assembled bases.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Whether a write error has struck (writing stopped at it; the error
    /// itself comes out of [`FastqSink::finish`]). Sinks that want to stop
    /// a session promptly poll this and call
    /// [`crate::engine::SessionControl::drain`] on the first error, instead
    /// of pulling reads they can no longer persist.
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    /// Flushes buffered records to the underlying writer — the
    /// checkpoint-time operation. (Dropping the sink also flushes,
    /// best-effort, via [`FastqWriter`]'s drop.)
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Flushes, then reports the underlying writer's byte position — what a
    /// checkpoint records so a resumed run can truncate the file back to a
    /// record boundary before appending.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush or the seek.
    pub fn position(&mut self) -> io::Result<u64>
    where
        W: io::Seek,
    {
        self.writer.position()
    }

    /// Flushes and returns the record count and the underlying writer, or
    /// the first error hit.
    pub fn finish(self) -> io::Result<(usize, W)> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let records = self.writer.records();
        let inner = self.writer.finish()?;
        Ok((records, inner))
    }
}

/// Streams GenPIP's chunk-based pipeline (Figure 5b / Figure 6) over any
/// [`ReadSource`], delivering each [`ReadRun`] through `sink` in read order
/// the moment it (and every earlier read) is done.
///
/// Produces bit-identical `ReadRun`s — and therefore bit-identical
/// [`ReadOutcome`]s — to [`crate::pipeline::run_genpip`] on the same reads,
/// for every [`ErMode`] and [`crate::Parallelism`] setting, while keeping at
/// most `queue_capacity + workers` reads in memory.
///
/// # Deprecated in favor of `Session`
///
/// This is a fixed single-source spelling of [`crate::engine::Session`];
/// prefer the builder, which also handles multiple sources, per-source
/// sinks, and scheduling policies:
///
/// ```no_run
/// use genpip_core::engine::{Flow, Session};
/// use genpip_core::stream::StreamEvent;
/// use genpip_core::{ErMode, GenPipConfig};
/// use genpip_datasets::{DatasetProfile, StreamingSimulator};
///
/// let profile = DatasetProfile::ecoli().scaled(0.05);
/// let report = Session::new(GenPipConfig::for_dataset(&profile))
///     .flow(Flow::GenPip(ErMode::Full))
///     .source("run", StreamingSimulator::new(&profile))
///     .sink("run", |event| {
///         if let StreamEvent::Read(run) = event {
///             println!("read {} done", run.id);
///         }
///     })
///     .run()
///     .expect("valid session");
/// assert!(report.max_in_flight <= report.in_flight_limit);
/// ```
#[deprecated(note = "use Session")]
pub fn run_genpip_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    er: ErMode,
    opts: &StreamOptions,
    mut sink: impl FnMut(StreamEvent),
) -> StreamSummary {
    run_streaming(source, config, Flow::GenPip(er), opts, &mut sink)
}

/// Streams the conventional whole-read pipeline (Figure 5a) over any
/// [`ReadSource`] — the streaming twin of
/// [`crate::pipeline::run_conventional`], with the same bit-identity and
/// memory-bound guarantees as [`run_genpip_streaming`].
///
/// # Deprecated in favor of `Session`
///
/// Equivalent to a single-source [`crate::engine::Session`] with
/// [`Flow::Conventional`]:
///
/// ```no_run
/// use genpip_core::engine::{Flow, Session};
/// use genpip_core::GenPipConfig;
/// use genpip_datasets::{DatasetProfile, StreamingSimulator};
///
/// let profile = DatasetProfile::ecoli().scaled(0.05);
/// let report = Session::new(GenPipConfig::for_dataset(&profile))
///     .flow(Flow::Conventional)
///     .source("run", StreamingSimulator::new(&profile))
///     .run()
///     .expect("valid session");
/// assert_eq!(report.sources.len(), 1);
/// ```
#[deprecated(note = "use Session")]
pub fn run_conventional_streaming<S: ReadSource + Send>(
    source: &mut S,
    config: &GenPipConfig,
    opts: &StreamOptions,
    mut sink: impl FnMut(StreamEvent),
) -> StreamSummary {
    run_streaming(source, config, Flow::Conventional, opts, &mut sink)
}

// The identity oracle below deliberately exercises the deprecated wrappers
// against the batch path: they stay the frozen reference spellings until
// they are removed.
#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::config::Parallelism;
    use crate::pipeline::run_genpip;
    use genpip_datasets::{DatasetProfile, SimulatedDataset};

    fn dataset() -> SimulatedDataset {
        DatasetProfile::ecoli().scaled(0.03).generate()
    }

    fn collect_streaming(
        dataset: &SimulatedDataset,
        config: &GenPipConfig,
        er: ErMode,
        opts: &StreamOptions,
    ) -> (Vec<ReadRun>, StreamSummary) {
        let mut reads = Vec::new();
        let mut source = dataset.stream();
        let summary = run_genpip_streaming(&mut source, config, er, opts, |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        });
        (reads, summary)
    }

    #[test]
    fn streaming_is_bit_identical_to_batch_and_respects_the_bound() {
        let d = dataset();
        let base = GenPipConfig::for_dataset(&d.profile);
        for parallelism in [Parallelism::Serial, Parallelism::Threads(3)] {
            let config = base.clone().with_parallelism(parallelism);
            let batch = run_genpip(&d, &config, ErMode::Full);
            let opts = StreamOptions {
                queue_capacity: 2,
                ..StreamOptions::default()
            };
            let (reads, summary) = collect_streaming(&d, &config, ErMode::Full, &opts);
            assert_eq!(reads, batch.reads, "{parallelism:?}");
            assert_eq!(summary.totals, batch.totals(), "{parallelism:?}");
            assert_eq!(summary.outcomes.reads_emitted, d.reads.len());
            assert!(
                summary.max_in_flight <= summary.in_flight_limit,
                "{parallelism:?}: {} in flight, limit {}",
                summary.max_in_flight,
                summary.in_flight_limit
            );
        }
    }

    #[test]
    fn serial_streaming_keeps_one_read_in_flight() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Serial);
        let (_, summary) = collect_streaming(&d, &config, ErMode::Full, &StreamOptions::default());
        assert_eq!(summary.workers, 1);
        assert_eq!(summary.in_flight_limit, 1);
        assert_eq!(summary.max_in_flight, 1);
    }

    #[test]
    fn legacy_wrappers_clamp_invalid_inputs_instead_of_erroring() {
        // The Session API rejects these with a typed error; the legacy
        // signatures (which cannot return errors) keep their historical
        // clamping behaviour.
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(0));
        let opts = StreamOptions {
            queue_capacity: 0,
            reject_backlog: 0,
            ..StreamOptions::default()
        };
        let (reads, summary) = collect_streaming(&d, &config, ErMode::Full, &opts);
        assert_eq!(reads.len(), d.reads.len());
        assert_eq!(summary.workers, 1);
    }

    #[test]
    fn progress_snapshots_fire_on_cadence_and_count_outcomes() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        let every = 5usize;
        let opts = StreamOptions {
            queue_capacity: 4,
            progress_every: every,
            ..StreamOptions::default()
        };
        let mut snapshots = Vec::new();
        let mut reads_seen = 0usize;
        let mut source = d.stream();
        let summary =
            run_genpip_streaming(
                &mut source,
                &config,
                ErMode::Full,
                &opts,
                |event| match event {
                    StreamEvent::Read(_) => reads_seen += 1,
                    StreamEvent::Progress(snap) => {
                        assert_eq!(snap.reads_emitted, reads_seen, "snapshot lags its read");
                        snapshots.push(snap);
                    }
                    StreamEvent::Failed { fault, .. } => {
                        panic!("fault-free run emitted a failure: {fault}")
                    }
                },
            );
        assert_eq!(snapshots.len(), d.reads.len() / every);
        for pair in snapshots.windows(2) {
            assert!(pair[1].reads_emitted == pair[0].reads_emitted + every);
            assert!(pair[1].samples_basecalled >= pair[0].samples_basecalled);
        }
        let f = summary.outcomes;
        assert_eq!(
            f.mapped + f.rejected_qsr + f.rejected_cmr + f.filtered_qc + f.unmapped,
            f.reads_emitted
        );
        assert_eq!(f.reads_emitted, d.reads.len());
    }

    #[test]
    fn empty_source_streams_cleanly() {
        let d = dataset();
        let config =
            GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Threads(2));
        struct Empty<'a>(genpip_datasets::DatasetStream<'a>);
        impl ReadSource for Empty<'_> {
            fn reference(&self) -> &genpip_genomics::Genome {
                self.0.reference()
            }
            fn pore_model(&self) -> &genpip_signal::PoreModel {
                self.0.pore_model()
            }
            fn mean_dwell(&self) -> f64 {
                self.0.mean_dwell()
            }
            fn next_read(&mut self) -> Option<genpip_datasets::SimulatedRead> {
                None
            }
        }
        let mut source = Empty(d.stream());
        let mut events = 0usize;
        let summary = run_genpip_streaming(
            &mut source,
            &config,
            ErMode::Full,
            &StreamOptions::default(),
            |_| events += 1,
        );
        assert_eq!(events, 0);
        assert_eq!(summary.outcomes, ProgressSnapshot::default());
        // The feeder holds one permit while probing the (empty) source — a
        // read being pulled counts as in flight — so the high-water mark is
        // at most the probe itself.
        assert!(summary.max_in_flight <= 1);
    }
}
