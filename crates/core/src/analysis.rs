//! Evaluation metrics: rejection ratios, false negatives, useless reads,
//! accuracy audits.
//!
//! The paper's sensitivity analysis (Section 6.3) judges ER with two
//! metrics — *rejection ratio* (rejected / all reads) and *false-negative
//! ratio* (incorrectly rejected / rejected) — against an oracle that knows
//! what would have happened without ER. Here the oracle is the conventional
//! run of the same dataset: it basecalls every read fully, so its whole-read
//! AQS says whether a QSR rejection was wrong, and its mapping outcome says
//! whether a CMR rejection was wrong.

use crate::pipeline::{PipelineRun, ReadOutcome};

/// Rejection-quality metrics for one ER configuration (one point of
/// Figure 12 or 13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejectionAnalysis {
    /// Total reads.
    pub reads: usize,
    /// Reads rejected by the stage under study.
    pub rejected: usize,
    /// Rejected reads the oracle says should have survived.
    pub false_negatives: usize,
}

impl RejectionAnalysis {
    /// Rejected / all reads.
    pub fn rejection_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.rejected as f64 / self.reads as f64
        }
    }

    /// Incorrectly rejected / rejected (0 when nothing was rejected).
    pub fn false_negative_ratio(&self) -> f64 {
        if self.rejected == 0 {
            0.0
        } else {
            self.false_negatives as f64 / self.rejected as f64
        }
    }
}

/// Analyses ER-QSR decisions in `er_run` against the conventional `oracle`.
///
/// A QSR rejection is a false negative if the oracle's whole-read average
/// quality meets the threshold (the read would have passed read quality
/// control).
///
/// # Panics
///
/// Panics if the two runs cover different read counts.
pub fn qsr_analysis(
    er_run: &PipelineRun,
    oracle: &PipelineRun,
    theta_qs: f64,
) -> RejectionAnalysis {
    assert_eq!(
        er_run.reads.len(),
        oracle.reads.len(),
        "runs must cover the same dataset"
    );
    let mut out = RejectionAnalysis {
        reads: er_run.reads.len(),
        rejected: 0,
        false_negatives: 0,
    };
    for (er, oracle) in er_run.reads.iter().zip(&oracle.reads) {
        if let ReadOutcome::RejectedQsr { .. } = er.outcome {
            out.rejected += 1;
            let true_aqs = oracle.full_aqs.expect("oracle basecalls fully");
            if true_aqs >= theta_qs {
                out.false_negatives += 1;
            }
        }
    }
    out
}

/// Analyses ER-CMR decisions in `er_run` against the conventional `oracle`.
///
/// A CMR rejection is a false negative if the oracle mapped the read.
///
/// # Panics
///
/// Panics if the two runs cover different read counts.
pub fn cmr_analysis(er_run: &PipelineRun, oracle: &PipelineRun) -> RejectionAnalysis {
    assert_eq!(
        er_run.reads.len(),
        oracle.reads.len(),
        "runs must cover the same dataset"
    );
    let mut out = RejectionAnalysis {
        reads: er_run.reads.len(),
        rejected: 0,
        false_negatives: 0,
    };
    for (er, oracle) in er_run.reads.iter().zip(&oracle.reads) {
        if let ReadOutcome::RejectedCmr { .. } = er.outcome {
            out.rejected += 1;
            if oracle.outcome.is_mapped() {
                out.false_negatives += 1;
            }
        }
    }
    out
}

/// The Section 2.3 statistics: what fraction of reads is useless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UselessReadStats {
    /// Total reads.
    pub reads: usize,
    /// Reads discarded by read quality control (paper: 20.5 % for E. coli).
    pub low_quality: usize,
    /// QC-passing reads that fail to map (paper: 10 %).
    pub unmapped: usize,
}

impl UselessReadStats {
    /// Computes the statistics from a conventional run.
    pub fn of(run: &PipelineRun) -> UselessReadStats {
        UselessReadStats {
            reads: run.reads.len(),
            low_quality: run.count_outcomes(|o| matches!(o, ReadOutcome::FilteredQc { .. })),
            unmapped: run.count_outcomes(|o| matches!(o, ReadOutcome::Unmapped { .. })),
        }
    }

    /// Low-quality fraction of all reads.
    pub fn low_quality_fraction(&self) -> f64 {
        self.low_quality as f64 / self.reads.max(1) as f64
    }

    /// Unmapped fraction of all reads.
    pub fn unmapped_fraction(&self) -> f64 {
        self.unmapped as f64 / self.reads.max(1) as f64
    }

    /// Total useless fraction (paper: 30.5 % for E. coli).
    pub fn useless_fraction(&self) -> f64 {
        self.low_quality_fraction() + self.unmapped_fraction()
    }
}

/// Characterizes the reads ER rejected by mistake — the analogue of the
/// paper's Section 6.3.1 argument that incorrectly-rejected reads are
/// marginal (their scores sit near the discard band, far from typical
/// reads), so losing them costs little.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FalseNegativeAudit {
    /// Mean whole-read AQS of reads ER rejected but the oracle kept.
    pub mean_aqs_false_negatives: f64,
    /// Mean whole-read AQS of reads the oracle's QC itself discarded.
    pub mean_aqs_low_quality: f64,
    /// Mean whole-read AQS of all reads.
    pub mean_aqs_all: f64,
    /// Mean per-base oracle chain score of the false negatives (secondary
    /// signal: how mappable the lost reads were).
    pub mean_chain_per_base_false_negatives: f64,
    /// Number of false negatives audited.
    pub false_negatives: usize,
}

/// Audits false negatives of a full-ER run against the oracle.
///
/// # Panics
///
/// Panics if the two runs cover different read counts.
pub fn false_negative_audit(er_run: &PipelineRun, oracle: &PipelineRun) -> FalseNegativeAudit {
    assert_eq!(
        er_run.reads.len(),
        oracle.reads.len(),
        "runs must cover the same dataset"
    );
    let mut fn_aqs = Vec::new();
    let mut fn_chain = Vec::new();
    let mut lq_aqs = Vec::new();
    let mut all_aqs = Vec::new();
    for (er, oracle) in er_run.reads.iter().zip(&oracle.reads) {
        let aqs = oracle.full_aqs.expect("oracle basecalls fully");
        all_aqs.push(aqs);
        if er.outcome.is_early_rejected() && oracle.outcome.is_mapped() {
            fn_aqs.push(aqs);
            fn_chain.push(oracle.best_chain_score / oracle.called_len.max(1) as f64);
        }
        if matches!(oracle.outcome, ReadOutcome::FilteredQc { .. }) {
            lq_aqs.push(aqs);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    FalseNegativeAudit {
        mean_aqs_false_negatives: mean(&fn_aqs),
        mean_aqs_low_quality: mean(&lq_aqs),
        mean_aqs_all: mean(&all_aqs),
        mean_chain_per_base_false_negatives: mean(&fn_chain),
        false_negatives: fn_aqs.len(),
    }
}

/// The Section 6.1 "negligible accuracy loss" measurement: how much of the
/// conventional pipeline's output survives ER, and whether the survivors
/// map to the same place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRetention {
    /// Reads the oracle mapped.
    pub oracle_mapped: usize,
    /// Of those, reads the ER run also mapped.
    pub retained: usize,
    /// Of the retained, reads whose mapping agrees with the oracle's
    /// (same strand, start within 50 bp).
    pub concordant: usize,
    /// Reads the ER run mapped that the oracle did not (should be ≈0).
    pub gained: usize,
}

impl AccuracyRetention {
    /// Fraction of oracle mappings that survive ER.
    pub fn recall(&self) -> f64 {
        if self.oracle_mapped == 0 {
            1.0
        } else {
            self.retained as f64 / self.oracle_mapped as f64
        }
    }

    /// Fraction of retained mappings that agree with the oracle.
    pub fn concordance(&self) -> f64 {
        if self.retained == 0 {
            1.0
        } else {
            self.concordant as f64 / self.retained as f64
        }
    }
}

/// Compares an ER run's mappings with the conventional oracle's.
///
/// # Panics
///
/// Panics if the two runs cover different read counts.
pub fn accuracy_retention(er_run: &PipelineRun, oracle: &PipelineRun) -> AccuracyRetention {
    assert_eq!(
        er_run.reads.len(),
        oracle.reads.len(),
        "runs must cover the same dataset"
    );
    let mut out = AccuracyRetention {
        oracle_mapped: 0,
        retained: 0,
        concordant: 0,
        gained: 0,
    };
    for (er, oracle) in er_run.reads.iter().zip(&oracle.reads) {
        match (oracle.outcome.mapping(), er.outcome.mapping()) {
            (Some(om), Some(em)) => {
                out.oracle_mapped += 1;
                out.retained += 1;
                if om.strand == em.strand && om.ref_start.abs_diff(em.ref_start) <= 50 {
                    out.concordant += 1;
                }
            }
            (Some(_), None) => out.oracle_mapped += 1,
            (None, Some(_)) => out.gained += 1,
            (None, None) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenPipConfig;
    use crate::pipeline::{batch_conventional, batch_genpip, ErMode};
    use genpip_datasets::DatasetProfile;
    use genpip_datasets::SimulatedDataset;

    fn setup() -> (SimulatedDataset, PipelineRun, PipelineRun) {
        let d = DatasetProfile::ecoli().scaled(0.15).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        let oracle = batch_conventional(&d, &config);
        let er = batch_genpip(&d, &config, ErMode::Full);
        (d, oracle, er)
    }

    #[test]
    fn ratios_are_fractions() {
        let (_, oracle, er) = setup();
        let q = qsr_analysis(&er, &oracle, 7.0);
        assert!(q.rejection_ratio() > 0.0 && q.rejection_ratio() < 1.0);
        assert!(q.false_negative_ratio() <= 1.0);
        assert!(q.false_negatives <= q.rejected);
        let c = cmr_analysis(&er, &oracle);
        assert!(c.rejected > 0);
        assert!(c.false_negatives <= c.rejected);
    }

    #[test]
    fn qsr_rejection_tracks_low_quality_population() {
        let (d, oracle, er) = setup();
        let q = qsr_analysis(&er, &oracle, 7.0);
        let truth_lq = d.low_quality_fraction_truth();
        assert!(
            (q.rejection_ratio() - truth_lq).abs() < 0.1,
            "rejection {} vs truth {truth_lq}",
            q.rejection_ratio()
        );
        // With well-separated quality bands the FN ratio stays small.
        assert!(
            q.false_negative_ratio() < 0.35,
            "FN ratio {}",
            q.false_negative_ratio()
        );
    }

    #[test]
    fn cmr_rejection_tracks_contaminants_with_low_fn() {
        let (d, oracle, er) = setup();
        let c = cmr_analysis(&er, &oracle);
        let truth_cont = d.contaminant_fraction_truth();
        assert!(
            c.rejection_ratio() < truth_cont + 0.08,
            "CMR rejection {} vs contaminants {truth_cont}",
            c.rejection_ratio()
        );
        assert!(
            c.false_negative_ratio() < 0.25,
            "FN ratio {}",
            c.false_negative_ratio()
        );
    }

    #[test]
    fn useless_reads_match_section_2_3_shape() {
        let (_, oracle, _) = setup();
        let u = UselessReadStats::of(&oracle);
        // Paper: 20.5 % low quality, 10 % unmapped, 30.5 % useless.
        assert!(
            (0.10..0.32).contains(&u.low_quality_fraction()),
            "low quality {}",
            u.low_quality_fraction()
        );
        assert!(
            (0.04..0.20).contains(&u.unmapped_fraction()),
            "unmapped {}",
            u.unmapped_fraction()
        );
        assert!(
            (0.18..0.45).contains(&u.useless_fraction()),
            "useless {}",
            u.useless_fraction()
        );
    }

    #[test]
    fn audit_places_false_negatives_between_bands() {
        let (_, oracle, er) = setup();
        let audit = false_negative_audit(&er, &oracle);
        // QC-discarded reads sit far below the population mean.
        assert!(audit.mean_aqs_low_quality < audit.mean_aqs_all - 2.0);
        if audit.false_negatives > 0 {
            // False negatives are marginal: below the population mean,
            // above the QC-discarded band.
            assert!(audit.mean_aqs_false_negatives < audit.mean_aqs_all);
            assert!(audit.mean_aqs_false_negatives > audit.mean_aqs_low_quality);
        }
    }

    #[test]
    fn empty_analysis_is_zero() {
        let a = RejectionAnalysis {
            reads: 0,
            rejected: 0,
            false_negatives: 0,
        };
        assert_eq!(a.rejection_ratio(), 0.0);
        assert_eq!(a.false_negative_ratio(), 0.0);
    }

    #[test]
    fn accuracy_loss_is_negligible() {
        // Section 6.1: ER must not meaningfully change the pipeline output.
        let (_, oracle, er) = setup();
        let acc = accuracy_retention(&er, &oracle);
        assert!(acc.oracle_mapped > 30, "want a meaningful mapped sample");
        assert!(
            acc.recall() > 0.9,
            "ER lost too many mappings: recall {}",
            acc.recall()
        );
        assert!(
            acc.concordance() > 0.97,
            "survivors moved: concordance {}",
            acc.concordance()
        );
        assert!(acc.gained <= 2, "ER invented {} mappings", acc.gained);
    }

    #[test]
    fn retention_edge_cases() {
        let a = AccuracyRetention {
            oracle_mapped: 0,
            retained: 0,
            concordant: 0,
            gained: 0,
        };
        assert_eq!(a.recall(), 1.0);
        assert_eq!(a.concordance(), 1.0);
    }
}
