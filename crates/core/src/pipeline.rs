//! Functional execution of the genome-analysis pipeline.
//!
//! Two flows are implemented:
//!
//! * [`run_conventional`] — the paper's Figure 5(a): basecall the whole read
//!   (chunk by chunk with carried decoder state), read quality control on
//!   the full-read average quality, then whole-read mapping. This is the
//!   workload of the CPU, GPU and PIM baselines.
//! * [`run_genpip`] — the chunk-based pipeline of Figure 5(b), optionally
//!   with early rejection (Figure 6): every basecalled chunk immediately
//!   flows through quality accumulation, seeding, and incremental chaining;
//!   QSR samples evenly-spaced chunks first, CMR checks the chaining score
//!   after the first `N_cm` chunks, and rejected reads stop consuming
//!   resources.
//!
//! Both produce a [`PipelineRun`]: per-read outcomes plus the workload
//! counters (samples, MVMs, seeding shifts, anchors, DP cells, bytes) that
//! the system cost models in [`crate::systems`] consume. Nothing about
//! rejection behaviour is modelled analytically — every decision replays the
//! real algorithms on the synthetic signals.
//!
//! # Threading model
//!
//! Both drivers are thin single-source wrappers over the [`Session`] engine
//! in [`crate::engine`], which schedules **chunk tasks**: each read becomes
//! a read chain — a sequential chain of per-chunk tasks (the decoder's
//! carry state forces chunk order within a read) that can be parked between
//! tasks and resumed on any worker. Workers are scoped threads spawned
//! lazily up to [`GenPipConfig::parallelism`] ([`crate::Parallelism`]), and
//! results are re-emitted in admission order. Cross-task read state lives
//! in the chain (decoder cursor, basecalled chunks, incremental chainers);
//! **worker-local scratch** holds only stateless buffers (decode, sketch,
//! seed — so the hot path stays allocation-free in steady state). The
//! shared state ([`Basecaller`], [`ReferenceSet`] with its `Arc`-shared
//! reference genomes and `Arc`-shared sharded minimizer indexes) is
//! immutable, therefore
//! one set of index shards serves every worker — workers never clone
//! whole-genome index state, no matter the shard count
//! ([`GenPipConfig::with_shards`]). Per-read computation never depends on
//! other reads, which makes the output **bit-identical** for every
//! `Parallelism` setting, for streaming vs batch execution, and for
//! chunk-granular vs read-granular scheduling
//! ([`crate::engine::Granularity`]) — asserted by this module's tests and
//! `tests/chunk_granularity.rs` across all [`ErMode`]s.

use crate::config::GenPipConfig;
use crate::early_reject::{cmr_check, qsr_check, qsr_sample_indices};
use crate::engine::{ChainStep, Flow, Granularity, Session};
use crate::scheduler::Schedule;
use crate::stream::{StreamEvent, StreamOptions};
use genpip_basecall::{
    BasecalledChunk, Basecaller, CallScratch, CarryState, ChunkJob, LaneDecoder, LaneScratch,
    MAX_LANES,
};
use genpip_datasets::{ReadSource, SimulatedDataset, SimulatedRead};
use genpip_genomics::quality::AqsAccumulator;
use genpip_genomics::{DnaSeq, Genome, Phred};
use genpip_mapping::{
    IncrementalChainer, Mapping, MappingCounters, ReferenceMapping, ReferenceSet, SeedBatch,
    SeedScratch,
};
use genpip_signal::{chunk_boundaries, PoreModel};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

/// Which early-rejection stages are active on top of CP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErMode {
    /// Chunk-based pipeline only (GenPIP-CP).
    None,
    /// CP + quality-score-based rejection (GenPIP-CP-QSR).
    QsrOnly,
    /// CP + QSR + chunk-mapping-based rejection (full GenPIP).
    Full,
}

/// Why a read left the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadOutcome {
    /// ER-QSR predicted the read low-quality after sampling `N_qs` chunks.
    RejectedQsr {
        /// Average quality of the sampled chunks.
        sampled_aqs: f64,
    },
    /// ER-CMR predicted the read unmapped after chaining `N_cm` chunks.
    RejectedCmr {
        /// Chaining score at the decision point.
        chain_score: f64,
    },
    /// Whole-read quality control discarded the read (AQS < θ_qs).
    FilteredQc {
        /// The read's full average quality score.
        aqs: f64,
    },
    /// The read was fully processed but did not map to the reference.
    Unmapped {
        /// Best whole-read chaining score.
        chain_score: f64,
    },
    /// The read mapped.
    Mapped(Mapping),
}

impl ReadOutcome {
    /// `true` for ER rejections (QSR or CMR).
    pub fn is_early_rejected(&self) -> bool {
        matches!(
            self,
            ReadOutcome::RejectedQsr { .. } | ReadOutcome::RejectedCmr { .. }
        )
    }

    /// `true` if the read produced a mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self, ReadOutcome::Mapped(_))
    }

    /// The mapping, if any.
    pub fn mapping(&self) -> Option<&Mapping> {
        match self {
            ReadOutcome::Mapped(m) => Some(m),
            _ => None,
        }
    }
}

/// Work performed at one pipeline step for one chunk.
///
/// GenPIP may touch a chunk twice — once when QSR samples it (basecall
/// only) and once when its position arrives in the sequential pass (seeding
/// and chaining only, reusing the basecalled result). Each touch is one
/// `ChunkWork` entry, so counters never double-count and the hardware
/// scheduler sees the true job sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkWork {
    /// Chunk index within the read.
    pub index: usize,
    /// Raw samples basecalled at this step (0 when reusing a sampled chunk).
    pub samples: usize,
    /// Emission MVMs at this step.
    pub mvm_ops: usize,
    /// Bases produced at this step.
    pub bases_called: usize,
    /// Bases pushed through seeding at this step (0 for basecall-only
    /// steps); the hardware QSG shifts once per base.
    pub seed_bases: usize,
    /// Minimizers extracted.
    pub minimizers: usize,
    /// Anchors produced (ReRAM location-list reads).
    pub anchors: usize,
    /// Chaining DP predecessor evaluations added.
    pub chain_evals: usize,
}

/// A fully-basecalled read's assembled output: what a FASTQ record needs.
///
/// Attached to [`ReadRun::called`] only when
/// [`crate::GenPipConfig::keep_bases`] is set **and** the read survived to
/// full basecalling (early-rejected reads never assemble their sequence —
/// that is the point of early rejection).
#[derive(Debug, Clone, PartialEq)]
pub struct CalledBases {
    /// The assembled basecalled sequence, in chunk order.
    pub seq: DnaSeq,
    /// Per-base Phred qualities (same length as `seq`).
    pub quals: Vec<Phred>,
}

/// One read's journey through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadRun {
    /// Read id.
    pub id: u32,
    /// Final outcome.
    pub outcome: ReadOutcome,
    /// Chunks the raw signal divides into (`N_total`).
    pub total_chunks: usize,
    /// Work entries in processing order.
    pub chunks: Vec<ChunkWork>,
    /// Full raw-signal samples (what a conventional flow must move/store).
    pub signal_samples: usize,
    /// Bases actually basecalled.
    pub called_len: usize,
    /// Whole-read AQS, if the read was fully basecalled.
    pub full_aqs: Option<f64>,
    /// Best whole-read chain score observed (0 if never chained).
    pub best_chain_score: f64,
    /// Query length of the final alignment (0 if none ran).
    pub align_query_len: usize,
    /// Alignment DP cells (0 if none ran).
    pub align_cells: usize,
    /// Aggregate mapping counters (seeding + chaining + alignment).
    pub map_counters: MappingCounters,
    /// The assembled sequence and qualities, kept only when
    /// [`crate::GenPipConfig::keep_bases`] is set and the read was fully
    /// basecalled (see [`CalledBases`]).
    pub called: Option<CalledBases>,
    /// Per-reference candidates from a pan-genome run
    /// ([`crate::GenPipConfig::extra_references`]), in reference-set order;
    /// the merged winner is `outcome`'s mapping, attributed via
    /// [`Mapping::ref_name`]. Empty for single-reference runs (whose
    /// `ReadRun` stays byte-for-byte what it always was) and for reads that
    /// never reached final mapping.
    pub per_reference: Vec<ReferenceMapping>,
}

impl ReadRun {
    /// Raw-signal bytes of the full read.
    pub fn raw_bytes(&self) -> usize {
        self.signal_samples * genpip_signal::BYTES_PER_SAMPLE
    }

    /// Bytes of basecalled output (2-bit packed bases + one quality byte per
    /// base), the unit the conventional flow ships between machines.
    pub fn called_bytes(&self) -> usize {
        self.called_len.div_ceil(4) + self.called_len
    }

    /// Total basecalled samples across work entries.
    pub fn basecalled_samples(&self) -> usize {
        self.chunks.iter().map(|c| c.samples).sum()
    }
}

/// A full dataset run: configuration + per-read results.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// The configuration used (shared, not deep-copied, across derived runs
    /// such as [`PipelineRun::filtered`]).
    pub config: Arc<GenPipConfig>,
    /// Which ER stages were active (`None` marks the conventional flow too;
    /// see [`PipelineRun::chunked`]).
    pub er: ErMode,
    /// `true` if produced by [`run_genpip`] (chunk-granularity seeding and
    /// chaining), `false` for [`run_conventional`].
    pub chunked: bool,
    /// Per-read results, id-ordered.
    pub reads: Vec<ReadRun>,
}

/// Aggregate workload counters over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkloadTotals {
    /// Reads processed.
    pub reads: usize,
    /// Raw samples basecalled.
    pub samples: usize,
    /// Emission MVMs.
    pub mvm_ops: usize,
    /// Bases basecalled.
    pub bases_called: usize,
    /// Bases pushed through seeding.
    pub seed_bases: usize,
    /// Minimizers extracted.
    pub minimizers: usize,
    /// Anchors produced.
    pub anchors: usize,
    /// Chaining DP evaluations.
    pub chain_evals: usize,
    /// Alignment DP cells.
    pub align_cells: usize,
    /// Raw-signal bytes across all reads (full signals).
    pub raw_bytes: usize,
    /// Basecalled-output bytes across all reads.
    pub called_bytes: usize,
    /// Reads that reached the mapped outcome.
    pub mapped_reads: usize,
}

impl WorkloadTotals {
    /// Folds one read's counters into the totals — the unit both
    /// [`PipelineRun::totals`] and the streaming drivers (which never hold
    /// the whole run in memory) are built from.
    ///
    /// Basecalling quantities come from the chunk work entries; mapping
    /// quantities come from the per-read [`MappingCounters`], which hold the
    /// whole-read sketch for conventional runs and the per-chunk aggregation
    /// for chunked runs.
    pub fn accumulate(&mut self, r: &ReadRun) {
        self.reads += 1;
        for c in &r.chunks {
            self.samples += c.samples;
            self.mvm_ops += c.mvm_ops;
            self.bases_called += c.bases_called;
            self.seed_bases += c.seed_bases;
        }
        self.minimizers += r.map_counters.minimizers;
        self.anchors += r.map_counters.anchors;
        self.chain_evals += r.map_counters.chain_evals;
        self.align_cells += r.align_cells;
        self.raw_bytes += r.raw_bytes();
        self.called_bytes += r.called_bytes();
        if r.outcome.is_mapped() {
            self.mapped_reads += 1;
        }
    }
}

impl PipelineRun {
    /// Sums the workload counters (see [`WorkloadTotals::accumulate`]).
    pub fn totals(&self) -> WorkloadTotals {
        let mut t = WorkloadTotals::default();
        for r in &self.reads {
            t.accumulate(r);
        }
        t
    }

    /// A copy of the run containing only reads satisfying `pred` — used by
    /// the Figure 4 potential study's oracle System D, which drops useless
    /// reads before any processing.
    pub fn filtered(&self, pred: impl Fn(&ReadRun) -> bool) -> PipelineRun {
        PipelineRun {
            config: Arc::clone(&self.config),
            er: self.er,
            chunked: self.chunked,
            reads: self.reads.iter().filter(|r| pred(r)).cloned().collect(),
        }
    }

    /// Count of reads with a given outcome predicate.
    pub fn count_outcomes(&self, pred: impl Fn(&ReadOutcome) -> bool) -> usize {
        self.reads.iter().filter(|r| pred(&r.outcome)).count()
    }
}

/// Shared per-run context. Immutable once built, so one instance serves all
/// worker threads by shared reference. Owns its config (rather than
/// borrowing it) so contexts for sources attached to a *running* session
/// can be minted at any time and handed to workers without a lifetime tying
/// them to the session builder.
pub(crate) struct RunContext {
    pub(crate) config: GenPipConfig,
    caller: Basecaller,
    refs: ReferenceSet,
    samples_per_chunk: usize,
}

impl RunContext {
    /// Builds the context from any [`ReadSource`] — the `Session` engine
    /// builds one of these per registered source, so every read is
    /// processed against its own source's reference and chemistry.
    pub(crate) fn from_source<S: ReadSource + ?Sized>(
        source: &S,
        config: &GenPipConfig,
    ) -> RunContext {
        RunContext::from_parts(
            source.reference(),
            source.pore_model(),
            source.mean_dwell(),
            config,
        )
    }

    fn from_parts(
        reference: &Genome,
        pore: &PoreModel,
        mean_dwell: f64,
        config: &GenPipConfig,
    ) -> RunContext {
        // The source's own reference is the set's primary; any configured
        // extra references ride along as a pan-genome. With no extras the
        // set degenerates to exactly the old single-mapper context.
        let mut genomes: Vec<Arc<Genome>> = Vec::with_capacity(1 + config.extra_references.len());
        genomes.push(Arc::new(reference.clone()));
        genomes.extend(config.extra_references.iter().cloned());
        RunContext {
            config: config.clone(),
            caller: Basecaller::new(pore, mean_dwell),
            refs: ReferenceSet::build_shared(genomes, config.mapper),
            samples_per_chunk: config.samples_per_chunk(mean_dwell),
        }
    }
}

/// Worker-local working memory: every buffer a read needs on its way through
/// basecalling, sketching, seeding and chaining. One instance per worker
/// thread; steady-state processing reuses it without heap allocation.
pub(crate) struct WorkerScratch {
    call: CallScratch,
    seed: SeedScratch,
    batches: Vec<SeedBatch>,
    pairs: Vec<(IncrementalChainer, IncrementalChainer)>,
    /// Lane-batched decode buffers for [`prefetch_lane_batch`]: the SoA
    /// Viterbi scratch plus the per-batch output staging vector. Both reach
    /// steady state after the first full batch and are then reused
    /// allocation-free by the decode kernel.
    lanes: LaneScratch,
    lane_chunks: Vec<BasecalledChunk>,
}

impl WorkerScratch {
    pub(crate) fn new(ctx: &RunContext) -> WorkerScratch {
        WorkerScratch {
            call: CallScratch::new(),
            seed: SeedScratch::new(),
            batches: Vec::new(),
            pairs: ctx.refs.new_chainer_pairs(),
            lanes: LaneScratch::new(),
            lane_chunks: Vec::new(),
        }
    }
}

/// Best chain score across a set of per-reference chainer pairs — the value
/// ER-CMR thresholds against in a pan-genome run. With one reference this is
/// exactly the old `fwd.max(rev)` score (chain scores are never negative).
fn best_pair_score(pairs: &[(IncrementalChainer, IncrementalChainer)]) -> f64 {
    pairs.iter().fold(0.0f64, |acc, (fwd, rev)| {
        acc.max(fwd.best_score()).max(rev.best_score())
    })
}

/// Runs one read through the flow selected by `er`: `None` is the
/// conventional whole-read pipeline, `Some(er)` is GenPIP's chunk-based
/// pipeline with that ER mode. This is the single per-read worker function
/// behind every driver, batch and streaming alike.
pub(crate) fn process_read(
    ctx: &RunContext,
    er: Option<ErMode>,
    read: &SimulatedRead,
    scratch: &mut WorkerScratch,
) -> ReadRun {
    match er {
        Some(er) => genpip_read(ctx, read.id, &read.signal.samples, er, scratch),
        None => conventional_read(ctx, read.id, &read.signal.samples, scratch),
    }
}

/// One read as a sequential chain of chunk tasks — the schedulable unit of
/// the chunk-granular engine.
///
/// The decoder's [`CarryState`] forces chunk order *within* a read, so a
/// chain runs one task at a time; between tasks the chain is parked and may
/// resume on any worker (all cross-task state lives here, not in the
/// worker-local [`WorkerScratch`]). Across reads the engine interleaves many
/// chains, which is what lets chunk `i+1` of one read overlap chunk `i`'s
/// mapping of another — the system-level pipeline of the paper's
/// Figure 5(b).
///
/// Stepping a chain to completion is bit-identical to the corresponding
/// read-granular function ([`ReadChain::Whole`] wraps [`process_read`]
/// itself), which the cross-granularity suites assert for every `ErMode`.
pub(crate) enum ReadChain {
    /// Read-granular execution: the whole read as a single task
    /// ([`crate::engine::Granularity::Read`]).
    Whole {
        /// The read to process.
        read: SimulatedRead,
        /// ER mode (`None` = conventional flow).
        er: Option<ErMode>,
    },
    /// A chunk-granular chain awaiting its first task. Construction (chunk
    /// geometry, chainer allocation) happens on the worker that runs that
    /// task, so the dispatcher thread only ever moves raw reads.
    Pending {
        /// The read, taken when the chain materializes.
        read: Option<SimulatedRead>,
        /// ER mode (`None` = conventional flow).
        er: Option<ErMode>,
    },
    /// Chunk-granular GenPIP flow (Figure 5b / Figure 6).
    GenPip(Box<GenPipChain>),
    /// Chunk-granular conventional flow (Figure 5a): basecalling is still
    /// per-chunk work, only QC and mapping wait for the whole read.
    Conventional(Box<ConvChain>),
}

impl ReadChain {
    /// Builds the chain for one read under the given flow and granularity.
    /// Cheap by design (no per-read setup) — it runs on the dispatcher.
    pub(crate) fn new(
        er: Option<ErMode>,
        granularity: Granularity,
        read: SimulatedRead,
    ) -> ReadChain {
        match granularity {
            Granularity::Read => ReadChain::Whole { read, er },
            Granularity::Chunk => ReadChain::Pending {
                read: Some(read),
                er,
            },
        }
    }

    /// Runs the chain's next task on a worker.
    pub(crate) fn step(
        &mut self,
        ctx: &RunContext,
        scratch: &mut WorkerScratch,
    ) -> ChainStep<ReadRun> {
        match self {
            ReadChain::Whole { read, er } => {
                let run = process_read(ctx, *er, read, scratch);
                ChainStep::Finished {
                    units: run.chunks.len() as u64,
                    cancelled: false,
                    output: run,
                }
            }
            ReadChain::Pending { read, er } => {
                let read = read.take().expect("pending chain materialized once");
                *self = match er {
                    Some(er) => ReadChain::GenPip(Box::new(GenPipChain::new(ctx, *er, read))),
                    None => ReadChain::Conventional(Box::new(ConvChain::new(ctx, read))),
                };
                self.step(ctx, scratch)
            }
            ReadChain::GenPip(chain) => chain.step(ctx, scratch),
            ReadChain::Conventional(chain) => chain.step(ctx, scratch),
        }
    }

    /// The id of the read this chain carries, whatever its state.
    pub(crate) fn read_id(&self) -> u32 {
        match self {
            ReadChain::Whole { read, .. } => read.id,
            ReadChain::Pending { read, .. } => {
                read.as_ref().expect("pending chain holds its read").id
            }
            ReadChain::GenPip(chain) => chain.read.id,
            ReadChain::Conventional(chain) => chain.read.id,
        }
    }

    /// Rewinds a faulted chain to a fresh attempt on the same read. Correct
    /// because a chain's computation is a pure function of its read (the
    /// signal is never mutated): restarting from scratch is bit-identical
    /// to a first run, so a retry that succeeds produces exactly the output
    /// a fault-free run would have.
    pub(crate) fn retry(self) -> ReadChain {
        match self {
            ReadChain::Whole { .. } | ReadChain::Pending { .. } => self,
            ReadChain::GenPip(chain) => ReadChain::Pending {
                read: Some(chain.read),
                er: Some(chain.er),
            },
            ReadChain::Conventional(chain) => ReadChain::Pending {
                read: Some(chain.read),
                er: None,
            },
        }
    }

    /// The chunk index whose task faulted, when the chain knows it: the
    /// chunk a mid-step panic interrupted. `None` for read-granular chains
    /// (the whole read is one task) and chains that never materialized.
    pub(crate) fn fault_chunk(&self) -> Option<usize> {
        match self {
            ReadChain::Whole { .. } | ReadChain::Pending { .. } => None,
            ReadChain::GenPip(chain) => match &chain.phase {
                GenPipPhase::Empty => None,
                GenPipPhase::Qsr { samples, next } => samples.get(*next).copied(),
                GenPipPhase::Sequential { idx } => Some(*idx),
            },
            ReadChain::Conventional(chain) => (chain.idx < chain.specs.len()).then_some(chain.idx),
        }
    }

    /// Describes the basecall the chain's *next* task will perform, if that
    /// task starts with one — the contract [`prefetch_lane_batch`] batches
    /// against. Materializes a [`ReadChain::Pending`] chain exactly as
    /// [`ReadChain::step`] would have (same construction, same worker), so
    /// peeking never changes what the chain computes. Returns `None` when
    /// the next task does no basecalling (verdict/mapping tasks, chunks
    /// already basecalled by QSR, undelivered earlier prefetches).
    fn peek_basecall(&mut self, ctx: &RunContext) -> Option<PrefetchSpec> {
        match self {
            ReadChain::Whole { .. } => None,
            ReadChain::Pending { read, er } => {
                let read = read.take().expect("pending chain materialized once");
                *self = match er {
                    Some(er) => ReadChain::GenPip(Box::new(GenPipChain::new(ctx, *er, read))),
                    None => ReadChain::Conventional(Box::new(ConvChain::new(ctx, read))),
                };
                self.peek_basecall(ctx)
            }
            ReadChain::GenPip(chain) => {
                if chain.prefetched.is_some() {
                    return None;
                }
                match &chain.phase {
                    GenPipPhase::Empty => None,
                    GenPipPhase::Qsr { samples, next } => {
                        // QSR samples decode from scratch: no carry.
                        let idx = samples[*next];
                        let spec = chain.specs[idx];
                        Some(PrefetchSpec {
                            idx,
                            start: spec.start,
                            end: spec.end,
                            carry: None,
                        })
                    }
                    GenPipPhase::Sequential { idx } => {
                        let idx = *idx;
                        if chain.called.contains_key(&idx) {
                            return None; // reuses a QSR-sampled chunk
                        }
                        let carry = if idx == 0 {
                            None
                        } else {
                            chain.called[&(idx - 1)].carry
                        };
                        let spec = chain.specs[idx];
                        Some(PrefetchSpec {
                            idx,
                            start: spec.start,
                            end: spec.end,
                            carry,
                        })
                    }
                }
            }
            ReadChain::Conventional(chain) => {
                if chain.prefetched.is_some() || chain.idx >= chain.specs.len() {
                    return None;
                }
                let spec = chain.specs[chain.idx];
                Some(PrefetchSpec {
                    idx: chain.idx,
                    start: spec.start,
                    end: spec.end,
                    carry: chain.decoder.carry(),
                })
            }
        }
    }

    /// The read's raw signal, for slicing a peeked chunk's samples. `None`
    /// until the chain has materialized (peek materializes first).
    fn prefetch_signal(&self) -> Option<&[f32]> {
        match self {
            ReadChain::Whole { .. } | ReadChain::Pending { .. } => None,
            ReadChain::GenPip(chain) => Some(&chain.read.signal.samples),
            ReadChain::Conventional(chain) => Some(&chain.read.signal.samples),
        }
    }

    /// Hands the chain a chunk basecalled ahead of time for chunk `idx`.
    /// The chain's next task consumes it via [`basecall_chunk`]'s
    /// `prefetched` path (adopting the decoder state it would have computed
    /// itself); an index mismatch is dropped there, falling back to the
    /// scalar decode — delivery is an optimization, never a correctness
    /// dependency.
    fn accept_prefetch(&mut self, idx: usize, chunk: BasecalledChunk) {
        match self {
            ReadChain::Whole { .. } | ReadChain::Pending { .. } => {}
            ReadChain::GenPip(chain) => chain.prefetched = Some((idx, chunk)),
            ReadChain::Conventional(chain) => chain.prefetched = Some((idx, chunk)),
        }
    }
}

/// What [`ReadChain::peek_basecall`] promises the chain's next task will
/// decode: chunk `idx`, over `samples[start..end]`, resuming from `carry`.
#[derive(Debug, Clone, Copy)]
struct PrefetchSpec {
    idx: usize,
    start: usize,
    end: usize,
    carry: Option<CarryState>,
}

/// Where a [`GenPipChain`] is in the Figure 6 flow.
enum GenPipPhase {
    /// The signal divides into zero chunks; the first task emits the verdict.
    Empty,
    /// ER-QSR sampling: basecall `samples[next]` next.
    Qsr {
        /// The evenly-spaced sample chunk indices (Algorithm 1).
        samples: Vec<usize>,
        /// Next sample to basecall.
        next: usize,
    },
    /// The sequential CP pass: process chunk `idx` next.
    Sequential {
        /// Next chunk index.
        idx: usize,
    },
}

/// The parked state of one read in GenPIP's chunk-based pipeline: a direct
/// decomposition of [`genpip_read`]'s locals into a movable struct, one loop
/// iteration per task. Every mutation mirrors that function line for line —
/// the cross-granularity bit-identity suites keep the two in lock-step.
pub(crate) struct GenPipChain {
    read: SimulatedRead,
    er: ErMode,
    specs: Vec<genpip_signal::ChunkSpec>,
    run: Option<ReadRun>,
    called: BTreeMap<usize, BasecalledChunk>,
    decoder: genpip_basecall::ReadDecoder,
    seq: DnaSeq,
    quals: Vec<Phred>,
    aqs: AqsAccumulator,
    pairs: Vec<(IncrementalChainer, IncrementalChainer)>,
    cmr_checked: bool,
    phase: GenPipPhase,
    /// A chunk basecalled ahead of time by [`prefetch_lane_batch`], waiting
    /// for the chain's next task to consume it (keyed by chunk index so a
    /// stale prefetch can never be mistaken for the right chunk).
    prefetched: Option<(usize, BasecalledChunk)>,
}

impl GenPipChain {
    fn new(ctx: &RunContext, er: ErMode, read: SimulatedRead) -> GenPipChain {
        let specs = chunk_boundaries(read.signal.samples.len(), ctx.samples_per_chunk);
        let total = specs.len();
        let run = ReadRun {
            id: read.id,
            outcome: ReadOutcome::FilteredQc { aqs: 0.0 },
            total_chunks: total,
            chunks: Vec::new(),
            signal_samples: read.signal.samples.len(),
            called_len: 0,
            full_aqs: None,
            best_chain_score: 0.0,
            align_query_len: 0,
            align_cells: 0,
            map_counters: MappingCounters::default(),
            called: None,
            per_reference: Vec::new(),
        };
        let pairs = ctx.refs.new_chainer_pairs();
        let phase = if total == 0 {
            GenPipPhase::Empty
        } else if er != ErMode::None {
            GenPipPhase::Qsr {
                samples: qsr_sample_indices(total, ctx.config.n_qs),
                next: 0,
            }
        } else {
            GenPipPhase::Sequential { idx: 0 }
        };
        GenPipChain {
            read,
            er,
            specs,
            run: Some(run),
            called: BTreeMap::new(),
            decoder: genpip_basecall::ReadDecoder::new(),
            seq: DnaSeq::new(),
            quals: Vec::new(),
            aqs: AqsAccumulator::new(),
            pairs,
            cmr_checked: false,
            phase,
            prefetched: None,
        }
    }

    fn finish(&mut self, cancelled: bool, units: u64) -> ChainStep<ReadRun> {
        ChainStep::Finished {
            output: self.run.take().expect("chain finished once"),
            units,
            cancelled,
        }
    }

    fn step(&mut self, ctx: &RunContext, scratch: &mut WorkerScratch) -> ChainStep<ReadRun> {
        let samples = &self.read.signal.samples;
        let total = self.specs.len();
        match &mut self.phase {
            GenPipPhase::Empty => {
                let run = self.run.as_mut().expect("chain not finished");
                run.outcome = match self.er {
                    ErMode::None => ReadOutcome::FilteredQc { aqs: 0.0 },
                    _ => ReadOutcome::RejectedQsr { sampled_aqs: 0.0 },
                };
                let cancelled = self.er != ErMode::None;
                self.finish(cancelled, 0)
            }
            GenPipPhase::Qsr {
                samples: sample_idx,
                next,
            } => {
                // ER-QSR phase (Figure 6 ➊➋): one sample chunk per task,
                // basecalled without carried state, exactly as in
                // `genpip_read`.
                let run = self.run.as_mut().expect("chain not finished");
                let idx = sample_idx[*next];
                let prefetched = match self.prefetched.take() {
                    Some((pidx, chunk)) if pidx == idx => Some(chunk),
                    _ => None,
                };
                basecall_chunk(
                    ctx,
                    samples,
                    &self.specs,
                    idx,
                    &mut self.decoder,
                    None,
                    prefetched,
                    &mut self.called,
                    &mut run.chunks,
                    &mut scratch.call,
                );
                *next += 1;
                if *next < sample_idx.len() {
                    return ChainStep::Parked { units: 1 };
                }
                let sampled: Vec<(f64, usize)> = sample_idx
                    .iter()
                    .map(|idx| {
                        let c = &self.called[idx];
                        (c.sqs, c.quals.len())
                    })
                    .collect();
                let decision = qsr_check(&sampled, ctx.config.theta_qs);
                run.called_len = self.called.values().map(|c| c.bases.len()).sum();
                if decision.reject {
                    run.outcome = ReadOutcome::RejectedQsr {
                        sampled_aqs: decision.sampled_aqs,
                    };
                    return self.finish(true, 1);
                }
                self.phase = GenPipPhase::Sequential { idx: 0 };
                ChainStep::Parked { units: 1 }
            }
            GenPipPhase::Sequential { idx } => {
                // One iteration of the sequential CP pass per task: basecall
                // (or reuse a sampled chunk), then immediately seed and
                // extend the chains.
                let idx = *idx;
                let run = self.run.as_mut().expect("chain not finished");
                let mut units = 0u64;
                if !self.called.contains_key(&idx) {
                    let carry = if idx == 0 {
                        None
                    } else {
                        self.called[&(idx - 1)].carry
                    };
                    let prefetched = match self.prefetched.take() {
                        Some((pidx, chunk)) if pidx == idx => Some(chunk),
                        _ => None,
                    };
                    basecall_chunk(
                        ctx,
                        samples,
                        &self.specs,
                        idx,
                        &mut self.decoder,
                        carry,
                        prefetched,
                        &mut self.called,
                        &mut run.chunks,
                        &mut scratch.call,
                    );
                    units += 1;
                }
                let offset = self.seq.len() as u64;
                let chunk = &self.called[&idx];
                let n_mins = ctx.refs.sketch_and_seed_into(
                    &chunk.bases,
                    offset,
                    &mut scratch.seed,
                    &mut scratch.batches,
                );
                let mut queries = 0usize;
                let mut anchors = 0usize;
                let mut chain_evals = 0usize;
                for (batch, (fwd, rev)) in scratch.batches.iter().zip(self.pairs.iter_mut()) {
                    let evals_before = fwd.dp_evaluations() + rev.dp_evaluations();
                    fwd.extend(&batch.forward);
                    rev.extend(&batch.reverse);
                    chain_evals += fwd.dp_evaluations() + rev.dp_evaluations() - evals_before;
                    queries += batch.queries;
                    anchors += batch.hits;
                }
                run.chunks.push(ChunkWork {
                    index: idx,
                    seed_bases: chunk.bases.len(),
                    minimizers: n_mins,
                    anchors,
                    chain_evals,
                    ..Default::default()
                });
                units += 1;
                run.map_counters.minimizers += n_mins;
                run.map_counters.seed_queries += queries;
                run.map_counters.anchors += anchors;
                run.map_counters.chain_evals += chain_evals;
                self.aqs.add_chunk_sum(chunk.sqs, chunk.quals.len());
                if ctx.config.keep_bases {
                    self.quals.extend_from_slice(&chunk.quals);
                }
                self.seq.extend_from_seq(&chunk.bases);

                // ER-CMR (Figure 6 ➍➎): the verdict that cancels the
                // read's remaining chunk tasks before they are scheduled.
                if self.er == ErMode::Full
                    && !self.cmr_checked
                    && idx + 1 == ctx.config.n_cm
                    && total > ctx.config.n_cm
                {
                    self.cmr_checked = true;
                    let score = best_pair_score(&self.pairs);
                    let decision = cmr_check(score, ctx.config.theta_cm);
                    if decision.reject {
                        run.called_len = self.called.values().map(|c| c.bases.len()).sum();
                        run.best_chain_score = score;
                        run.outcome = ReadOutcome::RejectedCmr { chain_score: score };
                        return self.finish(true, units);
                    }
                }
                if idx + 1 < total {
                    self.phase = GenPipPhase::Sequential { idx: idx + 1 };
                    return ChainStep::Parked { units };
                }

                // Last chunk: whole-read QC, then the final mapping.
                run.called_len = self.seq.len();
                if ctx.config.keep_bases {
                    run.called = Some(CalledBases {
                        seq: self.seq.clone(),
                        quals: std::mem::take(&mut self.quals),
                    });
                }
                let full_aqs = self.aqs.average();
                run.full_aqs = Some(full_aqs);
                run.best_chain_score = best_pair_score(&self.pairs);
                if full_aqs < ctx.config.theta_qs {
                    run.outcome = ReadOutcome::FilteredQc { aqs: full_aqs };
                    return self.finish(false, units);
                }
                let (per_reference, mapping, best_score, align_cells) =
                    ctx.refs.finalize_mapping(&self.seq, &self.pairs);
                if ctx.refs.len() > 1 {
                    run.per_reference = per_reference;
                }
                run.best_chain_score = best_score;
                run.align_cells = align_cells;
                run.map_counters.align_cells = align_cells;
                run.align_query_len = if align_cells > 0 { self.seq.len() } else { 0 };
                run.outcome = match mapping {
                    Some(m) => ReadOutcome::Mapped(m),
                    None => ReadOutcome::Unmapped {
                        chain_score: best_score,
                    },
                };
                self.finish(false, units)
            }
        }
    }
}

/// The parked state of one read in the conventional flow: basecalling split
/// into per-chunk tasks (the decoder cursor still forces order), with QC and
/// whole-read mapping folded into the final task — a direct decomposition of
/// [`conventional_read`].
pub(crate) struct ConvChain {
    read: SimulatedRead,
    specs: Vec<genpip_signal::ChunkSpec>,
    chunks: Vec<ChunkWork>,
    decoder: genpip_basecall::ReadDecoder,
    seq: DnaSeq,
    quals: Vec<Phred>,
    aqs: AqsAccumulator,
    idx: usize,
    /// See [`GenPipChain::prefetched`].
    prefetched: Option<(usize, BasecalledChunk)>,
}

impl ConvChain {
    fn new(ctx: &RunContext, read: SimulatedRead) -> ConvChain {
        let specs = chunk_boundaries(read.signal.samples.len(), ctx.samples_per_chunk);
        ConvChain {
            read,
            chunks: Vec::with_capacity(specs.len()),
            specs,
            decoder: genpip_basecall::ReadDecoder::new(),
            seq: DnaSeq::new(),
            quals: Vec::new(),
            aqs: AqsAccumulator::new(),
            idx: 0,
            prefetched: None,
        }
    }

    fn step(&mut self, ctx: &RunContext, scratch: &mut WorkerScratch) -> ChainStep<ReadRun> {
        let mut units = 0u64;
        if self.idx < self.specs.len() {
            let spec = self.specs[self.idx];
            let called = match self.prefetched.take() {
                Some((pidx, chunk)) if pidx == self.idx => {
                    self.decoder.adopt(&chunk);
                    chunk
                }
                _ => self.decoder.call_next(
                    &ctx.caller,
                    &self.read.signal.samples[spec.start..spec.end],
                    &mut scratch.call,
                ),
            };
            self.aqs.add_chunk_sum(called.sqs, called.quals.len());
            self.chunks.push(ChunkWork {
                index: spec.index,
                samples: called.stats.samples,
                mvm_ops: called.stats.mvm_ops,
                bases_called: called.bases.len(),
                ..Default::default()
            });
            if ctx.config.keep_bases {
                self.quals.extend_from_slice(&called.quals);
            }
            self.seq.extend_from_seq(&called.bases);
            units += 1;
            self.idx += 1;
            if self.idx < self.specs.len() {
                return ChainStep::Parked { units };
            }
        }

        // All chunks basecalled (or there were none): QC, then mapping.
        let full_aqs = self.aqs.average();
        let mut run = ReadRun {
            id: self.read.id,
            outcome: ReadOutcome::FilteredQc { aqs: full_aqs },
            total_chunks: self.specs.len(),
            chunks: std::mem::take(&mut self.chunks),
            signal_samples: self.read.signal.samples.len(),
            called_len: self.seq.len(),
            full_aqs: Some(full_aqs),
            best_chain_score: 0.0,
            align_query_len: 0,
            align_cells: 0,
            map_counters: MappingCounters::default(),
            called: None,
            per_reference: Vec::new(),
        };
        if ctx.config.keep_bases {
            run.called = Some(CalledBases {
                seq: self.seq.clone(),
                quals: std::mem::take(&mut self.quals),
            });
        }
        if full_aqs < ctx.config.theta_qs {
            return ChainStep::Finished {
                output: run,
                units,
                cancelled: false,
            };
        }
        let result = ctx.refs.map_with(
            &self.seq,
            &mut scratch.seed,
            &mut scratch.batches,
            &mut scratch.pairs,
        );
        run.map_counters = result.counters;
        run.best_chain_score = result.best_chain_score;
        run.align_cells = result.counters.align_cells;
        run.align_query_len = if result.counters.align_cells > 0 {
            self.seq.len()
        } else {
            0
        };
        if ctx.refs.len() > 1 {
            run.per_reference = result.per_reference;
        }
        run.outcome = match result.best {
            Some(m) => ReadOutcome::Mapped(m),
            None => ReadOutcome::Unmapped {
                chain_score: result.best_chain_score,
            },
        };
        ChainStep::Finished {
            output: run,
            units,
            cancelled: false,
        }
    }
}

/// Runs a batch flow over a materialized dataset as a single-source
/// [`Session`] and collects the in-order emissions into a preallocated
/// vector — there is exactly one execution core, the session engine.
fn run_batch(
    dataset: &SimulatedDataset,
    config: &GenPipConfig,
    er: Option<ErMode>,
) -> Vec<ReadRun> {
    let mut config = config.clone();
    // The legacy signatures never fail: clamp what Session would reject
    // with SessionError::ZeroWorkers. The old `min(workers, reads)` clamp
    // is gone — the engine spawns workers lazily from chunk-level
    // occupancy, so a tiny dataset never materializes an idle pool.
    let workers = config.parallelism.workers().max(1);
    config.parallelism = crate::Parallelism::Threads(workers);
    let flow = match er {
        Some(er) => Flow::GenPip(er),
        None => Flow::Conventional,
    };
    let mut reads: Vec<ReadRun> = Vec::with_capacity(dataset.reads.len());
    Session::new(config)
        .flow(flow)
        .schedule(Schedule::Sequential)
        .options(StreamOptions {
            // The dataset is already resident, so a roomy queue costs only
            // the in-flight clones and keeps workers from ever starving.
            queue_capacity: 4 * workers,
            ..StreamOptions::default()
        })
        .source("batch", dataset.stream())
        .sink("batch", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("single-source batch session over clamped inputs is valid");
    debug_assert!(reads.len() == dataset.reads.len());
    reads
}

/// Runs the conventional pipeline (Figure 5a) over a dataset.
///
/// # Deprecated in favor of `Session`
///
/// This is a fixed single-source spelling of [`crate::engine::Session`]
/// with [`Flow::Conventional`] and a `Vec` sink; prefer the builder for new
/// code:
///
/// ```no_run
/// use genpip_core::engine::{Flow, Session};
/// use genpip_core::stream::StreamEvent;
/// use genpip_core::GenPipConfig;
/// use genpip_datasets::DatasetProfile;
///
/// let dataset = DatasetProfile::ecoli().scaled(0.05).generate();
/// let mut reads = Vec::new();
/// Session::new(GenPipConfig::for_dataset(&dataset.profile))
///     .flow(Flow::Conventional)
///     .source("batch", dataset.stream())
///     .sink("batch", |event| {
///         if let StreamEvent::Read(run) = event {
///             reads.push(run);
///         }
///     })
///     .run()
///     .expect("valid session");
/// ```
#[deprecated(note = "use Session")]
pub fn run_conventional(dataset: &SimulatedDataset, config: &GenPipConfig) -> PipelineRun {
    batch_conventional(dataset, config)
}

/// Internal spelling of [`run_conventional`] for in-repo callers (systems
/// models, experiments, calibration) that want a [`PipelineRun`] without
/// tripping the deprecation lint.
pub(crate) fn batch_conventional(dataset: &SimulatedDataset, config: &GenPipConfig) -> PipelineRun {
    PipelineRun {
        config: Arc::new(config.clone()),
        er: ErMode::None,
        chunked: false,
        reads: run_batch(dataset, config, None),
    }
}

fn conventional_read(
    ctx: &RunContext,
    id: u32,
    samples: &[f32],
    scratch: &mut WorkerScratch,
) -> ReadRun {
    let specs = chunk_boundaries(samples.len(), ctx.samples_per_chunk);
    let mut chunks = Vec::with_capacity(specs.len());
    let mut seq = DnaSeq::new();
    let mut quals: Vec<Phred> = Vec::new();
    let mut aqs = AqsAccumulator::new();
    let mut decoder = genpip_basecall::ReadDecoder::new();
    for spec in &specs {
        let called = decoder.call_next(
            &ctx.caller,
            &samples[spec.start..spec.end],
            &mut scratch.call,
        );
        aqs.add_chunk_sum(called.sqs, called.quals.len());
        chunks.push(ChunkWork {
            index: spec.index,
            samples: called.stats.samples,
            mvm_ops: called.stats.mvm_ops,
            bases_called: called.bases.len(),
            ..Default::default()
        });
        if ctx.config.keep_bases {
            quals.extend_from_slice(&called.quals);
        }
        seq.extend_from_seq(&called.bases);
    }

    let full_aqs = aqs.average();
    let mut run = ReadRun {
        id,
        outcome: ReadOutcome::FilteredQc { aqs: full_aqs },
        total_chunks: specs.len(),
        chunks,
        signal_samples: samples.len(),
        called_len: seq.len(),
        full_aqs: Some(full_aqs),
        best_chain_score: 0.0,
        align_query_len: 0,
        align_cells: 0,
        map_counters: MappingCounters::default(),
        called: None,
        per_reference: Vec::new(),
    };
    if ctx.config.keep_bases {
        run.called = Some(CalledBases {
            seq: seq.clone(),
            quals,
        });
    }
    if full_aqs < ctx.config.theta_qs {
        return run; // QC filters the read before mapping.
    }

    let result = ctx.refs.map_with(
        &seq,
        &mut scratch.seed,
        &mut scratch.batches,
        &mut scratch.pairs,
    );
    run.map_counters = result.counters;
    run.best_chain_score = result.best_chain_score;
    run.align_cells = result.counters.align_cells;
    run.align_query_len = if result.counters.align_cells > 0 {
        seq.len()
    } else {
        0
    };
    if ctx.refs.len() > 1 {
        run.per_reference = result.per_reference;
    }
    run.outcome = match result.best {
        Some(m) => ReadOutcome::Mapped(m),
        None => ReadOutcome::Unmapped {
            chain_score: result.best_chain_score,
        },
    };
    run
}

/// Runs GenPIP's chunk-based pipeline (Figure 5b / Figure 6) over a dataset.
///
/// # Deprecated in favor of `Session`
///
/// This is a fixed single-source spelling of [`crate::engine::Session`]
/// with [`Flow::GenPip`] and a `Vec` sink; the builder additionally serves
/// multiple named sources over one worker pool with per-source sinks and a
/// [`crate::scheduler::Schedule`]:
///
/// ```no_run
/// use genpip_core::engine::{Flow, Session};
/// use genpip_core::{ErMode, GenPipConfig};
/// use genpip_datasets::DatasetProfile;
///
/// let dataset = DatasetProfile::ecoli().scaled(0.05).generate();
/// let report = Session::new(GenPipConfig::for_dataset(&dataset.profile))
///     .flow(Flow::GenPip(ErMode::Full))
///     .source("batch", dataset.stream())
///     .run()
///     .expect("valid session");
/// assert_eq!(report.outcomes.reads_emitted, dataset.reads.len());
/// ```
#[deprecated(note = "use Session")]
pub fn run_genpip(dataset: &SimulatedDataset, config: &GenPipConfig, er: ErMode) -> PipelineRun {
    batch_genpip(dataset, config, er)
}

/// Internal spelling of [`run_genpip`] for in-repo callers (systems models,
/// experiments, calibration) that want a [`PipelineRun`] without tripping
/// the deprecation lint.
pub(crate) fn batch_genpip(
    dataset: &SimulatedDataset,
    config: &GenPipConfig,
    er: ErMode,
) -> PipelineRun {
    PipelineRun {
        config: Arc::new(config.clone()),
        er,
        chunked: true,
        reads: run_batch(dataset, config, Some(er)),
    }
}

/// Basecalls chunk `idx` of a read (one QSR sample or one sequential step)
/// and records its work entry — the one basecall-bookkeeping path shared by
/// [`genpip_read`] and [`GenPipChain`], so the chunk-vs-read bit-identity
/// guarantee is structural, not coincidental. The decoder is repositioned
/// to `carry` first (QSR samples decode from scratch; sequential chunks
/// stitch to their predecessor).
///
/// When a lane batch already basecalled this chunk ([`prefetch_lane_batch`]),
/// the decoded chunk arrives via `prefetched` and the decoder *adopts* it —
/// same cursor state, zero recompute. The lane kernel is bit-identical to
/// the scalar decode, so everything downstream is too.
#[allow(clippy::too_many_arguments)]
fn basecall_chunk(
    ctx: &RunContext,
    samples: &[f32],
    specs: &[genpip_signal::ChunkSpec],
    idx: usize,
    decoder: &mut genpip_basecall::ReadDecoder,
    carry: Option<CarryState>,
    prefetched: Option<BasecalledChunk>,
    called: &mut BTreeMap<usize, BasecalledChunk>,
    chunks: &mut Vec<ChunkWork>,
    call_scratch: &mut CallScratch,
) {
    decoder.resume_from(carry);
    let spec = specs[idx];
    let chunk = match prefetched {
        Some(chunk) => {
            decoder.adopt(&chunk);
            chunk
        }
        None => decoder.call_next(&ctx.caller, &samples[spec.start..spec.end], call_scratch),
    };
    chunks.push(ChunkWork {
        index: idx,
        samples: chunk.stats.samples,
        mvm_ops: chunk.stats.mvm_ops,
        bases_called: chunk.bases.len(),
        ..Default::default()
    });
    called.insert(idx, chunk);
}

/// The engine's lane-batch hook: a worker drained up to W dispatchable
/// chunk tasks into one batch; decode their next chunks *together* through
/// the SoA lane-batched Viterbi kernel and hand each chain its finished
/// chunk before the tasks are stepped one by one. Pure optimization —
/// bit-identity is the lane kernel's contract (asserted by the basecall
/// crate's suites and the cross-width suites over this path), and any task
/// that cannot join a batch (its next task does no basecalling, its samples
/// are non-finite, its source's lane width is 1) simply falls through to
/// its unchanged scalar step.
pub(crate) fn prefetch_lane_batch(
    contexts: &RwLock<Vec<Arc<RunContext>>>,
    scratch: &mut Vec<Option<WorkerScratch>>,
    tasks: &mut [crate::engine::Task<ReadChain>],
) {
    // Group tasks per engine lane (source): each source has its own context
    // — basecaller, chunk geometry, lane-width override — so chunks only
    // batch within one. Everything is stack-bounded: the engine never
    // drains more than the session lane width ≤ MAX_LANES tasks.
    let n = tasks.len().min(MAX_LANES);
    let mut lanes_seen = [usize::MAX; MAX_LANES];
    let mut n_seen = 0usize;
    for task in tasks[..n].iter() {
        if !lanes_seen[..n_seen].contains(&task.lane) {
            lanes_seen[n_seen] = task.lane;
            n_seen += 1;
        }
    }
    for &lane in &lanes_seen[..n_seen] {
        let ctx = Arc::clone(&contexts.read().expect("contexts poisoned")[lane]);
        let width = ctx.config.lanes.width();
        if width < 2 {
            continue;
        }
        // Pass A (one mutable chain at a time): peek what each of the
        // lane's tasks would basecall next.
        let mut members = [usize::MAX; MAX_LANES];
        let mut specs = [None::<PrefetchSpec>; MAX_LANES];
        let mut n_members = 0usize;
        for (i, task) in tasks[..n].iter_mut().enumerate() {
            if task.lane != lane {
                continue;
            }
            if n_members == width {
                break;
            }
            specs[n_members] = task.chain.peek_basecall(&ctx);
            members[n_members] = i;
            n_members += 1;
        }
        // Pass B (simultaneous shared borrows): assemble the lane jobs over
        // the chains' signal slices. Non-finite samples are excluded here —
        // not faulted — so a corrupt chunk panics inside its *own* task's
        // scalar step and the engine attributes the fault to the right read.
        let mut jobs = [ChunkJob::default(); MAX_LANES];
        let mut job_member = [usize::MAX; MAX_LANES];
        let mut eligible = 0usize;
        for m in 0..n_members {
            let Some(spec) = specs[m] else { continue };
            let Some(signal) = tasks[members[m]].chain.prefetch_signal() else {
                continue;
            };
            let samples = &signal[spec.start..spec.end];
            if samples.iter().any(|x| !x.is_finite()) {
                continue;
            }
            jobs[eligible] = ChunkJob {
                samples,
                carry: spec.carry,
            };
            job_member[eligible] = m;
            eligible += 1;
        }
        if eligible < 2 {
            continue; // a lone chunk gains nothing over its scalar step
        }
        if scratch.len() <= lane {
            scratch.resize_with(lane + 1, || None);
        }
        let slot = scratch[lane].get_or_insert_with(|| WorkerScratch::new(&ctx));
        LaneDecoder::new(width).call_batch(
            &ctx.caller,
            &jobs[..eligible],
            &mut slot.lanes,
            &mut slot.lane_chunks,
        );
        // Pass C (mutable again): deliver the decoded chunks, in job order.
        for (j, chunk) in slot.lane_chunks.drain(..).enumerate() {
            let m = job_member[j];
            let spec = specs[m].expect("eligible job had a spec");
            tasks[members[m]].chain.accept_prefetch(spec.idx, chunk);
        }
    }
}

fn genpip_read(
    ctx: &RunContext,
    id: u32,
    samples: &[f32],
    er: ErMode,
    scratch: &mut WorkerScratch,
) -> ReadRun {
    let specs = chunk_boundaries(samples.len(), ctx.samples_per_chunk);
    let total = specs.len();
    let mut run = ReadRun {
        id,
        outcome: ReadOutcome::FilteredQc { aqs: 0.0 },
        total_chunks: total,
        chunks: Vec::new(),
        signal_samples: samples.len(),
        called_len: 0,
        full_aqs: None,
        best_chain_score: 0.0,
        align_query_len: 0,
        align_cells: 0,
        map_counters: MappingCounters::default(),
        called: None,
        per_reference: Vec::new(),
    };
    if total == 0 {
        run.outcome = match er {
            ErMode::None => ReadOutcome::FilteredQc { aqs: 0.0 },
            _ => ReadOutcome::RejectedQsr { sampled_aqs: 0.0 },
        };
        return run;
    }

    // Chunks basecalled so far, by index.
    let mut called: BTreeMap<usize, BasecalledChunk> = BTreeMap::new();
    let mut decoder = genpip_basecall::ReadDecoder::new();

    // ER-QSR phase: basecall the evenly-spaced sample chunks and check their
    // quality (paper Figure 6 ➊➋).
    if er != ErMode::None {
        let sample_idx = qsr_sample_indices(total, ctx.config.n_qs);
        for &idx in &sample_idx {
            basecall_chunk(
                ctx,
                samples,
                &specs,
                idx,
                &mut decoder,
                None,
                None,
                &mut called,
                &mut run.chunks,
                &mut scratch.call,
            );
        }
        let sampled: Vec<(f64, usize)> = sample_idx
            .iter()
            .map(|idx| {
                let c = &called[idx];
                (c.sqs, c.quals.len())
            })
            .collect();
        let decision = qsr_check(&sampled, ctx.config.theta_qs);
        run.called_len = called.values().map(|c| c.bases.len()).sum();
        if decision.reject {
            run.outcome = ReadOutcome::RejectedQsr {
                sampled_aqs: decision.sampled_aqs,
            };
            return run;
        }
    }

    // Sequential CP pass: basecall (or reuse) chunks in order; every chunk
    // immediately goes through quality accumulation, seeding, and
    // incremental chaining. The chainer pairs (one per reference) are
    // worker-local and reset per read, so steady-state chaining reuses
    // their buffers.
    for (fwd, rev) in scratch.pairs.iter_mut() {
        fwd.reset();
        rev.reset();
    }
    let mut seq = DnaSeq::new();
    let mut quals: Vec<Phred> = Vec::new();
    let mut aqs = AqsAccumulator::new();
    let mut cmr_checked = false;
    for idx in 0..total {
        if !called.contains_key(&idx) {
            let carry = if idx == 0 {
                None
            } else {
                called[&(idx - 1)].carry
            };
            basecall_chunk(
                ctx,
                samples,
                &specs,
                idx,
                &mut decoder,
                carry,
                None,
                &mut called,
                &mut run.chunks,
                &mut scratch.call,
            );
        }
        let offset = seq.len() as u64;
        let chunk = &called[&idx];
        let n_mins = ctx.refs.sketch_and_seed_into(
            &chunk.bases,
            offset,
            &mut scratch.seed,
            &mut scratch.batches,
        );
        let mut queries = 0usize;
        let mut anchors = 0usize;
        let mut chain_evals = 0usize;
        for (batch, (fwd, rev)) in scratch.batches.iter().zip(scratch.pairs.iter_mut()) {
            let evals_before = fwd.dp_evaluations() + rev.dp_evaluations();
            fwd.extend(&batch.forward);
            rev.extend(&batch.reverse);
            chain_evals += fwd.dp_evaluations() + rev.dp_evaluations() - evals_before;
            queries += batch.queries;
            anchors += batch.hits;
        }
        run.chunks.push(ChunkWork {
            index: idx,
            seed_bases: chunk.bases.len(),
            minimizers: n_mins,
            anchors,
            chain_evals,
            ..Default::default()
        });
        run.map_counters.minimizers += n_mins;
        run.map_counters.seed_queries += queries;
        run.map_counters.anchors += anchors;
        run.map_counters.chain_evals += chain_evals;
        aqs.add_chunk_sum(chunk.sqs, chunk.quals.len());
        if ctx.config.keep_bases {
            quals.extend_from_slice(&chunk.quals);
        }
        seq.extend_from_seq(&chunk.bases);

        // ER-CMR: after the first N_cm chunks are chained, check whether the
        // accumulated chaining score says the read will map (Figure 6 ➍➎).
        // Short reads with ≤ N_cm chunks fall through to the whole-read
        // check instead.
        if er == ErMode::Full
            && !cmr_checked
            && idx + 1 == ctx.config.n_cm
            && total > ctx.config.n_cm
        {
            cmr_checked = true;
            let score = best_pair_score(&scratch.pairs);
            let decision = cmr_check(score, ctx.config.theta_cm);
            if decision.reject {
                run.called_len = called.values().map(|c| c.bases.len()).sum();
                run.best_chain_score = score;
                run.outcome = ReadOutcome::RejectedCmr { chain_score: score };
                return run;
            }
        }
    }

    run.called_len = seq.len();
    if ctx.config.keep_bases {
        run.called = Some(CalledBases {
            seq: seq.clone(),
            quals,
        });
    }
    let full_aqs = aqs.average();
    run.full_aqs = Some(full_aqs);
    run.best_chain_score = best_pair_score(&scratch.pairs);
    if full_aqs < ctx.config.theta_qs {
        // Whole-read quality control (the AQS calculator's final check).
        run.outcome = ReadOutcome::FilteredQc { aqs: full_aqs };
        return run;
    }

    let (per_reference, mapping, best_score, align_cells) =
        ctx.refs.finalize_mapping(&seq, &scratch.pairs);
    if ctx.refs.len() > 1 {
        run.per_reference = per_reference;
    }
    run.best_chain_score = best_score;
    run.align_cells = align_cells;
    run.map_counters.align_cells = align_cells;
    run.align_query_len = if align_cells > 0 { seq.len() } else { 0 };
    run.outcome = match mapping {
        Some(m) => ReadOutcome::Mapped(m),
        None => ReadOutcome::Unmapped {
            chain_score: best_score,
        },
    };
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Parallelism;
    use genpip_datasets::DatasetProfile;
    use genpip_genomics::ReadOrigin;

    fn dataset() -> SimulatedDataset {
        DatasetProfile::ecoli().scaled(0.05).generate()
    }

    #[test]
    fn parallel_output_is_bit_identical_to_serial_for_every_er_mode() {
        let d = dataset();
        let base = GenPipConfig::for_dataset(&d.profile);
        let serial = base.clone().with_parallelism(Parallelism::Serial);
        let threads = base.clone().with_parallelism(Parallelism::Threads(4));
        let auto = base.with_parallelism(Parallelism::Auto);
        for er in [ErMode::None, ErMode::QsrOnly, ErMode::Full] {
            let a = batch_genpip(&d, &serial, er);
            let b = batch_genpip(&d, &threads, er);
            let c = batch_genpip(&d, &auto, er);
            assert_eq!(a.reads, b.reads, "serial vs 4 threads, {er:?}");
            assert_eq!(a.reads, c.reads, "serial vs auto, {er:?}");
        }
        let a = batch_conventional(&d, &serial);
        let b = batch_conventional(&d, &threads);
        assert_eq!(a.reads, b.reads, "conventional serial vs 4 threads");
    }

    #[test]
    fn worker_scratch_reuse_matches_fresh_scratch_per_read() {
        // The serial path shares one WorkerScratch across all reads; a
        // fresh scratch per read must give identical results (scratch is
        // capacity reuse only, never state carry-over).
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile).with_parallelism(Parallelism::Serial);
        let ctx = RunContext::from_source(&d.stream(), &config);
        let shared = batch_genpip(&d, &config, ErMode::Full);
        for (read, run) in d.reads.iter().zip(&shared.reads) {
            let mut fresh = WorkerScratch::new(&ctx);
            let alone = genpip_read(
                &ctx,
                read.id,
                &read.signal.samples,
                ErMode::Full,
                &mut fresh,
            );
            assert_eq!(&alone, run, "read {}", read.id);
        }
    }

    #[test]
    fn conventional_processes_every_chunk() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_conventional(&d, &config);
        assert_eq!(run.reads.len(), d.reads.len());
        for r in &run.reads {
            assert_eq!(r.chunks.len(), r.total_chunks);
            assert_eq!(r.basecalled_samples(), r.signal_samples);
            assert!(r.full_aqs.is_some());
        }
        assert!(!run.chunked);
    }

    #[test]
    fn conventional_outcomes_are_sane() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_conventional(&d, &config);
        let t = run.totals();
        // Most reference-origin, good-quality reads must map.
        let mut mappable = 0usize;
        let mut mapped_of_mappable = 0usize;
        for (rr, sr) in run.reads.iter().zip(&d.reads) {
            if sr.origin.is_reference() && !sr.is_low_quality_truth() {
                mappable += 1;
                if rr.outcome.is_mapped() {
                    mapped_of_mappable += 1;
                }
            }
            // Contaminants never map.
            if sr.origin == ReadOrigin::Contaminant {
                assert!(!rr.outcome.is_mapped(), "contaminant read {} mapped", rr.id);
            }
        }
        assert!(
            mapped_of_mappable as f64 / mappable as f64 > 0.9,
            "{mapped_of_mappable}/{mappable} mappable reads mapped"
        );
        assert!(t.mapped_reads > 0);
        assert!(t.align_cells > 0);
    }

    #[test]
    fn mapped_reads_land_on_their_true_origin() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_conventional(&d, &config);
        let mut checked = 0usize;
        let mut correct = 0usize;
        for (rr, sr) in run.reads.iter().zip(&d.reads) {
            if let (ReadOutcome::Mapped(m), ReadOrigin::Reference { start, len, .. }) =
                (&rr.outcome, sr.origin)
            {
                checked += 1;
                let true_mid = start + len / 2;
                if m.ref_start <= true_mid && true_mid <= m.ref_end {
                    correct += 1;
                }
            }
        }
        assert!(checked > 10);
        assert!(
            correct as f64 / checked as f64 > 0.95,
            "{correct}/{checked} mapped reads on their true span"
        );
    }

    #[test]
    fn cp_without_er_matches_conventional_outcomes() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let conv = batch_conventional(&d, &config);
        let cp = batch_genpip(&d, &config, ErMode::None);
        assert!(cp.chunked);
        let mut agree = 0usize;
        for (a, b) in conv.reads.iter().zip(&cp.reads) {
            // Chunked sketching loses boundary minimizers, so demand outcome
            // *category* agreement, not bit equality.
            let same = matches!(
                (&a.outcome, &b.outcome),
                (ReadOutcome::Mapped(_), ReadOutcome::Mapped(_))
                    | (ReadOutcome::Unmapped { .. }, ReadOutcome::Unmapped { .. })
                    | (
                        ReadOutcome::FilteredQc { .. },
                        ReadOutcome::FilteredQc { .. }
                    )
            );
            if same {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / conv.reads.len() as f64 > 0.93,
            "{agree}/{} outcome agreement",
            conv.reads.len()
        );
    }

    #[test]
    fn cp_basecalls_everything_once() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let cp = batch_genpip(&d, &config, ErMode::None);
        for r in &cp.reads {
            assert_eq!(r.basecalled_samples(), r.signal_samples, "read {}", r.id);
            // Every chunk appears exactly twice: one basecall entry and one
            // seeding entry (fused in the same pass but recorded separately).
            assert_eq!(r.chunks.len(), 2 * r.total_chunks);
        }
    }

    #[test]
    fn qsr_saves_work_on_low_quality_reads() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let full = batch_genpip(&d, &config, ErMode::None);
        let qsr = batch_genpip(&d, &config, ErMode::QsrOnly);
        let rejected = qsr.count_outcomes(ReadOutcome::is_early_rejected);
        assert!(rejected > 0, "no reads rejected by QSR");
        let full_samples = full.totals().samples;
        let qsr_samples = qsr.totals().samples;
        assert!(
            qsr_samples < full_samples,
            "QSR did not save basecalling work ({qsr_samples} vs {full_samples})"
        );
        // Rejected reads only basecalled their sampled chunks.
        for r in &qsr.reads {
            if let ReadOutcome::RejectedQsr { .. } = r.outcome {
                assert!(r.chunks.len() <= config.n_qs);
                assert!(r.basecalled_samples() < r.signal_samples || r.total_chunks <= config.n_qs);
            }
        }
    }

    #[test]
    fn cmr_rejects_contaminants() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_genpip(&d, &config, ErMode::Full);
        let mut cmr_rejected = 0usize;
        let mut cmr_rejected_contaminant = 0usize;
        for (rr, sr) in run.reads.iter().zip(&d.reads) {
            if let ReadOutcome::RejectedCmr { .. } = rr.outcome {
                cmr_rejected += 1;
                if sr.origin == ReadOrigin::Contaminant {
                    cmr_rejected_contaminant += 1;
                }
            }
        }
        assert!(cmr_rejected > 0, "no CMR rejections");
        assert!(
            cmr_rejected_contaminant as f64 / cmr_rejected as f64 > 0.7,
            "{cmr_rejected_contaminant}/{cmr_rejected} CMR rejections are contaminants"
        );
    }

    #[test]
    fn er_only_removes_reads_never_changes_survivors() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let cp = batch_genpip(&d, &config, ErMode::None);
        let er = batch_genpip(&d, &config, ErMode::Full);
        for (a, b) in cp.reads.iter().zip(&er.reads) {
            if !b.outcome.is_early_rejected() {
                // A survivor must map to the same place. Sampled chunks are
                // basecalled without carried decoder state, so the assembled
                // sequence may differ by a few bases — allow small slack.
                match (a.outcome.mapping(), b.outcome.mapping()) {
                    (Some(ma), Some(mb)) => {
                        assert_eq!(ma.strand, mb.strand, "read {} strand changed", a.id);
                        assert!(
                            ma.ref_start.abs_diff(mb.ref_start) < 40,
                            "read {} moved: {} vs {}",
                            a.id,
                            ma.ref_start,
                            mb.ref_start
                        );
                    }
                    (None, None) => {}
                    (a_map, b_map) => panic!(
                        "read {} mapped-ness changed under ER: {:?} vs {:?}",
                        a.id,
                        a_map.is_some(),
                        b_map.is_some()
                    ),
                }
            }
        }
    }

    #[test]
    fn totals_are_internally_consistent() {
        let d = dataset();
        let config = GenPipConfig::for_dataset(&d.profile);
        let run = batch_genpip(&d, &config, ErMode::Full);
        let t = run.totals();
        assert_eq!(t.reads, d.reads.len());
        assert!(t.samples <= d.total_samples());
        assert!(t.mvm_ops == t.samples, "one emission MVM per sample");
        assert!(t.seed_bases <= t.bases_called);
        assert!(t.raw_bytes == d.total_samples() * genpip_signal::BYTES_PER_SAMPLE);
    }
}
