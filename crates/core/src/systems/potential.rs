//! The Figure 4 potential study: Systems A–D.
//!
//! Section 2.4 of the paper motivates GenPIP by bounding what integration
//! can buy:
//!
//! * **System A** — current practice: GPU Bonito on one machine, CPU
//!   minimap2 on another, data moved between them.
//! * **System B** — state-of-the-art accelerators: Helix + PARC with QC on a
//!   CPU, still moving data between devices.
//! * **System C** — System B with all data movement ideally eliminated.
//! * **System D** — System C with useless (low-quality or unmapped) reads
//!   ideally removed *before any processing* (oracle early rejection).
//!
//! The paper reports 1× / 2.74× / 6.12× / 9×; the shape to reproduce is the
//! monotone staircase with C/B ≈ 2.2 and D/B ≈ 3.3.

use crate::pipeline::{PipelineRun, ReadOutcome};
use crate::systems::costs::SoftwareCosts;
use crate::systems::hardware::evaluate_pim_baseline;
use crate::systems::software::{evaluate_software, BasecallDevice};
use genpip_pim::PimTech;
use genpip_sim::SimTime;

/// One row of the Figure 4 study.
#[derive(Debug, Clone, PartialEq)]
pub struct PotentialRow {
    /// System label ("A".."D").
    pub system: &'static str,
    /// Description.
    pub description: &'static str,
    /// Absolute modelled time.
    pub time: SimTime,
    /// Speedup normalized to System A.
    pub speedup_vs_a: f64,
}

/// Runs the four-system potential study on a conventional workload.
pub fn potential_study(
    conventional: &PipelineRun,
    costs: &SoftwareCosts,
    tech: &PimTech,
) -> Vec<PotentialRow> {
    let a = evaluate_software(conventional, costs, BasecallDevice::Gpu, false).time;
    let b = evaluate_pim_baseline(conventional, costs, tech, true).time;
    let c = evaluate_pim_baseline(conventional, costs, tech, false).time;
    // Oracle: drop reads that will end up useless before any processing.
    let useful = conventional.filtered(|r| matches!(r.outcome, ReadOutcome::Mapped(_)));
    let d = evaluate_pim_baseline(&useful, costs, tech, false).time;

    let rows = [
        ("A", "GPU basecall + CPU map, separate machines", a),
        ("B", "Helix + PARC + CPU QC, with data movement", b),
        ("C", "System B without data movement", c),
        ("D", "System C without useless reads", d),
    ];
    rows.into_iter()
        .map(|(system, description, time)| PotentialRow {
            system,
            description,
            time,
            speedup_vs_a: a.as_secs() / time.as_secs(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenPipConfig;
    use crate::pipeline::batch_conventional;
    use genpip_datasets::DatasetProfile;

    fn study() -> Vec<PotentialRow> {
        let d = DatasetProfile::ecoli().scaled(0.08).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        let conv = batch_conventional(&d, &config);
        potential_study(&conv, &SoftwareCosts::calibrated(), &PimTech::paper_32nm())
    }

    #[test]
    fn staircase_is_monotone() {
        let rows = study();
        assert_eq!(rows.len(), 4);
        assert!((rows[0].speedup_vs_a - 1.0).abs() < 1e-9);
        for w in rows.windows(2) {
            assert!(
                w[1].speedup_vs_a > w[0].speedup_vs_a,
                "{} ({}) not faster than {} ({})",
                w[1].system,
                w[1].speedup_vs_a,
                w[0].system,
                w[0].speedup_vs_a
            );
        }
    }

    #[test]
    fn factors_match_paper_bands() {
        let rows = study();
        let b = rows[1].speedup_vs_a;
        let c = rows[2].speedup_vs_a;
        let d = rows[3].speedup_vs_a;
        // Paper: B = 2.74, C/B = 2.23, D/B = 3.28.
        assert!((1.5..5.0).contains(&b), "B = {b}");
        assert!((1.4..3.2).contains(&(c / b)), "C/B = {}", c / b);
        assert!((1.8..4.5).contains(&(d / b)), "D/B = {}", d / b);
    }
}
