//! Time/energy models of the software systems (CPU, GPU, ±CP, ±GP).
//!
//! The conventional software flow (paper Figure 1) moves raw signals from
//! the sequencer to the basecalling machine, basecalls, ships the basecalled
//! reads to the analysis machine, quality-controls, and maps — strictly in
//! phases. CP overlaps the phases (chunk streaming); GP additionally runs on
//! the ER-reduced workload. All times are workload counters × calibrated
//! per-op costs; see [`crate::systems::costs`].

use crate::pipeline::{PipelineRun, WorkloadTotals};
use crate::systems::costs::SoftwareCosts;
use genpip_sim::{EnergyMeter, SimTime};

/// Which processor basecalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasecallDevice {
    /// CPU software basecaller.
    Cpu,
    /// GPU software basecaller.
    Gpu,
}

/// The phase times of a software system on a given workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwarePhases {
    /// Raw-signal transfer (sequencer → basecalling machine).
    pub t_raw_transfer: SimTime,
    /// Basecalling.
    pub t_basecall: SimTime,
    /// Basecalled-read transfer (basecalling → analysis machine).
    pub t_called_transfer: SimTime,
    /// Read quality control.
    pub t_qc: SimTime,
    /// Read mapping (seeding + chaining + alignment).
    pub t_map: SimTime,
}

impl SoftwarePhases {
    /// Computes the phases for a workload.
    pub fn from_workload(
        totals: &WorkloadTotals,
        costs: &SoftwareCosts,
        device: BasecallDevice,
    ) -> SoftwarePhases {
        let bc_per_base = match device {
            BasecallDevice::Cpu => costs.cpu_basecall_per_base,
            BasecallDevice::Gpu => costs.cpu_basecall_per_base / costs.gpu_basecall_speedup,
        };
        SoftwarePhases {
            t_raw_transfer: SimTime::from_secs(totals.raw_bytes as f64 / costs.link_bandwidth),
            t_basecall: SimTime::from_secs(totals.bases_called as f64 * bc_per_base),
            t_called_transfer: SimTime::from_secs(
                totals.called_bytes as f64 / costs.link_bandwidth,
            ),
            t_qc: SimTime::from_secs(totals.bases_called as f64 * costs.cpu_qc_per_base),
            t_map: SimTime::from_secs(
                totals.minimizers as f64 * costs.cpu_minimizer
                    + totals.anchors as f64 * costs.cpu_seed_per_anchor
                    + totals.chain_evals as f64 * costs.cpu_chain_per_eval
                    + totals.align_cells as f64 * costs.cpu_align_per_cell,
            ),
        }
    }

    /// Sequential (conventional) wall time: all phases back to back.
    pub fn sequential_time(&self) -> SimTime {
        self.t_raw_transfer + self.t_basecall + self.t_called_transfer + self.t_qc + self.t_map
    }

    /// CP (chunk-pipelined) wall time: transfers and compute phases overlap,
    /// so the pipeline runs at the slowest stage.
    pub fn pipelined_time(&self) -> SimTime {
        self.t_raw_transfer
            .max(self.t_basecall)
            .max(self.t_qc + self.t_map)
    }
}

/// Evaluation of one software system: time + energy breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareEvaluation {
    /// Wall-clock time.
    pub time: SimTime,
    /// Energy breakdown by component.
    pub energy: EnergyMeter,
    /// The phase decomposition (for reports).
    pub phases: SoftwarePhases,
}

/// Evaluates a software system.
///
/// `pipelined` selects CP semantics (overlapped stages); the workload inside
/// `run` decides whether ER was active (GP variants pass an ER workload).
pub fn evaluate_software(
    run: &PipelineRun,
    costs: &SoftwareCosts,
    device: BasecallDevice,
    pipelined: bool,
) -> SoftwareEvaluation {
    let totals = run.totals();
    let phases = SoftwarePhases::from_workload(&totals, costs, device);
    let time = if pipelined {
        phases.pipelined_time()
    } else {
        phases.sequential_time()
    };

    let mut energy = EnergyMeter::new();
    match device {
        BasecallDevice::Cpu => {
            energy.add(
                "cpu-basecall",
                phases.t_basecall.as_secs() * costs.p_cpu_busy,
            );
        }
        BasecallDevice::Gpu => {
            energy.add(
                "gpu-basecall",
                phases.t_basecall.as_secs() * costs.p_gpu_busy,
            );
            // The GPU idles (but stays powered) while the host maps.
            energy.add(
                "gpu-idle",
                (phases.t_qc + phases.t_map).as_secs() * costs.p_gpu_idle,
            );
        }
    }
    energy.add(
        "cpu-analysis",
        (phases.t_qc + phases.t_map).as_secs() * costs.p_cpu_busy,
    );
    // CP streams chunks instead of staging whole datasets, but the bytes
    // still cross the links.
    energy.add(
        "data-movement",
        (totals.raw_bytes + totals.called_bytes) as f64 * costs.link_energy_per_byte,
    );
    SoftwareEvaluation {
        time,
        energy,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenPipConfig;
    use crate::pipeline::{batch_conventional, batch_genpip, ErMode};
    use genpip_datasets::DatasetProfile;

    fn workloads() -> (PipelineRun, PipelineRun, PipelineRun) {
        let d = DatasetProfile::ecoli().scaled(0.05).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        (
            batch_conventional(&d, &config),
            batch_genpip(&d, &config, ErMode::None),
            batch_genpip(&d, &config, ErMode::Full),
        )
    }

    #[test]
    fn basecalling_to_mapping_ratio_matches_paper_band() {
        // The paper's real-system study: basecalling ≈ 3100 CPU·h vs
        // mapping ≈ 500 CPU·h, a ratio of ≈6.2. Demand the same order.
        let (conv, _, _) = workloads();
        let costs = SoftwareCosts::calibrated();
        let p = SoftwarePhases::from_workload(&conv.totals(), &costs, BasecallDevice::Cpu);
        let ratio = p.t_basecall.as_secs() / p.t_map.as_secs();
        assert!(
            (3.0..12.0).contains(&ratio),
            "basecall:map ratio {ratio}, want ≈6.2"
        );
        // QC is negligible next to both (paper: ~1 CPU·h).
        assert!(p.t_qc.as_secs() * 50.0 < p.t_basecall.as_secs());
        // Transfer is a small but nonzero slice.
        let transfer = (p.t_raw_transfer + p.t_called_transfer).as_secs();
        assert!(transfer > 0.0);
        assert!(transfer < 0.15 * p.sequential_time().as_secs());
    }

    #[test]
    fn cp_speeds_up_both_devices() {
        let (conv, cp, _) = workloads();
        let costs = SoftwareCosts::calibrated();
        for device in [BasecallDevice::Cpu, BasecallDevice::Gpu] {
            let base = evaluate_software(&conv, &costs, device, false);
            let with_cp = evaluate_software(&cp, &costs, device, true);
            let speedup = base.time.as_secs() / with_cp.time.as_secs();
            assert!(
                speedup > 1.05 && speedup < 2.5,
                "{device:?} CP speedup {speedup}"
            );
        }
    }

    #[test]
    fn gp_speeds_up_over_cp() {
        let (_, cp, gp) = workloads();
        let costs = SoftwareCosts::calibrated();
        for device in [BasecallDevice::Cpu, BasecallDevice::Gpu] {
            let with_cp = evaluate_software(&cp, &costs, device, true);
            let with_gp = evaluate_software(&gp, &costs, device, true);
            assert!(
                with_gp.time < with_cp.time,
                "{device:?}: GP {} not faster than CP {}",
                with_gp.time,
                with_cp.time
            );
        }
    }

    #[test]
    fn gpu_is_faster_than_cpu_but_not_free() {
        let (conv, _, _) = workloads();
        let costs = SoftwareCosts::calibrated();
        let cpu = evaluate_software(&conv, &costs, BasecallDevice::Cpu, false);
        let gpu = evaluate_software(&conv, &costs, BasecallDevice::Gpu, false);
        let speedup = cpu.time.as_secs() / gpu.time.as_secs();
        assert!(
            (2.0..10.0).contains(&speedup),
            "GPU speedup {speedup}, paper ≈5"
        );
        // GPU system still burns comparable energy (power-hungry device).
        assert!(gpu.energy.total() > 0.2 * cpu.energy.total());
        assert!(gpu.energy.total() < cpu.energy.total());
    }

    #[test]
    fn energy_breakdown_has_expected_components() {
        let (conv, _, _) = workloads();
        let costs = SoftwareCosts::calibrated();
        let gpu = evaluate_software(&conv, &costs, BasecallDevice::Gpu, false);
        assert!(gpu.energy.component("gpu-basecall") > 0.0);
        assert!(gpu.energy.component("gpu-idle") > 0.0);
        assert!(gpu.energy.component("cpu-analysis") > 0.0);
        assert!(gpu.energy.component("data-movement") > 0.0);
        let cpu = evaluate_software(&conv, &costs, BasecallDevice::Cpu, false);
        assert!(cpu.energy.component("cpu-basecall") > cpu.energy.component("cpu-analysis"));
    }
}
