//! Calibrated cost constants for the software baselines.
//!
//! Absolute wall-clock numbers on the paper's testbed (Xeon Gold 5118 +
//! RTX 2080 Ti) are unobtainable without the hardware, so the software cost
//! model is **calibrated to the ratios the paper publishes** and documents
//! each constant's anchor:
//!
//! | Constant | Anchor |
//! |---|---|
//! | `cpu_basecall_per_base` | sets the time unit (CPU Bonito ≈ 25 kbase/s) |
//! | mapping per-op costs | chosen so dataset-level basecall:mapping ≈ 3100:500 CPU·h (the paper's real-system study, Section 2.1) |
//! | `gpu_basecall_speedup` | 13.7×, the value implied by the paper's 41.6× (CPU) vs 8.4× (GPU) speedups with mapping time fixed |
//! | `link_bandwidth` | makes inter-machine transfer ≈3–4 % of the CPU pipeline, consistent with Figure 1's 3.9 TB raw-data movement and the CPU-CP gain of ≈1.2× |
//! | powers | package powers under load (not TDP), tuned so the energy-ratio *structure* of Figure 11 holds |
//!
//! Everything these constants multiply is a *measured* workload counter, so
//! system orderings and the CP/ER effects are emergent, not baked in.

/// Software/system cost constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftwareCosts {
    /// CPU basecalling cost per basecalled base (seconds).
    pub cpu_basecall_per_base: f64,
    /// GPU basecalling speedup over CPU.
    pub gpu_basecall_speedup: f64,
    /// CPU cost per extracted minimizer (seconds).
    pub cpu_minimizer: f64,
    /// CPU cost per seed anchor (hash lookup + record).
    pub cpu_seed_per_anchor: f64,
    /// CPU cost per chaining DP predecessor evaluation.
    pub cpu_chain_per_eval: f64,
    /// CPU cost per alignment DP cell.
    pub cpu_align_per_cell: f64,
    /// CPU cost per base of read quality control.
    pub cpu_qc_per_base: f64,
    /// Inter-machine link bandwidth (bytes/second).
    pub link_bandwidth: f64,
    /// Energy per byte moved across the link (network + storage hops).
    pub link_energy_per_byte: f64,
    /// CPU package power under load (watts).
    pub p_cpu_busy: f64,
    /// GPU board power under basecalling load (watts), including host share.
    pub p_gpu_busy: f64,
    /// GPU idle power while the host maps (watts).
    pub p_gpu_idle: f64,
    /// Leakage fraction of a PIM module's Table 2 power drawn for the whole
    /// run regardless of utilization (analog periphery + eDRAM refresh).
    pub pim_leakage_fraction: f64,
    /// Energy per byte written to / read from main-memory DRAM, charged to
    /// systems that stage intermediate basecalled reads in memory
    /// (DDR4-class ≈30 pJ/B).
    pub dram_energy_per_byte: f64,
}

impl SoftwareCosts {
    /// The calibrated configuration used by all experiments.
    pub fn calibrated() -> SoftwareCosts {
        SoftwareCosts {
            cpu_basecall_per_base: 4.0e-5,
            gpu_basecall_speedup: 13.7,
            cpu_minimizer: 6.0e-7,
            cpu_seed_per_anchor: 3.0e-7,
            cpu_chain_per_eval: 5.0e-8,
            cpu_align_per_cell: 1.5e-8,
            cpu_qc_per_base: 1.0e-8,
            link_bandwidth: 8.0e6,
            link_energy_per_byte: 1.0e-8,
            p_cpu_busy: 65.0,
            p_gpu_busy: 300.0,
            p_gpu_idle: 85.0,
            pim_leakage_fraction: 0.45,
            dram_energy_per_byte: 30.0e-12,
        }
    }
}

impl Default for SoftwareCosts {
    fn default() -> SoftwareCosts {
        SoftwareCosts::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basecalling_dominates_mapping_per_base() {
        // The structural fact behind the paper's 3100:500 split: per base,
        // software basecalling costs far more than any single mapping op.
        let c = SoftwareCosts::calibrated();
        assert!(c.cpu_basecall_per_base > 100.0 * c.cpu_align_per_cell);
        assert!(c.cpu_basecall_per_base > 10.0 * c.cpu_minimizer);
    }

    #[test]
    fn gpu_is_faster_but_hungrier() {
        let c = SoftwareCosts::calibrated();
        assert!(c.gpu_basecall_speedup > 1.0);
        assert!(c.p_gpu_busy > c.p_cpu_busy);
        assert!(c.p_gpu_idle < c.p_gpu_busy);
    }

    #[test]
    fn leakage_fraction_is_a_fraction() {
        let c = SoftwareCosts::calibrated();
        assert!((0.0..=1.0).contains(&c.pim_leakage_fraction));
    }
}
