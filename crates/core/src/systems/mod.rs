//! The evaluated system configurations.
//!
//! The paper compares ten systems (Section 5): software baselines with and
//! without GenPIP's techniques retrofitted (CPU, CPU-CP, CPU-GP, GPU,
//! GPU-CP, GPU-GP), the optimistic Helix+PARC pairing (PIM), and three
//! GenPIP variants (GenPIP-CP, GenPIP-CP-QSR, GenPIP). Every system is a
//! cost model over one of four *measured* workloads:
//!
//! | workload | produced by | consumed by |
//! |---|---|---|
//! | conventional | [`crate::pipeline::run_conventional`] | CPU, GPU, PIM |
//! | CP | [`crate::pipeline::run_genpip`] + [`ErMode::None`] | CPU-CP, GPU-CP, GenPIP-CP |
//! | CP+QSR | [`ErMode::QsrOnly`] | GenPIP-CP-QSR |
//! | CP+ER | [`ErMode::Full`] | CPU-GP, GPU-GP, GenPIP |

pub mod costs;
pub mod hardware;
pub mod potential;
pub mod software;

use crate::config::GenPipConfig;
use crate::pipeline::{batch_conventional, batch_genpip, ErMode, PipelineRun};
use genpip_datasets::SimulatedDataset;
use genpip_pim::PimTech;
use genpip_sim::{EnergyMeter, SimTime};

pub use costs::SoftwareCosts;
pub use hardware::{evaluate_genpip, evaluate_pim_baseline, HardwareEvaluation};
pub use software::{evaluate_software, BasecallDevice, SoftwarePhases};

/// One of the ten evaluated systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// CPU Bonito + CPU minimap2, conventional flow.
    Cpu,
    /// CPU with the chunk-based pipeline retrofitted.
    CpuCp,
    /// CPU with CP + ER ("GP" = GenPIP techniques).
    CpuGp,
    /// GPU Bonito + CPU minimap2, conventional flow.
    Gpu,
    /// GPU with CP retrofitted.
    GpuCp,
    /// GPU with CP + ER.
    GpuGp,
    /// Helix + PARC, optimistically connected (no transfer cost, free QC).
    Pim,
    /// GenPIP with the chunk-based pipeline only.
    GenPipCp,
    /// GenPIP with CP + QSR.
    GenPipCpQsr,
    /// Full GenPIP (CP + QSR + CMR).
    GenPip,
}

impl SystemKind {
    /// All ten systems in the paper's presentation order.
    pub const ALL: [SystemKind; 10] = [
        SystemKind::Cpu,
        SystemKind::CpuCp,
        SystemKind::CpuGp,
        SystemKind::Gpu,
        SystemKind::GpuCp,
        SystemKind::GpuGp,
        SystemKind::Pim,
        SystemKind::GenPipCp,
        SystemKind::GenPipCpQsr,
        SystemKind::GenPip,
    ];

    /// The system's display name, as in Figures 10–11.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Cpu => "CPU",
            SystemKind::CpuCp => "CPU-CP",
            SystemKind::CpuGp => "CPU-GP",
            SystemKind::Gpu => "GPU",
            SystemKind::GpuCp => "GPU-CP",
            SystemKind::GpuGp => "GPU-GP",
            SystemKind::Pim => "PIM",
            SystemKind::GenPipCp => "GenPIP-CP",
            SystemKind::GenPipCpQsr => "GenPIP-CP-QSR",
            SystemKind::GenPip => "GenPIP",
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The four measured workloads for one (dataset, configuration) pair.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    /// Conventional flow (Figure 5a).
    pub conventional: PipelineRun,
    /// Chunk-based pipeline, no ER.
    pub cp_only: PipelineRun,
    /// CP + QSR.
    pub cp_qsr: PipelineRun,
    /// CP + QSR + CMR.
    pub cp_full: PipelineRun,
}

impl WorkloadSet {
    /// Runs all four functional pipelines over a dataset.
    pub fn build(dataset: &SimulatedDataset, config: &GenPipConfig) -> WorkloadSet {
        WorkloadSet {
            conventional: batch_conventional(dataset, config),
            cp_only: batch_genpip(dataset, config, ErMode::None),
            cp_qsr: batch_genpip(dataset, config, ErMode::QsrOnly),
            cp_full: batch_genpip(dataset, config, ErMode::Full),
        }
    }
}

/// Cost-constant bundle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemCosts {
    /// Software per-op costs, powers, link parameters.
    pub software: SoftwareCosts,
    /// PIM device constants.
    pub tech: PimTech,
}

impl Default for SystemCosts {
    fn default() -> SystemCosts {
        SystemCosts {
            software: SoftwareCosts::calibrated(),
            tech: PimTech::paper_32nm(),
        }
    }
}

/// Evaluation of one system on one workload set.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemEvaluation {
    /// Which system.
    pub kind: SystemKind,
    /// Wall-clock time.
    pub time: SimTime,
    /// Energy breakdown.
    pub energy: EnergyMeter,
}

impl SystemEvaluation {
    /// Total energy in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total()
    }
}

/// Evaluates one system.
pub fn evaluate(
    kind: SystemKind,
    workloads: &WorkloadSet,
    costs: &SystemCosts,
) -> SystemEvaluation {
    use BasecallDevice::{Cpu, Gpu};
    let (time, energy) = match kind {
        SystemKind::Cpu => {
            let e = evaluate_software(&workloads.conventional, &costs.software, Cpu, false);
            (e.time, e.energy)
        }
        SystemKind::CpuCp => {
            let e = evaluate_software(&workloads.cp_only, &costs.software, Cpu, true);
            (e.time, e.energy)
        }
        SystemKind::CpuGp => {
            let e = evaluate_software(&workloads.cp_full, &costs.software, Cpu, true);
            (e.time, e.energy)
        }
        SystemKind::Gpu => {
            let e = evaluate_software(&workloads.conventional, &costs.software, Gpu, false);
            (e.time, e.energy)
        }
        SystemKind::GpuCp => {
            let e = evaluate_software(&workloads.cp_only, &costs.software, Gpu, true);
            (e.time, e.energy)
        }
        SystemKind::GpuGp => {
            let e = evaluate_software(&workloads.cp_full, &costs.software, Gpu, true);
            (e.time, e.energy)
        }
        SystemKind::Pim => {
            let e =
                evaluate_pim_baseline(&workloads.conventional, &costs.software, &costs.tech, false);
            (e.time, e.energy)
        }
        SystemKind::GenPipCp => {
            let e = evaluate_genpip(&workloads.cp_only, &costs.software, &costs.tech);
            (e.time, e.energy)
        }
        SystemKind::GenPipCpQsr => {
            let e = evaluate_genpip(&workloads.cp_qsr, &costs.software, &costs.tech);
            (e.time, e.energy)
        }
        SystemKind::GenPip => {
            let e = evaluate_genpip(&workloads.cp_full, &costs.software, &costs.tech);
            (e.time, e.energy)
        }
    };
    SystemEvaluation { kind, time, energy }
}

/// Evaluates all ten systems.
pub fn evaluate_all(workloads: &WorkloadSet, costs: &SystemCosts) -> Vec<SystemEvaluation> {
    SystemKind::ALL
        .iter()
        .map(|&kind| evaluate(kind, workloads, costs))
        .collect()
}

/// Speedup of each evaluation relative to the `baseline` system's time.
///
/// # Panics
///
/// Panics if `baseline` is absent from `evals`.
pub fn speedups_vs(evals: &[SystemEvaluation], baseline: SystemKind) -> Vec<(SystemKind, f64)> {
    let base = evals
        .iter()
        .find(|e| e.kind == baseline)
        .expect("baseline system missing")
        .time
        .as_secs();
    evals
        .iter()
        .map(|e| (e.kind, base / e.time.as_secs()))
        .collect()
}

/// Energy reduction of each evaluation relative to the `baseline` system.
///
/// # Panics
///
/// Panics if `baseline` is absent from `evals`.
pub fn energy_reductions_vs(
    evals: &[SystemEvaluation],
    baseline: SystemKind,
) -> Vec<(SystemKind, f64)> {
    let base = evals
        .iter()
        .find(|e| e.kind == baseline)
        .expect("baseline system missing")
        .energy_j();
    evals
        .iter()
        .map(|e| (e.kind, base / e.energy_j()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_datasets::DatasetProfile;

    fn eval_all() -> Vec<SystemEvaluation> {
        let d = DatasetProfile::ecoli().scaled(0.08).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        let workloads = WorkloadSet::build(&d, &config);
        evaluate_all(&workloads, &SystemCosts::default())
    }

    #[test]
    fn paper_orderings_hold() {
        let evals = eval_all();
        let speedups = speedups_vs(&evals, SystemKind::Cpu);
        let get = |k: SystemKind| speedups.iter().find(|(s, _)| *s == k).unwrap().1;
        // Figure 10's structure.
        assert!(get(SystemKind::GenPip) > get(SystemKind::GenPipCpQsr));
        assert!(get(SystemKind::GenPipCpQsr) > get(SystemKind::GenPipCp));
        assert!(get(SystemKind::GenPipCp) > get(SystemKind::Pim));
        assert!(get(SystemKind::Pim) > get(SystemKind::Gpu));
        assert!(get(SystemKind::Gpu) > get(SystemKind::Cpu));
        assert!(get(SystemKind::CpuGp) > get(SystemKind::CpuCp));
        assert!(get(SystemKind::CpuCp) > 1.0);
        assert!(get(SystemKind::GpuGp) > get(SystemKind::GpuCp));
        assert!(get(SystemKind::GpuCp) > get(SystemKind::Gpu));
    }

    #[test]
    fn headline_factors_are_in_band() {
        let evals = eval_all();
        let speedups = speedups_vs(&evals, SystemKind::Cpu);
        let get = |k: SystemKind| speedups.iter().find(|(s, _)| *s == k).unwrap().1;
        let genpip_vs_cpu = get(SystemKind::GenPip);
        let genpip_vs_gpu = genpip_vs_cpu / get(SystemKind::Gpu);
        let genpip_vs_pim = genpip_vs_cpu / get(SystemKind::Pim);
        assert!(
            (20.0..80.0).contains(&genpip_vs_cpu),
            "GenPIP vs CPU {genpip_vs_cpu}, paper 41.6"
        );
        assert!(
            (4.0..16.0).contains(&genpip_vs_gpu),
            "GenPIP vs GPU {genpip_vs_gpu}, paper 8.4"
        );
        assert!(
            (1.1..1.9).contains(&genpip_vs_pim),
            "GenPIP vs PIM {genpip_vs_pim}, paper 1.39"
        );
    }

    #[test]
    fn energy_orderings_hold() {
        let evals = eval_all();
        let reductions = energy_reductions_vs(&evals, SystemKind::Cpu);
        let get = |k: SystemKind| reductions.iter().find(|(s, _)| *s == k).unwrap().1;
        assert!(get(SystemKind::GenPip) > get(SystemKind::Pim));
        assert!(get(SystemKind::GenPip) > get(SystemKind::Gpu));
        assert!(get(SystemKind::Gpu) > 1.0, "GPU saves energy vs CPU");
        let genpip_vs_pim = get(SystemKind::GenPip) / get(SystemKind::Pim);
        assert!(
            (1.1..2.0).contains(&genpip_vs_pim),
            "GenPIP vs PIM energy {genpip_vs_pim}, paper 1.37"
        );
    }

    #[test]
    fn all_ten_systems_are_evaluated() {
        let evals = eval_all();
        assert_eq!(evals.len(), 10);
        for e in &evals {
            assert!(e.time > SimTime::ZERO, "{} has zero time", e.kind);
            assert!(e.energy_j() > 0.0, "{} has zero energy", e.kind);
        }
    }

    #[test]
    #[should_panic(expected = "baseline system missing")]
    fn missing_baseline_panics() {
        let evals: Vec<SystemEvaluation> = Vec::new();
        let _ = speedups_vs(&evals, SystemKind::Cpu);
    }
}
