//! Time/energy models of the PIM-class systems.
//!
//! * [`evaluate_genpip`] — GenPIP proper: the chunk jobs recorded by the
//!   functional pipeline are scheduled across the four hardware modules
//!   (basecaller tiles → PIM-CQS → seeding units → DP units) with
//!   `genpip-sim`'s pipeline scheduler. Early-rejected reads simply
//!   contribute fewer jobs — the saving is whatever the schedule says it is.
//! * [`evaluate_pim_baseline`] — the paper's `PIM` comparison point: Helix
//!   and PARC "simply connected" (Section 5), i.e. basecalling and mapping
//!   run as separate phases with the paper's optimistic assumptions (no
//!   transfer latency, free QC, unlimited intermediate memory). Seeding has
//!   no accelerator in that pairing and runs on the host.

use crate::pipeline::{PipelineRun, ReadRun};
use crate::systems::costs::SoftwareCosts;
use genpip_pim::{BasecallModule, CqsModule, DpModule, PimTech, SeedingModule};
use genpip_sim::{EnergyMeter, Job, PipelineSim, SimTime, StageSpec};

/// Evaluation of a PIM-class system.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareEvaluation {
    /// Wall-clock makespan.
    pub time: SimTime,
    /// Energy breakdown.
    pub energy: EnergyMeter,
    /// Per-stage utilization of the GenPIP schedule (empty for the phase
    /// model).
    pub stage_utilization: Vec<(String, f64)>,
}

/// Module powers from Table 2, used for the leakage charge.
const P_BASECALL_MODULE: f64 = 27.4;
const P_READ_MAPPING_MODULE: f64 = 114.5;
const P_CONTROLLER_MODULE: f64 = 5.3;
/// Helix + PARC standalone chips in the baseline pairing. PARC executes
/// chaining inside CAM arrays, so the standalone pairing carries CAM
/// capacity comparable to GenPIP's seeding module, plus per-chip peripheral
/// and controller power: basecaller 27.4 W + DP 85 W + PARC CAM storage
/// ≈28.2 W + per-chip controllers ≈5.5 W. Integration saves *work and
/// time*, not silicon — the combined baseline draws roughly GenPIP's power.
const P_PIM_BASELINE: f64 = 27.4 + 85.0 + 28.2 + 5.5;

/// Schedules a chunked run on the GenPIP hardware and returns time + energy.
pub fn evaluate_genpip(
    run: &PipelineRun,
    costs: &SoftwareCosts,
    tech: &PimTech,
) -> HardwareEvaluation {
    assert!(
        run.chunked,
        "GenPIP evaluation needs a chunk-granularity run"
    );
    let basecall = BasecallModule::new(*tech);
    let cqs = CqsModule::new(*tech);
    let seeding = SeedingModule::new(*tech);
    let dp = DpModule::new(*tech);

    let mut sim = PipelineSim::new(vec![
        StageSpec::new("basecall", basecall.streams()).sequential_within_read(),
        StageSpec::new("cqs", 4),
        StageSpec::new("seed", seeding.units()),
        StageSpec::new("dp", dp.units()).sequential_within_read(),
    ]);

    let mut jobs = Vec::new();
    for read in &run.reads {
        let mut seq = 0u32;
        for work in &read.chunks {
            let service = vec![
                basecall.chunk_service(work.samples),
                if work.samples > 0 {
                    cqs.chunk_service()
                } else {
                    SimTime::ZERO
                },
                seeding.chunk_service(work.seed_bases, work.anchors),
                dp.chain_service(work.anchors),
            ];
            jobs.push(Job::new(read.id, seq, service));
            seq += 1;
        }
        if read.align_query_len > 0 {
            jobs.push(Job::new(
                read.id,
                seq,
                vec![
                    SimTime::ZERO,
                    SimTime::ZERO,
                    SimTime::ZERO,
                    dp.align_service(read.align_query_len),
                ],
            ));
        }
    }
    let report = sim.run(&jobs);

    let totals = run.totals();
    let mut energy = EnergyMeter::new();
    energy.add("basecaller", basecall.chunk_energy(totals.mvm_ops));
    let basecall_entries: usize = run
        .reads
        .iter()
        .map(|r| r.chunks.iter().filter(|c| c.samples > 0).count())
        .sum();
    energy.add("pim-cqs", basecall_entries as f64 * cqs.chunk_energy());
    energy.add(
        "seeding",
        seeding.chunk_energy(totals.seed_bases, totals.anchors),
    );
    energy.add("dp-chain", dp.chain_energy(totals.anchors));
    energy.add("dp-align", dp.align_energy(totals.align_cells));
    // On-chip buffering: raw signal through the read queue, basecalled
    // chunks through the chunk buffer (one write + one read each).
    energy.add(
        "edram-buffers",
        2.0 * (totals.raw_bytes + totals.called_bytes) as f64 * tech.e_edram_byte,
    );
    let leak = costs.pim_leakage_fraction
        * (P_BASECALL_MODULE + P_READ_MAPPING_MODULE + P_CONTROLLER_MODULE)
        * report.makespan.as_secs();
    energy.add("leakage", leak);

    let stage_utilization = sim
        .stages()
        .iter()
        .zip(&report.stage_utilization)
        .map(|(s, &u)| (s.name().to_string(), u))
        .collect();

    HardwareEvaluation {
        time: report.makespan,
        energy,
        stage_utilization,
    }
}

/// Evaluates the Helix+PARC baseline on a conventional run.
///
/// `with_transfers` adds inter-device data movement (used for the Figure 4
/// System B; the Section 6 `PIM` baseline passes `false`, matching the
/// paper's optimistic assumptions).
pub fn evaluate_pim_baseline(
    run: &PipelineRun,
    costs: &SoftwareCosts,
    tech: &PimTech,
    with_transfers: bool,
) -> HardwareEvaluation {
    assert!(
        !run.chunked,
        "the PIM baseline consumes the conventional workload"
    );
    let basecall = BasecallModule::new(*tech);
    let dp = DpModule::new(*tech);
    let totals = run.totals();

    // Phase 1: basecalling on Helix (chunk jobs, tile-parallel, sequential
    // within a read).
    let mut bc_sim = PipelineSim::new(vec![
        StageSpec::new("basecall", basecall.streams()).sequential_within_read()
    ]);
    let bc_jobs: Vec<Job> = run
        .reads
        .iter()
        .flat_map(|read| {
            read.chunks.iter().map(move |work| {
                Job::new(
                    read.id,
                    work.index as u32,
                    vec![basecall.chunk_service(work.samples)],
                )
            })
        })
        .collect();
    let t_basecall = bc_sim.run(&bc_jobs).makespan;

    // Phase 2: host-side seeding (PARC accelerates chaining and alignment
    // only). QC is free per the paper's assumption.
    let t_seed_host = SimTime::from_secs(
        totals.minimizers as f64 * costs.cpu_minimizer
            + totals.anchors as f64 * costs.cpu_seed_per_anchor,
    );

    // Phase 3: chaining + alignment on the PARC DP units, one job per
    // mapped-phase read.
    let mut dp_sim = PipelineSim::new(vec![StageSpec::new("dp", dp.units())]);
    let dp_jobs: Vec<Job> = run
        .reads
        .iter()
        .filter(|r| r.map_counters.anchors > 0 || r.align_query_len > 0)
        .map(|r: &ReadRun| {
            Job::new(
                r.id,
                0,
                vec![
                    dp.chain_service(r.map_counters.anchors) + dp.align_service(r.align_query_len),
                ],
            )
        })
        .collect();
    let t_parc = dp_sim.run(&dp_jobs).makespan;

    let t_transfers = if with_transfers {
        SimTime::from_secs((totals.raw_bytes + totals.called_bytes) as f64 / costs.link_bandwidth)
    } else {
        SimTime::ZERO
    };
    let t_qc = if with_transfers {
        // Figure 4's System B runs QC on a real CPU; the §6 baseline gets it
        // free.
        SimTime::from_secs(totals.bases_called as f64 * costs.cpu_qc_per_base)
    } else {
        SimTime::ZERO
    };
    let time = t_transfers + t_basecall + t_qc + t_seed_host + t_parc;

    let mut energy = EnergyMeter::new();
    energy.add("basecaller", basecall.chunk_energy(totals.mvm_ops));
    energy.add("dp-chain", dp.chain_energy(totals.anchors));
    energy.add("dp-align", dp.align_energy(totals.align_cells));
    energy.add("host-seeding", t_seed_host.as_secs() * costs.p_cpu_busy);
    // Intermediate basecalled reads staged in DRAM between the accelerators
    // (write + read).
    energy.add(
        "dram-staging",
        2.0 * totals.called_bytes as f64 * costs.dram_energy_per_byte,
    );
    energy.add(
        "leakage",
        costs.pim_leakage_fraction * P_PIM_BASELINE * time.as_secs(),
    );
    if with_transfers {
        energy.add(
            "data-movement",
            (totals.raw_bytes + totals.called_bytes) as f64 * costs.link_energy_per_byte,
        );
    }

    HardwareEvaluation {
        time,
        energy,
        stage_utilization: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GenPipConfig;
    use crate::pipeline::{batch_conventional, batch_genpip, ErMode};
    use genpip_datasets::DatasetProfile;

    struct Setup {
        conventional: PipelineRun,
        cp: PipelineRun,
        full: PipelineRun,
        costs: SoftwareCosts,
        tech: PimTech,
    }

    fn setup() -> Setup {
        let d = DatasetProfile::ecoli().scaled(0.08).generate();
        let config = GenPipConfig::for_dataset(&d.profile);
        Setup {
            conventional: batch_conventional(&d, &config),
            cp: batch_genpip(&d, &config, ErMode::None),
            full: batch_genpip(&d, &config, ErMode::Full),
            costs: SoftwareCosts::calibrated(),
            tech: PimTech::paper_32nm(),
        }
    }

    #[test]
    fn genpip_cp_beats_the_pim_baseline() {
        let s = setup();
        let pim = evaluate_pim_baseline(&s.conventional, &s.costs, &s.tech, false);
        let cp = evaluate_genpip(&s.cp, &s.costs, &s.tech);
        let speedup = pim.time.as_secs() / cp.time.as_secs();
        assert!(
            (1.02..1.6).contains(&speedup),
            "GenPIP-CP vs PIM speedup {speedup}, paper ≈1.16"
        );
    }

    #[test]
    fn full_er_extends_the_lead() {
        let s = setup();
        let pim = evaluate_pim_baseline(&s.conventional, &s.costs, &s.tech, false);
        let cp = evaluate_genpip(&s.cp, &s.costs, &s.tech);
        let full = evaluate_genpip(&s.full, &s.costs, &s.tech);
        assert!(full.time < cp.time, "ER must shorten the schedule");
        let speedup = pim.time.as_secs() / full.time.as_secs();
        assert!(
            (1.15..2.2).contains(&speedup),
            "GenPIP vs PIM speedup {speedup}, paper ≈1.39"
        );
    }

    #[test]
    fn genpip_energy_beats_pim_baseline() {
        let s = setup();
        let pim = evaluate_pim_baseline(&s.conventional, &s.costs, &s.tech, false);
        let full = evaluate_genpip(&s.full, &s.costs, &s.tech);
        let saving = pim.energy.total() / full.energy.total();
        assert!(
            (1.1..2.0).contains(&saving),
            "energy saving {saving}, paper ≈1.37"
        );
    }

    #[test]
    fn basecaller_stage_dominates_utilization() {
        let s = setup();
        let cp = evaluate_genpip(&s.cp, &s.costs, &s.tech);
        let util: std::collections::HashMap<_, _> = cp.stage_utilization.iter().cloned().collect();
        assert!(util["basecall"] > 10.0 * util["seed"]);
        assert!(util["basecall"] > util["dp"]);
        assert!(
            util["basecall"] > 0.3,
            "basecall utilization {}",
            util["basecall"]
        );
    }

    #[test]
    fn transfers_slow_down_system_b() {
        let s = setup();
        let without = evaluate_pim_baseline(&s.conventional, &s.costs, &s.tech, false);
        let with = evaluate_pim_baseline(&s.conventional, &s.costs, &s.tech, true);
        assert!(with.time > without.time);
        assert!(with.energy.component("data-movement") > 0.0);
        assert_eq!(without.energy.component("data-movement"), 0.0);
    }

    #[test]
    #[should_panic(expected = "chunk-granularity")]
    fn genpip_rejects_conventional_runs() {
        let s = setup();
        let _ = evaluate_genpip(&s.conventional, &s.costs, &s.tech);
    }
}
