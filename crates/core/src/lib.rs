//! GenPIP: in-memory acceleration of genome analysis via tight integration
//! of basecalling and read mapping.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`config`] — the GenPIP configuration (chunk size, `N_qs`, `N_cm`,
//!   `θ_qs`, `θ_cm`);
//! * [`early_reject`] — the ER technique: Quality-Score-based Rejection
//!   (QSR, the paper's Algorithm 1) and Chunk-Mapping-based Rejection (CMR);
//! * [`pipeline`] — the *functional* execution of both the conventional
//!   pipeline (Figure 5a) and GenPIP's chunk-based pipeline with optional
//!   ER (Figures 5b and 6), producing per-read outcomes and the workload
//!   counters every hardware model consumes;
//! * [`stream`] — the bounded-memory streaming executor: reads pulled from
//!   a `ReadSource` flow through a backpressured work queue and leave
//!   through a sink callback in read order, bit-identical to the batch
//!   drivers with O(workers + queue) peak memory;
//! * [`systems`] — the ten evaluated system configurations (CPU, CPU-CP,
//!   CPU-GP, GPU, GPU-CP, GPU-GP, PIM, GenPIP-CP, GenPIP-CP-QSR, GenPIP)
//!   plus the Figure 4 potential study (Systems A–D), as timing/energy cost
//!   models over the measured workload;
//! * [`analysis`] — rejection/false-negative ratios (Figures 12–13),
//!   useless-read statistics (Section 2.3), and accuracy audits;
//! * [`experiments`] — one driver per paper figure/table, used by the bench
//!   harness.
//!
//! # Example
//!
//! ```no_run
//! use genpip_core::{GenPipConfig, pipeline::{run_genpip, ErMode}};
//! use genpip_datasets::DatasetProfile;
//!
//! let dataset = DatasetProfile::ecoli().scaled(0.05).generate();
//! let config = GenPipConfig::for_dataset(&dataset.profile);
//! let run = run_genpip(&dataset, &config, ErMode::Full);
//! println!("{} reads, {} rejected early",
//!          run.reads.len(),
//!          run.reads.iter().filter(|r| r.outcome.is_early_rejected()).count());
//! ```

pub mod analysis;
pub mod config;
pub mod controller;
pub mod early_reject;
pub mod experiments;
pub mod pipeline;
pub mod stream;
pub mod systems;

pub use config::{GenPipConfig, Parallelism};
pub use genpip_mapping::Shards;
pub use pipeline::{ChunkWork, ErMode, PipelineRun, ReadOutcome, ReadRun};
pub use stream::{
    run_conventional_streaming, run_genpip_streaming, ProgressSnapshot, StreamEvent, StreamOptions,
    StreamSummary,
};
pub use systems::SystemKind;
