//! GenPIP: in-memory acceleration of genome analysis via tight integration
//! of basecalling and read mapping.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`config`] — the GenPIP configuration (chunk size, `N_qs`, `N_cm`,
//!   `θ_qs`, `θ_cm`);
//! * [`early_reject`] — the ER technique: Quality-Score-based Rejection
//!   (QSR, the paper's Algorithm 1) and Chunk-Mapping-based Rejection (CMR);
//! * [`pipeline`] — the *functional* execution of both the conventional
//!   pipeline (Figure 5a) and GenPIP's chunk-based pipeline with optional
//!   ER (Figures 5b and 6), producing per-read outcomes and the workload
//!   counters every hardware model consumes;
//! * [`engine`] — the [`Session`] execution API: one bounded-memory worker
//!   pool serving any number of named read sources, each with its own sink
//!   and in-order emission, interleaved by a [`scheduler::Schedule`], with
//!   a live control plane ([`SessionControl`]) that can attach and detach
//!   sources on a running session. Every deprecated `run_*` driver is a
//!   thin single-source wrapper over it;
//! * [`scheduler`] — the source-interleaving policies (`Sequential`,
//!   `FairShare`, weighted `Priority`, and feedback-driven `Deadline`);
//! * [`stream`] — streaming vocabulary ([`StreamOptions`], [`StreamEvent`],
//!   [`StreamSummary`]) and the legacy single-source streaming drivers,
//!   bit-identical to the batch drivers with O(workers + queue) peak
//!   memory;
//! * [`systems`] — the ten evaluated system configurations (CPU, CPU-CP,
//!   CPU-GP, GPU, GPU-CP, GPU-GP, PIM, GenPIP-CP, GenPIP-CP-QSR, GenPIP)
//!   plus the Figure 4 potential study (Systems A–D), as timing/energy cost
//!   models over the measured workload;
//! * [`analysis`] — rejection/false-negative ratios (Figures 12–13),
//!   useless-read statistics (Section 2.3), and accuracy audits;
//! * [`experiments`] — one driver per paper figure/table, used by the bench
//!   harness.
//!
//! # Example
//!
//! ```no_run
//! use genpip_core::{ErMode, Flow, GenPipConfig, Schedule, Session};
//! use genpip_core::stream::StreamEvent;
//! use genpip_datasets::{DatasetProfile, StreamingSimulator};
//!
//! // Two concurrent runs share one worker pool under fair-share
//! // scheduling; each source's output is bit-identical to running it
//! // alone.
//! let a = DatasetProfile::ecoli().scaled(0.05);
//! let b = DatasetProfile::ecoli().scaled(0.03);
//! let report = Session::new(GenPipConfig::for_dataset(&a))
//!     .flow(Flow::GenPip(ErMode::Full))
//!     .schedule(Schedule::FairShare)
//!     .source("run-a", StreamingSimulator::new(&a))
//!     .source("run-b", StreamingSimulator::new(&b))
//!     .sink("run-a", |event| {
//!         if let StreamEvent::Read(run) = event {
//!             println!("run-a read {} done", run.id);
//!         }
//!     })
//!     .run()
//!     .expect("valid session");
//! println!("{} reads across {} sources",
//!          report.outcomes.reads_emitted, report.sources.len());
//! ```

pub mod analysis;
pub mod config;
pub mod controller;
pub mod early_reject;
pub mod engine;
pub mod experiments;
pub mod pipeline;
pub mod scheduler;
pub mod stream;
pub mod systems;

pub use config::{FaultPolicy, GenPipConfig, Lanes, Parallelism};
pub use engine::{
    AttachSpec, Flow, Granularity, PendingAttach, PendingDetach, Session, SessionCheckpoint,
    SessionControl, SessionError, SessionReport, SessionStats, SourceCheckpoint, SourceConfigIssue,
    SourceReport, SourceStats,
};
pub use genpip_datasets::SourceId;
pub use genpip_mapping::Shards;
pub use pipeline::{CalledBases, ChunkWork, ErMode, PipelineRun, ReadOutcome, ReadRun};
pub use scheduler::Schedule;
#[allow(deprecated)]
pub use stream::{run_conventional_streaming, run_genpip_streaming};
pub use stream::{
    FastqSink, FaultKind, LatencyStats, ProgressSnapshot, ReadFault, StreamEvent, StreamOptions,
    StreamSummary,
};
pub use systems::SystemKind;
