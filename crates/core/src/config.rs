//! GenPIP configuration.

use genpip_datasets::DatasetProfile;
use genpip_genomics::Genome;
use genpip_mapping::{MapperParams, Shards};
use std::sync::Arc;

/// How many software worker threads the [`Session`](crate::engine::Session)
/// engine spreads reads across.
///
/// Results are **bit-identical** across all settings: reads are independent,
/// every worker computes deterministically, and results are reassembled in
/// read order. The knob only trades wall-clock time for cores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread, no pool — the reference execution.
    Serial,
    /// A fixed worker count (clamped to ≥ 1).
    Threads(usize),
    /// One worker per available hardware thread.
    #[default]
    Auto,
}

impl Parallelism {
    /// The concrete worker count this setting resolves to on this machine.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Parses a parallelism spelling: `"serial"`, `"auto"`, or a worker
    /// count (e.g. `"4"` → `Threads(4)`). `None` for anything else.
    pub fn parse(s: &str) -> Option<Parallelism> {
        match s.trim().to_ascii_lowercase().as_str() {
            "serial" => Some(Parallelism::Serial),
            "auto" => Some(Parallelism::Auto),
            n => n.parse::<usize>().ok().map(Parallelism::Threads),
        }
    }

    /// The setting named by the `GENPIP_PARALLELISM` environment variable
    /// (same spellings as [`Parallelism::parse`]), or `None` when unset or
    /// unparseable. CI's test matrix sets this to force both threading
    /// paths through every test that consults it.
    pub fn from_env() -> Option<Parallelism> {
        Parallelism::parse(&std::env::var("GENPIP_PARALLELISM").ok()?)
    }

    /// [`Parallelism::from_env`] with a fallback.
    pub fn from_env_or(default: Parallelism) -> Parallelism {
        Parallelism::from_env().unwrap_or(default)
    }
}

/// How many decode lanes the engine's workers batch basecall chunk tasks
/// into ([`genpip_basecall::LaneDecoder`]): W independent chunks advance in
/// lockstep through one structure-of-arrays Viterbi kernel.
///
/// Like [`Parallelism`], this is a pure throughput knob: lane-batched
/// output is **bit-identical** to scalar decode for every width (the
/// scalar path is the `W = 1` fallback and oracle), so the setting only
/// trades memory-system efficiency for per-batch working-set size.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Lanes {
    /// A sensible multi-lane default for this build
    /// ([`Lanes::AUTO_WIDTH`]).
    #[default]
    Auto,
    /// A fixed lane width (clamped to `1..=`[`genpip_basecall::MAX_LANES`]).
    Width(usize),
}

impl Lanes {
    /// The width [`Lanes::Auto`] resolves to: wide enough to fill a SIMD
    /// register of f32 scores on current hardware, small enough that the
    /// interleaved DP rows stay cache-resident.
    pub const AUTO_WIDTH: usize = 8;

    /// The concrete lane width this setting resolves to.
    pub fn width(self) -> usize {
        match self {
            Lanes::Auto => Self::AUTO_WIDTH,
            Lanes::Width(n) => n.clamp(1, genpip_basecall::MAX_LANES),
        }
    }

    /// Parses a lane spelling: `"auto"` or a width ≥ 1 (e.g. `"4"` →
    /// `Width(4)`). `None` for `"0"` and anything else unparseable — a
    /// zero width is a user error, not a clamp.
    pub fn parse(s: &str) -> Option<Lanes> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(Lanes::Auto),
            n => match n.parse::<usize>().ok()? {
                0 => None,
                w => Some(Lanes::Width(w)),
            },
        }
    }

    /// The setting named by the `GENPIP_LANES` environment variable (same
    /// spellings as [`Lanes::parse`]), or `None` when unset or unparseable.
    /// CI's test matrix sets this to force distinct lane widths through
    /// every test that consults it.
    pub fn from_env() -> Option<Lanes> {
        Lanes::parse(&std::env::var("GENPIP_LANES").ok()?)
    }

    /// [`Lanes::from_env`] with a fallback.
    pub fn from_env_or(default: Lanes) -> Lanes {
        Lanes::from_env().unwrap_or(default)
    }
}

/// What the engine does with a read whose chunk task faults (panics or
/// trips a signal-integrity check) mid-chain.
///
/// Containment never changes surviving reads' results: a faulted read's
/// remaining chunks are cancelled through the same path as an early-rejection
/// verdict, its flow permit is released, and every other read proceeds
/// untouched — so survivors stay bit-identical to a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Propagate the panic and tear the whole session down (the historical
    /// behaviour, and the right one for faults that indicate a bug in the
    /// pipeline rather than a bad read).
    #[default]
    Fail,
    /// Contain the fault: cancel the read's remaining chunks, emit it as
    /// [`crate::stream::StreamEvent::Failed`], and keep the session running.
    Quarantine,
    /// Like [`FaultPolicy::Quarantine`], but first rebuild the read's chain
    /// from its untouched signal and re-run it up to `attempts` extra times
    /// (deterministically scheduled); quarantine only if every attempt
    /// faults. Absorbs transient faults without losing the read.
    Retry {
        /// Extra attempts after the first fault (0 behaves like
        /// `Quarantine`).
        attempts: u32,
    },
}

impl FaultPolicy {
    /// Parses a CLI spelling: `"fail"`, `"quarantine"`, `"retry"` (2 extra
    /// attempts), or `"retry:N"`. `None` for anything else.
    pub fn parse(s: &str) -> Option<FaultPolicy> {
        let s = s.trim().to_ascii_lowercase();
        match s.as_str() {
            "fail" => Some(FaultPolicy::Fail),
            "quarantine" => Some(FaultPolicy::Quarantine),
            "retry" => Some(FaultPolicy::Retry { attempts: 2 }),
            _ => {
                let n = s.strip_prefix("retry:")?.parse().ok()?;
                Some(FaultPolicy::Retry { attempts: n })
            }
        }
    }

    /// Extra attempts this policy grants after a first fault.
    pub(crate) fn retry_attempts(self) -> u32 {
        match self {
            FaultPolicy::Retry { attempts } => attempts,
            _ => 0,
        }
    }
}

/// All knobs of the GenPIP system.
///
/// The dataset-dependent values follow the paper's sensitivity analysis
/// (Section 6.3): `N_qs` = 2 (E. coli) / 5 (human) sampled chunks for QSR,
/// `N_cm` = 5 (E. coli) / 3 (human) combined chunks for CMR, quality
/// threshold `θ_qs` = 7 throughout.
#[derive(Debug, Clone, PartialEq)]
pub struct GenPipConfig {
    /// Chunk size in bases (the paper evaluates 300/400/500; 300 is the
    /// basecaller default).
    pub chunk_bases: usize,
    /// Number of evenly-spaced chunks QSR samples (`N_qs`).
    pub n_qs: usize,
    /// Number of leading consecutive chunks CMR combines (`N_cm`).
    pub n_cm: usize,
    /// Read-quality threshold (`θ_qs`), in Phred units.
    pub theta_qs: f64,
    /// Chaining-score threshold (`θ_cm`) applied to the CMR large chunk and
    /// to the whole read before alignment.
    pub theta_cm: f64,
    /// Read-mapper parameters.
    pub mapper: MapperParams,
    /// Software worker threading of the pipeline drivers (never changes
    /// results, only wall-clock time).
    pub parallelism: Parallelism,
    /// Lane width of the workers' batched Viterbi decode (never changes
    /// results, only throughput; see [`Lanes`]).
    pub lanes: Lanes,
    /// Keep each fully-basecalled read's sequence and per-base qualities on
    /// its [`crate::pipeline::ReadRun`] (`ReadRun::called`), so sinks can
    /// serialize real output (e.g. FASTQ) instead of counters. Off by
    /// default: early-rejected reads never have assembled bases, and runs
    /// that only need counters should not pay the memory.
    pub keep_bases: bool,
    /// What to do with a read whose chunk task faults mid-chain (see
    /// [`FaultPolicy`]). Per-source config overrides let each source of a
    /// session pick its own policy.
    pub fault_policy: FaultPolicy,
    /// Additional references mapped alongside each source's own reference
    /// (pan-genome sessions). Every read fans out across the source's
    /// reference plus these, and the best hit is merged deterministically
    /// (chain score, then reference name, then position). Empty by default —
    /// single-reference runs stay byte-for-byte what they always were.
    pub extra_references: Vec<Arc<Genome>>,
}

impl GenPipConfig {
    /// The paper's operating point for a dataset profile.
    pub fn for_dataset(profile: &DatasetProfile) -> GenPipConfig {
        GenPipConfig::for_reference_name(profile.name)
    }

    /// The paper's operating point, keyed by reference name alone — for
    /// sources whose dataset profile is not available, such as an on-disk
    /// signal container that only embeds its reference genome. Matches
    /// [`GenPipConfig::for_dataset`] for every built-in profile, so a file
    /// replay of a simulated dataset runs the same `N_qs`/`N_cm`.
    pub fn for_reference_name(name: &str) -> GenPipConfig {
        let mut config = GenPipConfig::default();
        match name {
            "human" => {
                config.n_qs = 5;
                config.n_cm = 3;
            }
            _ => {
                // E. coli defaults (also the fallback for custom profiles).
                config.n_qs = 2;
                config.n_cm = 5;
            }
        }
        config
    }

    /// Overrides the chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bases` is 0.
    pub fn with_chunk_bases(mut self, chunk_bases: usize) -> GenPipConfig {
        assert!(chunk_bases > 0, "chunk size must be positive");
        self.chunk_bases = chunk_bases;
        self
    }

    /// Overrides the threading of the pipeline drivers.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> GenPipConfig {
        self.parallelism = parallelism;
        self
    }

    /// Overrides the decode lane width (see [`Lanes`]). Like
    /// [`GenPipConfig::with_parallelism`], this never changes results —
    /// lane-batched decode is bit-identical to scalar for every width.
    pub fn with_lanes(mut self, lanes: Lanes) -> GenPipConfig {
        self.lanes = lanes;
        self
    }

    /// Overrides how many position-range shards the reference minimizer
    /// index is split into ([`Shards`]). Like
    /// [`GenPipConfig::with_parallelism`], this never changes results —
    /// mapping output is bit-identical for every shard count; the knob
    /// bounds per-shard index memory and maps shards onto the PIM seeding
    /// unit's CAM subarray groups.
    pub fn with_shards(mut self, shards: Shards) -> GenPipConfig {
        self.mapper.shards = shards;
        self
    }

    /// Enables or disables retaining basecalled sequences on emitted reads
    /// (see [`GenPipConfig::keep_bases`]). Never changes outcomes or
    /// counters — only whether `ReadRun::called` is populated.
    pub fn with_keep_bases(mut self, keep_bases: bool) -> GenPipConfig {
        self.keep_bases = keep_bases;
        self
    }

    /// Overrides the fault policy (see [`FaultPolicy`]). Never changes
    /// surviving reads' results — only what happens to faulting ones.
    pub fn with_fault_policy(mut self, fault_policy: FaultPolicy) -> GenPipConfig {
        self.fault_policy = fault_policy;
        self
    }

    /// Adds references mapped alongside each source's own reference
    /// (see [`GenPipConfig::extra_references`]). Reference names must be
    /// unique across the source reference and all extras; the session
    /// engine validates this at start/attach time.
    pub fn with_extra_references(mut self, extra_references: Vec<Arc<Genome>>) -> GenPipConfig {
        self.extra_references = extra_references;
        self
    }

    /// Signal samples per chunk for a given mean dwell (samples/base).
    pub fn samples_per_chunk(&self, mean_dwell: f64) -> usize {
        genpip_signal::chunk::samples_per_chunk(self.chunk_bases, mean_dwell)
    }
}

impl Default for GenPipConfig {
    /// E. coli operating point, 300-base chunks.
    fn default() -> GenPipConfig {
        GenPipConfig {
            chunk_bases: 300,
            n_qs: 2,
            n_cm: 5,
            theta_qs: 7.0,
            theta_cm: 55.0,
            mapper: MapperParams::default(),
            parallelism: Parallelism::default(),
            lanes: Lanes::default(),
            keep_bases: false,
            fault_policy: FaultPolicy::default(),
            extra_references: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_operating_points_match_the_paper() {
        let e = GenPipConfig::for_dataset(&DatasetProfile::ecoli());
        assert_eq!((e.n_qs, e.n_cm), (2, 5));
        let h = GenPipConfig::for_dataset(&DatasetProfile::human());
        assert_eq!((h.n_qs, h.n_cm), (5, 3));
        assert_eq!(e.theta_qs, 7.0);
        assert_eq!(h.theta_qs, 7.0);
    }

    #[test]
    fn chunk_size_override() {
        let c = GenPipConfig::default().with_chunk_bases(400);
        assert_eq!(c.chunk_bases, 400);
        assert_eq!(c.samples_per_chunk(8.0), 3200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_rejected() {
        let _ = GenPipConfig::default().with_chunk_bases(0);
    }

    #[test]
    fn parallelism_resolves_to_sane_worker_counts() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert_eq!(
            Parallelism::Threads(0).workers(),
            1,
            "clamped to one worker"
        );
        assert!(Parallelism::Auto.workers() >= 1);
        let c = GenPipConfig::default().with_parallelism(Parallelism::Threads(2));
        assert_eq!(c.parallelism, Parallelism::Threads(2));
    }

    #[test]
    fn shard_override_reaches_the_mapper_params() {
        let c = GenPipConfig::default().with_shards(Shards::Fixed(6));
        assert_eq!(c.mapper.shards, Shards::Fixed(6));
        assert_eq!(GenPipConfig::default().mapper.shards, Shards::Single);
    }

    #[test]
    fn fault_policy_parses_the_cli_spellings() {
        assert_eq!(FaultPolicy::parse("fail"), Some(FaultPolicy::Fail));
        assert_eq!(
            FaultPolicy::parse(" Quarantine "),
            Some(FaultPolicy::Quarantine)
        );
        assert_eq!(
            FaultPolicy::parse("retry"),
            Some(FaultPolicy::Retry { attempts: 2 })
        );
        assert_eq!(
            FaultPolicy::parse("retry:5"),
            Some(FaultPolicy::Retry { attempts: 5 })
        );
        assert_eq!(FaultPolicy::parse("retry:x"), None);
        assert_eq!(FaultPolicy::parse("bogus"), None);
        assert_eq!(FaultPolicy::default(), FaultPolicy::Fail);
        assert_eq!(FaultPolicy::Fail.retry_attempts(), 0);
        assert_eq!(FaultPolicy::Quarantine.retry_attempts(), 0);
        assert_eq!(FaultPolicy::Retry { attempts: 3 }.retry_attempts(), 3);
    }

    #[test]
    fn lanes_parse_and_clamp() {
        assert_eq!(Lanes::parse("auto"), Some(Lanes::Auto));
        assert_eq!(Lanes::parse(" 4 "), Some(Lanes::Width(4)));
        assert_eq!(Lanes::parse("0"), None, "zero width is a user error");
        assert_eq!(Lanes::parse("bogus"), None);
        assert_eq!(Lanes::parse(""), None);
        assert_eq!(Lanes::default(), Lanes::Auto);
        assert_eq!(Lanes::Auto.width(), Lanes::AUTO_WIDTH);
        assert_eq!(Lanes::Width(3).width(), 3);
        assert_eq!(Lanes::Width(10_000).width(), genpip_basecall::MAX_LANES);
        const { assert!(Lanes::AUTO_WIDTH <= genpip_basecall::MAX_LANES) };
        let c = GenPipConfig::default().with_lanes(Lanes::Width(2));
        assert_eq!(c.lanes, Lanes::Width(2));
        assert_eq!(GenPipConfig::default().lanes, Lanes::Auto);
    }

    #[test]
    fn parallelism_parses_the_env_spellings() {
        assert_eq!(Parallelism::parse("serial"), Some(Parallelism::Serial));
        assert_eq!(Parallelism::parse("  AUTO "), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse("4"), Some(Parallelism::Threads(4)));
        assert_eq!(Parallelism::parse("bogus"), None);
        assert_eq!(Parallelism::parse(""), None);
    }
}
