//! Source-interleaving policies for multi-source [`Session`]s.
//!
//! A [`crate::engine::Session`] registers N read sources but owns exactly
//! one worker pool. The [`Schedule`] decides, pull by pull, which source the
//! feeder draws the next read from; the scheduler therefore controls
//! *interleaving and latency*, never *results* — per-read computation is
//! independent and per-source emission order is always source order, so
//! every policy produces bit-identical per-source output (asserted by
//! `tests/session.rs`).
//!
//! All policies are deterministic: the same sources and the same policy
//! yield the same pull sequence on every run.
//!
//! [`Session`]: crate::engine::Session

/// How a [`crate::engine::Session`] interleaves its registered sources over
/// the shared worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// Drain sources one at a time, in registration order — source 1 pulls
    /// nothing until source 0 is exhausted. The single-source behaviour of
    /// the legacy `run_*` drivers, generalized.
    Sequential,
    /// Round-robin over the non-exhausted sources: every source gets one
    /// pull per cycle, so N equally long sources finish together.
    FairShare,
    /// Smooth weighted round-robin: over any window of `sum(weights)`
    /// pulls, source `i` receives `weights[i]` of them, spread as evenly as
    /// the weights allow (never bursted). Weights align with source
    /// **registration order** and must all be ≥ 1 — a zero weight would
    /// starve its source forever, so [`crate::engine::Session::run`] rejects
    /// it up front. Exhausted sources drop out and their share is
    /// redistributed.
    Priority(Vec<u32>),
    /// Latency-target scheduling: each source declares a residency target in
    /// chunk-work units (the [`crate::stream::LatencyStats`] currency), and
    /// the scheduler continuously re-weights a smooth weighted round-robin
    /// by each source's *urgency* — the ratio of its observed residency
    /// (an EWMA over retired reads, fed back by the engine) to its target.
    /// A source running at its target holds a neutral share; one whose reads
    /// are resident 4× longer than its target earns 4× the pulls until the
    /// EWMA comes back down. Urgency is clamped to `[1, 16×]` neutral, so no
    /// source is ever starved and a hopeless target cannot monopolize the
    /// pool. Targets align with source **registration order** and must all
    /// be ≥ 1 ([`crate::engine::SessionError::ZeroDeadlineTarget`]).
    ///
    /// Like every other policy the decision procedure is deterministic: the
    /// pick sequence is a pure function of the availability and
    /// residency-feedback sequences (integer arithmetic only, ties to the
    /// lowest index), and — like every other policy — it changes latency
    /// distribution, never results.
    Deadline(Vec<u64>),
}

impl Schedule {
    /// Parses a CLI spelling: `"sequential"`/`"seq"`, `"fair"`/
    /// `"fairshare"`/`"fair-share"`, `"priority"`, or `"deadline"`.
    /// `Priority` and `Deadline` take their weights/targets from per-source
    /// specs, so they parse to empty vectors — callers fill them in. `None`
    /// for anything else.
    pub fn parse(s: &str) -> Option<Schedule> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Some(Schedule::Sequential),
            "fair" | "fairshare" | "fair-share" => Some(Schedule::FairShare),
            "priority" => Some(Schedule::Priority(Vec::new())),
            "deadline" => Some(Schedule::Deadline(Vec::new())),
            _ => None,
        }
    }
}

/// Neutral urgency of a [`Schedule::Deadline`] lane: the weight a lane earns
/// while its residency EWMA sits exactly at its target (or before any of its
/// reads have retired).
const DEADLINE_NEUTRAL: i64 = 8;

/// Urgency cap: a lane can earn at most 16× the neutral share no matter how
/// far past its target it is, so one hopeless target cannot starve the rest.
const DEADLINE_MAX: i64 = 16 * DEADLINE_NEUTRAL;

/// The SWRR weight a deadline lane earns this round: `neutral × ewma /
/// target`, clamped to `[1, DEADLINE_MAX]`. Integer arithmetic keeps the
/// whole policy deterministic.
fn deadline_urgency(ewma: u64, target: u64) -> i64 {
    if ewma == 0 {
        return DEADLINE_NEUTRAL;
    }
    let urgency = (ewma.saturating_mul(DEADLINE_NEUTRAL as u64) / target.max(1)) as i64;
    urgency.clamp(1, DEADLINE_MAX)
}

/// The mutable pick-next state behind a [`Schedule`], owned by the engine's
/// dispatcher.
///
/// Since the chunk-granular refactor the scheduler is consulted once per
/// **chunk task**, not once per read: `next_where` proposes the lane
/// (source) whose chain should run its next chunk, restricted to lanes that
/// currently have dispatchable work (a parked chain ready to advance, or
/// room to admit a new read). When a lane is permanently done the engine
/// reports it via `exhausted` and it is never proposed again.
pub(crate) struct SchedulerState {
    kind: Kind,
    active: Vec<bool>,
    remaining: usize,
}

enum Kind {
    Sequential,
    FairShare {
        cursor: usize,
    },
    Priority {
        weights: Vec<u32>,
        credit: Vec<i64>,
    },
    Deadline {
        targets: Vec<u64>,
        ewma: Vec<u64>,
        credit: Vec<i64>,
    },
}

impl SchedulerState {
    /// Builds the state for `n` sources. `Priority` weights and `Deadline`
    /// targets must already be validated (length `n`, all ≥ 1) —
    /// [`crate::engine::Session::run`] does that before construction.
    pub(crate) fn new(schedule: &Schedule, n: usize) -> SchedulerState {
        let kind = match schedule {
            Schedule::Sequential => Kind::Sequential,
            Schedule::FairShare => Kind::FairShare { cursor: 0 },
            Schedule::Priority(weights) => {
                debug_assert_eq!(weights.len(), n, "weights validated by Session::run");
                debug_assert!(weights.iter().all(|&w| w >= 1));
                Kind::Priority {
                    weights: weights.clone(),
                    credit: vec![0; n],
                }
            }
            Schedule::Deadline(targets) => {
                debug_assert_eq!(targets.len(), n, "targets validated by Session::run");
                debug_assert!(targets.iter().all(|&t| t >= 1));
                Kind::Deadline {
                    targets: targets.clone(),
                    ewma: vec![0; n],
                    credit: vec![0; n],
                }
            }
        };
        SchedulerState {
            kind,
            active: vec![true; n],
            remaining: n,
        }
    }

    /// Registers a lane attached to a *running* session: it starts active,
    /// with a fresh SWRR credit of 0 (so it smoothly joins the rotation
    /// rather than bursting). `weight` applies under `Priority`, `target`
    /// under `Deadline`; the other policies ignore both.
    pub(crate) fn add_lane(&mut self, weight: u32, target: u64) {
        match &mut self.kind {
            Kind::Sequential | Kind::FairShare { .. } => {}
            Kind::Priority { weights, credit } => {
                weights.push(weight.max(1));
                credit.push(0);
            }
            Kind::Deadline {
                targets,
                ewma,
                credit,
            } => {
                targets.push(target.max(1));
                ewma.push(0);
                credit.push(0);
            }
        }
        self.active.push(true);
        self.remaining += 1;
    }

    /// Feeds one retired read's residency (chunk-work units from admission
    /// to retirement) back to the policy. Only [`Schedule::Deadline`] uses
    /// it — the EWMA (`new = (3·old + sample) / 4`, integer) tracks each
    /// lane's recent residency against its target. The engine calls this on
    /// the dispatcher for every retirement, so the feedback sequence is as
    /// deterministic as the execution that produced it.
    pub(crate) fn observe(&mut self, lane: usize, resident_units: u64) {
        if let Kind::Deadline { ewma, .. } = &mut self.kind {
            let e = &mut ewma[lane];
            let sample = resident_units.max(1);
            *e = if *e == 0 {
                sample
            } else {
                (3 * *e + sample) / 4
            };
        }
    }

    /// The source to pull from next, or `None` when all are exhausted.
    pub(crate) fn next(&mut self) -> Option<usize> {
        self.next_where(|_| true)
    }

    /// The lane to dispatch next, restricted to lanes for which `available`
    /// holds. `None` means no active lane is available right now — either
    /// everything is exhausted ([`SchedulerState::all_exhausted`]) or every
    /// active lane's work is momentarily blocked and the caller must wait.
    ///
    /// Availability never changes long-run proportions: an unavailable lane
    /// keeps its credit frozen (`Priority`) or its turn queued (`FairShare`)
    /// and resumes its share as soon as it is available again.
    pub(crate) fn next_where(&mut self, available: impl Fn(usize) -> bool) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let active = &self.active;
        let up = |i: usize| active[i] && available(i);
        let pick = match &mut self.kind {
            Kind::Sequential => (0..active.len()).find(|&i| up(i))?,
            Kind::FairShare { cursor } => {
                // First available source at or after the cursor, wrapping.
                let n = active.len();
                let offset = (0..n).find(|o| up((*cursor + o) % n))?;
                let pick = (*cursor + offset) % n;
                *cursor = (pick + 1) % n;
                pick
            }
            Kind::Priority { weights, credit } => {
                // Smooth weighted round-robin (the nginx algorithm): every
                // available source earns its weight in credit, the richest
                // source is picked and pays the total back. Deterministic,
                // proportional, and burst-free; ties break to the lowest
                // index.
                let mut total = 0i64;
                let mut best = None;
                for i in 0..active.len() {
                    if !up(i) {
                        continue;
                    }
                    credit[i] += i64::from(weights[i]);
                    total += i64::from(weights[i]);
                    match best {
                        Some(b) if credit[i] <= credit[b as usize] => {}
                        _ => best = Some(i as u32),
                    }
                }
                let pick = best? as usize;
                credit[pick] -= total;
                pick
            }
            Kind::Deadline {
                targets,
                ewma,
                credit,
            } => {
                // SWRR with dynamic weights: each available lane earns its
                // current urgency in credit, the richest lane is picked and
                // pays the total back. Identical mechanics to `Priority`,
                // except the weight is recomputed from the residency EWMA
                // every round, so lanes drifting past their target
                // automatically earn a larger share.
                let mut total = 0i64;
                let mut best = None;
                for i in 0..active.len() {
                    if !up(i) {
                        continue;
                    }
                    let urgency = deadline_urgency(ewma[i], targets[i]);
                    credit[i] += urgency;
                    total += urgency;
                    match best {
                        Some(b) if credit[i] <= credit[b as usize] => {}
                        _ => best = Some(i as u32),
                    }
                }
                let pick = best? as usize;
                credit[pick] -= total;
                pick
            }
        };
        Some(pick)
    }

    /// `true` once every lane has been reported [`SchedulerState::exhausted`].
    pub(crate) fn all_exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Marks a source as drained; it will never be proposed again.
    pub(crate) fn exhausted(&mut self, index: usize) {
        if std::mem::replace(&mut self.active[index], false) {
            self.remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn picks(schedule: &Schedule, n: usize, count: usize) -> Vec<usize> {
        let mut state = SchedulerState::new(schedule, n);
        (0..count).map(|_| state.next().expect("active")).collect()
    }

    #[test]
    fn sequential_sticks_to_the_first_active_source() {
        let mut s = SchedulerState::new(&Schedule::Sequential, 3);
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(0));
        s.exhausted(0);
        assert_eq!(s.next(), Some(1));
        s.exhausted(1);
        assert_eq!(s.next(), Some(2));
        s.exhausted(2);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn fair_share_round_robins_and_reflows_on_exhaustion() {
        assert_eq!(picks(&Schedule::FairShare, 3, 7), vec![0, 1, 2, 0, 1, 2, 0]);
        let mut s = SchedulerState::new(&Schedule::FairShare, 3);
        assert_eq!(s.next(), Some(0));
        s.exhausted(1);
        assert_eq!(s.next(), Some(2));
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(2));
        s.exhausted(0);
        s.exhausted(2);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn priority_is_proportional_and_smooth() {
        // The classic SWRR check: weights [2, 1] give the period A B A, not
        // the bursty A A B.
        assert_eq!(
            picks(&Schedule::Priority(vec![2, 1]), 2, 6),
            vec![0, 1, 0, 0, 1, 0]
        );
        // Proportions hold over any whole number of periods.
        let seq = picks(&Schedule::Priority(vec![5, 1]), 2, 60);
        assert_eq!(seq.iter().filter(|&&p| p == 0).count(), 50);
        assert_eq!(seq.iter().filter(|&&p| p == 1).count(), 10);
    }

    #[test]
    fn priority_never_starves_a_low_weight_source() {
        // A weight-1 source among heavy peers is picked at least once per
        // sum-of-weights pulls.
        let weights = vec![7, 1, 9];
        let period: usize = weights.iter().map(|&w| w as usize).sum();
        let seq = picks(&Schedule::Priority(weights), 3, 3 * period);
        for window in seq.chunks(period) {
            assert!(
                window.contains(&1),
                "weight-1 source starved in window {window:?}"
            );
        }
    }

    #[test]
    fn priority_redistributes_shares_of_exhausted_sources() {
        let mut s = SchedulerState::new(&Schedule::Priority(vec![3, 1]), 2);
        s.exhausted(0);
        // Only source 1 remains; it gets every pull.
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.next(), Some(1));
        s.exhausted(1);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn availability_filters_without_burning_credit() {
        // Lane 1 is unavailable for a while; its SWRR credit freezes and it
        // resumes its full share once available again — the weight-1 lane is
        // never permanently disadvantaged by a blocked stretch.
        let mut s = SchedulerState::new(&Schedule::Priority(vec![2, 1]), 2);
        assert_eq!(s.next_where(|i| i == 0), Some(0));
        assert_eq!(s.next_where(|i| i == 0), Some(0));
        // Unblocked: the normal A B A period resumes from lane 1's frozen
        // credit (0), so the smooth pattern continues.
        assert_eq!(s.next_where(|_| true), Some(0));
        assert_eq!(s.next_where(|_| true), Some(1));
        assert_eq!(s.next_where(|_| true), Some(0));
        // Nothing available: the caller is told to wait, state untouched.
        assert_eq!(s.next_where(|_| false), None);
        assert!(!s.all_exhausted());
        // FairShare skips unavailable lanes but keeps the cursor moving.
        let mut f = SchedulerState::new(&Schedule::FairShare, 3);
        assert_eq!(f.next_where(|i| i != 0), Some(1));
        assert_eq!(f.next_where(|_| true), Some(2));
        assert_eq!(f.next_where(|_| true), Some(0));
    }

    #[test]
    fn schedule_parses_the_cli_spellings() {
        assert_eq!(Schedule::parse("sequential"), Some(Schedule::Sequential));
        assert_eq!(Schedule::parse("seq"), Some(Schedule::Sequential));
        assert_eq!(Schedule::parse(" FAIR "), Some(Schedule::FairShare));
        assert_eq!(Schedule::parse("fair-share"), Some(Schedule::FairShare));
        assert_eq!(
            Schedule::parse("priority"),
            Some(Schedule::Priority(Vec::new()))
        );
        assert_eq!(
            Schedule::parse("deadline"),
            Some(Schedule::Deadline(Vec::new()))
        );
        assert_eq!(Schedule::parse("bogus"), None);
    }

    #[test]
    fn deadline_without_feedback_is_fair() {
        // Before any read retires every lane's urgency is the neutral
        // weight, so the policy degenerates to plain round-robin — pinned.
        assert_eq!(
            picks(&Schedule::Deadline(vec![100, 100, 100]), 3, 6),
            vec![0, 1, 2, 0, 1, 2]
        );
        // Unequal *targets* alone change nothing: urgency is residency
        // relative to target, and nobody has residency yet.
        assert_eq!(
            picks(&Schedule::Deadline(vec![10, 1_000]), 2, 4),
            vec![0, 1, 0, 1]
        );
    }

    #[test]
    fn deadline_boosts_a_lane_past_its_target() {
        // Lane 1's reads are observed resident at 4× its target while lane 0
        // sits exactly at its target: lane 1's urgency becomes 32 against
        // lane 0's 8, so SWRR gives lane 1 four pulls to every one of lane
        // 0's — the exact sequence is pinned, as determinism demands.
        let mut s = SchedulerState::new(&Schedule::Deadline(vec![100, 100]), 2);
        s.observe(0, 100);
        s.observe(1, 400);
        let seq: Vec<usize> = (0..10).map(|_| s.next().expect("active")).collect();
        assert_eq!(seq, vec![1, 1, 0, 1, 1, 1, 1, 0, 1, 1]);
        assert_eq!(seq.iter().filter(|&&p| p == 1).count(), 8);
    }

    #[test]
    fn deadline_feedback_sequence_is_deterministic() {
        // Same construction, same observe() calls, same availability — the
        // pick sequence must be bit-for-bit reproducible.
        let run = || {
            let mut s = SchedulerState::new(&Schedule::Deadline(vec![50, 200, 100]), 3);
            let mut seq = Vec::new();
            for round in 0..30u64 {
                if round == 5 {
                    s.observe(0, 500);
                }
                if round == 10 {
                    s.observe(1, 100);
                    s.observe(2, 900);
                }
                if round == 20 {
                    s.observe(0, 40);
                }
                seq.push(s.next_where(|l| l != 1 || round % 2 == 0).expect("active"));
            }
            seq
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deadline_ewma_recovers_and_urgency_follows() {
        // A burst of slow reads raises the EWMA; a stretch of fast reads
        // brings it (and the lane's share) back down — no permanent penalty.
        let mut s = SchedulerState::new(&Schedule::Deadline(vec![100, 100]), 2);
        s.observe(0, 1_600);
        // 16× target, clamped pressure: lane 0 dominates.
        let burst: Vec<usize> = (0..9).map(|_| s.next().expect("active")).collect();
        assert!(burst.iter().filter(|&&p| p == 0).count() >= 7, "{burst:?}");
        // Fast reads decay the EWMA geometrically (3/4 per sample); lane 0's
        // urgency falls from the cap (128) to 4 against lane 1's neutral 8.
        for _ in 0..12 {
            s.observe(0, 10);
        }
        // Lane 0 first drains the credit it banked during the burst (eight
        // picks), then the steady state settles into the 4:8 pattern.
        let calm: Vec<usize> = (0..20).map(|_| s.next().expect("active")).collect();
        assert_eq!(&calm[..8], &[0; 8]);
        assert_eq!(&calm[8..], &[1, 0, 1, 1, 0, 1, 1, 0, 1, 1, 0, 1]);
    }

    #[test]
    fn deadline_never_starves_within_the_cap() {
        // Lane 0 pinned at the urgency cap (128) against a neutral lane (8):
        // the neutral lane must still be picked at least once per
        // sum-of-weights window.
        let mut s = SchedulerState::new(&Schedule::Deadline(vec![1, 100]), 2);
        s.observe(0, u64::MAX / 2); // astronomically past target → clamped
        let window = (128 + 8) as usize;
        let seq: Vec<usize> = (0..2 * window).map(|_| s.next().expect("active")).collect();
        for chunk in seq.chunks(window) {
            assert!(chunk.contains(&1), "neutral lane starved in {chunk:?}");
        }
    }

    #[test]
    fn lanes_can_be_added_to_a_running_scheduler() {
        // FairShare: a lane added mid-rotation joins the wheel.
        let mut f = SchedulerState::new(&Schedule::FairShare, 2);
        assert_eq!(f.next(), Some(0));
        f.add_lane(1, 1);
        assert_eq!(f.next(), Some(1));
        assert_eq!(f.next(), Some(2));
        assert_eq!(f.next(), Some(0));
        // Priority: the new lane starts at credit 0 and earns its weighted
        // share smoothly — pinned sequence.
        let mut p = SchedulerState::new(&Schedule::Priority(vec![1]), 1);
        assert_eq!(p.next(), Some(0));
        p.add_lane(2, 1);
        let seq: Vec<usize> = (0..6).map(|_| p.next().expect("active")).collect();
        assert_eq!(seq, vec![1, 0, 1, 1, 0, 1]);
        // Deadline: the new lane starts neutral (credit ties break to the
        // lowest index, so the incumbent goes first) and picks up feedback.
        let mut d = SchedulerState::new(&Schedule::Deadline(vec![100]), 1);
        assert_eq!(d.next(), Some(0));
        d.add_lane(1, 100);
        assert_eq!(d.next(), Some(0));
        assert_eq!(d.next(), Some(1));
        d.observe(1, 400);
        let seq: Vec<usize> = (0..5).map(|_| d.next().expect("active")).collect();
        assert_eq!(seq.iter().filter(|&&p| p == 1).count(), 4, "{seq:?}");
        // Exhausting an added lane retires it like any other.
        d.exhausted(1);
        assert_eq!(d.next(), Some(0));
        d.exhausted(0);
        assert_eq!(d.next(), None);
        assert!(d.all_exhausted());
    }
}
