//! Source-interleaving policies for multi-source [`Session`]s.
//!
//! A [`crate::engine::Session`] registers N read sources but owns exactly
//! one worker pool. The [`Schedule`] decides, pull by pull, which source the
//! feeder draws the next read from; the scheduler therefore controls
//! *interleaving and latency*, never *results* — per-read computation is
//! independent and per-source emission order is always source order, so
//! every policy produces bit-identical per-source output (asserted by
//! `tests/session.rs`).
//!
//! All policies are deterministic: the same sources and the same policy
//! yield the same pull sequence on every run.
//!
//! [`Session`]: crate::engine::Session

/// How a [`crate::engine::Session`] interleaves its registered sources over
/// the shared worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Schedule {
    /// Drain sources one at a time, in registration order — source 1 pulls
    /// nothing until source 0 is exhausted. The single-source behaviour of
    /// the legacy `run_*` drivers, generalized.
    Sequential,
    /// Round-robin over the non-exhausted sources: every source gets one
    /// pull per cycle, so N equally long sources finish together.
    FairShare,
    /// Smooth weighted round-robin: over any window of `sum(weights)`
    /// pulls, source `i` receives `weights[i]` of them, spread as evenly as
    /// the weights allow (never bursted). Weights align with source
    /// **registration order** and must all be ≥ 1 — a zero weight would
    /// starve its source forever, so [`crate::engine::Session::run`] rejects
    /// it up front. Exhausted sources drop out and their share is
    /// redistributed.
    Priority(Vec<u32>),
}

impl Schedule {
    /// Parses a CLI spelling: `"sequential"`/`"seq"`, `"fair"`/
    /// `"fairshare"`/`"fair-share"`, or `"priority"` (which takes its
    /// weights from per-source specs, so it parses to `Priority(vec![])` —
    /// callers fill the weights in). `None` for anything else.
    pub fn parse(s: &str) -> Option<Schedule> {
        match s.trim().to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Some(Schedule::Sequential),
            "fair" | "fairshare" | "fair-share" => Some(Schedule::FairShare),
            "priority" => Some(Schedule::Priority(Vec::new())),
            _ => None,
        }
    }
}

/// The mutable pick-next state behind a [`Schedule`], owned by the engine's
/// dispatcher.
///
/// Since the chunk-granular refactor the scheduler is consulted once per
/// **chunk task**, not once per read: `next_where` proposes the lane
/// (source) whose chain should run its next chunk, restricted to lanes that
/// currently have dispatchable work (a parked chain ready to advance, or
/// room to admit a new read). When a lane is permanently done the engine
/// reports it via `exhausted` and it is never proposed again.
pub(crate) struct SchedulerState {
    kind: Kind,
    active: Vec<bool>,
    remaining: usize,
}

enum Kind {
    Sequential,
    FairShare { cursor: usize },
    Priority { weights: Vec<u32>, credit: Vec<i64> },
}

impl SchedulerState {
    /// Builds the state for `n` sources. `Priority` weights must already be
    /// validated (length `n`, all ≥ 1) — [`crate::engine::Session::run`]
    /// does that before construction.
    pub(crate) fn new(schedule: &Schedule, n: usize) -> SchedulerState {
        let kind = match schedule {
            Schedule::Sequential => Kind::Sequential,
            Schedule::FairShare => Kind::FairShare { cursor: 0 },
            Schedule::Priority(weights) => {
                debug_assert_eq!(weights.len(), n, "weights validated by Session::run");
                debug_assert!(weights.iter().all(|&w| w >= 1));
                Kind::Priority {
                    weights: weights.clone(),
                    credit: vec![0; n],
                }
            }
        };
        SchedulerState {
            kind,
            active: vec![true; n],
            remaining: n,
        }
    }

    /// The source to pull from next, or `None` when all are exhausted.
    pub(crate) fn next(&mut self) -> Option<usize> {
        self.next_where(|_| true)
    }

    /// The lane to dispatch next, restricted to lanes for which `available`
    /// holds. `None` means no active lane is available right now — either
    /// everything is exhausted ([`SchedulerState::all_exhausted`]) or every
    /// active lane's work is momentarily blocked and the caller must wait.
    ///
    /// Availability never changes long-run proportions: an unavailable lane
    /// keeps its credit frozen (`Priority`) or its turn queued (`FairShare`)
    /// and resumes its share as soon as it is available again.
    pub(crate) fn next_where(&mut self, available: impl Fn(usize) -> bool) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let active = &self.active;
        let up = |i: usize| active[i] && available(i);
        let pick = match &mut self.kind {
            Kind::Sequential => (0..active.len()).find(|&i| up(i))?,
            Kind::FairShare { cursor } => {
                // First available source at or after the cursor, wrapping.
                let n = active.len();
                let offset = (0..n).find(|o| up((*cursor + o) % n))?;
                let pick = (*cursor + offset) % n;
                *cursor = (pick + 1) % n;
                pick
            }
            Kind::Priority { weights, credit } => {
                // Smooth weighted round-robin (the nginx algorithm): every
                // available source earns its weight in credit, the richest
                // source is picked and pays the total back. Deterministic,
                // proportional, and burst-free; ties break to the lowest
                // index.
                let mut total = 0i64;
                let mut best = None;
                for i in 0..active.len() {
                    if !up(i) {
                        continue;
                    }
                    credit[i] += i64::from(weights[i]);
                    total += i64::from(weights[i]);
                    match best {
                        Some(b) if credit[i] <= credit[b as usize] => {}
                        _ => best = Some(i as u32),
                    }
                }
                let pick = best? as usize;
                credit[pick] -= total;
                pick
            }
        };
        Some(pick)
    }

    /// `true` once every lane has been reported [`SchedulerState::exhausted`].
    pub(crate) fn all_exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Marks a source as drained; it will never be proposed again.
    pub(crate) fn exhausted(&mut self, index: usize) {
        if std::mem::replace(&mut self.active[index], false) {
            self.remaining -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn picks(schedule: &Schedule, n: usize, count: usize) -> Vec<usize> {
        let mut state = SchedulerState::new(schedule, n);
        (0..count).map(|_| state.next().expect("active")).collect()
    }

    #[test]
    fn sequential_sticks_to_the_first_active_source() {
        let mut s = SchedulerState::new(&Schedule::Sequential, 3);
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(0));
        s.exhausted(0);
        assert_eq!(s.next(), Some(1));
        s.exhausted(1);
        assert_eq!(s.next(), Some(2));
        s.exhausted(2);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn fair_share_round_robins_and_reflows_on_exhaustion() {
        assert_eq!(picks(&Schedule::FairShare, 3, 7), vec![0, 1, 2, 0, 1, 2, 0]);
        let mut s = SchedulerState::new(&Schedule::FairShare, 3);
        assert_eq!(s.next(), Some(0));
        s.exhausted(1);
        assert_eq!(s.next(), Some(2));
        assert_eq!(s.next(), Some(0));
        assert_eq!(s.next(), Some(2));
        s.exhausted(0);
        s.exhausted(2);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn priority_is_proportional_and_smooth() {
        // The classic SWRR check: weights [2, 1] give the period A B A, not
        // the bursty A A B.
        assert_eq!(
            picks(&Schedule::Priority(vec![2, 1]), 2, 6),
            vec![0, 1, 0, 0, 1, 0]
        );
        // Proportions hold over any whole number of periods.
        let seq = picks(&Schedule::Priority(vec![5, 1]), 2, 60);
        assert_eq!(seq.iter().filter(|&&p| p == 0).count(), 50);
        assert_eq!(seq.iter().filter(|&&p| p == 1).count(), 10);
    }

    #[test]
    fn priority_never_starves_a_low_weight_source() {
        // A weight-1 source among heavy peers is picked at least once per
        // sum-of-weights pulls.
        let weights = vec![7, 1, 9];
        let period: usize = weights.iter().map(|&w| w as usize).sum();
        let seq = picks(&Schedule::Priority(weights), 3, 3 * period);
        for window in seq.chunks(period) {
            assert!(
                window.contains(&1),
                "weight-1 source starved in window {window:?}"
            );
        }
    }

    #[test]
    fn priority_redistributes_shares_of_exhausted_sources() {
        let mut s = SchedulerState::new(&Schedule::Priority(vec![3, 1]), 2);
        s.exhausted(0);
        // Only source 1 remains; it gets every pull.
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.next(), Some(1));
        s.exhausted(1);
        assert_eq!(s.next(), None);
    }

    #[test]
    fn availability_filters_without_burning_credit() {
        // Lane 1 is unavailable for a while; its SWRR credit freezes and it
        // resumes its full share once available again — the weight-1 lane is
        // never permanently disadvantaged by a blocked stretch.
        let mut s = SchedulerState::new(&Schedule::Priority(vec![2, 1]), 2);
        assert_eq!(s.next_where(|i| i == 0), Some(0));
        assert_eq!(s.next_where(|i| i == 0), Some(0));
        // Unblocked: the normal A B A period resumes from lane 1's frozen
        // credit (0), so the smooth pattern continues.
        assert_eq!(s.next_where(|_| true), Some(0));
        assert_eq!(s.next_where(|_| true), Some(1));
        assert_eq!(s.next_where(|_| true), Some(0));
        // Nothing available: the caller is told to wait, state untouched.
        assert_eq!(s.next_where(|_| false), None);
        assert!(!s.all_exhausted());
        // FairShare skips unavailable lanes but keeps the cursor moving.
        let mut f = SchedulerState::new(&Schedule::FairShare, 3);
        assert_eq!(f.next_where(|i| i != 0), Some(1));
        assert_eq!(f.next_where(|_| true), Some(2));
        assert_eq!(f.next_where(|_| true), Some(0));
    }

    #[test]
    fn schedule_parses_the_cli_spellings() {
        assert_eq!(Schedule::parse("sequential"), Some(Schedule::Sequential));
        assert_eq!(Schedule::parse("seq"), Some(Schedule::Sequential));
        assert_eq!(Schedule::parse(" FAIR "), Some(Schedule::FairShare));
        assert_eq!(Schedule::parse("fair-share"), Some(Schedule::FairShare));
        assert_eq!(
            Schedule::parse("priority"),
            Some(Schedule::Priority(Vec::new()))
        );
        assert_eq!(Schedule::parse("bogus"), None);
    }
}
