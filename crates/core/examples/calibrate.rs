//! Calibration diagnostic: prints workload totals, phase times, and the
//! headline system ratios on a small dataset. Used while tuning the cost
//! models; kept as a fast way to sanity-check changes.

use genpip_core::config::GenPipConfig;
use genpip_core::pipeline::{ErMode, PipelineRun};
use genpip_core::stream::StreamEvent;
use genpip_core::systems::costs::SoftwareCosts;
use genpip_core::systems::hardware::{evaluate_genpip, evaluate_pim_baseline};
use genpip_core::systems::potential::potential_study;
use genpip_core::systems::software::{evaluate_software, BasecallDevice, SoftwarePhases};
use genpip_core::{Flow, Session};
use genpip_datasets::{DatasetProfile, SimulatedDataset};
use genpip_pim::PimTech;
use std::sync::Arc;

/// One batch run through the `Session` engine, packaged as the
/// [`PipelineRun`] the cost models consume.
fn run_flow(d: &SimulatedDataset, config: &GenPipConfig, flow: Flow) -> PipelineRun {
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(flow)
        .source("calibrate", d.stream())
        .sink("calibrate", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("valid session");
    PipelineRun {
        config: Arc::new(config.clone()),
        er: match flow {
            Flow::GenPip(er) => er,
            Flow::Conventional => ErMode::None,
        },
        chunked: matches!(flow, Flow::GenPip(_)),
        reads,
    }
}

fn main() {
    let d = DatasetProfile::ecoli().scaled(0.08).generate();
    let config = GenPipConfig::for_dataset(&d.profile);
    let conv = run_flow(&d, &config, Flow::Conventional);
    let cp = run_flow(&d, &config, Flow::GenPip(ErMode::None));
    let qsr = run_flow(&d, &config, Flow::GenPip(ErMode::QsrOnly));
    let full = run_flow(&d, &config, Flow::GenPip(ErMode::Full));
    let costs = SoftwareCosts::calibrated();
    let tech = PimTech::paper_32nm();

    let t = conv.totals();
    println!("conventional totals: {t:#?}");
    println!("cp totals: {:#?}", cp.totals());
    println!("full totals: {:#?}", full.totals());

    let p = SoftwarePhases::from_workload(&t, &costs, BasecallDevice::Cpu);
    println!(
        "\nCPU phases: raw={} bc={} called={} qc={} map={}",
        p.t_raw_transfer, p.t_basecall, p.t_called_transfer, p.t_qc, p.t_map
    );

    let pim = evaluate_pim_baseline(&conv, &costs, &tech, false);
    println!(
        "\nPIM time = {}  energy = {:.3} J",
        pim.time,
        pim.energy.total()
    );
    println!("{}", pim.energy);
    let g_cp = evaluate_genpip(&cp, &costs, &tech);
    println!(
        "\nGenPIP-CP time = {} energy = {:.3}",
        g_cp.time,
        g_cp.energy.total()
    );
    for (s, u) in &g_cp.stage_utilization {
        println!("  {s}: {u:.4}");
    }
    println!("{}", g_cp.energy);
    let g_qsr = evaluate_genpip(&qsr, &costs, &tech);
    let g_full = evaluate_genpip(&full, &costs, &tech);
    println!(
        "\nGenPIP-QSR time = {}  GenPIP time = {} energy {:.3}",
        g_qsr.time,
        g_full.time,
        g_full.energy.total()
    );
    println!("{}", g_full.energy);

    let cpu = evaluate_software(&conv, &costs, BasecallDevice::Cpu, false);
    let gpu = evaluate_software(&conv, &costs, BasecallDevice::Gpu, false);
    println!(
        "\nCPU time {} energy {:.1}  GPU time {} energy {:.1}",
        cpu.time,
        cpu.energy.total(),
        gpu.time,
        gpu.energy.total()
    );
    println!(
        "\nspeedups vs CPU: PIM {:.2} GenPIP-CP {:.2} GenPIP-QSR {:.2} GenPIP {:.2} GPU {:.2}",
        cpu.time.as_secs() / pim.time.as_secs(),
        cpu.time.as_secs() / g_cp.time.as_secs(),
        cpu.time.as_secs() / g_qsr.time.as_secs(),
        cpu.time.as_secs() / g_full.time.as_secs(),
        cpu.time.as_secs() / gpu.time.as_secs()
    );
    println!(
        "energy red vs CPU: PIM {:.2} GenPIP {:.2} GPU {:.2}",
        cpu.energy.total() / pim.energy.total(),
        cpu.energy.total() / g_full.energy.total(),
        cpu.energy.total() / gpu.energy.total()
    );

    println!("\nFig4:");
    for row in potential_study(&conv, &costs, &tech) {
        println!(
            "  {} {:>10} {:.2}x  {}",
            row.system,
            row.time.to_string(),
            row.speedup_vs_a,
            row.description
        );
    }
}
