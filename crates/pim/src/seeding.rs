//! Loading the sharded reference index into the seeding unit's CAM arrays.
//!
//! The paper's Figure 9 seeding unit stores minimizer hashes in ReRAM CAM
//! subarrays and their reference-location lists in adjacent ReRAM RAM. With
//! the reference index partitioned into position-range shards
//! ([`ShardedReferenceIndex`]), each shard maps onto its own **CAM subarray
//! group**: a query minimizer is broadcast to every group in parallel —
//! exactly the fan-out the functional seeding path performs in software.
//!
//! Two invariants keep the hardware image honest:
//!
//! * only **globally unmasked** entries are programmed
//!   ([`ShardedReferenceIndex::shard_iter_unmasked`]): a repetitive
//!   minimizer the functional model refuses to query must not occupy CAM
//!   rows or RAM words, or the cost models would charge for storage no
//!   lookup can reach;
//! * keys are programmed in sorted order, so the CAM image (row assignment
//!   included) is deterministic run to run despite hash-map iteration.

use crate::arrays::CamBank;
use genpip_mapping::{RefPos, ReferenceSet, ShardedReferenceIndex};
use std::ops::Range;
use std::sync::Arc;

/// One shard's CAM subarray group: the programmed bank plus its load
/// statistics for the hardware report.
#[derive(Debug, Clone)]
pub struct ShardGroup {
    /// Shard number (index into [`ShardedReferenceIndex::spans`]).
    pub shard: usize,
    /// The reference position range this group serves (global [`RefPos`]
    /// coordinates — the index's base offset included, so spans past the
    /// 4 Gbp `u32` horizon program correctly).
    pub span: Range<RefPos>,
    /// Distinct minimizer hashes programmed (CAM rows in use).
    pub keys: usize,
    /// Reference-location entries stored in the group's RAM arrays.
    pub entries: usize,
    /// The programmed CAM bank.
    pub bank: CamBank,
}

/// The whole seeding unit's CAM image: one [`ShardGroup`] per index shard.
#[derive(Debug, Clone)]
pub struct SeedingUnitMap {
    rows_per_array: usize,
    groups: Vec<ShardGroup>,
    masked_keys: usize,
    masked_entries: usize,
}

impl SeedingUnitMap {
    /// CAM rows per subarray in the paper's Figure 9 organization
    /// (832×128-bit arrays).
    pub const PAPER_ROWS_PER_ARRAY: usize = 832;

    /// Programs `index` into per-shard CAM groups, `rows_per_array` keys per
    /// CAM subarray.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_array` is 0.
    pub fn load(index: &ShardedReferenceIndex, rows_per_array: usize) -> SeedingUnitMap {
        let groups = (0..index.shard_count())
            .map(|s| {
                let mut keys: Vec<u64> = Vec::new();
                let mut entries = 0usize;
                for (hash, hits) in index.shard_iter_unmasked(s) {
                    keys.push(*hash);
                    entries += hits.len();
                }
                keys.sort_unstable();
                let bank = CamBank::build(keys.iter().copied(), rows_per_array);
                ShardGroup {
                    shard: s,
                    span: index.spans()[s].clone(),
                    keys: keys.len(),
                    entries,
                    bank,
                }
            })
            .collect();
        SeedingUnitMap {
            rows_per_array,
            groups,
            masked_keys: index.masked_keys(),
            masked_entries: index.masked_entries(),
        }
    }

    /// CAM rows per subarray this image was built for.
    pub fn rows_per_array(&self) -> usize {
        self.rows_per_array
    }

    /// The per-shard CAM groups, in shard order.
    pub fn groups(&self) -> &[ShardGroup] {
        &self.groups
    }

    /// Total CAM rows in use across all groups.
    pub fn total_keys(&self) -> usize {
        self.groups.iter().map(|g| g.keys).sum()
    }

    /// Total RAM location entries across all groups.
    pub fn total_entries(&self) -> usize {
        self.groups.iter().map(|g| g.entries).sum()
    }

    /// Total CAM subarrays allocated across all groups.
    pub fn total_cam_arrays(&self) -> usize {
        self.groups.iter().map(|g| g.bank.array_count()).sum()
    }

    /// Keys the repetitive-minimizer mask kept out of the CAM image.
    pub fn masked_keys(&self) -> usize {
        self.masked_keys
    }

    /// Location entries the mask kept out of the RAM image.
    pub fn masked_entries(&self) -> usize {
        self.masked_entries
    }

    /// A per-shard load table for the hardware report.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "shard  span                    keys     entries  CAM arrays ({} rows each)",
            self.rows_per_array
        );
        for g in &self.groups {
            let _ = writeln!(
                out,
                "{:>5}  [{:>9}..{:>9})  {:>7}  {:>8}  {:>4}",
                g.shard,
                g.span.start,
                g.span.end,
                g.keys,
                g.entries,
                g.bank.array_count()
            );
        }
        let _ = writeln!(
            out,
            "total  {:>23}  {:>7}  {:>8}  {:>4}   (masked: {} keys / {} entries never programmed)",
            "",
            self.total_keys(),
            self.total_entries(),
            self.total_cam_arrays(),
            self.masked_keys,
            self.masked_entries
        );
        out
    }
}

/// The CAM image of a whole pan-genome [`ReferenceSet`]: one
/// [`SeedingUnitMap`] per reference.
///
/// Each reference keeps its own sharded index, so each gets its own family
/// of CAM subarray groups; a query minimizer broadcast fans out across
/// *every* reference's groups in parallel, exactly mirroring the functional
/// model's seed-once-per-reference fan-out in
/// [`ReferenceSet::sketch_and_seed_into`].
#[derive(Debug, Clone)]
pub struct ReferenceSeedingImage {
    references: Vec<(Arc<str>, SeedingUnitMap)>,
}

impl ReferenceSeedingImage {
    /// Programs every reference of `set` into its own CAM image,
    /// `rows_per_array` keys per CAM subarray.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_array` is 0.
    pub fn load(set: &ReferenceSet, rows_per_array: usize) -> ReferenceSeedingImage {
        ReferenceSeedingImage {
            references: set
                .names()
                .iter()
                .zip(set.mappers())
                .map(|(name, mapper)| {
                    (
                        Arc::clone(name),
                        SeedingUnitMap::load(mapper.index(), rows_per_array),
                    )
                })
                .collect(),
        }
    }

    /// The per-reference images, in set order.
    pub fn references(&self) -> &[(Arc<str>, SeedingUnitMap)] {
        &self.references
    }

    /// One reference's image, by name.
    pub fn get(&self, name: &str) -> Option<&SeedingUnitMap> {
        self.references
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, map)| map)
    }

    /// Total CAM rows in use across every reference.
    pub fn total_keys(&self) -> usize {
        self.references.iter().map(|(_, m)| m.total_keys()).sum()
    }

    /// Total RAM location entries across every reference.
    pub fn total_entries(&self) -> usize {
        self.references.iter().map(|(_, m)| m.total_entries()).sum()
    }

    /// Total CAM subarrays allocated across every reference.
    pub fn total_cam_arrays(&self) -> usize {
        self.references
            .iter()
            .map(|(_, m)| m.total_cam_arrays())
            .sum()
    }

    /// The per-reference load tables, concatenated with headers.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, map) in &self.references {
            let _ = writeln!(out, "reference {name}");
            out.push_str(&map.report());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::{DnaSeq, Genome, GenomeBuilder};
    use genpip_mapping::Shards;

    fn repeat_heavy_genome() -> Genome {
        let unit = GenomeBuilder::new(400)
            .seed(50)
            .repeat_fraction(0.0)
            .build();
        let mut seq = DnaSeq::new();
        for _ in 0..40 {
            seq.extend_from_seq(unit.sequence());
        }
        seq.extend_from_seq(
            GenomeBuilder::new(12_000)
                .seed(51)
                .repeat_fraction(0.0)
                .build()
                .sequence(),
        );
        Genome::from_seq("repeats+unique", seq)
    }

    #[test]
    fn cam_image_counts_match_the_unmasked_index() {
        let g = repeat_heavy_genome();
        let index =
            ShardedReferenceIndex::build_with_max_occurrences(&g, 15, 10, Shards::Fixed(4), 16);
        assert!(index.masked_entries() > 0, "genome must mask something");
        let map = SeedingUnitMap::load(&index, 128);
        // The regression the loader exists for: RAM entry counts equal the
        // index total *minus* the globally-masked entries, never the raw
        // table size. (Entries are exact: every hit lives in exactly one
        // shard.)
        assert_eq!(
            map.total_entries(),
            index.total_entries() - index.masked_entries()
        );
        // CAM keys are exact *per shard*; summed across shards they may
        // exceed the global distinct count, because an unmasked hash whose
        // hits straddle a shard boundary is programmed into every group
        // that owns one of its hits.
        for (s, group) in map.groups().iter().enumerate() {
            assert_eq!(group.keys, index.shard_iter_unmasked(s).count());
        }
        assert!(map.total_keys() >= index.distinct_minimizers() - index.masked_keys());
        assert_eq!(map.masked_keys(), index.masked_keys());
        assert_eq!(map.masked_entries(), index.masked_entries());
    }

    #[test]
    fn one_group_per_shard_with_matching_spans() {
        let g = GenomeBuilder::new(20_000).seed(52).build();
        let index = ShardedReferenceIndex::build(&g, 15, 10, Shards::Fixed(5));
        let map = SeedingUnitMap::load(&index, SeedingUnitMap::PAPER_ROWS_PER_ARRAY);
        assert_eq!(map.groups().len(), 5);
        for (g, span) in map.groups().iter().zip(index.spans()) {
            assert_eq!(&g.span, span);
            assert_eq!(g.bank.key_count(), g.keys);
            assert!(g.bank.array_count() <= g.keys.div_ceil(map.rows_per_array()) + 1);
        }
    }

    #[test]
    fn programmed_banks_answer_unmasked_keys_and_reject_masked_ones() {
        let g = repeat_heavy_genome();
        let index =
            ShardedReferenceIndex::build_with_max_occurrences(&g, 15, 10, Shards::Fixed(3), 16);
        let map = SeedingUnitMap::load(&index, 128);
        let mut groups: Vec<ShardGroup> = map.groups().to_vec();
        let mut checked_hit = false;
        let mut checked_miss = false;
        for s in 0..index.shard_count() {
            for (hash, _) in index.shard(s).iter() {
                let found = groups[s].bank.search(*hash).is_some();
                if index.is_masked(*hash) {
                    assert!(!found, "masked key {hash:#x} programmed into shard {s}");
                    checked_miss = true;
                } else {
                    assert!(found, "unmasked key {hash:#x} missing from shard {s}");
                    checked_hit = true;
                }
            }
        }
        assert!(checked_hit && checked_miss);
    }

    #[test]
    fn reference_set_image_programs_each_reference_into_its_own_groups() {
        use genpip_mapping::{MapperParams, ReferenceSet};
        let a = GenomeBuilder::new(18_000).seed(54).name("panel_a").build();
        let b = GenomeBuilder::new(12_000).seed(55).name("panel_b").build();
        let params = MapperParams {
            shards: Shards::Fixed(3),
            ..MapperParams::default()
        };
        let set = ReferenceSet::build(&[a, b], params);
        let image = ReferenceSeedingImage::load(&set, 128);
        assert_eq!(image.references().len(), 2);
        // Each reference's image is exactly what loading its index alone
        // produces.
        for name in ["panel_a", "panel_b"] {
            let solo = SeedingUnitMap::load(set.get(name).unwrap().index(), 128);
            let in_set = image.get(name).expect("reference present");
            assert_eq!(in_set.total_keys(), solo.total_keys());
            assert_eq!(in_set.total_entries(), solo.total_entries());
            assert_eq!(in_set.groups().len(), 3, "{name}");
        }
        let (a_map, b_map) = (image.get("panel_a").unwrap(), image.get("panel_b").unwrap());
        assert_eq!(
            image.total_entries(),
            a_map.total_entries() + b_map.total_entries()
        );
        assert_eq!(image.total_keys(), a_map.total_keys() + b_map.total_keys());
        assert_eq!(
            image.total_cam_arrays(),
            a_map.total_cam_arrays() + b_map.total_cam_arrays()
        );
        assert!(image.get("panel_c").is_none());
        let report = image.report();
        assert!(report.contains("reference panel_a"));
        assert!(report.contains("reference panel_b"));
    }

    #[test]
    fn report_lists_every_shard() {
        let g = GenomeBuilder::new(15_000).seed(53).build();
        let index = ShardedReferenceIndex::build(&g, 15, 10, Shards::Fixed(3));
        let map = SeedingUnitMap::load(&index, 128);
        let report = map.report();
        assert_eq!(report.lines().count(), 1 + 3 + 1, "header + shards + total");
        assert!(report.contains("masked:"));
    }
}
