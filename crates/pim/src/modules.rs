//! GenPIP hardware modules as cost models.
//!
//! Each module converts the *measured* workload counters produced by the
//! functional pipeline (samples basecalled, CAM lookups, anchors chained,
//! alignment cells) into service times and energies, using the device
//! constants of [`crate::PimTech`]. The system simulator in `genpip-core`
//! schedules chunks across these modules with `genpip-sim`'s pipeline
//! scheduler.

use crate::params::PimTech;
use genpip_sim::SimTime;

/// The Helix-like PIM basecalling module (paper Figure 8 ➊): 168 crossbar
/// tiles forming one deep inference pipeline. Once the pipeline is full it
/// retires one signal sample per crossbar cycle; a chunk additionally pays
/// the pipeline-fill latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasecallModule {
    tech: PimTech,
}

impl BasecallModule {
    /// Creates the module from technology constants.
    pub fn new(tech: PimTech) -> BasecallModule {
        BasecallModule { tech }
    }

    /// Number of tiles composing the pipeline.
    pub fn tiles(&self) -> usize {
        self.tech.basecall_tiles
    }

    /// Number of independent chunk streams the module serves (one deep
    /// pipeline ⇒ one stream; scheduling treats the module as one server).
    pub fn streams(&self) -> usize {
        1
    }

    /// Service time to basecall a chunk of `samples` raw samples: one
    /// sample per initiation interval plus the pipeline-fill latency.
    pub fn chunk_service(&self, samples: usize) -> SimTime {
        if samples == 0 {
            return SimTime::ZERO;
        }
        let cycles =
            samples * self.tech.bc_initiation_interval_cycles + self.tech.bc_pipeline_depth_cycles;
        self.tech.t_mvm_cycle * cycles as u64
    }

    /// Energy to basecall a chunk: the busy module streams one sample per
    /// cycle at its Table 2 power.
    pub fn chunk_energy(&self, mvm_ops: usize) -> f64 {
        mvm_ops as f64 * self.tech.e_bc_per_sample
    }
}

/// The PIM-CQS unit (paper Figure 8 ➋): sums a chunk's per-base quality
/// scores with one all-ones MVM on a 16×1024 SOT-MRAM array
/// (Section 4.3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CqsModule {
    tech: PimTech,
}

impl CqsModule {
    /// Creates the module from technology constants.
    pub fn new(tech: PimTech) -> CqsModule {
        CqsModule { tech }
    }

    /// Service time of one chunk-quality summation.
    pub fn chunk_service(&self) -> SimTime {
        self.tech.t_cqs_op
    }

    /// Energy of one chunk-quality summation.
    pub fn chunk_energy(&self) -> f64 {
        self.tech.e_cqs_op
    }
}

/// The in-memory seeding module (paper Figure 9): per chunk, the query
/// string generator shifts through the chunk one base at a time, each shift
/// searching the ReRAM CAM; hits read the location lists from ReRAM RAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedingModule {
    tech: PimTech,
}

impl SeedingModule {
    /// Creates the module from technology constants.
    pub fn new(tech: PimTech) -> SeedingModule {
        SeedingModule { tech }
    }

    /// Number of parallel seeding units.
    pub fn units(&self) -> usize {
        self.tech.seeding_units
    }

    /// Service time to seed a chunk of `chunk_bases` bases yielding
    /// `location_reads` reference locations: one CAM search per base shift
    /// plus one RAM read per location.
    pub fn chunk_service(&self, chunk_bases: usize, location_reads: usize) -> SimTime {
        self.tech.t_cam_search * chunk_bases as u64 + self.tech.t_ram_read * location_reads as u64
    }

    /// Energy for the same work.
    pub fn chunk_energy(&self, chunk_bases: usize, location_reads: usize) -> f64 {
        chunk_bases as f64 * self.tech.e_cam_search + location_reads as f64 * self.tech.e_ram_read
    }
}

/// The PARC-like DP module (paper Figure 8 ➎): 1024 units shared between
/// chaining (during chunk streaming) and sequence alignment (at read
/// completion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpModule {
    tech: PimTech,
}

impl DpModule {
    /// Creates the module from technology constants.
    pub fn new(tech: PimTech) -> DpModule {
        DpModule { tech }
    }

    /// Number of DP units.
    pub fn units(&self) -> usize {
        self.tech.dp_units
    }

    /// Service time to chain `anchors` new anchors: the CAM-assisted DP
    /// evaluates all predecessors of one anchor in parallel, one anchor per
    /// step.
    pub fn chain_service(&self, anchors: usize) -> SimTime {
        self.tech.t_dp_step * anchors as u64
    }

    /// Chaining energy: one parallel predecessor evaluation per anchor.
    pub fn chain_energy(&self, anchors: usize) -> f64 {
        anchors as f64 * self.tech.e_dp_step
    }

    /// Service time to align a read of `query_len` bases: the banded DP
    /// advances one query row per step, the whole band row in parallel.
    pub fn align_service(&self, query_len: usize) -> SimTime {
        self.tech.t_dp_step * query_len as u64
    }

    /// Alignment energy, charged per DP cell actually computed.
    pub fn align_energy(&self, cells: usize) -> f64 {
        cells as f64 * self.tech.e_dp_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> PimTech {
        PimTech::paper_32nm()
    }

    #[test]
    fn basecall_service_scales_with_samples() {
        let m = BasecallModule::new(tech());
        assert_eq!(m.tiles(), 168);
        assert_eq!(m.streams(), 1);
        assert_eq!(m.chunk_service(0), genpip_sim::SimTime::ZERO);
        // 2400-sample chunk: (2400×2 + 240 fill) cycles × 100 ns = 504 µs.
        assert!((m.chunk_service(2400).as_secs() - 504e-6).abs() < 1e-12);
        // Throughput once full: ~5 M samples/s ⇒ 1 M samples ≈ 0.2 s.
        assert!((m.chunk_service(1_000_000).as_secs() - 0.200024).abs() < 1e-6);
    }

    #[test]
    fn basecall_energy_scales_with_mvms() {
        let m = BasecallModule::new(tech());
        assert_eq!(m.chunk_energy(0), 0.0);
        let expected = 1000.0 * tech().e_bc_per_sample;
        assert!((m.chunk_energy(1000) - expected).abs() < 1e-12);
    }

    #[test]
    fn cqs_is_one_cheap_op() {
        let m = CqsModule::new(tech());
        assert!(m.chunk_service() < BasecallModule::new(tech()).chunk_service(10));
        assert!(m.chunk_energy() < 1e-7);
    }

    #[test]
    fn seeding_charges_shifts_and_hits() {
        let m = SeedingModule::new(tech());
        assert_eq!(m.units(), 4096);
        let base = m.chunk_service(300, 0);
        let with_hits = m.chunk_service(300, 50);
        assert!(with_hits > base);
        assert_eq!(base, tech().t_cam_search * 300);
        assert!(m.chunk_energy(300, 50) > m.chunk_energy(300, 0));
    }

    #[test]
    fn seeding_keeps_up_with_basecalling() {
        // The paper designs the seeding unit so it never bottlenecks the
        // chunk pipeline: a 300-base chunk must seed far faster than it
        // basecalls (2400 samples).
        let s = SeedingModule::new(tech());
        let b = BasecallModule::new(tech());
        assert!(s.chunk_service(300, 100).as_ns() * 10.0 < b.chunk_service(2400).as_ns());
    }

    #[test]
    fn dp_module_costs() {
        let m = DpModule::new(tech());
        assert_eq!(m.units(), 1024);
        assert_eq!(m.chain_service(100), tech().t_dp_step * 100);
        assert_eq!(m.align_service(9000), tech().t_dp_step * 9000);
        assert!(m.align_energy(1_000_000) > m.chain_energy(100));
    }
}
