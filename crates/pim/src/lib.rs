//! Processing-in-memory hardware models.
//!
//! The paper evaluates GenPIP with component models obtained from NVSim
//! (ReRAM RAM), NVSim-CAM (ReRAM CAM), CACTI 6.5 (eDRAM) and Synopsys DC
//! (logic), plus the published Helix and PARC numbers (Section 5). This
//! crate plays that role:
//!
//! * [`arrays`] — *functional* models of the two NVM-PIM primitives the
//!   paper builds on (Section 2.2): the crossbar that computes matrix–vector
//!   multiplications in-situ (Figure 2) and the content-addressable memory
//!   that matches strings in parallel (Figure 3);
//! * [`params`] — the device-level latency/energy constants, with the value
//!   provenance documented per constant;
//! * [`modules`] — the four GenPIP hardware modules (PIM basecaller,
//!   PIM-CQS, in-memory seeding, DP units) as *cost models*: they convert the
//!   measured workload counters of the functional pipeline into service times
//!   and energies;
//! * [`seeding`] — the seeding unit's CAM image: loads a sharded reference
//!   index one shard per CAM subarray group, programming only the entries
//!   the functional model can actually query (globally-unmasked keys);
//! * [`area_power`] — the Table 2 area/power breakdown.
//!
//! # Example
//!
//! ```
//! use genpip_pim::area_power::genpip_table2;
//!
//! let table = genpip_table2();
//! // The paper's headline totals: 163.8 mm², 147.2 W at 32 nm.
//! assert!((table.total_area_mm2() - 163.8).abs() < 0.5);
//! assert!((table.total_power_w() - 147.2).abs() < 0.5);
//! ```

pub mod area_power;
pub mod arrays;
pub mod edram;
pub mod modules;
pub mod params;
pub mod seeding;

pub use arrays::{CamArray, CamBank, CrossbarArray};
pub use edram::EdramBuffer;
pub use modules::{BasecallModule, CqsModule, DpModule, SeedingModule};
pub use params::PimTech;
pub use seeding::{ReferenceSeedingImage, SeedingUnitMap, ShardGroup};

/// Bytes per raw signal sample (16-bit DAC), mirrored from `genpip-signal`
/// for buffer-sizing checks without a dependency cycle.
pub const BYTES_PER_SAMPLE_HINT: usize = 2;
