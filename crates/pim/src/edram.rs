//! eDRAM buffer models.
//!
//! GenPIP's controller and modules keep their working set in embedded DRAM
//! (paper Section 4.2): the **read queue** buffers the raw signal of the
//! read being processed (sized for the longest known nanopore signal, ≈6 MB)
//! and the **chunk buffer** holds the basecalled chunks of in-flight reads
//! until alignment finishes (sized for the longest known read, 2.3 Mbases).
//! This module provides a capacity-checked buffer with occupancy tracking
//! and access-energy accounting, plus the paper's standard instances.

use std::fmt;

/// Error returned when a reservation would exceed the buffer's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferOverflow {
    /// Bytes requested.
    pub requested: usize,
    /// Bytes free at the time of the request.
    pub available: usize,
}

impl fmt::Display for BufferOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "buffer overflow: requested {} B with only {} B free",
            self.requested, self.available
        )
    }
}

impl std::error::Error for BufferOverflow {}

/// A capacity-checked eDRAM buffer with occupancy and energy accounting.
///
/// # Example
///
/// ```
/// use genpip_pim::edram::EdramBuffer;
///
/// let mut queue = EdramBuffer::read_queue();
/// queue.reserve(1_000_000)?;
/// assert!(queue.occupancy() > 0.15);
/// queue.release(1_000_000);
/// assert_eq!(queue.used(), 0);
/// # Ok::<(), genpip_pim::edram::BufferOverflow>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EdramBuffer {
    name: &'static str,
    capacity: usize,
    used: usize,
    high_water: usize,
    bytes_accessed: u64,
    energy_per_byte: f64,
}

impl EdramBuffer {
    /// Creates a buffer of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(name: &'static str, capacity: usize, energy_per_byte: f64) -> EdramBuffer {
        assert!(capacity > 0, "buffer capacity must be positive");
        EdramBuffer {
            name,
            capacity,
            used: 0,
            high_water: 0,
            bytes_accessed: 0,
            energy_per_byte,
        }
    }

    /// The paper's read queue: sized for the longest raw nanopore signal
    /// (≈6 MB, Section 4.2).
    pub fn read_queue() -> EdramBuffer {
        EdramBuffer::new("read-queue", 6 * 1024 * 1024, 1.0e-12)
    }

    /// The paper's chunk buffer: 2.3 Mbases of basecalled output — 2-bit
    /// packed bases plus one quality byte per base.
    pub fn chunk_buffer() -> EdramBuffer {
        const LONGEST_READ_BASES: usize = 2_300_000;
        EdramBuffer::new(
            "chunk-buffer",
            LONGEST_READ_BASES / 4 + LONGEST_READ_BASES,
            1.0e-12,
        )
    }

    /// The read-mapping controller's 4 MB buffer.
    pub fn rmc_buffer() -> EdramBuffer {
        EdramBuffer::new("rmc-buffer", 4 * 1024 * 1024, 1.0e-12)
    }

    /// The GenPIP controller module's 12 MB eDRAM.
    pub fn controller_buffer() -> EdramBuffer {
        EdramBuffer::new("controller-buffer", 12 * 1024 * 1024, 1.0e-12)
    }

    /// Buffer name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Free bytes.
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// Current occupancy in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        self.used as f64 / self.capacity as f64
    }

    /// Highest occupancy seen, in bytes.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total bytes written + read (for energy accounting).
    pub fn bytes_accessed(&self) -> u64 {
        self.bytes_accessed
    }

    /// Energy consumed by accesses so far (joules).
    pub fn access_energy(&self) -> f64 {
        self.bytes_accessed as f64 * self.energy_per_byte
    }

    /// Reserves (writes) `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`BufferOverflow`] if the buffer cannot hold the bytes; the
    /// buffer is unchanged.
    pub fn reserve(&mut self, bytes: usize) -> Result<(), BufferOverflow> {
        if bytes > self.free() {
            return Err(BufferOverflow {
                requested: bytes,
                available: self.free(),
            });
        }
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
        self.bytes_accessed += bytes as u64;
        Ok(())
    }

    /// Releases (consumes) `bytes`, counting the read access.
    ///
    /// # Panics
    ///
    /// Panics if releasing more than is reserved (a bookkeeping bug).
    pub fn release(&mut self, bytes: usize) {
        assert!(
            bytes <= self.used,
            "releasing {bytes} B with only {} B reserved",
            self.used
        );
        self.used -= bytes;
        self.bytes_accessed += bytes as u64;
    }
}

impl fmt::Display for EdramBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} B ({:.1}% full, high water {} B)",
            self.name,
            self.used,
            self.capacity,
            self.occupancy() * 100.0,
            self.high_water
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_cycle() {
        let mut b = EdramBuffer::new("t", 100, 1e-12);
        b.reserve(60).unwrap();
        assert_eq!(b.used(), 60);
        assert_eq!(b.free(), 40);
        b.release(20);
        assert_eq!(b.used(), 40);
        assert_eq!(b.high_water(), 60);
        assert_eq!(b.bytes_accessed(), 80);
        assert!((b.access_energy() - 80e-12).abs() < 1e-20);
    }

    #[test]
    fn overflow_is_reported_and_harmless() {
        let mut b = EdramBuffer::new("t", 100, 1e-12);
        b.reserve(90).unwrap();
        let err = b.reserve(20).unwrap_err();
        assert_eq!(
            err,
            BufferOverflow {
                requested: 20,
                available: 10
            }
        );
        assert!(err.to_string().contains("overflow"));
        assert_eq!(b.used(), 90, "failed reservation must not change state");
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut b = EdramBuffer::new("t", 100, 1e-12);
        b.release(1);
    }

    #[test]
    fn paper_instances_have_paper_sizes() {
        // Read queue: ~6 MB = longest raw signal (2.3 Mbases × ~8 samples
        // would exceed it; the paper sizes for the longest *signal*, ≈6 MB
        // at 16-bit samples — hold a 3 M-sample signal).
        let q = EdramBuffer::read_queue();
        assert_eq!(q.capacity(), 6 * 1024 * 1024);
        assert!(q.capacity() >= 3_000_000 * crate::BYTES_PER_SAMPLE_HINT);

        // Chunk buffer holds the longest read's bases + qualities.
        let c = EdramBuffer::chunk_buffer();
        assert!(c.capacity() >= 2_300_000 / 4 + 2_300_000);

        assert_eq!(EdramBuffer::rmc_buffer().capacity(), 4 * 1024 * 1024);
        assert_eq!(
            EdramBuffer::controller_buffer().capacity(),
            12 * 1024 * 1024
        );
    }

    #[test]
    fn display_reports_occupancy() {
        let mut b = EdramBuffer::new("demo", 1000, 1e-12);
        b.reserve(250).unwrap();
        let s = b.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("25.0%"));
    }
}
