//! Device-level timing and energy constants.
//!
//! Every constant documents where its value comes from. Two kinds of
//! provenance appear:
//!
//! * **device literature** — typical 32 nm NVM-PIM values in the range
//!   reported by the tools the paper used (NVSim, NVSim-CAM, CACTI) and by
//!   the ISAAC/PRIME/Helix/PARC line of work;
//! * **Table 2 back-solve** — per-op energies derived by spreading a module's
//!   published power (paper Table 2) over its parallel units at the device
//!   cycle time.

use genpip_sim::SimTime;

/// The GenPIP technology constants (32 nm node, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimTech {
    /// NVM crossbar read cycle — the latency of one in-situ MVM
    /// (device literature: ISAAC-class crossbars take ≈100 ns per analog
    /// read cycle including DAC/S&H/ADC).
    pub t_mvm_cycle: SimTime,
    /// Depth, in crossbar cycles, of the PIM basecaller's inference
    /// pipeline.
    ///
    /// Our substituted basecaller needs one `states × 3` MVM per sample, but
    /// Helix accelerates Bonito-class CTC networks whose per-timestep
    /// inference spans hundreds of crossbar reads across layers. The 168
    /// tiles form one deep sample-pipeline: throughput is one sample per
    /// crossbar cycle once the pipeline is full, and this depth is the
    /// per-chunk fill latency. The resulting module throughput (≈10 M
    /// samples/s) makes the PIM basecaller ≈30× faster per base than the
    /// CPU software basecaller — the relation implied by the paper's 41.6×
    /// (GenPIP vs CPU) and 1.39× (GenPIP vs PIM) results.
    pub bc_pipeline_depth_cycles: usize,
    /// Initiation interval of the basecalling pipeline in crossbar cycles:
    /// a new sample enters every `II` cycles (analog sample-and-hold and ADC
    /// sharing prevent single-cycle initiation). With II = 2 the module
    /// sustains ≈5 M samples/s, placing the PIM basecaller ≈28× above the
    /// CPU software basecaller — the paper-implied relation (41.6 / 1.39).
    pub bc_initiation_interval_cycles: usize,
    /// Energy per sample streamed through the basecalling pipeline
    /// (Table 2 back-solve: the 27.1 W module retires one sample per
    /// II × 100 ns when busy ⇒ ≈5.4 µJ/sample).
    pub e_bc_per_sample: f64,
    /// Energy of one crossbar MVM op
    /// (Table 2 back-solve: 27.1 W over 168 tiles at 100 ns/op ⇒ ≈16 nJ).
    pub e_mvm_op: f64,
    /// One CAM search across an 832×128 array
    /// (device literature: NVSim-CAM reports 1–3 ns search latency).
    pub t_cam_search: SimTime,
    /// Energy per CAM search
    /// (device literature: ≈1–2 fJ/bit over ~10⁵ bits ⇒ ≈0.2 nJ).
    pub e_cam_search: f64,
    /// ReRAM RAM read of one location list entry
    /// (device literature: NVSim ReRAM read ≈5–15 ns).
    pub t_ram_read: SimTime,
    /// Energy per RAM read (device literature: ≈0.1 nJ per 16 B line).
    pub e_ram_read: f64,
    /// One DP-unit step — one chaining predecessor evaluation or one
    /// alignment anti-diagonal row slot (PARC-class CAM-assisted DP executes
    /// one step per ~5 ns cycle).
    pub t_dp_step: SimTime,
    /// Energy per DP step
    /// (Table 2 back-solve: 85 W over 1024 units at 5 ns ⇒ ≈0.42 nJ).
    pub e_dp_step: f64,
    /// Energy per individual alignment DP cell — one step evaluates a whole
    /// band row in parallel, so per-cell energy ≈ `e_dp_step / band width`
    /// (≈0.42 nJ / ~100 cells ⇒ ≈4.2 pJ).
    pub e_dp_cell: f64,
    /// PIM-CQS: one chunk-quality summation (a single 16×1024 MVM read
    /// cycle; SOT-MRAM arrays cycle faster than ReRAM, ≈50 ns).
    pub t_cqs_op: SimTime,
    /// Energy per CQS op (Table 2 back-solve: 0.307 W at 50 ns duty ⇒ ≈15 nJ
    /// peak; scaled by the 16×1024 array's small size to ≈2 nJ).
    pub e_cqs_op: f64,
    /// eDRAM access energy per byte (CACTI-class: ≈1 pJ/B at 32 nm).
    pub e_edram_byte: f64,
    /// Controller decision latency: the time from a deciding chunk's quality
    /// sum / chaining score being available to the ER signal reaching the
    /// basecalling module (a few pipeline registers plus a compare; logic
    /// synthesis at 1.6 GHz ⇒ tens of ns).
    pub t_er_decision: SimTime,
    /// Number of basecaller tiles (Table 2: 168).
    pub basecall_tiles: usize,
    /// Number of in-memory seeding units (Table 2: 4096).
    pub seeding_units: usize,
    /// Number of DP units (Table 2: 1024).
    pub dp_units: usize,
}

impl PimTech {
    /// The paper's 32 nm configuration.
    pub fn paper_32nm() -> PimTech {
        PimTech {
            t_mvm_cycle: SimTime::from_ns(100.0),
            bc_pipeline_depth_cycles: 240,
            bc_initiation_interval_cycles: 2,
            e_bc_per_sample: 5.42e-6,
            e_mvm_op: 16.1e-9,
            t_cam_search: SimTime::from_ns(2.0),
            e_cam_search: 0.2e-9,
            t_ram_read: SimTime::from_ns(10.0),
            e_ram_read: 0.1e-9,
            t_dp_step: SimTime::from_ns(5.0),
            e_dp_step: 0.42e-9,
            e_dp_cell: 4.2e-12,
            t_cqs_op: SimTime::from_ns(50.0),
            e_cqs_op: 2.0e-9,
            e_edram_byte: 1.0e-12,
            t_er_decision: SimTime::from_ns(50.0),
            basecall_tiles: 168,
            seeding_units: 4096,
            dp_units: 1024,
        }
    }
}

impl Default for PimTech {
    fn default() -> PimTech {
        PimTech::paper_32nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2_unit_counts() {
        let t = PimTech::paper_32nm();
        assert_eq!(t.basecall_tiles, 168);
        assert_eq!(t.seeding_units, 4096);
        assert_eq!(t.dp_units, 1024);
    }

    #[test]
    fn mvm_energy_is_consistent_with_module_power() {
        // e_mvm ≈ module power / tiles × cycle time.
        let t = PimTech::paper_32nm();
        let implied = 27.1 / t.basecall_tiles as f64 * t.t_mvm_cycle.as_secs();
        assert!((t.e_mvm_op - implied).abs() / implied < 0.05);
    }

    #[test]
    fn basecall_sample_energy_is_consistent_with_module_power() {
        // One sample per II cycles at the module's 27.1 W Table 2 power.
        let t = PimTech::paper_32nm();
        let implied = 27.1 * t.t_mvm_cycle.as_secs() * t.bc_initiation_interval_cycles as f64;
        assert!((t.e_bc_per_sample - implied).abs() / implied < 0.05);
    }

    #[test]
    fn dp_energy_is_consistent_with_module_power() {
        let t = PimTech::paper_32nm();
        let implied = 85.0 / t.dp_units as f64 * t.t_dp_step.as_secs();
        assert!((t.e_dp_step - implied).abs() / implied < 0.05);
    }

    #[test]
    fn latencies_are_ordered_sensibly() {
        let t = PimTech::paper_32nm();
        // CAM search < DP step < RAM read < CQS < MVM cycle.
        assert!(t.t_cam_search < t.t_dp_step);
        assert!(t.t_dp_step < t.t_ram_read);
        assert!(t.t_ram_read < t.t_cqs_op);
        assert!(t.t_cqs_op < t.t_mvm_cycle);
    }
}
