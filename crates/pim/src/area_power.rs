//! Area and power breakdown — the paper's Table 2.
//!
//! Per-component power and area are synthesis/tool outputs in the paper
//! (Synopsys DC for logic, NVSim/NVSim-CAM/CACTI for the arrays, and the
//! Helix/PARC papers for components ➊ and ➎); they enter this model as
//! constants. The module subtotals and chip totals are *computed*, and the
//! tests check they reproduce the paper's 163.8 mm² / 147.2 W at 32 nm.

use std::fmt;

/// One row of Table 2: a hardware component with its specification, power
/// and area.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentBudget {
    /// Component name (e.g. `"PIM Basecaller"`).
    pub name: &'static str,
    /// Specification summary.
    pub spec: &'static str,
    /// Power in watts.
    pub power_w: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

/// A module grouping of components (basecalling module, read-mapping module,
/// controller).
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleBudget {
    /// Module name.
    pub name: &'static str,
    /// The module's components.
    pub components: Vec<ComponentBudget>,
}

impl ModuleBudget {
    /// Module power (sum of components).
    pub fn power_w(&self) -> f64 {
        self.components.iter().map(|c| c.power_w).sum()
    }

    /// Module area (sum of components).
    pub fn area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }
}

/// The full chip budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// The three GenPIP modules.
    pub modules: Vec<ModuleBudget>,
}

impl Table2 {
    /// Chip power (sum of modules).
    pub fn total_power_w(&self) -> f64 {
        self.modules.iter().map(ModuleBudget::power_w).sum()
    }

    /// Chip area (sum of modules).
    pub fn total_area_mm2(&self) -> f64 {
        self.modules.iter().map(ModuleBudget::area_mm2).sum()
    }

    /// Returns a module by name.
    pub fn module(&self, name: &str) -> Option<&ModuleBudget> {
        self.modules.iter().find(|m| m.name == name)
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<42} {:>9} {:>11}",
            "Component (specification)", "Power W", "Area mm²"
        )?;
        for module in &self.modules {
            for c in &module.components {
                writeln!(
                    f,
                    "{:<42} {:>9.3} {:>11.4}",
                    format!("{} ({})", c.name, c.spec),
                    c.power_w,
                    c.area_mm2
                )?;
            }
            writeln!(
                f,
                "{:<42} {:>9.1} {:>11.1}",
                format!("{} — total", module.name),
                module.power_w(),
                module.area_mm2()
            )?;
        }
        write!(
            f,
            "{:<42} {:>9.1} {:>11.1}",
            "GenPIP total",
            self.total_power_w(),
            self.total_area_mm2()
        )
    }
}

/// The paper's GenPIP configuration (Table 2, 32 nm).
pub fn genpip_table2() -> Table2 {
    Table2 {
        modules: vec![
            ModuleBudget {
                name: "Basecalling module",
                components: vec![
                    ComponentBudget {
                        name: "PIM Basecaller",
                        spec: "168 tiles, 4 MB eDRAM",
                        power_w: 27.1,
                        area_mm2: 49.2,
                    },
                    ComponentBudget {
                        name: "PIM-CQS",
                        spec: "SOT-MRAM PIM, 16x1024 array",
                        power_w: 0.307,
                        area_mm2: 0.0256,
                    },
                ],
            },
            ModuleBudget {
                name: "Read mapping module",
                components: vec![
                    ComponentBudget {
                        name: "Seeding",
                        spec: "4096 units: 832x128 CAMs, 1 QSG/CAM, 8x16 KB RAM, 4 KB eDRAM",
                        power_w: 28.2,
                        area_mm2: 76.68,
                    },
                    ComponentBudget {
                        name: "RMC",
                        spec: "read mapping controller, 4 MB eDRAM",
                        power_w: 1.346,
                        area_mm2: 5.472,
                    },
                    ComponentBudget {
                        name: "DP",
                        spec: "1024 units",
                        power_w: 85.0,
                        area_mm2: 10.9,
                    },
                ],
            },
            ModuleBudget {
                name: "GenPIP controller module",
                components: vec![ComponentBudget {
                    name: "Controller",
                    spec: "12 MB eDRAM, AQS calculator, ER-QSR, ER-CMR",
                    power_w: 5.3,
                    area_mm2: 21.5,
                }],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_the_paper() {
        let t = genpip_table2();
        assert!(
            (t.total_power_w() - 147.2).abs() < 0.5,
            "power {}",
            t.total_power_w()
        );
        assert!(
            (t.total_area_mm2() - 163.8).abs() < 0.5,
            "area {}",
            t.total_area_mm2()
        );
    }

    #[test]
    fn module_subtotals_match_the_paper() {
        let t = genpip_table2();
        let bc = t.module("Basecalling module").unwrap();
        assert!((bc.power_w() - 27.4).abs() < 0.05);
        assert!((bc.area_mm2() - 49.2).abs() < 0.05);
        let rm = t.module("Read mapping module").unwrap();
        assert!((rm.power_w() - 114.5).abs() < 0.1);
        assert!((rm.area_mm2() - 93.1).abs() < 0.1);
        let ctl = t.module("GenPIP controller module").unwrap();
        assert!((ctl.power_w() - 5.3).abs() < 0.01);
    }

    #[test]
    fn read_mapping_module_dominates() {
        // The paper's observation: the read-mapping module accounts for
        // ≈56.9 % of area and ≈77.8 % of power.
        let t = genpip_table2();
        let rm = t.module("Read mapping module").unwrap();
        let area_share = rm.area_mm2() / t.total_area_mm2();
        let power_share = rm.power_w() / t.total_power_w();
        assert!((area_share - 0.569).abs() < 0.01, "area share {area_share}");
        assert!(
            (power_share - 0.778).abs() < 0.01,
            "power share {power_share}"
        );
    }

    #[test]
    fn display_renders_all_rows() {
        let t = genpip_table2();
        let s = t.to_string();
        assert!(s.contains("PIM Basecaller"));
        assert!(s.contains("PIM-CQS"));
        assert!(s.contains("Seeding"));
        assert!(s.contains("GenPIP total"));
    }

    #[test]
    fn unknown_module_lookup_is_none() {
        assert!(genpip_table2().module("nope").is_none());
    }
}
