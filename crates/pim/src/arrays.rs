//! Functional models of the NVM-PIM primitives.
//!
//! Two array types carry all of GenPIP's in-memory computation
//! (paper Section 2.2):
//!
//! * [`CrossbarArray`] — an NVM crossbar computing `O = V × M` in one read
//!   cycle by storing matrix elements as cell conductances (Figure 2). The
//!   basecaller's emission kernel and the PIM-CQS quality summation both run
//!   on these.
//! * [`CamArray`] / [`CamBank`] — content-addressable memory matching a
//!   query word against all stored rows in parallel (Figure 3). The seeding
//!   unit stores minimizer hashes in CAMs and their reference locations in
//!   adjacent RAM arrays (Figure 9).
//!
//! These models are *functionally exact* (no analog noise): the paper's
//! accelerators are engineered to preserve algorithm output, and accuracy
//! effects of device non-idealities are outside its evaluation too.

use std::collections::HashMap;

/// An NVM crossbar of `rows × cols` programmable cells that computes
/// matrix–vector products in-situ.
///
/// The stored matrix is addressed as `weight[row][col]`; an input vector of
/// length `rows` drives the wordlines and the bitline currents read out the
/// `cols`-length output (Kirchhoff summation).
///
/// # Example
///
/// ```
/// use genpip_pim::CrossbarArray;
///
/// let mut xbar = CrossbarArray::new(2, 3);
/// xbar.program(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // row-major 2×3
/// let out = xbar.mvm(&[1.0, 1.0]);
/// assert_eq!(out, vec![5.0, 7.0, 9.0]);
/// assert_eq!(xbar.ops(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarArray {
    rows: usize,
    cols: usize,
    weights: Vec<f32>,
    ops: u64,
}

impl CrossbarArray {
    /// Creates a zeroed crossbar.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn new(rows: usize, cols: usize) -> CrossbarArray {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be positive");
        CrossbarArray {
            rows,
            cols,
            weights: vec![0.0; rows * cols],
            ops: 0,
        }
    }

    /// Programs the full weight matrix (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows × cols`.
    pub fn program(&mut self, weights: &[f32]) {
        assert_eq!(
            weights.len(),
            self.rows * self.cols,
            "weight count must match array size"
        );
        self.weights.copy_from_slice(weights);
    }

    /// Array rows (input-vector length).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns (output-vector length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of MVM operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Performs one in-situ MVM: `out[c] = Σ_r v[r] · w[r][c]`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    pub fn mvm(&mut self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.rows, "input vector length must match rows");
        let mut out = vec![0.0f32; self.cols];
        for (r, &x) in v.iter().enumerate() {
            let row = &self.weights[r * self.cols..(r + 1) * self.cols];
            for (o, &w) in out.iter_mut().zip(row) {
                *o += x * w;
            }
        }
        self.ops += 1;
        out
    }
}

/// One CAM array: up to `rows` stored words of `width_bits` bits, searched
/// associatively in a single cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct CamArray {
    width_bits: usize,
    capacity: usize,
    rows: Vec<u64>,
    searches: u64,
}

impl CamArray {
    /// Creates an empty CAM with `capacity` rows of `width_bits` bits
    /// (≤ 64 in this model).
    ///
    /// # Panics
    ///
    /// Panics if `width_bits` is 0 or exceeds 64, or `capacity` is 0.
    pub fn new(width_bits: usize, capacity: usize) -> CamArray {
        assert!((1..=64).contains(&width_bits), "width must be 1..=64 bits");
        assert!(capacity > 0, "capacity must be positive");
        CamArray {
            width_bits,
            capacity,
            rows: Vec::new(),
            searches: 0,
        }
    }

    /// Word width in bits.
    pub fn width_bits(&self) -> usize {
        self.width_bits
    }

    /// Stored row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Searches performed so far.
    pub fn searches(&self) -> u64 {
        self.searches
    }

    /// Stores a word, returning its row index, or `None` if the array is
    /// full. Words wider than `width_bits` are truncated (the caller is
    /// responsible for collision handling, as with real CAM key truncation).
    pub fn store(&mut self, word: u64) -> Option<usize> {
        if self.rows.len() >= self.capacity {
            return None;
        }
        self.rows.push(word & self.mask());
        Some(self.rows.len() - 1)
    }

    /// Associative search: returns the index of the first matching row.
    pub fn search(&mut self, word: u64) -> Option<usize> {
        self.searches += 1;
        let w = word & self.mask();
        self.rows.iter().position(|&r| r == w)
    }

    fn mask(&self) -> u64 {
        if self.width_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }
}

/// A bank of CAM arrays plus an address map, holding a full key set (e.g.
/// every minimizer hash of the reference index). Keys are distributed across
/// arrays; a search probes the (single) array the key hashes to, matching
/// the banked organization of Figure 9 where each seeding unit holds many
/// 832×128 CAMs.
#[derive(Debug, Clone)]
pub struct CamBank {
    arrays: Vec<CamArray>,
    /// key → (array, row) directory, standing in for the address decoder.
    directory: HashMap<u64, (u32, u32)>,
    width_bits: usize,
}

impl CamBank {
    /// Builds a bank sized for `keys`, `rows_per_array` keys per array.
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_array` is 0.
    pub fn build<I: IntoIterator<Item = u64>>(keys: I, rows_per_array: usize) -> CamBank {
        assert!(rows_per_array > 0, "rows_per_array must be positive");
        let width_bits = 64;
        let mut bank = CamBank {
            arrays: Vec::new(),
            directory: HashMap::new(),
            width_bits,
        };
        for key in keys {
            if bank.directory.contains_key(&key) {
                continue;
            }
            if bank
                .arrays
                .last()
                .map(|a| a.len() >= rows_per_array)
                .unwrap_or(true)
            {
                bank.arrays.push(CamArray::new(width_bits, rows_per_array));
            }
            let array = bank.arrays.len() - 1;
            let row = bank.arrays[array].store(key).expect("fresh array has room");
            bank.directory.insert(key, (array as u32, row as u32));
        }
        bank
    }

    /// Number of CAM arrays in the bank.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Key width in bits (64 in this model).
    pub fn width_bits(&self) -> usize {
        self.width_bits
    }

    /// Total stored keys.
    pub fn key_count(&self) -> usize {
        self.directory.len()
    }

    /// Searches the bank. On a hit, performs the actual CAM search in the
    /// owning array (counting it) and returns the global slot id
    /// `(array, row)`.
    pub fn search(&mut self, key: u64) -> Option<(u32, u32)> {
        match self.directory.get(&key).copied() {
            Some((array, _)) => {
                let row = self.arrays[array as usize].search(key)?;
                Some((array, row as u32))
            }
            None => {
                // A miss still costs one search in the addressed array.
                if let Some(first) = self.arrays.first_mut() {
                    let _ = first.search(key);
                }
                None
            }
        }
    }

    /// Total searches across all arrays.
    pub fn total_searches(&self) -> u64 {
        self.arrays.iter().map(CamArray::searches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_mvm_matches_reference() {
        let mut x = CrossbarArray::new(3, 2);
        x.program(&[1.0, 0.0, 0.0, 1.0, 2.0, 2.0]);
        let out = x.mvm(&[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0 + 6.0, 2.0 + 6.0]);
        assert_eq!(x.ops(), 1);
        let _ = x.mvm(&[0.0, 0.0, 0.0]);
        assert_eq!(x.ops(), 2);
    }

    #[test]
    fn crossbar_runs_emission_kernel() {
        // The basecaller's states×3 emission matrix must run unchanged on
        // the crossbar: weights rows = features, cols = states (transposed
        // layout: V is the feature vector).
        let states = 8;
        let mut x = CrossbarArray::new(3, states);
        // w[f][s] = (f+1) * (s+1) as a stand-in.
        let weights: Vec<f32> = (0..3)
            .flat_map(|f| (0..states).map(move |s| ((f + 1) * (s + 1)) as f32))
            .collect();
        x.program(&weights);
        let v = [2.0f32, 1.0, 0.5];
        let out = x.mvm(&v);
        for s in 0..states {
            let expected: f32 = (0..3).map(|f| v[f] * ((f + 1) * (s + 1)) as f32).sum();
            assert_eq!(out[s], expected);
        }
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn crossbar_rejects_wrong_vector() {
        let mut x = CrossbarArray::new(2, 2);
        let _ = x.mvm(&[1.0]);
    }

    #[test]
    fn cam_store_and_search() {
        let mut cam = CamArray::new(64, 4);
        assert!(cam.is_empty());
        assert_eq!(cam.store(42), Some(0));
        assert_eq!(cam.store(43), Some(1));
        assert_eq!(cam.search(43), Some(1));
        assert_eq!(cam.search(99), None);
        assert_eq!(cam.searches(), 2);
        assert_eq!(cam.len(), 2);
    }

    #[test]
    fn cam_capacity_is_enforced() {
        let mut cam = CamArray::new(16, 2);
        assert!(cam.store(1).is_some());
        assert!(cam.store(2).is_some());
        assert!(cam.store(3).is_none());
    }

    #[test]
    fn cam_truncates_to_width() {
        let mut cam = CamArray::new(8, 2);
        cam.store(0x1FF); // truncated to 0xFF
        assert_eq!(cam.search(0xFF), Some(0));
        assert_eq!(cam.search(0x2FF), Some(0), "matches modulo width");
    }

    #[test]
    fn bank_finds_every_key() {
        let keys: Vec<u64> = (0..1000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut bank = CamBank::build(keys.iter().copied(), 128);
        assert_eq!(bank.key_count(), 1000);
        assert_eq!(bank.array_count(), 1000usize.div_ceil(128));
        for &k in &keys {
            assert!(bank.search(k).is_some(), "key {k} missing");
        }
        assert!(bank.search(0xDEAD).is_none());
        assert_eq!(bank.total_searches(), 1001);
    }

    #[test]
    fn bank_dedupes_keys() {
        let bank = CamBank::build([7u64, 7, 7, 8], 128);
        assert_eq!(bank.key_count(), 2);
    }
}
