//! A small, dependency-free micro-benchmark harness.
//!
//! The workspace builds offline with no external crates, so this module
//! plays the role Criterion normally would: adaptive iteration-count
//! selection, warm-up, median-of-samples timing, and machine-readable JSON
//! output. It is intentionally minimal — wall-clock medians over a few
//! hundred milliseconds per bench — which is enough to track the perf
//! trajectory of the hot kernels across PRs.

use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (stable across PRs; used as the JSON key).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per timing sample.
    pub iters_per_sample: u64,
    /// Number of timing samples taken.
    pub samples: usize,
    /// Optional throughput: elements processed per iteration and their unit
    /// (e.g. `(4096.0, "samples")` → samples/s in the report).
    pub elements_per_iter: Option<(f64, &'static str)>,
}

impl BenchResult {
    /// Elements per second, if a throughput was declared.
    pub fn throughput(&self) -> Option<f64> {
        self.elements_per_iter
            .map(|(n, _)| n * 1e9 / self.ns_per_iter)
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        match self.elements_per_iter {
            Some((_, unit)) => format!(
                "{:<32} {:>12.0} ns/iter  {:>14.0} {unit}/s",
                self.name,
                self.ns_per_iter,
                self.throughput().unwrap_or(0.0),
            ),
            None => format!("{:<32} {:>12.0} ns/iter", self.name, self.ns_per_iter),
        }
    }
}

/// Runs `f` repeatedly and reports the median time per iteration.
///
/// Auto-calibrates the per-sample iteration count so one sample lasts
/// roughly `SAMPLE_MS`, warms up once, then takes `SAMPLES` samples.
pub fn bench<R>(
    name: &str,
    elements_per_iter: Option<(f64, &'static str)>,
    mut f: impl FnMut() -> R,
) -> BenchResult {
    const SAMPLE_MS: f64 = 40.0;
    const SAMPLES: usize = 7;

    // Warm-up + calibration: find an iteration count lasting ~SAMPLE_MS.
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms >= SAMPLE_MS || iters >= 1 << 24 {
            break;
        }
        let growth = if ms <= 0.01 {
            64.0
        } else {
            (SAMPLE_MS / ms).clamp(1.5, 64.0)
        };
        iters = ((iters as f64 * growth).ceil() as u64).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    BenchResult {
        name: name.to_string(),
        ns_per_iter: per_iter[per_iter.len() / 2],
        iters_per_sample: iters,
        samples: SAMPLES,
        elements_per_iter,
    }
}

/// Times one execution of `f`, returning (result, seconds).
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Minimal JSON value builder for the bench reports (the workspace has no
/// serde; the reports are flat enough that hand-rolled emission is clearer
/// than a dependency anyway).
#[derive(Debug, Clone)]
pub enum Json {
    /// A float (emitted with full precision).
    Num(f64),
    /// A string (escaped).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    Arr(Vec<Json>),
    /// An ordered key→value map.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Pretty-printed JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }
}

/// JSON record of one micro-bench.
pub fn bench_json(r: &BenchResult) -> Json {
    let mut fields = vec![
        ("name", Json::Str(r.name.clone())),
        ("ns_per_iter", Json::Num(r.ns_per_iter)),
        ("iters_per_sample", Json::Num(r.iters_per_sample as f64)),
        ("samples", Json::Num(r.samples as f64)),
    ];
    if let (Some((n, unit)), Some(tp)) = (r.elements_per_iter, r.throughput()) {
        fields.push(("elements_per_iter", Json::Num(n)));
        fields.push(("throughput_unit", Json::Str(format!("{unit}/s"))));
        fields.push(("throughput", Json::Num(tp)));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something_positive() {
        let r = bench("spin", Some((100.0, "ops")), || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(r.ns_per_iter > 0.0);
        assert!(r.throughput().unwrap() > 0.0);
        assert!(r.summary().contains("spin"));
    }

    #[test]
    fn json_renders_expected_shape() {
        let j = Json::obj([
            ("a", Json::Num(1.0)),
            ("b", Json::Str("x\"y".into())),
            ("c", Json::Arr(vec![Json::Bool(true), Json::Num(2.5)])),
        ]);
        let text = j.render();
        assert!(text.contains("\"a\": 1"));
        assert!(text.contains("\"b\": \"x\\\"y\""));
        assert!(text.contains("2.5"));
    }
}
