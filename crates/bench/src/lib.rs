//! Shared helpers for the GenPIP benchmark harness.
//!
//! Two kinds of bench targets live in `benches/`:
//!
//! * `kernels` — micro-benchmarks (via the in-repo [`micro`] harness; the
//!   workspace has no external dependencies) of the real wall-clock cost of
//!   every computational kernel (MVM, CAM search, Viterbi decode, minimizer
//!   extraction, chaining DP, banded alignment, end-to-end read processing)
//!   plus the end-to-end pipeline at 1/2/4 threads. It writes a
//!   machine-readable `BENCH_kernels.json` at the repo root so successive
//!   PRs accumulate a perf trajectory;
//! * `figNN_*` / `tabNN_*` / `useless_reads` — one regeneration harness per
//!   paper figure/table. These are *model-output* harnesses (`harness =
//!   false` binaries): they run the corresponding experiment driver from
//!   `genpip-core::experiments` once and print measured-vs-paper rows.
//!
//! Run everything with `cargo bench --workspace`. Set `GENPIP_SCALE` (e.g.
//! `GENPIP_SCALE=0.1`) to shrink the datasets for a quick pass.

pub mod micro;

use std::time::Instant;

/// Runs one figure harness: prints a banner, executes `body`, prints its
/// report, saves a copy under `target/experiment-reports/`, and prints the
/// elapsed wall time.
pub fn run_harness<R: std::fmt::Display>(name: &str, body: impl FnOnce() -> R) {
    let scale = genpip_core::experiments::default_scale();
    println!("=== {name} (scale {scale}) ===");
    let start = Instant::now();
    let report = body();
    let rendered = report.to_string();
    println!("{rendered}");
    save_report(name, &rendered);
    println!(
        "[{name} regenerated in {:.1} s]\n",
        start.elapsed().as_secs_f64()
    );
}

/// Persists a harness report so figure text survives the bench run.
fn save_report(name: &str, rendered: &str) {
    let dir = std::path::Path::new("target").join("experiment-reports");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if std::fs::write(&path, rendered).is_ok() {
            println!("[report saved to {}]", path.display());
        }
    }
}
