//! Regenerates the paper's fig04 results; see genpip_core::experiments::fig04.

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("fig04_potential", || {
        genpip_core::experiments::fig04::run(scale)
    });
}
