//! Ablation sweeps beyond the paper: chunk size, DP-unit provisioning,
//! basecaller initiation interval. See genpip_core::experiments::ablations.

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("ablation_sweeps", || {
        genpip_core::experiments::ablations::run(scale)
    });
}
