//! Regenerates the paper's fig12 results; see genpip_core::experiments::fig12.

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("fig12_qsr_sensitivity", || {
        genpip_core::experiments::fig12::run(scale)
    });
}
