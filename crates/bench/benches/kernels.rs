//! Micro-benchmarks of the computational kernels, plus the end-to-end
//! parallel pipeline bench.
//!
//! These measure the *real* wall-clock cost of this reproduction's
//! implementations (not the modelled hardware times): the MVM emission
//! kernel, CAM search, Viterbi chunk decoding (allocation-free scratch
//! path), the lane-batched SoA Viterbi kernel at widths 1/4/8 (scalar
//! bit-identity asserted in-bench) plus the pipeline throughput at decode
//! lane widths, minimizer extraction, chaining DP, sharded fan-out seeding at
//! 1/2/4 index shards (with a shard-vs-monolithic bit-identity check),
//! pan-genome mapping against 1 vs 3 named references (one shared sketch,
//! per-reference seeding, deterministic merge; set-vs-solo bit-identity
//! check), banded alignment, end-to-end single-read processing, the batch
//! pipeline (one `Session` source) at 1/2/4 worker threads with a
//! serial-vs-parallel bit-identity check, the streaming executor (a
//! `Session` over a lazy `StreamingSimulator` source) across worker/queue
//! settings with a streaming-vs-batch bit-identity check, on-disk GSC
//! container replay (pack throughput plus the file read-path tax vs the
//! in-memory source, bit-identity asserted), the
//! multi-source `Session` engine (1 vs 2 fair-share-interleaved sources
//! over one worker pool) with a per-source-vs-solo bit-identity check,
//! and the *live* session control plane: mid-run attach/detach overhead
//! against a static two-source session (bit-identity asserted) and the
//! `Deadline` schedule's short-source tail residency against `FairShare`.
//!
//! Results are printed as a table and written to `BENCH_kernels.json` at the
//! repo root so future PRs have a perf trajectory to compare against. Note
//! that the parallel speedups are only meaningful relative to
//! `host_threads` in the report: a single-core host shows ~1× regardless of
//! worker count.

use genpip_basecall::{
    BasecalledChunk, Basecaller, CallScratch, ChunkJob, EmissionModel, LaneDecoder, LaneScratch,
};
use genpip_bench::micro::{bench, bench_json, time_once, Json};
use genpip_core::engine::Granularity;
use genpip_core::engine::{AttachSpec, Flow, Session, SessionControl};
use genpip_core::pipeline::{ErMode, ReadRun};
use genpip_core::scheduler::Schedule;
use genpip_core::stream::{StreamEvent, StreamOptions};
use genpip_core::{GenPipConfig, Lanes, Parallelism};
use genpip_datasets::{DatasetProfile, FaultInjector, SimulatedDataset, StreamingSimulator};
use genpip_genomics::GenomeBuilder;
use genpip_io::{pack_source, GscReadSource};
use genpip_mapping::{
    minimizers_into, Anchor, ChainParams, IncrementalChainer, Mapper, MapperParams,
    MinimizerScratch, ReferenceSet, SeedBatch, SeedScratch, Shards,
};
use genpip_pim::{CamBank, CrossbarArray};
use genpip_signal::{PoreModel, SignalSynthesizer};
use std::hint::black_box;
use std::sync::{Arc, Mutex};

/// One batch run through the `Session` engine: the dataset's reads, fully
/// processed, in admission order.
fn batch_via_session(
    dataset: &SimulatedDataset,
    config: &GenPipConfig,
    er: ErMode,
) -> Vec<ReadRun> {
    let mut reads = Vec::new();
    Session::new(config.clone())
        .flow(Flow::GenPip(er))
        .source("batch", dataset.stream())
        .sink("batch", |event| {
            if let StreamEvent::Read(run) = event {
                reads.push(run);
            }
        })
        .run()
        .expect("bench session inputs are valid");
    reads
}

/// Best SIMD extension the host advertises, recorded next to
/// `host_threads` in the report so the lane-batch rows can be compared
/// across machines (the SoA kernel's stride-1 inner loop is what the
/// auto-vectorizer targets).
fn host_simd() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            "avx512f"
        } else if is_x86_feature_detected!("avx2") {
            "avx2"
        } else if is_x86_feature_detected!("sse4.2") {
            "sse4.2"
        } else {
            "sse2"
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        "neon"
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        "unknown"
    }
}

fn main() {
    let mut results = Vec::new();

    // --- MVM emission kernel (single sample and strided block) ---
    let pore = PoreModel::synthetic(3, 7);
    let emission = EmissionModel::from_pore_model(&pore);
    let n_states = emission.states();
    {
        let mut out = vec![0.0f32; n_states];
        results.push(bench(
            "mvm/emission_64_states",
            Some((n_states as f64, "states")),
            || {
                emission.log_likelihoods(black_box(93.7), &mut out);
                out[0]
            },
        ));
        let xs = [88.0f32, 91.5, 95.2, 99.9, 104.1, 96.3, 90.0, 93.3];
        let mut block = vec![0.0f32; xs.len() * n_states];
        results.push(bench(
            "mvm/emission_block8",
            Some((xs.len() as f64 * n_states as f64, "states")),
            || {
                emission.log_likelihoods_block(black_box(&xs), &mut block);
                block[0]
            },
        ));
        let mut xbar = CrossbarArray::new(3, 64);
        xbar.program(&vec![0.5f32; 3 * 64]);
        results.push(bench("mvm/crossbar_64x3", None, || {
            xbar.mvm(black_box(&[1.0, 2.0, 3.0]))
        }));
    }

    // --- CAM search ---
    {
        let keys: Vec<u64> = (0..100_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let mut bank = CamBank::build(keys.iter().copied(), 128);
        let mut i = 0usize;
        results.push(bench("cam/search_100k_keys", None, || {
            i = (i + 1) % keys.len();
            bank.search(black_box(keys[i]))
        }));
    }

    // --- Viterbi chunk decode (the dominant kernel), scratch-reuse path ---
    let synth = SignalSynthesizer::new(pore.clone());
    let caller = Basecaller::new(&pore, synth.mean_dwell());
    {
        let truth = GenomeBuilder::new(300).seed(1).build().sequence().clone();
        let sig = synth.synthesize(&truth, 1.0, 2);
        let mut scratch = CallScratch::new();
        results.push(bench(
            "basecall/viterbi_chunk_300bases",
            Some((sig.samples.len() as f64, "samples")),
            || {
                caller
                    .call_chunk_with(black_box(&sig.samples), None, &mut scratch)
                    .bases
                    .len()
            },
        ));
    }

    // --- Lane-batched Viterbi decode: W chunks in lockstep (SoA kernel) ---
    // The same chunk decode, batched W-wide through the structure-of-arrays
    // lane kernel. Chunks share one base count — the engine's lane batches
    // are chunk tasks cut at a fixed `chunk_bases`, so equal-sized chunks
    // are the representative load — while dwell noise still staggers the
    // exact sample counts, so the tail exercises lane drain. Every width's
    // outputs are asserted bit-identical to the scalar decoder on the same
    // jobs, and the W>1 rows report per-sample speedup over the W=1
    // (scalar-path) row.
    let mut lane_rows = Vec::new();
    let mut lane_batch_matches_scalar = true;
    {
        let signals: Vec<_> = (0..8usize)
            .map(|i| {
                let truth = GenomeBuilder::new(300)
                    .seed(40 + i as u64)
                    .build()
                    .sequence()
                    .clone();
                synth.synthesize(&truth, 1.0, 2)
            })
            .collect();
        let mut scalar_scratch = CallScratch::new();
        let reference: Vec<BasecalledChunk> = signals
            .iter()
            .map(|sig| caller.call_chunk_with(&sig.samples, None, &mut scalar_scratch))
            .collect();
        // Each width is measured in 3 rounds that alternate widths, and the
        // reported row is the per-width median: this host's load drifts on
        // a multi-second scale, and back-to-back per-width measurement
        // would let one slow window poison a single row's speedup ratio.
        let widths = [1usize, 4, 8];
        let mut trials: Vec<Vec<_>> = widths.iter().map(|_| Vec::new()).collect();
        for _round in 0..3 {
            for (wi, &width) in widths.iter().enumerate() {
                let jobs: Vec<ChunkJob> = signals[..width]
                    .iter()
                    .map(|sig| ChunkJob {
                        samples: &sig.samples,
                        carry: None,
                    })
                    .collect();
                let total_samples: usize = signals[..width].iter().map(|s| s.samples.len()).sum();
                let decoder = LaneDecoder::new(width);
                let mut scratch = LaneScratch::new();
                let mut chunks = Vec::new();
                let r = bench(
                    &format!("basecall/viterbi_lanes_{width}"),
                    Some((total_samples as f64, "samples")),
                    || {
                        decoder.call_batch(&caller, black_box(&jobs), &mut scratch, &mut chunks);
                        chunks.len()
                    },
                );
                decoder.call_batch(&caller, &jobs, &mut scratch, &mut chunks);
                lane_batch_matches_scalar &= chunks == reference[..width];
                trials[wi].push((r, total_samples));
            }
        }
        let mut width1_ns_per_sample = None;
        for (wi, &width) in widths.iter().enumerate() {
            trials[wi].sort_by(|a, b| {
                a.0.ns_per_iter
                    .partial_cmp(&b.0.ns_per_iter)
                    .expect("finite timings")
            });
            let (r, total_samples) = trials[wi].swap_remove(1);
            let ns_per_sample = r.ns_per_iter / total_samples as f64;
            if width == 1 {
                width1_ns_per_sample = Some(ns_per_sample);
            }
            lane_rows.push(Json::obj([
                ("kind", Json::Str("kernel".into())),
                ("width", Json::Num(width as f64)),
                ("ns_per_iter", Json::Num(r.ns_per_iter)),
                ("samples_per_s", Json::Num(1e9 / ns_per_sample)),
                (
                    "speedup_vs_width1",
                    Json::Num(width1_ns_per_sample.expect("width-1 row ran first") / ns_per_sample),
                ),
            ]));
            results.push(r);
        }
        assert!(
            lane_batch_matches_scalar,
            "lane-batched kernel diverged from the scalar decoder"
        );
    }

    // --- Minimizer sketching, scratch-reuse path ---
    {
        let seq = GenomeBuilder::new(10_000)
            .seed(3)
            .build()
            .sequence()
            .clone();
        let mut scratch = MinimizerScratch::default();
        let mut out = Vec::new();
        results.push(bench(
            "sketch/minimizers_10kb",
            Some((seq.len() as f64, "bases")),
            || {
                minimizers_into(black_box(&seq), 15, 10, &mut scratch, &mut out);
                out.len()
            },
        ));
    }

    // --- Chaining DP ---
    {
        let anchors: Vec<Anchor> = (0..2_000u64)
            .map(|i| Anchor {
                qpos: i * 7,
                rpos: 10_000 + i * 7 + (i % 13),
            })
            .collect();
        let mut chainer = IncrementalChainer::new(ChainParams::for_k(15));
        results.push(bench(
            "chain/2000_anchors",
            Some((anchors.len() as f64, "anchors")),
            || {
                chainer.reset();
                chainer.extend(black_box(&anchors));
                chainer.best_score()
            },
        ));
    }

    // --- Sharded seeding: fan-out lookup + chain at 1/2/4 shards ---
    // Measures the whole seed path (sketch, per-shard hash lookups, anchor
    // merge, chaining DP) as the index is split into more shards, and
    // asserts the headline property: mapping output is bit-identical to the
    // monolithic index at every shard count.
    let mut sharded_rows = Vec::new();
    let sharding_matches_monolithic;
    {
        let genome = GenomeBuilder::new(200_000).seed(21).build();
        let query = genome.sequence().subseq(80_000, 4_000);
        let mut monolithic_result = None;
        let mut bitwise_equal = true;
        for shards in [1usize, 2, 4] {
            let params = MapperParams {
                shards: if shards == 1 {
                    Shards::Single
                } else {
                    Shards::Fixed(shards)
                },
                ..MapperParams::default()
            };
            let mapper = Mapper::build(&genome, params);
            let mut scratch = SeedScratch::new();
            let mut batch = SeedBatch::default();
            let (mut fwd, mut rev) = mapper.new_chainers();
            let r = bench(
                &format!("seed/lookup_chain_{shards}_shards"),
                Some((query.len() as f64, "bases")),
                || {
                    fwd.reset();
                    rev.reset();
                    let n =
                        mapper.sketch_and_seed_into(black_box(&query), 0, &mut scratch, &mut batch);
                    fwd.extend(&batch.forward);
                    rev.extend(&batch.reverse);
                    (n, fwd.best_score().max(rev.best_score()))
                },
            );
            let mapping = mapper.map(&query);
            match &monolithic_result {
                None => monolithic_result = Some(mapping),
                Some(reference) => bitwise_equal &= reference == &mapping,
            }
            sharded_rows.push(Json::obj([
                ("shards", Json::Num(shards as f64)),
                ("ns_per_iter", Json::Num(r.ns_per_iter)),
                (
                    "index_entries_largest_shard",
                    Json::Num(mapper.index().max_shard_entries() as f64),
                ),
            ]));
            results.push(r);
        }
        sharding_matches_monolithic = bitwise_equal;
        assert!(
            sharding_matches_monolithic,
            "sharded mapping diverged from the monolithic index"
        );
    }

    // --- Pan-genome seeding: one read against 1 vs 3 named references ---
    // The whole per-read fan-out (one shared sketch, per-reference seeding
    // and chaining, deterministic best-hit merge) as the panel grows, with
    // the headline property asserted: a one-reference set is bit-identical
    // to the plain mapper, and the primary's candidate inside a three-way
    // panel is bit-identical to its solo result.
    let mut pan_rows = Vec::new();
    let pan_matches_solo;
    {
        let primary = GenomeBuilder::new(200_000).seed(21).name("primary").build();
        let decoys = [
            GenomeBuilder::new(150_000).seed(22).name("decoy_a").build(),
            GenomeBuilder::new(100_000).seed(23).name("decoy_b").build(),
        ];
        let query = primary.sequence().subseq(80_000, 4_000);
        let params = MapperParams::default();
        let solo = Mapper::build(&primary, params).map(&query);
        let mut solo_ns = None;
        let mut bitwise_equal = true;
        for n_refs in [1usize, 3] {
            let mut genomes = vec![primary.clone()];
            if n_refs > 1 {
                genomes.extend(decoys.iter().cloned());
            }
            let set = ReferenceSet::build(&genomes, params);
            let mut scratch = SeedScratch::new();
            let mut batches = Vec::new();
            let mut pairs = set.new_chainer_pairs();
            let r = bench(
                &format!("pan_genome/map_{n_refs}_references"),
                Some((query.len() as f64, "bases")),
                || {
                    set.map_with(black_box(&query), &mut scratch, &mut batches, &mut pairs)
                        .best_chain_score
                },
            );
            let result = set.map(&query);
            if n_refs == 1 {
                bitwise_equal &= result.best == solo.mapping
                    && result.best_chain_score == solo.best_chain_score
                    && result.counters == solo.counters;
                solo_ns = Some(r.ns_per_iter);
            } else {
                bitwise_equal &= result.per_reference[0].mapping == solo.mapping
                    && result.per_reference[0].best_chain_score == solo.best_chain_score;
            }
            pan_rows.push(Json::obj([
                ("references", Json::Num(n_refs as f64)),
                ("ns_per_iter", Json::Num(r.ns_per_iter)),
                (
                    "overhead_vs_solo",
                    Json::Num(r.ns_per_iter / solo_ns.expect("solo row ran first") - 1.0),
                ),
            ]));
            results.push(r);
        }
        pan_matches_solo = bitwise_equal;
        assert!(
            pan_matches_solo,
            "pan-genome mapping diverged from the solo mapper"
        );
    }

    // --- Banded alignment ---
    {
        use genpip_mapping::align::{banded_global, AlignmentParams};
        let genome = GenomeBuilder::new(3_000).seed(4).build();
        let q = genome.sequence().subseq(0, 2_000);
        let r = genome.sequence().subseq(0, 2_050);
        let params = AlignmentParams::default();
        results.push(bench(
            "align/banded_2kb_hw64",
            Some((q.len() as f64, "bases")),
            || banded_global(black_box(&q), black_box(&r), &params, 0, 64).score,
        ));
    }

    // --- End-to-end single read (basecall + map), scratch-reuse path ---
    {
        let genome = GenomeBuilder::new(100_000).seed(5).build();
        let mapper = Mapper::build(&genome, MapperParams::default());
        let truth = genome.sequence().subseq(40_000, 3_000);
        let sig = synth.synthesize(&truth, 1.0, 6);
        let mut call_scratch = CallScratch::new();
        let mut seed_scratch = SeedScratch::new();
        let mut batch = SeedBatch::default();
        results.push(bench(
            "end_to_end/basecall_and_map_3kb",
            Some((truth.len() as f64, "bases")),
            || {
                let mut seq = genpip_genomics::DnaSeq::new();
                let mut carry = None;
                for spec in genpip_signal::chunk_boundaries(sig.samples.len(), 2_400) {
                    let chunk = caller.call_chunk_with(
                        &sig.samples[spec.start..spec.end],
                        carry,
                        &mut call_scratch,
                    );
                    carry = chunk.carry;
                    seq.extend_from_seq(&chunk.bases);
                }
                let (mut fwd, mut rev) = mapper.new_chainers();
                let n = mapper.sketch_and_seed_into(&seq, 0, &mut seed_scratch, &mut batch);
                fwd.extend(&batch.forward);
                rev.extend(&batch.reverse);
                let (mapping, _, _) = mapper.finalize_mapping(&seq, &fwd, &rev);
                (n, mapping.is_some())
            },
        ));
    }

    // --- Pipeline scheduler ---
    {
        use genpip_sim::{Job, PipelineSim, SimTime, StageSpec};
        let jobs: Vec<Job> = (0..10_000)
            .map(|i| {
                Job::new(
                    i / 10,
                    i % 10,
                    vec![SimTime::from_ns(100.0), SimTime::from_ns(40.0)],
                )
            })
            .collect();
        results.push(bench(
            "sim/pipeline_10k_jobs",
            Some((jobs.len() as f64, "jobs")),
            || {
                let mut sim = PipelineSim::new(vec![
                    StageSpec::new("a", 8).sequential_within_read(),
                    StageSpec::new("b", 64),
                ]);
                sim.run(black_box(&jobs)).makespan
            },
        ));
    }

    println!("=== kernel micro-benchmarks ===");
    for r in &results {
        println!("{}", r.summary());
    }

    // --- End-to-end pipeline: one batch Session at 1/2/4 worker threads ---
    let scale = std::env::var("GENPIP_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.1);
    let dataset = DatasetProfile::ecoli().scaled(scale).generate();
    let total_samples: usize = dataset.reads.iter().map(|r| r.signal.samples.len()).sum();
    println!(
        "\n=== pipeline bench (scale {scale}: {} reads, {total_samples} samples) ===",
        dataset.reads.len()
    );

    let mut thread_rows = Vec::new();
    let mut serial_reads = None;
    let mut bit_identical = true;
    for workers in [1usize, 2, 4] {
        let config =
            GenPipConfig::for_dataset(&dataset.profile).with_parallelism(if workers == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(workers)
            });
        // One warm-up pass, then the timed pass.
        let _ = batch_via_session(&dataset, &config, ErMode::Full);
        let (reads, seconds) = time_once(|| batch_via_session(&dataset, &config, ErMode::Full));
        let reads_per_s = reads.len() as f64 / seconds;
        match &serial_reads {
            None => serial_reads = Some((reads.clone(), seconds)),
            Some((reference, _)) => bit_identical &= reference == &reads,
        }
        let speedup = serial_reads
            .as_ref()
            .map(|(_, s0)| s0 / seconds)
            .unwrap_or(1.0);
        println!(
            "threads {workers}: {seconds:.3} s  {reads_per_s:>8.1} reads/s  speedup {speedup:.2}x"
        );
        thread_rows.push(Json::obj([
            ("threads", Json::Num(workers as f64)),
            ("seconds", Json::Num(seconds)),
            ("reads_per_s", Json::Num(reads_per_s)),
            ("samples_per_s", Json::Num(total_samples as f64 / seconds)),
            ("speedup_vs_serial", Json::Num(speedup)),
        ]));
    }
    println!(
        "serial vs parallel outputs bit-identical: {bit_identical} (host threads: {})",
        Parallelism::Auto.workers()
    );
    assert!(
        bit_identical,
        "parallel pipeline diverged from serial output"
    );

    // --- Pipeline at decode lane widths: lanes 1 vs auto, same 4 workers ---
    // The end-to-end effect of worker-side lane batching: lanes=1 disables
    // batch draining (every chunk decodes through the scalar path), the
    // auto width lets each worker drain queued chunk tasks into one SoA
    // batch. Same session, same threads — only the decode width moves —
    // and the outputs must stay bit-identical to the serial reference.
    // Each row is the median of 3 runs: end-to-end seconds on a shared
    // host swing more than the decode-width effect being measured.
    println!("\n=== lane-batched pipeline bench (4 threads) ===");
    {
        let lane_reference = &serial_reads.as_ref().expect("serial pass ran").0;
        let mut lanes1_seconds = None;
        for decode_lanes in [1usize, Lanes::Auto.width()] {
            let config = GenPipConfig::for_dataset(&dataset.profile)
                .with_parallelism(Parallelism::Threads(4))
                .with_lanes(Lanes::Width(decode_lanes));
            let _ = batch_via_session(&dataset, &config, ErMode::Full);
            let mut trials: Vec<(Vec<_>, f64)> = (0..3)
                .map(|_| time_once(|| batch_via_session(&dataset, &config, ErMode::Full)))
                .collect();
            trials.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite timings"));
            for (reads, _) in &trials {
                lane_batch_matches_scalar &= reads == lane_reference;
            }
            let (reads, seconds) = trials.swap_remove(1);
            if decode_lanes == 1 {
                lanes1_seconds = Some(seconds);
            }
            let speedup = lanes1_seconds.expect("lanes-1 row ran first") / seconds;
            println!(
                "lanes {decode_lanes}: {seconds:.3} s  {:>8.1} reads/s  \
                 speedup vs lanes-1 {speedup:.2}x",
                reads.len() as f64 / seconds
            );
            lane_rows.push(Json::obj([
                ("kind", Json::Str("pipeline".into())),
                ("width", Json::Num(decode_lanes as f64)),
                ("threads", Json::Num(4.0)),
                ("seconds", Json::Num(seconds)),
                ("reads_per_s", Json::Num(reads.len() as f64 / seconds)),
                ("samples_per_s", Json::Num(total_samples as f64 / seconds)),
                ("speedup_vs_lanes1", Json::Num(speedup)),
            ]));
        }
    }
    println!("lane-batched outputs bit-identical to scalar: {lane_batch_matches_scalar}");
    assert!(
        lane_batch_matches_scalar,
        "lane-batched decode diverged from the scalar path"
    );

    // --- Streaming pipeline: lazy source → bounded queue → in-order sink ---
    // Timed end to end including on-the-fly read synthesis (the streaming
    // scenario: source latency is part of the pipeline), so reads/s here is
    // not directly comparable to the batch rows above.
    println!("\n=== streaming pipeline bench (lazy source, bounded queue) ===");
    let batch_reference = &serial_reads.as_ref().expect("serial pass ran").0;
    let mut streaming_rows = Vec::new();
    let mut streaming_matches_batch = true;
    for (workers, queue_capacity) in [(1usize, 8usize), (2, 8), (4, 2), (4, 16)] {
        let config =
            GenPipConfig::for_dataset(&dataset.profile).with_parallelism(if workers == 1 {
                Parallelism::Serial
            } else {
                Parallelism::Threads(workers)
            });
        let opts = StreamOptions {
            queue_capacity,
            ..StreamOptions::default()
        };
        let mut reads = Vec::new();
        let (summary, seconds) = time_once(|| {
            Session::new(config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .options(opts)
                .source("stream", StreamingSimulator::new(&dataset.profile))
                .sink("stream", |event| {
                    if let StreamEvent::Read(run) = event {
                        reads.push(run);
                    }
                })
                .run()
                .expect("bench session inputs are valid")
        });
        streaming_matches_batch &= &reads == batch_reference;
        let reads_per_s = summary.outcomes.reads_emitted as f64 / seconds;
        println!(
            "threads {workers} queue {queue_capacity:>2}: {seconds:.3} s  \
             {reads_per_s:>8.1} reads/s  peak in-flight {}/{}",
            summary.max_in_flight, summary.in_flight_limit
        );
        streaming_rows.push(Json::obj([
            ("threads", Json::Num(workers as f64)),
            ("queue_capacity", Json::Num(queue_capacity as f64)),
            ("seconds", Json::Num(seconds)),
            ("reads_per_s", Json::Num(reads_per_s)),
            (
                "samples_per_s",
                Json::Num(summary.totals.samples as f64 / seconds),
            ),
            ("max_in_flight", Json::Num(summary.max_in_flight as f64)),
            ("in_flight_limit", Json::Num(summary.in_flight_limit as f64)),
        ]));
    }
    println!("streaming vs batch outputs bit-identical: {streaming_matches_batch}");
    assert!(
        streaming_matches_batch,
        "streaming pipeline diverged from batch output"
    );

    // --- File streaming: on-disk GSC container replay vs in-memory source ---
    // Packs the bench dataset into a GSC container once (pack throughput is
    // its own row), then replays the file through the same session the
    // in-memory rows above used. The file rows time the whole read path —
    // open, per-record decode, checksum verification — and report the tax
    // against the equivalent in-memory run, with the headline property
    // asserted: file-backed streaming is bit-identical to the batch
    // reference at every worker count.
    println!("\n=== file streaming bench (GSC container read path) ===");
    let mut file_rows = Vec::new();
    let mut file_streaming_matches_memory = true;
    {
        let gsc_path =
            std::env::temp_dir().join(format!("genpip-bench-{}.gsc", std::process::id()));
        let (packed, pack_seconds) = time_once(|| {
            let mut source = StreamingSimulator::new(&dataset.profile);
            pack_source(&gsc_path, &mut source).expect("pack bench container")
        });
        println!(
            "pack: {pack_seconds:.3} s  {:>8.1} reads/s  {} bytes ({:.1} MB/s)",
            packed.reads as f64 / pack_seconds,
            packed.file_bytes,
            packed.file_bytes as f64 / pack_seconds / 1e6
        );
        file_rows.push(Json::obj([
            ("case", Json::Str("pack".into())),
            ("seconds", Json::Num(pack_seconds)),
            ("reads_per_s", Json::Num(packed.reads as f64 / pack_seconds)),
            ("file_bytes", Json::Num(packed.file_bytes as f64)),
            (
                "bytes_per_s",
                Json::Num(packed.file_bytes as f64 / pack_seconds),
            ),
        ]));
        for workers in [1usize, 4] {
            let config =
                GenPipConfig::for_dataset(&dataset.profile).with_parallelism(if workers == 1 {
                    Parallelism::Serial
                } else {
                    Parallelism::Threads(workers)
                });
            let opts = StreamOptions {
                queue_capacity: 8,
                ..StreamOptions::default()
            };
            let run_from = |label: &str, file_backed: bool| {
                let mut reads = Vec::new();
                let (_, seconds) = time_once(|| {
                    let session = Session::new(config.clone())
                        .flow(Flow::GenPip(ErMode::Full))
                        .options(opts);
                    let session = if file_backed {
                        session.source(
                            label,
                            GscReadSource::open(&gsc_path).expect("open bench container"),
                        )
                    } else {
                        session.source(label, StreamingSimulator::new(&dataset.profile))
                    };
                    session
                        .sink(label, |event| {
                            if let StreamEvent::Read(run) = event {
                                reads.push(run);
                            }
                        })
                        .run()
                        .expect("bench session inputs are valid")
                });
                (reads, seconds)
            };
            let (memory_reads, memory_seconds) = run_from("memory", false);
            let (file_reads, file_seconds) = run_from("file", true);
            file_streaming_matches_memory &=
                &file_reads == batch_reference && memory_reads == file_reads;
            println!(
                "threads {workers}: file {file_seconds:.3} s  {:>8.1} reads/s  \
                 (memory {memory_seconds:.3} s, file tax {:+.1}%)",
                file_reads.len() as f64 / file_seconds,
                (file_seconds / memory_seconds - 1.0) * 100.0
            );
            file_rows.push(Json::obj([
                ("case", Json::Str(format!("replay_threads_{workers}"))),
                ("threads", Json::Num(workers as f64)),
                ("seconds", Json::Num(file_seconds)),
                (
                    "reads_per_s",
                    Json::Num(file_reads.len() as f64 / file_seconds),
                ),
                ("memory_seconds", Json::Num(memory_seconds)),
                (
                    "overhead_vs_memory",
                    Json::Num(file_seconds / memory_seconds - 1.0),
                ),
            ]));
        }
        std::fs::remove_file(&gsc_path).ok();
    }
    println!("file-backed streaming bit-identical to memory: {file_streaming_matches_memory}");
    assert!(
        file_streaming_matches_memory,
        "GSC container replay diverged from the in-memory source"
    );

    // --- Multi-source session: 1 vs 2 interleaved sources, one pool ---
    // The scheduling tax of serving two concurrent runs from one worker
    // pool, measured end to end (fair-share interleaving, shared in-flight
    // gate), with the headline property asserted: each source's per-read
    // output is bit-identical to running it alone.
    println!("\n=== multi-source session bench (fair-share, one worker pool) ===");
    let mut multi_rows = Vec::new();
    let mut multi_matches_solo = true;
    for n_sources in [1usize, 2] {
        let config =
            GenPipConfig::for_dataset(&dataset.profile).with_parallelism(Parallelism::Threads(4));
        let opts = StreamOptions {
            queue_capacity: 8,
            ..StreamOptions::default()
        };
        let mut collected: Vec<Vec<ReadRun>> = vec![Vec::new(); n_sources];
        let (report, seconds) = time_once(|| {
            let mut session = Session::new(config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .schedule(Schedule::FairShare)
                .options(opts);
            for (i, bucket) in collected.iter_mut().enumerate() {
                let id = format!("src{i}");
                session = session
                    .source(id.as_str(), StreamingSimulator::new(&dataset.profile))
                    .sink(id.as_str(), move |event| {
                        if let StreamEvent::Read(run) = event {
                            bucket.push(run);
                        }
                    });
            }
            session.run().expect("bench session inputs are valid")
        });
        for bucket in &collected {
            multi_matches_solo &= bucket == batch_reference;
        }
        let reads_per_s = report.outcomes.reads_emitted as f64 / seconds;
        println!(
            "sources {n_sources}: {seconds:.3} s  {reads_per_s:>8.1} reads/s  \
             peak in-flight {}/{}",
            report.max_in_flight, report.in_flight_limit
        );
        multi_rows.push(Json::obj([
            ("sources", Json::Num(n_sources as f64)),
            ("threads", Json::Num(4.0)),
            ("seconds", Json::Num(seconds)),
            ("reads_per_s", Json::Num(reads_per_s)),
            (
                "samples_per_s",
                Json::Num(report.totals.samples as f64 / seconds),
            ),
            ("max_in_flight", Json::Num(report.max_in_flight as f64)),
            ("in_flight_limit", Json::Num(report.in_flight_limit as f64)),
        ]));
    }
    println!("per-source outputs bit-identical to solo runs: {multi_matches_solo}");
    assert!(
        multi_matches_solo,
        "multi-source session diverged from solo output"
    );

    // --- Chunk granularity: read-granular vs chunk-granular scheduling ---
    // A mixed workload (a few ~120-chunk reads next to many ~2-chunk
    // reads) over 2 workers and a roomy queue: read-granular scheduling
    // queues short reads behind whole long reads, chunk-granular
    // scheduling interleaves chains per chunk. The short source's p99
    // residency (chunk-work units) is the head-of-line-blocking metric;
    // per-read output must be bit-identical between granularities.
    println!("\n=== chunk granularity bench (mixed short/long workload) ===");
    let long_profile = DatasetProfile::uniform("long", 4, 36_000.0);
    let short_profile = DatasetProfile::uniform("short", 60, 600.0);
    let mixed_config =
        GenPipConfig::for_dataset(&long_profile).with_parallelism(Parallelism::Threads(2));
    let mixed_opts = StreamOptions {
        queue_capacity: 8,
        ..StreamOptions::default()
    };
    let mut granularity_rows = Vec::new();
    let mut granularity_outputs: Vec<(Vec<ReadRun>, Vec<ReadRun>)> = Vec::new();
    for granularity in [Granularity::Read, Granularity::Chunk] {
        let mut short_reads = Vec::new();
        let mut long_reads = Vec::new();
        let (report, seconds) = time_once(|| {
            Session::new(mixed_config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .schedule(Schedule::FairShare)
                .granularity(granularity)
                .options(mixed_opts)
                .source("short", StreamingSimulator::new(&short_profile))
                .source("long", StreamingSimulator::new(&long_profile))
                .sink("short", |event| {
                    if let StreamEvent::Read(run) = event {
                        short_reads.push(run);
                    }
                })
                .sink("long", |event| {
                    if let StreamEvent::Read(run) = event {
                        long_reads.push(run);
                    }
                })
                .run()
                .expect("bench session inputs are valid")
        });
        let short_latency = report
            .source("short")
            .expect("short reported")
            .summary
            .latency;
        let label = match granularity {
            Granularity::Read => "read ",
            Granularity::Chunk => "chunk",
        };
        println!(
            "granularity {label}: {seconds:.3} s  short-read residency p50/p99/max \
             {}/{}/{} units  aggregate p99 {}  peak resident {}/{}",
            short_latency.p50,
            short_latency.p99,
            short_latency.max,
            report.latency.p99,
            report.max_in_flight,
            report.in_flight_limit
        );
        granularity_rows.push(Json::obj([
            (
                "granularity",
                Json::Str(match granularity {
                    Granularity::Read => "read".into(),
                    Granularity::Chunk => "chunk".into(),
                }),
            ),
            ("threads", Json::Num(2.0)),
            ("queue_capacity", Json::Num(8.0)),
            ("seconds", Json::Num(seconds)),
            ("short_p50", Json::Num(short_latency.p50 as f64)),
            ("short_p99", Json::Num(short_latency.p99 as f64)),
            ("short_max", Json::Num(short_latency.max as f64)),
            ("aggregate_p99", Json::Num(report.latency.p99 as f64)),
            ("max_in_flight", Json::Num(report.max_in_flight as f64)),
            ("in_flight_limit", Json::Num(report.in_flight_limit as f64)),
        ]));
        granularity_outputs.push((short_reads, long_reads));
    }
    let chunk_granularity_matches = granularity_outputs[0] == granularity_outputs[1];
    println!("read-granular vs chunk-granular outputs bit-identical: {chunk_granularity_matches}");
    assert!(
        chunk_granularity_matches,
        "chunk-granular scheduling diverged from read-granular output"
    );

    // --- Fault tolerance: containment overhead at 0% and 5% injection ---
    // The same session run through a `FaultInjector` under the Quarantine
    // policy. The 0% row measures the pure containment tax (catch_unwind
    // wrapping, policy checks, backlog accounting) against the rows above;
    // the 5% row shows a faulty flowcell feed surviving. Asserted at both
    // rates: survivors are bit-identical to the fault-free reference minus
    // the injected reads, and the quarantined set equals the injected set.
    println!("\n=== fault tolerance bench (quarantine containment) ===");
    let mut fault_rows = Vec::new();
    let mut fault_tolerance_matches = true;
    for inject_rate in [0.0f64, 0.05] {
        let config = GenPipConfig::for_dataset(&dataset.profile)
            .with_parallelism(Parallelism::Threads(4))
            .with_fault_policy(genpip_core::FaultPolicy::Quarantine);
        let mut injector =
            FaultInjector::new(StreamingSimulator::new(&dataset.profile), inject_rate, 42);
        let mut survivors = Vec::new();
        let mut failed_ids = Vec::new();
        let (report, seconds) = time_once(|| {
            Session::new(config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .options(StreamOptions {
                    queue_capacity: 8,
                    ..StreamOptions::default()
                })
                .source("faulty", &mut injector)
                .sink("faulty", |event| match event {
                    StreamEvent::Read(run) => survivors.push(run),
                    StreamEvent::Failed { read_id, .. } => failed_ids.push(read_id),
                    _ => {}
                })
                .run()
                .expect("bench session inputs are valid")
        });
        let injected = injector.injected_ids().to_vec();
        let expected: Vec<ReadRun> = batch_reference
            .iter()
            .filter(|run| !injected.contains(&run.id))
            .cloned()
            .collect();
        let mut sorted_failed = failed_ids.clone();
        sorted_failed.sort_unstable();
        let mut sorted_injected = injected.clone();
        sorted_injected.sort_unstable();
        fault_tolerance_matches &= survivors == expected && sorted_failed == sorted_injected;
        let reads_per_s = report.outcomes.reads_emitted as f64 / seconds;
        println!(
            "inject {:>4.1}%: {seconds:.3} s  {reads_per_s:>8.1} reads/s  \
             failed {}  retried {}  backlog high-water {}  peak in-flight {}/{}",
            inject_rate * 100.0,
            report.outcomes.failed,
            report.retried,
            report.max_reject_backlog,
            report.max_in_flight,
            report.in_flight_limit
        );
        fault_rows.push(Json::obj([
            ("inject_rate", Json::Num(inject_rate)),
            ("threads", Json::Num(4.0)),
            ("seconds", Json::Num(seconds)),
            ("reads_per_s", Json::Num(reads_per_s)),
            ("failed", Json::Num(report.outcomes.failed as f64)),
            ("retried", Json::Num(report.retried as f64)),
            (
                "max_reject_backlog",
                Json::Num(report.max_reject_backlog as f64),
            ),
            ("max_in_flight", Json::Num(report.max_in_flight as f64)),
            ("in_flight_limit", Json::Num(report.in_flight_limit as f64)),
        ]));
    }
    println!("survivors bit-identical, quarantined == injected: {fault_tolerance_matches}");
    assert!(
        fault_tolerance_matches,
        "fault containment changed the surviving reads"
    );

    // --- Live session: control-plane attach/detach + Deadline tails ---
    // A source attached mid-run must cost only the control-plane
    // round-trip (its per-read output stays bit-identical to a static
    // registration), a detach must drain and finalize without disturbing
    // the surviving source, and the Deadline schedule must move only
    // *when* chunks run — never the results.
    println!("\n=== live session bench (control plane + Deadline schedule) ===");
    let mut live_rows = Vec::new();
    let mut live_matches_static = true;
    let live_config =
        GenPipConfig::for_dataset(&dataset.profile).with_parallelism(Parallelism::Threads(4));
    let live_opts = StreamOptions {
        queue_capacity: 8,
        ..StreamOptions::default()
    };

    // Baseline: both sources registered before the run.
    let mut static_a = Vec::new();
    let mut static_b = Vec::new();
    let (static_report, static_seconds) = time_once(|| {
        Session::new(live_config.clone())
            .flow(Flow::GenPip(ErMode::Full))
            .schedule(Schedule::FairShare)
            .options(live_opts)
            .source("a", StreamingSimulator::new(&dataset.profile))
            .source("b", StreamingSimulator::new(&dataset.profile))
            .sink("a", |event| {
                if let StreamEvent::Read(run) = event {
                    static_a.push(run);
                }
            })
            .sink("b", |event| {
                if let StreamEvent::Read(run) = event {
                    static_b.push(run);
                }
            })
            .run()
            .expect("bench session inputs are valid")
    });
    println!(
        "static two-source: {static_seconds:.3} s  peak in-flight {}/{}",
        static_report.max_in_flight, static_report.in_flight_limit
    );
    live_rows.push(Json::obj([
        ("case", Json::Str("static_two_source".into())),
        ("threads", Json::Num(4.0)),
        ("seconds", Json::Num(static_seconds)),
        (
            "reads_per_s",
            Json::Num(static_report.outcomes.reads_emitted as f64 / static_seconds),
        ),
        (
            "max_in_flight",
            Json::Num(static_report.max_in_flight as f64),
        ),
        (
            "in_flight_limit",
            Json::Num(static_report.in_flight_limit as f64),
        ),
    ]));

    // Live attach: "b" joins through the control plane after "a"'s fifth
    // emission; per-source output must match the static registration.
    {
        let control = SessionControl::new();
        let live_a: Arc<Mutex<Vec<ReadRun>>> = Arc::new(Mutex::new(Vec::new()));
        let live_b: Arc<Mutex<Vec<ReadRun>>> = Arc::new(Mutex::new(Vec::new()));
        let attach_handle = Arc::new(Mutex::new(None));
        let (live_report, live_seconds) = time_once(|| {
            let profile = dataset.profile.clone();
            let control_in_sink = control.clone();
            let a_bucket = Arc::clone(&live_a);
            let b_bucket = Arc::clone(&live_b);
            let handle_slot = Arc::clone(&attach_handle);
            let mut emitted = 0usize;
            Session::new(live_config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .schedule(Schedule::FairShare)
                .options(live_opts)
                .source("a", StreamingSimulator::new(&dataset.profile))
                .sink("a", move |event| {
                    if let StreamEvent::Read(run) = event {
                        a_bucket.lock().unwrap().push(run);
                        emitted += 1;
                        if emitted == 5 {
                            let sink_bucket = Arc::clone(&b_bucket);
                            let handle = control_in_sink.attach_with(
                                "b",
                                StreamingSimulator::new(&profile),
                                AttachSpec::new().sink(move |event| {
                                    if let StreamEvent::Read(run) = event {
                                        sink_bucket.lock().unwrap().push(run);
                                    }
                                }),
                            );
                            *handle_slot.lock().unwrap() = Some(handle);
                        }
                    }
                })
                .run_with_control(&control)
                .expect("bench session inputs are valid")
        });
        let handle = attach_handle.lock().unwrap().take().expect("attach fired");
        handle.wait().expect("attach accepted");
        let live_a = live_a.lock().unwrap();
        let live_b = live_b.lock().unwrap();
        live_matches_static &= *live_a == static_a && *live_b == static_b;
        println!(
            "live attach at 5: {live_seconds:.3} s  (overhead vs static {:+.1}%)  \
             peak in-flight {}/{}",
            (live_seconds / static_seconds - 1.0) * 100.0,
            live_report.max_in_flight,
            live_report.in_flight_limit
        );
        live_rows.push(Json::obj([
            ("case", Json::Str("live_attach".into())),
            ("threads", Json::Num(4.0)),
            ("seconds", Json::Num(live_seconds)),
            (
                "reads_per_s",
                Json::Num(live_report.outcomes.reads_emitted as f64 / live_seconds),
            ),
            (
                "overhead_vs_static",
                Json::Num(live_seconds / static_seconds - 1.0),
            ),
            ("max_in_flight", Json::Num(live_report.max_in_flight as f64)),
            (
                "in_flight_limit",
                Json::Num(live_report.in_flight_limit as f64),
            ),
        ]));
    }

    // Live detach: "b" leaves through the control plane after ten total
    // emissions; its resident chains finish (summary finalized) and the
    // surviving source's output is untouched.
    {
        let control = SessionControl::new();
        let survivor: Arc<Mutex<Vec<ReadRun>>> = Arc::new(Mutex::new(Vec::new()));
        let detach_handle = Arc::new(Mutex::new(None));
        let emitted = Arc::new(Mutex::new(0usize));
        let (detach_report, detach_seconds) = time_once(|| {
            let mut session = Session::new(live_config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .schedule(Schedule::FairShare)
                .options(live_opts)
                .source("a", StreamingSimulator::new(&dataset.profile))
                .source("b", StreamingSimulator::new(&dataset.profile));
            for id in ["a", "b"] {
                let control_in_sink = control.clone();
                let handle_slot = Arc::clone(&detach_handle);
                let counter = Arc::clone(&emitted);
                let bucket = (id == "a").then(|| Arc::clone(&survivor));
                session = session.sink(id, move |event| {
                    if let StreamEvent::Read(run) = event {
                        if let Some(bucket) = &bucket {
                            bucket.lock().unwrap().push(run);
                        }
                        let mut n = counter.lock().unwrap();
                        *n += 1;
                        if *n == 10 {
                            *handle_slot.lock().unwrap() = Some(control_in_sink.detach("b"));
                        }
                    }
                });
            }
            session
                .run_with_control(&control)
                .expect("bench session inputs are valid")
        });
        let handle = detach_handle.lock().unwrap().take().expect("detach fired");
        let summary = handle.wait().expect("detach honored");
        live_matches_static &= *survivor.lock().unwrap() == static_a;
        println!(
            "live detach at 10: {detach_seconds:.3} s  detached source emitted {} \
             read(s) before leaving",
            summary.outcomes.reads_emitted
        );
        live_rows.push(Json::obj([
            ("case", Json::Str("live_detach".into())),
            ("threads", Json::Num(4.0)),
            ("seconds", Json::Num(detach_seconds)),
            (
                "detached_reads_emitted",
                Json::Num(summary.outcomes.reads_emitted as f64),
            ),
            (
                "max_in_flight",
                Json::Num(detach_report.max_in_flight as f64),
            ),
            (
                "in_flight_limit",
                Json::Num(detach_report.in_flight_limit as f64),
            ),
        ]));
    }

    // Deadline vs FairShare on the mixed workload: the short source gets a
    // tight residency target, the long source a lax one. Outputs must stay
    // bit-identical — the schedule only moves *when* chunks run.
    let mut tail_outputs: Vec<(Vec<ReadRun>, Vec<ReadRun>)> = Vec::new();
    for (label, schedule) in [
        ("fairshare", Schedule::FairShare),
        ("deadline", Schedule::Deadline(vec![16, 400])),
    ] {
        let mut short_reads = Vec::new();
        let mut long_reads = Vec::new();
        let (report, seconds) = time_once(|| {
            Session::new(mixed_config.clone())
                .flow(Flow::GenPip(ErMode::Full))
                .schedule(schedule)
                .options(mixed_opts)
                .source("short", StreamingSimulator::new(&short_profile))
                .source("long", StreamingSimulator::new(&long_profile))
                .sink("short", |event| {
                    if let StreamEvent::Read(run) = event {
                        short_reads.push(run);
                    }
                })
                .sink("long", |event| {
                    if let StreamEvent::Read(run) = event {
                        long_reads.push(run);
                    }
                })
                .run()
                .expect("bench session inputs are valid")
        });
        let short_latency = report
            .source("short")
            .expect("short reported")
            .summary
            .latency;
        println!(
            "tails {label:>9}: {seconds:.3} s  short-source residency p50/p99/max \
             {}/{}/{} units",
            short_latency.p50, short_latency.p99, short_latency.max
        );
        live_rows.push(Json::obj([
            ("case", Json::Str(format!("tail_{label}"))),
            ("threads", Json::Num(2.0)),
            ("seconds", Json::Num(seconds)),
            ("short_p50", Json::Num(short_latency.p50 as f64)),
            ("short_p99", Json::Num(short_latency.p99 as f64)),
            ("short_max", Json::Num(short_latency.max as f64)),
            ("aggregate_p99", Json::Num(report.latency.p99 as f64)),
        ]));
        tail_outputs.push((short_reads, long_reads));
    }
    live_matches_static &= tail_outputs[0] == tail_outputs[1];
    println!("live-session outputs bit-identical to static/FairShare: {live_matches_static}");
    assert!(
        live_matches_static,
        "live session attach/detach or Deadline changed per-source outputs"
    );

    let report = Json::obj([
        ("schema", Json::Str("genpip-bench-kernels-v1".into())),
        (
            "generated_by",
            Json::Str("cargo bench --bench kernels".into()),
        ),
        (
            "host_threads",
            Json::Num(Parallelism::Auto.workers() as f64),
        ),
        ("host_simd", Json::Str(host_simd().into())),
        ("host_lanes_auto", Json::Num(Lanes::Auto.width() as f64)),
        ("host_lanes_max", Json::Num(LaneDecoder::MAX_WIDTH as f64)),
        ("dataset_scale", Json::Num(scale)),
        ("dataset_reads", Json::Num(dataset.reads.len() as f64)),
        ("dataset_samples", Json::Num(total_samples as f64)),
        (
            "kernels",
            Json::Arr(results.iter().map(bench_json).collect()),
        ),
        ("pipeline_threads", Json::Arr(thread_rows)),
        ("pipeline_bit_identical", Json::Bool(bit_identical)),
        ("lane_batch", Json::Arr(lane_rows)),
        (
            "lane_batch_matches_scalar",
            Json::Bool(lane_batch_matches_scalar),
        ),
        ("streaming", Json::Arr(streaming_rows)),
        (
            "streaming_matches_batch",
            Json::Bool(streaming_matches_batch),
        ),
        ("file_streaming", Json::Arr(file_rows)),
        (
            "file_streaming_matches_memory",
            Json::Bool(file_streaming_matches_memory),
        ),
        ("sharded_seeding", Json::Arr(sharded_rows)),
        (
            "sharding_matches_monolithic",
            Json::Bool(sharding_matches_monolithic),
        ),
        ("pan_genome", Json::Arr(pan_rows)),
        ("pan_genome_matches_solo", Json::Bool(pan_matches_solo)),
        ("multi_source", Json::Arr(multi_rows)),
        ("multi_source_matches_solo", Json::Bool(multi_matches_solo)),
        ("chunk_granularity", Json::Arr(granularity_rows)),
        (
            "chunk_granularity_matches",
            Json::Bool(chunk_granularity_matches),
        ),
        ("fault_tolerance", Json::Arr(fault_rows)),
        (
            "fault_tolerance_matches",
            Json::Bool(fault_tolerance_matches),
        ),
        ("live_session", Json::Arr(live_rows)),
        (
            "live_session_matches_static",
            Json::Bool(live_matches_static),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, report.render()) {
        Ok(()) => println!("[report written to {path}]"),
        Err(e) => eprintln!("[failed to write {path}: {e}]"),
    }
}
