//! Criterion micro-benchmarks of the computational kernels.
//!
//! These measure the *real* wall-clock cost of this reproduction's
//! implementations (not the modelled hardware times): the MVM emission
//! kernel, CAM search, Viterbi chunk decoding, minimizer extraction,
//! chaining DP, banded alignment, and end-to-end single-read processing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use genpip_basecall::{Basecaller, EmissionModel};
use genpip_genomics::GenomeBuilder;
use genpip_mapping::{minimizers, Anchor, ChainParams, IncrementalChainer, Mapper, MapperParams};
use genpip_pim::{CamBank, CrossbarArray};
use genpip_signal::{PoreModel, SignalSynthesizer};
use std::hint::black_box;

fn bench_mvm(c: &mut Criterion) {
    let pore = PoreModel::synthetic(3, 7);
    let emission = EmissionModel::from_pore_model(&pore);
    let mut group = c.benchmark_group("mvm");
    group.throughput(Throughput::Elements(emission.states() as u64));

    group.bench_function("emission_64_states", |b| {
        let mut out = vec![0.0f32; emission.states()];
        b.iter(|| {
            emission.log_likelihoods(black_box(93.7), &mut out);
            black_box(out[0])
        });
    });

    group.bench_function("crossbar_64x3", |b| {
        let mut xbar = CrossbarArray::new(3, 64);
        xbar.program(&vec![0.5f32; 3 * 64]);
        b.iter(|| black_box(xbar.mvm(black_box(&[1.0, 2.0, 3.0]))));
    });
    group.finish();
}

fn bench_cam(c: &mut Criterion) {
    let keys: Vec<u64> = (0..100_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect();
    let mut bank = CamBank::build(keys.iter().copied(), 128);
    c.bench_function("cam_search_100k_keys", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(bank.search(black_box(keys[i])))
        });
    });
}

fn bench_viterbi(c: &mut Criterion) {
    let pore = PoreModel::synthetic(3, 7);
    let synth = SignalSynthesizer::new(pore.clone());
    let caller = Basecaller::new(&pore, synth.mean_dwell());
    let truth = GenomeBuilder::new(300).seed(1).build().sequence().clone();
    let sig = synth.synthesize(&truth, 1.0, 2);
    let mut group = c.benchmark_group("basecall");
    group.throughput(Throughput::Elements(sig.samples.len() as u64));
    group.bench_function("viterbi_chunk_300bases", |b| {
        b.iter(|| black_box(caller.call_chunk(black_box(&sig.samples), None)));
    });
    group.finish();
}

fn bench_minimizers(c: &mut Criterion) {
    let seq = GenomeBuilder::new(10_000).seed(3).build().sequence().clone();
    let mut group = c.benchmark_group("sketch");
    group.throughput(Throughput::Elements(seq.len() as u64));
    group.bench_function("minimizers_10kb", |b| {
        b.iter(|| black_box(minimizers(black_box(&seq), 15, 10)));
    });
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let anchors: Vec<Anchor> = (0..2_000u32)
        .map(|i| Anchor { qpos: i * 7, rpos: 10_000 + i * 7 + (i % 13) })
        .collect();
    c.bench_function("chain_2000_anchors", |b| {
        b.iter_batched(
            || IncrementalChainer::new(ChainParams::for_k(15)),
            |mut chainer| {
                chainer.extend(black_box(&anchors));
                black_box(chainer.best_score())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_align(c: &mut Criterion) {
    use genpip_mapping::align::{banded_global, AlignmentParams};
    let genome = GenomeBuilder::new(3_000).seed(4).build();
    let q = genome.sequence().subseq(0, 2_000);
    let r = genome.sequence().subseq(0, 2_050);
    let params = AlignmentParams::default();
    let mut group = c.benchmark_group("align");
    group.throughput(Throughput::Elements(q.len() as u64));
    group.bench_function("banded_2kb_hw64", |b| {
        b.iter(|| black_box(banded_global(black_box(&q), black_box(&r), &params, 0, 64)));
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let pore = PoreModel::synthetic(3, 7);
    let synth = SignalSynthesizer::new(pore.clone());
    let caller = Basecaller::new(&pore, synth.mean_dwell());
    let genome = GenomeBuilder::new(100_000).seed(5).build();
    let mapper = Mapper::build(&genome, MapperParams::default());
    let truth = genome.sequence().subseq(40_000, 3_000);
    let sig = synth.synthesize(&truth, 1.0, 6);
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.throughput(Throughput::Elements(truth.len() as u64));
    group.bench_function("basecall_and_map_3kb_read", |b| {
        b.iter(|| {
            let called = caller.call_read(black_box(&sig.samples), 2_400);
            black_box(mapper.map(&called.seq))
        });
    });
    group.finish();
}

fn bench_pipeline_sim(c: &mut Criterion) {
    use genpip_sim::{Job, PipelineSim, SimTime, StageSpec};
    let jobs: Vec<Job> = (0..10_000)
        .map(|i| {
            Job::new(
                i / 10,
                i % 10,
                vec![SimTime::from_ns(100.0), SimTime::from_ns(40.0)],
            )
        })
        .collect();
    c.bench_function("pipeline_sim_10k_jobs", |b| {
        b.iter_batched(
            || {
                PipelineSim::new(vec![
                    StageSpec::new("a", 8).sequential_within_read(),
                    StageSpec::new("b", 64),
                ])
            },
            |mut sim| black_box(sim.run(black_box(&jobs))),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    kernels,
    bench_mvm,
    bench_cam,
    bench_viterbi,
    bench_minimizers,
    bench_chain,
    bench_align,
    bench_end_to_end,
    bench_pipeline_sim
);
criterion_main!(kernels);
