//! Regenerates the paper's fig13 results; see genpip_core::experiments::fig13.

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("fig13_cmr_sensitivity", || {
        genpip_core::experiments::fig13::run(scale)
    });
}
