//! Regenerates the paper's useless results; see genpip_core::experiments::useless.

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("useless_reads", || {
        genpip_core::experiments::useless::run(scale)
    });
}
