//! Regenerates Figure 10 (speedups of the ten systems over CPU).

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("fig10_speedup", || {
        genpip_core::experiments::fig10::run(scale)
    });
}
