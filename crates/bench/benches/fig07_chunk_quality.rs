//! Regenerates the paper's fig07 results; see genpip_core::experiments::fig07.

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("fig07_chunk_quality", || {
        genpip_core::experiments::fig07::run(scale)
    });
}
