//! Regenerates the paper's tab01 results; see genpip_core::experiments::tab01.

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("tab01_datasets", || {
        genpip_core::experiments::tab01::run(scale)
    });
}
