//! Regenerates Figure 11 (energy reduction of the ten systems over CPU).

fn main() {
    let scale = genpip_core::experiments::default_scale();
    genpip_bench::run_harness("fig11_energy", || {
        genpip_core::experiments::fig11::run(scale)
    });
}
