//! Regenerates Table 2 (area/power breakdown); see genpip_core::experiments::tab02.

fn main() {
    genpip_bench::run_harness("tab02_area_power", genpip_core::experiments::tab02::run);
}
