//! Property-based tests of the signal substrate.

use genpip_genomics::{Base, DnaSeq};
use genpip_signal::{chunk_boundaries, normalize_to_model, PoreModel, SignalSynthesizer};
use proptest::prelude::*;

fn arb_dna(range: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, range)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunks_partition_any_signal(total in 0usize..100_000, chunk in 1usize..5_000) {
        let chunks = chunk_boundaries(total, chunk);
        let covered: usize = chunks.iter().map(|c| c.len()).sum();
        prop_assert_eq!(covered, total);
        for (i, c) in chunks.iter().enumerate() {
            prop_assert_eq!(c.index, i);
            prop_assert!(c.len() <= chunk);
            prop_assert!(!c.is_empty());
        }
        // Only the last chunk may be partial.
        for c in chunks.iter().rev().skip(1) {
            prop_assert_eq!(c.len(), chunk);
        }
    }

    #[test]
    fn synthesis_sample_count_matches_truth_index(seq in arb_dna(3..400), sigma in 0.1f64..3.0, seed in 0u64..100) {
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model);
        let sig = synth.synthesize(&seq, sigma, seed);
        prop_assert_eq!(sig.samples.len(), sig.base_index.len());
        if seq.len() >= 3 {
            prop_assert!(!sig.samples.is_empty());
            // base_index covers exactly the k-mer range.
            prop_assert_eq!(sig.base_index[0], 0);
            prop_assert_eq!(*sig.base_index.last().unwrap() as usize, seq.len() - 3);
        } else {
            prop_assert!(sig.samples.is_empty());
        }
    }

    #[test]
    fn normalization_is_affine_invariant(
        seq in arb_dna(50..300),
        offset in -200.0f32..200.0,
        gain in 0.2f32..5.0,
        seed in 0u64..50,
    ) {
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model.clone());
        let sig = synth.synthesize(&seq, 1.0, seed);
        prop_assume!(sig.samples.len() >= 16);

        let mut reference = sig.samples.clone();
        normalize_to_model(&mut reference, &model);
        let mut corrupted: Vec<f32> = sig.samples.iter().map(|x| x * gain + offset).collect();
        normalize_to_model(&mut corrupted, &model);
        for (a, b) in corrupted.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 0.6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn normalized_median_hits_model_median(seq in arb_dna(60..300), seed in 0u64..50) {
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model.clone());
        let mut sig = synth.synthesize(&seq, 2.0, seed);
        prop_assume!(!sig.samples.is_empty());
        normalize_to_model(&mut sig.samples, &model);
        let mut sorted = sig.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        prop_assert!((median - model.median_level()).abs() < 1.0);
    }

    #[test]
    fn pore_trace_is_deterministic_per_kmer(seq in arb_dna(3..120)) {
        let model = PoreModel::synthetic(3, 7);
        let trace = model.trace(&seq);
        prop_assert_eq!(trace.len(), seq.len().saturating_sub(2));
        for (i, level) in trace.iter().enumerate() {
            let kmer = genpip_genomics::Kmer::from_seq(&seq, i, 3);
            prop_assert_eq!(*level, model.level(kmer));
            prop_assert!((PoreModel::CURRENT_MIN..=PoreModel::CURRENT_MAX).contains(level));
        }
    }
}
