//! Randomized property tests of the signal substrate.
//!
//! Seeded random cases over the workspace's own deterministic RNG (no
//! external property-testing dependency).

use genpip_genomics::rng::{seeded, Rng, SeededRng};
use genpip_genomics::{Base, DnaSeq};
use genpip_signal::{chunk_boundaries, normalize_to_model, PoreModel, SignalSynthesizer};

const CASES: u64 = 64;

fn arb_dna(rng: &mut SeededRng, min: usize, max: usize) -> DnaSeq {
    let len = rng.random_range(min..max);
    (0..len)
        .map(|_| Base::from_code(rng.random_range(0..4u8)))
        .collect()
}

#[test]
fn chunks_partition_any_signal() {
    for case in 0..CASES {
        let mut rng = seeded(0xC4 ^ case);
        let total = rng.random_range(0..100_000usize);
        let chunk = rng.random_range(1..5_000usize);
        let chunks = chunk_boundaries(total, chunk);
        let covered: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(covered, total);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert!(c.len() <= chunk);
            assert!(!c.is_empty());
        }
        // Only the last chunk may be partial.
        for c in chunks.iter().rev().skip(1) {
            assert_eq!(c.len(), chunk);
        }
    }
}

#[test]
fn synthesis_sample_count_matches_truth_index() {
    for case in 0..CASES {
        let mut rng = seeded(0x57 ^ case);
        let seq = arb_dna(&mut rng, 3, 400);
        let sigma = rng.random_range(0.1f64..3.0);
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model);
        let sig = synth.synthesize(&seq, sigma, case);
        assert_eq!(sig.samples.len(), sig.base_index.len());
        if seq.len() >= 3 {
            assert!(!sig.samples.is_empty());
            // base_index covers exactly the k-mer range.
            assert_eq!(sig.base_index[0], 0);
            assert_eq!(*sig.base_index.last().unwrap() as usize, seq.len() - 3);
        } else {
            assert!(sig.samples.is_empty());
        }
    }
}

#[test]
fn normalization_is_affine_invariant() {
    let mut checked = 0usize;
    for case in 0..CASES {
        let mut rng = seeded(0xAF ^ case);
        let seq = arb_dna(&mut rng, 50, 300);
        let offset = rng.random_range(-200.0f32..200.0);
        let gain = rng.random_range(0.2f32..5.0);
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model.clone());
        let sig = synth.synthesize(&seq, 1.0, case);
        if sig.samples.len() < 16 {
            continue;
        }
        checked += 1;
        let mut reference = sig.samples.clone();
        normalize_to_model(&mut reference, &model);
        let mut corrupted: Vec<f32> = sig.samples.iter().map(|x| x * gain + offset).collect();
        normalize_to_model(&mut corrupted, &model);
        for (a, b) in corrupted.iter().zip(&reference) {
            assert!((a - b).abs() < 0.6, "{a} vs {b}");
        }
    }
    assert!(
        checked > CASES as usize / 2,
        "only {checked} cases exercised"
    );
}

#[test]
fn normalized_median_hits_model_median() {
    for case in 0..CASES {
        let mut rng = seeded(0x3D ^ case);
        let seq = arb_dna(&mut rng, 60, 300);
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model.clone());
        let mut sig = synth.synthesize(&seq, 2.0, case);
        assert!(!sig.samples.is_empty());
        normalize_to_model(&mut sig.samples, &model);
        let mut sorted = sig.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - model.median_level()).abs() < 1.0);
    }
}

#[test]
fn pore_trace_is_deterministic_per_kmer() {
    for case in 0..CASES {
        let mut rng = seeded(0xD7 ^ case);
        let seq = arb_dna(&mut rng, 3, 120);
        let model = PoreModel::synthetic(3, 7);
        let trace = model.trace(&seq);
        assert_eq!(trace.len(), seq.len().saturating_sub(2));
        for (i, level) in trace.iter().enumerate() {
            let kmer = genpip_genomics::Kmer::from_seq(&seq, i, 3);
            assert_eq!(*level, model.level(kmer));
            assert!((PoreModel::CURRENT_MIN..=PoreModel::CURRENT_MAX).contains(level));
        }
    }
}
