//! Raw-signal synthesis from a true base sequence.

use crate::pore::PoreModel;
use genpip_genomics::rng::{self, SeededRng};
use genpip_genomics::DnaSeq;

/// Per-read noise characteristics.
///
/// The paper's early-rejection study rests on two empirical facts about read
/// quality (Section 3.2.1 / Figure 7): low- and high-quality reads occupy
/// clearly separated chunk-quality bands, and quality varies *slowly* along a
/// read (consecutive chunks are correlated). This profile reproduces both:
/// `base_sigma` sets the band and an AR(1) process on log-noise with
/// correlation length `wander_corr_bases` produces the slow variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseProfile {
    /// Noise multiplier on the pore model's event standard deviation.
    /// ≈1 yields high-quality reads; ≳3 yields low-quality reads.
    pub base_sigma: f64,
    /// Standard deviation of the AR(1) log-noise wander (0 = constant noise).
    pub sigma_wander: f64,
    /// Correlation length of the wander, in bases.
    pub wander_corr_bases: f64,
    /// Linear baseline drift in pA per 1000 samples (removed by
    /// normalization; exercises that code path).
    pub drift_per_kilosample: f64,
}

impl NoiseProfile {
    /// A constant-noise profile with the given sigma multiplier.
    pub fn constant(base_sigma: f64) -> NoiseProfile {
        NoiseProfile {
            base_sigma,
            sigma_wander: 0.0,
            wander_corr_bases: 1.0,
            drift_per_kilosample: 0.0,
        }
    }
}

impl Default for NoiseProfile {
    /// High-quality read defaults: unit noise, mild wander over ~600 bases,
    /// slight drift.
    fn default() -> NoiseProfile {
        NoiseProfile {
            base_sigma: 1.0,
            sigma_wander: 0.25,
            wander_corr_bases: 600.0,
            drift_per_kilosample: 0.05,
        }
    }
}

/// A synthesized raw read signal plus simulation ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadSignal {
    /// Current samples in pA.
    pub samples: Vec<f32>,
    /// For each sample, the index of the k-mer (equivalently, of the k-mer's
    /// first base) occupying the pore — ground truth for basecaller
    /// diagnostics.
    pub base_index: Vec<u32>,
    /// The true sequence that generated the signal.
    pub truth: DnaSeq,
}

impl ReadSignal {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the signal has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw-signal size in bytes ([`crate::BYTES_PER_SAMPLE`] per sample) —
    /// the quantity the data-movement model charges for shipping this read.
    pub fn bytes(&self) -> usize {
        self.samples.len() * crate::BYTES_PER_SAMPLE
    }
}

/// Synthesizes raw signals from true sequences under a [`PoreModel`].
#[derive(Debug, Clone)]
pub struct SignalSynthesizer {
    model: PoreModel,
    mean_dwell: f64,
}

impl SignalSynthesizer {
    /// Default mean dwell time in samples per base. Real R9 chemistry runs
    /// ≈450 bases/s at 4 kHz sampling ≈ 8.9 samples/base; we use 8.
    pub const DEFAULT_MEAN_DWELL: f64 = 8.0;

    /// Creates a synthesizer with the default dwell time.
    pub fn new(model: PoreModel) -> SignalSynthesizer {
        SignalSynthesizer {
            model,
            mean_dwell: Self::DEFAULT_MEAN_DWELL,
        }
    }

    /// Overrides the mean dwell time (samples per base).
    ///
    /// # Panics
    ///
    /// Panics unless `mean_dwell >= 1`.
    pub fn with_mean_dwell(mut self, mean_dwell: f64) -> SignalSynthesizer {
        assert!(mean_dwell >= 1.0, "mean dwell must be >= 1 sample/base");
        self.mean_dwell = mean_dwell;
        self
    }

    /// The pore model in use.
    pub fn model(&self) -> &PoreModel {
        &self.model
    }

    /// Mean dwell time (samples per base).
    pub fn mean_dwell(&self) -> f64 {
        self.mean_dwell
    }

    /// Expected signal length for a read of `bases` bases.
    pub fn expected_samples(&self, bases: usize) -> usize {
        (bases as f64 * self.mean_dwell) as usize
    }

    /// Synthesizes a signal with constant noise `sigma` (multiplier on the
    /// model's event std).
    pub fn synthesize(&self, truth: &DnaSeq, sigma: f64, seed: u64) -> ReadSignal {
        self.synthesize_with_profile(truth, &NoiseProfile::constant(sigma), seed)
    }

    /// Synthesizes a signal under a full [`NoiseProfile`].
    ///
    /// Sequences shorter than the pore k produce an empty signal.
    pub fn synthesize_with_profile(
        &self,
        truth: &DnaSeq,
        profile: &NoiseProfile,
        seed: u64,
    ) -> ReadSignal {
        let k = self.model.k();
        if truth.len() < k {
            return ReadSignal {
                samples: Vec::new(),
                base_index: Vec::new(),
                truth: truth.clone(),
            };
        }
        let n_kmers = truth.len() - k + 1;
        let mut rng = rng::derive(seed, 0x7369676e616c); // "signal"
        let mut samples = Vec::with_capacity(self.expected_samples(truth.len()));
        let mut base_index = Vec::with_capacity(samples.capacity());

        // AR(1) state for the log-noise wander.
        let rho = (-1.0 / profile.wander_corr_bases.max(1.0)).exp();
        let innovation = profile.sigma_wander * (1.0 - rho * rho).sqrt();
        let mut wander = if profile.sigma_wander > 0.0 {
            rng::normal(&mut rng, 0.0, profile.sigma_wander)
        } else {
            0.0
        };

        let p_advance = 1.0 / self.mean_dwell;
        let event_std = self.model.event_std() as f64;
        let mut kmer = genpip_genomics::Kmer::from_seq(truth, 0, k);
        for i in 0..n_kmers {
            if i > 0 {
                kmer = kmer.roll(truth.get(i + k - 1));
            }
            let level = self.model.level(kmer) as f64;
            let sigma = profile.base_sigma * wander.exp() * event_std;
            let dwell = dwell_samples(&mut rng, p_advance);
            for _ in 0..dwell {
                let drift = profile.drift_per_kilosample * samples.len() as f64 / 1000.0;
                let x = rng::normal(&mut rng, level + drift, sigma);
                samples.push(x as f32);
                base_index.push(i as u32);
            }
            if profile.sigma_wander > 0.0 {
                wander = rho * wander + rng::normal(&mut rng, 0.0, innovation);
            }
        }
        ReadSignal {
            samples,
            base_index,
            truth: truth.clone(),
        }
    }
}

fn dwell_samples(rng: &mut SeededRng, p_advance: f64) -> u32 {
    if p_advance >= 1.0 {
        1
    } else {
        rng::geometric(rng, p_advance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::GenomeBuilder;

    fn synth() -> SignalSynthesizer {
        SignalSynthesizer::new(PoreModel::synthetic(3, 7))
    }

    fn random_seq(n: usize, seed: u64) -> DnaSeq {
        GenomeBuilder::new(n)
            .seed(seed)
            .repeat_fraction(0.0)
            .build()
            .sequence()
            .clone()
    }

    #[test]
    fn synthesis_is_deterministic() {
        let s = synth();
        let truth = random_seq(200, 1);
        let a = s.synthesize(&truth, 1.0, 42);
        let b = s.synthesize(&truth, 1.0, 42);
        assert_eq!(a, b);
        let c = s.synthesize(&truth, 1.0, 43);
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn signal_length_tracks_dwell() {
        let s = synth();
        let truth = random_seq(2_000, 2);
        let sig = s.synthesize(&truth, 1.0, 3);
        let expected = s.expected_samples(truth.len()) as f64;
        let actual = sig.len() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.1,
            "expected ~{expected}, got {actual}"
        );
        assert_eq!(sig.samples.len(), sig.base_index.len());
    }

    #[test]
    fn base_index_is_monotone_and_covers_kmers() {
        let s = synth();
        let truth = random_seq(300, 4);
        let sig = s.synthesize(&truth, 1.0, 5);
        assert!(sig
            .base_index
            .windows(2)
            .all(|w| w[1] == w[0] || w[1] == w[0] + 1));
        assert_eq!(sig.base_index[0], 0);
        assert_eq!(
            *sig.base_index.last().unwrap() as usize,
            truth.len() - s.model().k()
        );
    }

    #[test]
    fn low_noise_signal_tracks_levels() {
        let s = synth();
        let truth = random_seq(500, 6);
        let sig = s.synthesize(&truth, 0.05, 7);
        // With nearly no noise every sample sits close to its k-mer's level.
        for (x, &bi) in sig.samples.iter().zip(&sig.base_index) {
            let kmer = genpip_genomics::Kmer::from_seq(&truth, bi as usize, 3);
            let level = s.model().level(kmer);
            assert!((x - level).abs() < 1.0, "sample {x} vs level {level}");
        }
    }

    #[test]
    fn noise_scales_with_sigma() {
        let s = synth();
        let truth = random_seq(2_000, 8);
        let spread = |sigma: f64| {
            let sig = s.synthesize(&truth, sigma, 9);
            let mut sq = 0.0f64;
            for (x, &bi) in sig.samples.iter().zip(&sig.base_index) {
                let kmer = genpip_genomics::Kmer::from_seq(&truth, bi as usize, 3);
                sq += ((x - s.model().level(kmer)) as f64).powi(2);
            }
            (sq / sig.len() as f64).sqrt()
        };
        let lo = spread(1.0);
        let hi = spread(3.0);
        assert!((lo - 1.0).abs() < 0.1, "sigma 1 spread {lo}");
        assert!((hi - 3.0).abs() < 0.3, "sigma 3 spread {hi}");
    }

    #[test]
    fn short_sequence_yields_empty_signal() {
        let s = synth();
        let truth: DnaSeq = "AC".parse().unwrap();
        let sig = s.synthesize(&truth, 1.0, 1);
        assert!(sig.is_empty());
        assert_eq!(sig.bytes(), 0);
    }

    #[test]
    fn wander_produces_varying_local_noise() {
        let s = synth();
        let truth = random_seq(6_000, 10);
        let profile = NoiseProfile {
            base_sigma: 1.5,
            sigma_wander: 0.6,
            wander_corr_bases: 300.0,
            drift_per_kilosample: 0.0,
        };
        let sig = s.synthesize_with_profile(&truth, &profile, 11);
        // Estimate local noise in windows; the ratio of max to min window
        // noise should be clearly > 1 when wander is on.
        let window = 2_000;
        let mut noises = Vec::new();
        for w in sig.samples.chunks(window) {
            if w.len() < window {
                break;
            }
            let start = noises.len() * window;
            let mut sq = 0.0f64;
            for (j, x) in w.iter().enumerate() {
                let bi = sig.base_index[start + j] as usize;
                let kmer = genpip_genomics::Kmer::from_seq(&truth, bi, 3);
                sq += ((x - s.model().level(kmer)) as f64).powi(2);
            }
            noises.push((sq / w.len() as f64).sqrt());
        }
        let max = noises.iter().cloned().fold(f64::MIN, f64::max);
        let min = noises.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.3, "max {max}, min {min}");
    }

    #[test]
    fn drift_shifts_late_samples() {
        let s = synth();
        let truth = random_seq(4_000, 12);
        let profile = NoiseProfile {
            base_sigma: 0.2,
            sigma_wander: 0.0,
            wander_corr_bases: 1.0,
            drift_per_kilosample: 1.0,
        };
        let sig = s.synthesize_with_profile(&truth, &profile, 13);
        // Average residual (sample - level) grows along the read.
        let resid = |range: std::ops::Range<usize>| {
            let mut sum = 0.0f64;
            for i in range.clone() {
                let kmer = genpip_genomics::Kmer::from_seq(&truth, sig.base_index[i] as usize, 3);
                sum += (sig.samples[i] - s.model().level(kmer)) as f64;
            }
            sum / range.len() as f64
        };
        let early = resid(0..2_000);
        let late = resid(sig.len() - 2_000..sig.len());
        assert!(late - early > 5.0, "early {early}, late {late}");
    }

    #[test]
    #[should_panic(expected = "mean dwell")]
    fn dwell_below_one_rejected() {
        let _ = synth().with_mean_dwell(0.5);
    }
}
