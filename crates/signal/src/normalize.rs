//! Median/MAD signal normalization.
//!
//! Raw nanopore signals carry per-read offset and scale variation (channel
//! gain, baseline drift). Basecallers normalize each chunk to a reference
//! scale before inference; this module implements the standard median /
//! median-absolute-deviation scheme, mapping a signal onto the pore model's
//! own median and MAD.

use crate::pore::PoreModel;

/// The statistics removed from a signal by normalization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalizationStats {
    /// Median of the raw samples.
    pub median: f32,
    /// Median absolute deviation of the raw samples.
    pub mad: f32,
}

/// Normalizes `samples` in place so their median/MAD match the pore model's
/// level table, returning the statistics that were removed.
///
/// A signal whose MAD is zero (e.g. constant) is only median-shifted.
/// An empty slice is returned unchanged with zeroed stats.
pub fn normalize_to_model(samples: &mut [f32], model: &PoreModel) -> NormalizationStats {
    if samples.is_empty() {
        return NormalizationStats {
            median: 0.0,
            mad: 0.0,
        };
    }
    let median = median_of(samples);
    let mut devs: Vec<f32> = samples.iter().map(|x| (x - median).abs()).collect();
    let mad = median_of(&devs);
    devs.clear();

    let target_median = model.median_level();
    let target_mad = model.mad_level();
    if mad > f32::EPSILON {
        let scale = target_mad / mad;
        for x in samples.iter_mut() {
            *x = (*x - median) * scale + target_median;
        }
    } else {
        for x in samples.iter_mut() {
            *x = *x - median + target_median;
        }
    }
    NormalizationStats { median, mad }
}

fn median_of(values: &[f32]) -> f32 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{NoiseProfile, SignalSynthesizer};
    use genpip_genomics::GenomeBuilder;

    #[test]
    fn empty_signal_is_noop() {
        let model = PoreModel::synthetic(3, 7);
        let mut samples: Vec<f32> = Vec::new();
        let stats = normalize_to_model(&mut samples, &model);
        assert_eq!(stats.median, 0.0);
        assert!(samples.is_empty());
    }

    #[test]
    fn constant_signal_is_shifted_to_model_median() {
        let model = PoreModel::synthetic(3, 7);
        let mut samples = vec![500.0f32; 64];
        normalize_to_model(&mut samples, &model);
        for x in &samples {
            assert!((x - model.median_level()).abs() < 1e-3);
        }
    }

    #[test]
    fn offset_and_scale_are_removed() {
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model.clone());
        let truth = GenomeBuilder::new(3_000).seed(1).build().sequence().clone();
        let clean = synth.synthesize(&truth, 1.0, 2);

        // Corrupt with an affine transform, then normalize back.
        let mut corrupted: Vec<f32> = clean.samples.iter().map(|x| x * 1.7 + 40.0).collect();
        let stats = normalize_to_model(&mut corrupted, &model);
        assert!(stats.mad > 0.0);

        let mut reference = clean.samples.clone();
        normalize_to_model(&mut reference, &model);
        for (a, b) in corrupted.iter().zip(&reference) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn normalized_signal_matches_pore_scale() {
        let model = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(model.clone());
        let truth = GenomeBuilder::new(5_000).seed(3).build().sequence().clone();
        let profile = NoiseProfile {
            base_sigma: 1.0,
            sigma_wander: 0.0,
            wander_corr_bases: 1.0,
            drift_per_kilosample: 0.2,
        };
        let mut sig = synth.synthesize_with_profile(&truth, &profile, 4);
        normalize_to_model(&mut sig.samples, &model);
        // After normalization the samples must sit inside (a margin around)
        // the model's current range.
        let lo = PoreModel::CURRENT_MIN - 15.0;
        let hi = PoreModel::CURRENT_MAX + 15.0;
        let inside = sig.samples.iter().filter(|x| (lo..hi).contains(*x)).count();
        assert!(inside as f64 / sig.samples.len() as f64 > 0.99);
    }

    #[test]
    fn median_of_handles_even_and_odd() {
        assert_eq!(median_of(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median_of(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
