//! The k-mer pore model: expected current level per k-mer.

use genpip_genomics::{DnaSeq, Kmer};
use std::fmt;

/// A nanopore current model: for every k-mer, the mean current (pA) observed
/// while that k-mer occupies the pore, and the event-level standard
/// deviation.
///
/// Real pore models (e.g. ONT's `r9.4_450bps` table) are measured; this
/// reproduction generates a deterministic synthetic table with the properties
/// the basecaller depends on:
///
/// * distinct k-mers receive well-spread levels across the physiological
///   60–120 pA range (so decoding is feasible),
/// * the mapping is a fixed function of the k-mer bits (so signal synthesis
///   and basecalling agree without sharing state),
/// * adjacent levels are close enough that noise causes realistic confusion.
///
/// The model also fixes the state-space size of the Viterbi basecaller:
/// `4^k` states. `k = 3` (64 states) keeps whole-dataset simulation tractable
/// and is the workspace default; `k` up to 6 is supported.
#[derive(Clone, PartialEq)]
pub struct PoreModel {
    k: usize,
    levels: Vec<f32>,
    event_std: f32,
}

impl PoreModel {
    /// Builds the deterministic synthetic model for k-mer length `k`.
    ///
    /// `seed` perturbs the level assignment so different "chemistries" can be
    /// simulated; the default experiments all use seed 7.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= 6`.
    pub fn synthetic(k: usize, seed: u64) -> PoreModel {
        assert!((1..=6).contains(&k), "pore model k must be in 1..=6");
        let n = 1usize << (2 * k);
        // Assign each k-mer a rank via a mixing hash, then spread ranks
        // evenly over the current range. Even spacing maximizes decodability
        // for a given range, and the hash decorrelates level from sequence so
        // homopolymers are not artificially easy.
        let mut order: Vec<(u64, usize)> = (0..n)
            .map(|i| (mix(i as u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)), i))
            .collect();
        order.sort_unstable();
        let mut levels = vec![0.0f32; n];
        let (lo, hi) = (Self::CURRENT_MIN, Self::CURRENT_MAX);
        for (rank, &(_, kmer)) in order.iter().enumerate() {
            let frac = if n == 1 {
                0.5
            } else {
                rank as f32 / (n - 1) as f32
            };
            levels[kmer] = lo + frac * (hi - lo);
        }
        PoreModel {
            k,
            levels,
            event_std: Self::EVENT_STD,
        }
    }

    /// Rebuilds a model from its raw parts — the deserialization twin of
    /// [`PoreModel::levels`] / [`PoreModel::event_std`], used by on-disk
    /// signal containers that embed their chemistry so a file is
    /// self-describing.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k <= 6`, `levels.len() == 4^k`, and every level
    /// and `event_std` is finite (with `event_std > 0`).
    pub fn from_parts(k: usize, levels: Vec<f32>, event_std: f32) -> PoreModel {
        assert!((1..=6).contains(&k), "pore model k must be in 1..=6");
        assert_eq!(
            levels.len(),
            1usize << (2 * k),
            "pore model must carry 4^k levels"
        );
        assert!(
            levels.iter().all(|l| l.is_finite()),
            "pore model levels must be finite"
        );
        assert!(
            event_std.is_finite() && event_std > 0.0,
            "event std must be finite and positive"
        );
        PoreModel {
            k,
            levels,
            event_std,
        }
    }

    /// The full level table, indexed by packed k-mer bits — the
    /// serialization twin of [`PoreModel::from_parts`].
    #[inline]
    pub fn levels(&self) -> &[f32] {
        &self.levels
    }

    /// Lowest mean current in the table (pA).
    pub const CURRENT_MIN: f32 = 60.0;
    /// Highest mean current in the table (pA).
    pub const CURRENT_MAX: f32 = 120.0;
    /// Event-level standard deviation baked into the model (pA); per-read
    /// noise multiplies this.
    pub const EVENT_STD: f32 = 1.0;

    /// The k-mer length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of k-mer states (`4^k`).
    #[inline]
    pub fn states(&self) -> usize {
        self.levels.len()
    }

    /// Mean current for the k-mer with the given packed bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 4^k`.
    #[inline]
    pub fn level_bits(&self, bits: u64) -> f32 {
        self.levels[bits as usize]
    }

    /// Mean current for a [`Kmer`].
    ///
    /// # Panics
    ///
    /// Panics if the k-mer length differs from the model's `k`.
    pub fn level(&self, kmer: Kmer) -> f32 {
        assert_eq!(kmer.k(), self.k, "k-mer length does not match pore model");
        self.level_bits(kmer.bits())
    }

    /// Event-level standard deviation (pA).
    #[inline]
    pub fn event_std(&self) -> f32 {
        self.event_std
    }

    /// Median of all level means — the normalization target.
    pub fn median_level(&self) -> f32 {
        let mut sorted = self.levels.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("levels are finite"));
        sorted[sorted.len() / 2]
    }

    /// Mean absolute deviation of the level table around its median — the
    /// normalization scale target.
    pub fn mad_level(&self) -> f32 {
        let med = self.median_level();
        let mut devs: Vec<f32> = self.levels.iter().map(|l| (l - med).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).expect("levels are finite"));
        devs[devs.len() / 2]
    }

    /// The sequence of level means produced by sliding the pore over `seq`
    /// (one entry per position where a full k-mer fits).
    pub fn trace(&self, seq: &DnaSeq) -> Vec<f32> {
        genpip_genomics::KmerIter::new(seq, self.k)
            .map(|(_, kmer)| self.level(kmer))
            .collect()
    }
}

impl fmt::Debug for PoreModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PoreModel(k={}, states={}, range={:.0}..{:.0} pA)",
            self.k,
            self.states(),
            Self::CURRENT_MIN,
            Self::CURRENT_MAX
        )
    }
}

/// SplitMix64 finalizer — a cheap, well-distributed mixing function.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_genomics::Base;

    #[test]
    fn deterministic_for_seed() {
        let a = PoreModel::synthetic(3, 7);
        let b = PoreModel::synthetic(3, 7);
        assert_eq!(a, b);
        let c = PoreModel::synthetic(3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn levels_span_range_evenly() {
        let m = PoreModel::synthetic(3, 7);
        let mut levels: Vec<f32> = (0..m.states()).map(|i| m.level_bits(i as u64)).collect();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(levels[0], PoreModel::CURRENT_MIN);
        assert_eq!(*levels.last().unwrap(), PoreModel::CURRENT_MAX);
        // Even spacing.
        let spacing = (PoreModel::CURRENT_MAX - PoreModel::CURRENT_MIN) / 63.0;
        for w in levels.windows(2) {
            assert!((w[1] - w[0] - spacing).abs() < 1e-3);
        }
    }

    #[test]
    fn all_levels_distinct() {
        let m = PoreModel::synthetic(4, 7);
        let mut levels: Vec<f32> = (0..m.states()).map(|i| m.level_bits(i as u64)).collect();
        levels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn level_accepts_matching_kmer() {
        let m = PoreModel::synthetic(3, 7);
        let kmer = Kmer::from_bases(&[Base::A, Base::C, Base::G]);
        assert_eq!(m.level(kmer), m.level_bits(kmer.bits()));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn level_rejects_wrong_k() {
        let m = PoreModel::synthetic(3, 7);
        let kmer = Kmer::from_bases(&[Base::A, Base::C]);
        let _ = m.level(kmer);
    }

    #[test]
    fn trace_length() {
        let m = PoreModel::synthetic(3, 7);
        let seq: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(m.trace(&seq).len(), 6);
    }

    #[test]
    fn median_and_mad_are_sane() {
        let m = PoreModel::synthetic(3, 7);
        let med = m.median_level();
        assert!(med > PoreModel::CURRENT_MIN && med < PoreModel::CURRENT_MAX);
        let mad = m.mad_level();
        assert!(mad > 1.0 && mad < 60.0, "mad {mad}");
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_zero_rejected() {
        let _ = PoreModel::synthetic(0, 7);
    }

    #[test]
    fn from_parts_round_trips() {
        let m = PoreModel::synthetic(3, 7);
        let rebuilt = PoreModel::from_parts(m.k(), m.levels().to_vec(), m.event_std());
        assert_eq!(rebuilt, m);
    }

    #[test]
    #[should_panic(expected = "4^k levels")]
    fn from_parts_rejects_wrong_table_size() {
        let _ = PoreModel::from_parts(3, vec![0.0; 16], 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn from_parts_rejects_non_finite_levels() {
        let _ = PoreModel::from_parts(1, vec![60.0, f32::NAN, 80.0, 90.0], 1.0);
    }
}
