//! Signal chunking.
//!
//! Basecallers split a long read's signal into fixed-size chunks (the paper
//! quotes "thousands of signals per chunk", ≈300 bases) and basecall the
//! chunks independently; GenPIP's whole chunk-based pipeline (Section 3.1)
//! inherits this granularity. A chunk is a half-open sample range of a
//! [`crate::ReadSignal`].

/// One chunk of a read's raw signal: a half-open sample range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkSpec {
    /// Chunk index within the read (0-based).
    pub index: usize,
    /// First sample (inclusive).
    pub start: usize,
    /// Past-the-end sample (exclusive).
    pub end: usize,
}

impl ChunkSpec {
    /// Number of samples in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if the chunk is empty (never produced by
    /// [`chunk_boundaries`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Splits `total_samples` into consecutive chunks of `samples_per_chunk`,
/// with a final partial chunk if the division is inexact.
///
/// Returns an empty vector when `total_samples` is 0.
///
/// # Panics
///
/// Panics if `samples_per_chunk` is 0.
///
/// # Example
///
/// ```
/// use genpip_signal::chunk_boundaries;
///
/// let chunks = chunk_boundaries(2500, 1000);
/// assert_eq!(chunks.len(), 3);
/// assert_eq!(chunks[2].len(), 500);
/// ```
pub fn chunk_boundaries(total_samples: usize, samples_per_chunk: usize) -> Vec<ChunkSpec> {
    assert!(samples_per_chunk > 0, "chunk size must be positive");
    let mut chunks = Vec::with_capacity(total_samples.div_ceil(samples_per_chunk));
    let mut start = 0;
    let mut index = 0;
    while start < total_samples {
        let end = (start + samples_per_chunk).min(total_samples);
        chunks.push(ChunkSpec { index, start, end });
        start = end;
        index += 1;
    }
    chunks
}

/// Samples per chunk for a given chunk size in *bases* and a dwell time in
/// samples per base. E.g. 300 bases × 8 samples/base = 2400 samples.
///
/// # Panics
///
/// Panics if either argument is non-positive.
pub fn samples_per_chunk(chunk_bases: usize, mean_dwell: f64) -> usize {
    assert!(
        chunk_bases > 0 && mean_dwell > 0.0,
        "arguments must be positive"
    );
    ((chunk_bases as f64) * mean_dwell).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let chunks = chunk_boundaries(3000, 1000);
        assert_eq!(chunks.len(), 3);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.len(), 1000);
        }
    }

    #[test]
    fn partial_tail() {
        let chunks = chunk_boundaries(1001, 1000);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].len(), 1);
    }

    #[test]
    fn chunks_tile_the_signal() {
        let chunks = chunk_boundaries(12_345, 777);
        assert_eq!(chunks[0].start, 0);
        assert_eq!(chunks.last().unwrap().end, 12_345);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(chunks.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn empty_signal_has_no_chunks() {
        assert!(chunk_boundaries(0, 100).is_empty());
    }

    #[test]
    fn single_short_chunk() {
        let chunks = chunk_boundaries(10, 100);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 10);
    }

    #[test]
    fn samples_per_chunk_multiplies() {
        assert_eq!(samples_per_chunk(300, 8.0), 2400);
        assert_eq!(samples_per_chunk(1, 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_chunk_size_rejected() {
        let _ = chunk_boundaries(10, 0);
    }
}
