//! Nanopore raw-signal model.
//!
//! ONT devices measure the ionic current through a nanopore while a DNA
//! strand translocates through it; the current level at any instant is
//! determined (noisily) by the k bases inside the pore. This crate provides
//! the synthetic stand-in for the paper's 3.9 TB of raw R9 signal data:
//!
//! * [`PoreModel`] — a deterministic map from k-mer to expected current,
//! * [`SignalSynthesizer`] — turns a true base sequence into a raw signal
//!   with per-base dwell times, Gaussian noise whose magnitude follows a
//!   slowly varying per-read profile (so chunk quality scores are correlated
//!   along a read, as the paper's Figure 7 shows), and baseline drift,
//! * [`chunk::chunk_boundaries`] — the fixed-size signal chunks the
//!   basecaller and GenPIP's chunk-based pipeline operate on,
//! * [`normalize`] — median/MAD normalization, the standard preprocessing
//!   step real basecallers apply before inference.
//!
//! # Example
//!
//! ```
//! use genpip_genomics::DnaSeq;
//! use genpip_signal::{PoreModel, SignalSynthesizer};
//!
//! let model = PoreModel::synthetic(3, 7);
//! let synth = SignalSynthesizer::new(model);
//! let truth: DnaSeq = "ACGTACGTACGTACGT".parse()?;
//! let sig = synth.synthesize(&truth, 1.0, 123);
//! assert!(sig.samples.len() >= truth.len());
//! # Ok::<(), genpip_genomics::base::ParseBaseError>(())
//! ```

pub mod chunk;
pub mod normalize;
pub mod pore;
pub mod synth;

pub use chunk::{chunk_boundaries, ChunkSpec};
pub use normalize::{normalize_to_model, NormalizationStats};
pub use pore::PoreModel;
pub use synth::{NoiseProfile, ReadSignal, SignalSynthesizer};

/// Bytes per raw signal sample for data-movement accounting.
///
/// ONT devices digitize with a 16-bit DAC, so shipping raw signal costs two
/// bytes per sample — the figure behind the paper's "3913 GB raw signal data"
/// transfer in Figure 1.
pub const BYTES_PER_SAMPLE: usize = 2;
