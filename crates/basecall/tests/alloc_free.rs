//! Verifies the acceptance criterion that steady-state chunk decoding with a
//! reused [`DecodeScratch`] performs **zero heap allocations**: a counting
//! global allocator observes the allocator while equally sized chunks stream
//! through `decode_with` and `call_chunk_with`'s decode path.

use genpip_basecall::viterbi::{
    decode_lanes_with, decode_with, DecodeScratch, LaneDecodeScratch, LaneJob, Transitions,
};
use genpip_basecall::EmissionModel;
use genpip_genomics::GenomeBuilder;
use genpip_signal::{PoreModel, SignalSynthesizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

// The counting flag must be per-thread: the libtest harness's main thread
// sits in `Receiver::recv` while the test runs and lazily allocates its
// mpmc parking context at an arbitrary moment — with a process-global flag
// that race is counted and the test fails spuriously. Only allocations made
// by the decoding thread itself are the test's concern. (Const-initialized
// thread-locals never allocate, so reading the flag inside the allocator is
// safe.)
thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_decode_is_allocation_free() {
    let pore = PoreModel::synthetic(3, 7);
    let emission = EmissionModel::from_pore_model(&pore);
    let transitions = Transitions::from_mean_dwell(8.0);
    let synth = SignalSynthesizer::new(pore);
    let truth = GenomeBuilder::new(1_200)
        .seed(11)
        .build()
        .sequence()
        .clone();
    let sig = synth.synthesize(&truth, 1.0, 3);
    let chunk_len = 2_400.min(sig.samples.len() / 3);
    let chunks: Vec<&[f32]> = sig.samples.chunks(chunk_len).collect();
    assert!(chunks.len() >= 3, "need several chunks for a steady state");

    // Warm-up: the first decode sizes every scratch buffer.
    let mut scratch = DecodeScratch::new();
    let mut carry = None;
    decode_with(&emission, chunks[0], transitions, carry, &mut scratch);
    carry = scratch.final_state();

    // Steady state: no chunk is larger than the warm-up chunk, so no buffer
    // may grow and no allocation may happen.
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    let mut total_score = 0.0;
    for chunk in &chunks[1..] {
        let stats = decode_with(&emission, chunk, transitions, carry, &mut scratch);
        carry = scratch.final_state();
        total_score += stats.score;
    }
    COUNTING.with(|c| c.set(false));
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert!(total_score.is_finite());
    assert_eq!(
        allocs,
        0,
        "steady-state decode_with allocated {allocs} times across {} chunks",
        chunks.len() - 1
    );
}

#[test]
fn steady_state_lane_decode_is_allocation_free() {
    // Same criterion for the lane-batched kernel: once one batch has warmed
    // the LaneDecodeScratch, equally shaped batches (same width, job count,
    // and no-larger chunks) must decode without touching the allocator.
    let pore = PoreModel::synthetic(3, 7);
    let emission = EmissionModel::from_pore_model(&pore);
    let transitions = Transitions::from_mean_dwell(8.0);
    let synth = SignalSynthesizer::new(pore);
    let truth = GenomeBuilder::new(2_000)
        .seed(23)
        .build()
        .sequence()
        .clone();
    let sig = synth.synthesize(&truth, 1.0, 5);
    const WIDTH: usize = 4;
    const BATCH: usize = 6;
    let chunk_len = sig.samples.len() / (BATCH * 3);
    let chunks: Vec<&[f32]> = sig.samples.chunks_exact(chunk_len).collect();
    assert!(chunks.len() >= 3 * BATCH, "need several full batches");

    let batch_jobs = |batch: usize| -> Vec<LaneJob> {
        chunks[batch * BATCH..(batch + 1) * BATCH]
            .iter()
            .map(|c| LaneJob {
                samples: c,
                init_state: None,
            })
            .collect()
    };

    // Warm-up batch sizes every buffer (the job list is built outside the
    // counted region: it belongs to the caller, not the scratch).
    let mut scratch = LaneDecodeScratch::new();
    let warm = batch_jobs(0);
    decode_lanes_with(&emission, transitions, &warm, WIDTH, &mut scratch);
    let later: Vec<Vec<LaneJob>> = (1..3).map(batch_jobs).collect();

    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.with(|c| c.set(true));
    let mut total_score = 0.0;
    for jobs in &later {
        decode_lanes_with(&emission, transitions, jobs, WIDTH, &mut scratch);
        for j in 0..jobs.len() {
            total_score += scratch.outcome(j).stats().score;
        }
    }
    COUNTING.with(|c| c.set(false));
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert!(total_score.is_finite());
    assert_eq!(
        allocs,
        0,
        "steady-state decode_lanes_with allocated {allocs} times across {} batches",
        later.len()
    );
}
