//! Calibration diagnostic: prints the empirical noise→AQS curve of the
//! basecaller, the mapping behind the quality bands in DESIGN.md.

use genpip_basecall::Basecaller;
use genpip_genomics::GenomeBuilder;
use genpip_signal::{PoreModel, SignalSynthesizer};

fn main() {
    let pore = PoreModel::synthetic(3, 7);
    let synth = SignalSynthesizer::new(pore.clone());
    let caller = Basecaller::new(&pore, synth.mean_dwell());
    let t = GenomeBuilder::new(3000)
        .seed(3)
        .repeat_fraction(0.0)
        .build()
        .sequence()
        .clone();
    for sigma in [0.7, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5] {
        let sig = synth.synthesize(&t, sigma, 4);
        let called = caller.call_read(&sig.samples, 2400);
        let id = genpip_basecall::metrics::identity(&called.seq, &t);
        println!(
            "sigma {sigma:4}: AQS {:6.2}  identity {:.3}",
            called.average_quality(),
            id
        );
    }
}
