//! Basecalling accuracy metrics.

use genpip_genomics::DnaSeq;

/// Banded Levenshtein distance between two sequences.
///
/// The band is centred on the diagonal and must cover the true alignment
/// drift; [`identity`] picks a band generous enough for nanopore-style error
/// rates. Out-of-band cells are treated as unreachable, so an insufficient
/// band can only over-estimate the distance (never under-estimate).
pub fn banded_edit_distance(a: &DnaSeq, b: &DnaSeq, band: usize) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let band = band.max(n.abs_diff(m) + 1);
    let big = usize::MAX / 4;
    // Row-wise DP over a clamped column window.
    let mut prev = vec![big; m + 1];
    let mut curr = vec![big; m + 1];
    for (j, p) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *p = j;
    }
    let a_bases = a.to_bases();
    let b_bases = b.to_bases();
    for i in 1..=n {
        let centre = i * m / n;
        let lo = centre.saturating_sub(band).max(1);
        let hi = (centre + band).min(m);
        curr.fill(big);
        if lo == 1 {
            curr[0] = i;
        }
        for j in lo..=hi {
            let sub = prev[j - 1] + usize::from(a_bases[i - 1] != b_bases[j - 1]);
            let del = prev[j].saturating_add(1);
            let ins = curr[j - 1].saturating_add(1);
            curr[j] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].min(n.max(m))
}

/// Sequence identity in `[0, 1]`: `1 − edit_distance / max(len_a, len_b)`.
///
/// Two empty sequences have identity 1. The band is sized for up to ~30 %
/// length drift, ample for this workspace's error rates.
///
/// # Example
///
/// ```
/// use genpip_basecall::metrics::identity;
/// use genpip_genomics::DnaSeq;
///
/// let a: DnaSeq = "ACGTACGT".parse()?;
/// let b: DnaSeq = "ACGTTCGT".parse()?;
/// assert_eq!(identity(&a, &b), 1.0 - 1.0 / 8.0);
/// # Ok::<(), genpip_genomics::base::ParseBaseError>(())
/// ```
pub fn identity(a: &DnaSeq, b: &DnaSeq) -> f64 {
    let longest = a.len().max(b.len());
    if longest == 0 {
        return 1.0;
    }
    let band = (longest / 3).max(32);
    let d = banded_edit_distance(a, b, band);
    1.0 - d as f64 / longest as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    /// Reference quadratic Levenshtein for validation.
    fn full_edit_distance(a: &DnaSeq, b: &DnaSeq) -> usize {
        let (n, m) = (a.len(), b.len());
        let mut dp = vec![0usize; m + 1];
        for (j, d) in dp.iter_mut().enumerate() {
            *d = j;
        }
        for i in 1..=n {
            let mut diag = dp[0];
            dp[0] = i;
            for j in 1..=m {
                let tmp = dp[j];
                let sub = diag + usize::from(a.get(i - 1) != b.get(j - 1));
                dp[j] = sub.min(dp[j] + 1).min(dp[j - 1] + 1);
                diag = tmp;
            }
        }
        dp[m]
    }

    #[test]
    fn identical_sequences() {
        let a = seq("ACGTACGTACGT");
        assert_eq!(banded_edit_distance(&a, &a, 8), 0);
        assert_eq!(identity(&a, &a), 1.0);
    }

    #[test]
    fn empty_cases() {
        let e = DnaSeq::new();
        let a = seq("ACG");
        assert_eq!(banded_edit_distance(&e, &a, 4), 3);
        assert_eq!(banded_edit_distance(&a, &e, 4), 3);
        assert_eq!(identity(&e, &e), 1.0);
        assert_eq!(identity(&e, &a), 0.0);
    }

    #[test]
    fn known_distances() {
        assert_eq!(banded_edit_distance(&seq("ACGT"), &seq("AGGT"), 4), 1);
        assert_eq!(banded_edit_distance(&seq("ACGT"), &seq("ACGTT"), 4), 1);
        assert_eq!(banded_edit_distance(&seq("ACGT"), &seq("CGT"), 4), 1);
        assert_eq!(banded_edit_distance(&seq("AAAA"), &seq("TTTT"), 4), 4);
    }

    #[test]
    fn banded_matches_full_dp_on_random_pairs() {
        use genpip_genomics::rng::seeded;
        use genpip_genomics::rng::Rng;
        use genpip_genomics::{Base, ErrorModel};
        let mut rng = seeded(42);
        for trial in 0..20 {
            let n = rng.random_range(10..200usize);
            let a: DnaSeq = (0..n)
                .map(|_| Base::from_code(rng.random_range(0..4u8)))
                .collect();
            let (b, _) = ErrorModel::with_total_rate(0.2).apply(&a, &mut rng);
            let full = full_edit_distance(&a, &b);
            let banded = banded_edit_distance(&a, &b, 64.max(n / 3));
            assert_eq!(
                banded, full,
                "trial {trial}: banded {banded} vs full {full}"
            );
        }
    }

    #[test]
    fn distance_never_exceeds_longer_length() {
        let a = seq(&"ACGT".repeat(50));
        let b = seq(&"TGCA".repeat(10));
        let d = banded_edit_distance(&a, &b, 16);
        assert!(d <= 200);
    }

    #[test]
    fn identity_decreases_with_errors() {
        use genpip_genomics::rng::seeded;
        use genpip_genomics::{ErrorModel, GenomeBuilder};
        let truth = GenomeBuilder::new(500).seed(1).build().sequence().clone();
        let mut rng = seeded(2);
        let (light, _) = ErrorModel::with_total_rate(0.05).apply(&truth, &mut rng);
        let (heavy, _) = ErrorModel::with_total_rate(0.30).apply(&truth, &mut rng);
        assert!(identity(&truth, &light) > identity(&truth, &heavy));
        assert!(identity(&truth, &light) > 0.9);
    }
}
