//! The basecaller: raw signal chunks → bases + per-base quality scores.
//!
//! # Relation to the paper
//!
//! GenPIP embeds a Helix-like PIM basecaller whose dominant kernel is the
//! matrix–vector multiplication (MVM) at the heart of DNN inference
//! (paper Section 2.2). This reproduction substitutes Bonito's CTC network
//! with an HMM/Viterbi decoder over the pore-model k-mer state space whose
//! emission computation is *also* an MVM:
//!
//! ```text
//! log N(x; μ_s, σ) = [ -1/(2σ²),  μ_s/σ²,  -μ_s²/(2σ²) ] · [x², x, 1]ᵀ + c(x)
//! ```
//!
//! i.e. one `states × 3` matrix times a per-sample feature vector — exactly
//! the operation an NVM crossbar executes in one read cycle. The PIM timing
//! and energy models in `genpip-pim` are therefore driven by the *measured*
//! MVM counts this crate reports, and the substitution preserves the compute
//! pattern Helix accelerates (see DESIGN.md §1).
//!
//! Per-base quality scores derive from the normalized residual between the
//! observed samples and the decoded state's expected level, calibrated so
//! that clean reads land in the paper's high-quality band (Q11–Q18) and
//! noisy reads in the low-quality band (Q4–Q10); see [`quality`].
//!
//! # Example
//!
//! ```
//! use genpip_genomics::DnaSeq;
//! use genpip_signal::{PoreModel, SignalSynthesizer};
//! use genpip_basecall::Basecaller;
//!
//! let model = PoreModel::synthetic(3, 7);
//! let synth = SignalSynthesizer::new(model.clone());
//! let truth: DnaSeq = "ACGTTGCAACGGTCATCGCA".repeat(10).parse()?;
//! let sig = synth.synthesize(&truth, 0.5, 1);
//!
//! let caller = Basecaller::new(&model, synth.mean_dwell());
//! let called = caller.call_read(&sig.samples, 2400);
//! let identity = genpip_basecall::metrics::identity(&called.seq, &truth);
//! assert!(identity > 0.9);
//! # Ok::<(), genpip_genomics::base::ParseBaseError>(())
//! ```

pub mod basecaller;
pub mod emission;
pub mod metrics;
pub mod quality;
pub mod viterbi;

pub use basecaller::{
    BasecalledChunk, BasecalledRead, Basecaller, CallScratch, CarryState, ChunkJob, LaneDecoder,
    LaneScratch, ReadDecoder, SignalFault,
};
pub use emission::EmissionModel;
pub use quality::QualityCalibration;
pub use viterbi::MAX_LANES;
