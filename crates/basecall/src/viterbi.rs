//! Viterbi decoding over the k-mer state space.
//!
//! The HMM has one state per pore k-mer. At every signal sample the strand
//! either *stays* (the same k-mer keeps occupying the pore) or *advances* by
//! one base (the k-mer shifts left and a new base enters). The decoder finds
//! the maximum-likelihood state path and reports, per sample, the state and
//! whether the path advanced — which is all the basecaller needs to emit
//! bases.
//!
//! # Hot-path organization
//!
//! The decode is the dominant kernel of the whole pipeline (n·n_states DP
//! cells per chunk), so the implementation is built for steady-state reuse:
//!
//! * all working memory lives in a caller-owned [`DecodeScratch`], so
//!   decoding a stream of equally sized chunks performs **zero heap
//!   allocations** after the first chunk warms the buffers;
//! * emissions are computed in strided blocks of [`EmissionModel::BLOCK`]
//!   samples per call ([`EmissionModel::log_likelihoods_block`]), amortizing
//!   per-call overhead;
//! * the inner DP loop exploits the state-space structure: the advance
//!   predecessor set of state `s` depends only on `s >> 2`, so the
//!   4-predecessor gather is hoisted out and computed once per predecessor
//!   group (a 4× reduction of the gather work), leaving two flat passes the
//!   compiler can autovectorize.

use crate::emission::EmissionModel;

/// Result of decoding one chunk of samples (owning variant, produced by
/// [`decode`]; the allocation-free path is [`decode_with`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// Decoded state per sample.
    pub states: Vec<u16>,
    /// `true` at sample `t` if the path advanced into a new k-mer at `t`
    /// (always `false` at sample 0: the initial state "appears" rather than
    /// advances).
    pub advanced: Vec<bool>,
    /// Log-probability score of the winning path (emissions + transitions).
    pub score: f64,
    /// Number of emission MVMs performed (= number of samples).
    pub mvm_ops: usize,
    /// Number of Viterbi DP cells computed (= samples × states).
    pub cells: usize,
}

impl DecodeOutcome {
    /// The state occupying the pore after the last sample; feed this into the
    /// next chunk's decode as `init_state` to stitch chunks together.
    pub fn final_state(&self) -> Option<u16> {
        self.states.last().copied()
    }
}

/// Scalar results of an in-place decode; the state path lives in the
/// [`DecodeScratch`] that was passed in.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DecodeStats {
    /// Log-probability score of the winning path.
    pub score: f64,
    /// Emission MVMs performed (= number of samples).
    pub mvm_ops: usize,
    /// Viterbi DP cells computed (= samples × states).
    pub cells: usize,
}

/// Reusable decode workspace.
///
/// Holds every buffer the DP needs (backpointers, score rows, emission
/// block, the hoisted advance-gather rows, and the output state path).
/// Buffers grow to the largest chunk seen and are then reused, so a
/// steady-state stream of chunks decodes without touching the allocator.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    backptr: Vec<u8>,
    prev: Vec<f32>,
    curr: Vec<f32>,
    emit: Vec<f32>,
    adv_best: Vec<f32>,
    adv_choice: Vec<u8>,
    states: Vec<u16>,
    advanced: Vec<bool>,
}

impl DecodeScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    /// Decoded state per sample of the most recent [`decode_with`] call.
    pub fn states(&self) -> &[u16] {
        &self.states
    }

    /// Per-sample advance flags of the most recent [`decode_with`] call.
    pub fn advanced(&self) -> &[bool] {
        &self.advanced
    }

    /// The state occupying the pore after the last decoded sample.
    pub fn final_state(&self) -> Option<u16> {
        self.states.last().copied()
    }

    /// Grows every buffer for an `n`-sample, `n_states`-state decode.
    /// `resize` reuses existing capacity, so this allocates only when a
    /// larger chunk than ever before arrives.
    fn prepare(&mut self, n: usize, n_states: usize) {
        self.backptr.clear();
        self.backptr.resize(n * n_states, 0);
        self.prev.clear();
        self.prev.resize(n_states, 0.0);
        self.curr.clear();
        self.curr.resize(n_states, 0.0);
        self.emit.clear();
        self.emit.resize(EmissionModel::BLOCK * n_states, 0.0);
        self.adv_best.clear();
        self.adv_best.resize(n_states / 4, 0.0);
        self.adv_choice.clear();
        self.adv_choice.resize(n_states / 4, 0);
        self.states.clear();
        self.states.resize(n, 0);
        self.advanced.clear();
        self.advanced.resize(n, false);
    }
}

/// Viterbi decoder configuration: the transition log-probabilities derived
/// from the mean dwell time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transitions {
    /// log P(stay in current k-mer for one more sample).
    pub log_stay: f32,
    /// log P(advance to one specific successor k-mer).
    pub log_advance: f32,
}

impl Transitions {
    /// Builds transitions from a mean dwell time in samples per base.
    ///
    /// `P(advance) = 1/mean_dwell`, split uniformly over the 4 successor
    /// k-mers.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_dwell > 1` (a dwell of exactly 1 leaves zero
    /// probability of staying, which degenerates the HMM).
    pub fn from_mean_dwell(mean_dwell: f64) -> Transitions {
        assert!(mean_dwell > 1.0, "mean dwell must be > 1 sample/base");
        let p_adv = 1.0 / mean_dwell;
        Transitions {
            log_stay: (1.0 - p_adv).ln() as f32,
            log_advance: (p_adv / 4.0).ln() as f32,
        }
    }
}

/// Decodes `samples` into the maximum-likelihood state path, allocating the
/// result.
///
/// Convenience wrapper over [`decode_with`] for one-shot callers; hot loops
/// should own a [`DecodeScratch`] and call [`decode_with`] instead.
pub fn decode(
    emission: &EmissionModel,
    samples: &[f32],
    transitions: Transitions,
    init_state: Option<u16>,
) -> DecodeOutcome {
    let mut scratch = DecodeScratch::new();
    let stats = decode_with(emission, samples, transitions, init_state, &mut scratch);
    DecodeOutcome {
        states: scratch.states,
        advanced: scratch.advanced,
        score: stats.score,
        mvm_ops: stats.mvm_ops,
        cells: stats.cells,
    }
}

/// Decodes `samples` into the maximum-likelihood state path, writing the
/// per-sample states and advance flags into `scratch`.
///
/// `init_state`, when present, pins the path's first state to the final state
/// of the previous chunk (chunk stitching); otherwise the initial state is
/// free (uniform prior).
///
/// Returns an empty outcome for an empty sample slice. In steady state
/// (chunks no larger than previously decoded ones) this performs no heap
/// allocation — verified by `tests/alloc_free.rs`.
pub fn decode_with(
    emission: &EmissionModel,
    samples: &[f32],
    transitions: Transitions,
    init_state: Option<u16>,
    scratch: &mut DecodeScratch,
) -> DecodeStats {
    let n_states = emission.states();
    debug_assert!(n_states.is_power_of_two() && n_states >= 4);
    let n = samples.len();
    scratch.prepare(n, n_states);
    if n == 0 {
        return DecodeStats {
            score: 0.0,
            mvm_ops: 0,
            cells: 0,
        };
    }
    let k_shift = (n_states.trailing_zeros() - 2) as usize; // 2(k-1) bits
    let n_groups = n_states >> 2;
    let neg_inf = f32::NEG_INFINITY;
    let log_stay = transitions.log_stay;
    let log_advance = transitions.log_advance;

    let DecodeScratch {
        backptr,
        prev,
        curr,
        emit,
        adv_best,
        adv_choice,
        states,
        advanced,
    } = scratch;

    // Backpointers: 0 = stay, 1 + c = advance where the dropped leading base
    // was c (predecessor = (s >> 2) | (c << k_shift)).
    emission.log_likelihoods(samples[0], &mut emit[..n_states]);
    match init_state {
        Some(s0) => {
            // The previous chunk ended in s0; crossing the chunk boundary is
            // one ordinary HMM step, so the first sample either stays in s0
            // or advances into one of its successors.
            let s0 = s0 as usize;
            prev.fill(neg_inf);
            prev[s0] = emit[s0] + log_stay;
            for b in 0..4usize {
                let succ = ((s0 << 2) | b) & (n_states - 1);
                let cand = emit[succ] + log_advance;
                if cand > prev[succ] {
                    prev[succ] = cand;
                    // Dropped leading base of the advance = s0's top 2 bits.
                    backptr[succ] = 1 + (s0 >> k_shift) as u8;
                }
            }
        }
        None => {
            prev.copy_from_slice(&emit[..n_states]);
        }
    }

    // Main DP, in emission blocks: samples [t0, t0 + len) share one strided
    // emission computation.
    let mut t0 = 1usize;
    while t0 < n {
        let len = EmissionModel::BLOCK.min(n - t0);
        emission.log_likelihoods_block(&samples[t0..t0 + len], &mut emit[..len * n_states]);
        for i in 0..len {
            let t = t0 + i;
            let emit_row = &emit[i * n_states..(i + 1) * n_states];
            let bp = &mut backptr[t * n_states..(t + 1) * n_states];

            // Pass 1 (hoisted gather): the advance candidates of state `s`
            // depend only on `low = s >> 2`, so find, per group, the best of
            // the 4 predecessors `low | (c << k_shift)` once instead of four
            // times per state.
            for low in 0..n_groups {
                let mut best = prev[low];
                let mut choice = 1u8; // c = 0
                for c in 1..4usize {
                    let v = prev[low | (c << k_shift)];
                    if v > best {
                        best = v;
                        choice = 1 + c as u8;
                    }
                }
                adv_best[low] = best + log_advance;
                adv_choice[low] = choice;
            }

            // Pass 2: flat stay-vs-advance select over all states.
            for s in 0..n_states {
                let stay = prev[s] + log_stay;
                let adv = adv_best[s >> 2];
                if adv > stay {
                    curr[s] = adv + emit_row[s];
                    bp[s] = adv_choice[s >> 2];
                } else {
                    curr[s] = stay + emit_row[s];
                    bp[s] = 0;
                }
            }
            std::mem::swap(prev, curr);
        }
        t0 += len;
    }

    // Traceback.
    let (mut state, score) = prev
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(s, &v)| (s, v as f64))
        .expect("non-empty state space");
    for t in (1..n).rev() {
        states[t] = state as u16;
        let choice = backptr[t * n_states + state];
        if choice == 0 {
            advanced[t] = false;
        } else {
            advanced[t] = true;
            let c = (choice - 1) as usize;
            state = (state >> 2) | (c << k_shift);
        }
    }
    states[0] = state as u16;
    // Sample 0 advanced only if we were stitched to a previous chunk and the
    // winning path took the boundary-advance branch. states[0] then already
    // holds the advanced-into state, which is what callers emit from.
    if init_state.is_some() {
        advanced[0] = backptr[state] != 0;
    }

    DecodeStats {
        score,
        mvm_ops: n,
        cells: n * n_states,
    }
}

/// Maximum lane width of [`decode_lanes_with`]; widths are clamped to this
/// everywhere a knob supplies them.
pub const MAX_LANES: usize = 16;

/// One decode job for the lane-batched decoder: a chunk of samples plus the
/// optional carried state pinning its first step — exactly [`decode_with`]'s
/// `samples` and `init_state` arguments.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneJob<'a> {
    /// The chunk's signal samples.
    pub samples: &'a [f32],
    /// Final state of the previous chunk of the same read, if any.
    pub init_state: Option<u16>,
}

/// Per-job result of a lane-batched decode, bit-identical to what
/// [`decode_with`] leaves in a [`DecodeScratch`] for the same job.
#[derive(Debug, Clone, Default)]
pub struct LaneOutcome {
    states: Vec<u16>,
    advanced: Vec<bool>,
    stats: DecodeStats,
}

impl LaneOutcome {
    /// Decoded state per sample.
    pub fn states(&self) -> &[u16] {
        &self.states
    }

    /// Per-sample advance flags.
    pub fn advanced(&self) -> &[bool] {
        &self.advanced
    }

    /// Score and work counters of this job's decode.
    pub fn stats(&self) -> DecodeStats {
        self.stats
    }

    /// The state occupying the pore after the job's last sample.
    pub fn final_state(&self) -> Option<u16> {
        self.states.last().copied()
    }
}

/// Reusable workspace of [`decode_lanes_with`].
///
/// All lane-interleaved buffers live here: score rows `prev[s * W + l]`,
/// emission blocks `emit[(i * n_states + s) * W + l]`, the gathered sample
/// block `xs[i * W + l]`, the hoisted advance-gather rows, and one flat
/// backpointer arena holding a `max_n × n_states` plane per lane. Buffers
/// grow to the largest batch seen and are then reused, so a steady-state
/// stream of equally shaped batches decodes without touching the allocator.
#[derive(Debug, Clone, Default)]
pub struct LaneDecodeScratch {
    prev: Vec<f32>,
    curr: Vec<f32>,
    emit: Vec<f32>,
    emit0: Vec<f32>,
    xs: Vec<f32>,
    adv_best: Vec<f32>,
    adv_choice: Vec<u8>,
    bp_row: Vec<u8>,
    backptr: Vec<u8>,
    plane_stride: usize,
    outputs: Vec<LaneOutcome>,
}

impl LaneDecodeScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> LaneDecodeScratch {
        LaneDecodeScratch::default()
    }

    /// Result of job `job` from the most recent [`decode_lanes_with`] call.
    pub fn outcome(&self, job: usize) -> &LaneOutcome {
        &self.outputs[job]
    }

    fn prepare(&mut self, jobs: &[LaneJob], width: usize, n_states: usize) {
        let max_n = jobs.iter().map(|j| j.samples.len()).max().unwrap_or(0);
        self.plane_stride = max_n * n_states;
        self.backptr.clear();
        self.backptr.resize(width * self.plane_stride, 0);
        self.prev.clear();
        self.prev.resize(n_states * width, 0.0);
        self.curr.clear();
        self.curr.resize(n_states * width, 0.0);
        self.emit.clear();
        self.emit
            .resize(EmissionModel::BLOCK * n_states * width, 0.0);
        self.emit0.clear();
        self.emit0.resize(n_states, 0.0);
        self.xs.clear();
        self.xs.resize(EmissionModel::BLOCK * width, 0.0);
        self.adv_best.clear();
        self.adv_best.resize((n_states / 4) * width, 0.0);
        self.adv_choice.clear();
        self.adv_choice.resize((n_states / 4) * width, 0);
        self.bp_row.clear();
        self.bp_row.resize(n_states * width, 0);
        // Never shrink: dropping per-job buffers would force a re-allocation
        // the next time a batch this large arrives.
        if self.outputs.len() < jobs.len() {
            self.outputs.resize_with(jobs.len(), LaneOutcome::default);
        }
    }
}

/// Pops jobs off the queue into lane `l` until one survives its init row.
///
/// Empty jobs record an empty outcome and are skipped; single-sample jobs
/// are finalized immediately (their decode is just the init row) and the
/// lane pulls again. Writes the surviving job's first-sample scores into
/// lane `l`'s column of `prev` with the exact operation order of
/// [`decode_with`]'s init, so stitching stays bit-identical.
#[allow(clippy::too_many_arguments)]
fn lane_fill(
    emission: &EmissionModel,
    transitions: Transitions,
    jobs: &[LaneJob],
    next_job: &mut usize,
    l: usize,
    width: usize,
    plane_stride: usize,
    k_shift: usize,
    job_of: &mut [usize],
    pos: &mut [usize],
    len_of: &mut [usize],
    active: &mut [bool],
    prev: &mut [f32],
    backptr: &mut [u8],
    emit0: &mut [f32],
    outputs: &mut [LaneOutcome],
) {
    let n_states = emission.states();
    loop {
        if *next_job >= jobs.len() {
            active[l] = false;
            return;
        }
        let j = *next_job;
        *next_job += 1;
        let job = jobs[j];
        let n = job.samples.len();
        {
            let out = &mut outputs[j];
            out.states.clear();
            out.advanced.clear();
            out.stats = DecodeStats::default();
            if n == 0 {
                continue;
            }
            out.states.resize(n, 0);
            out.advanced.resize(n, false);
        }
        emission.log_likelihoods(job.samples[0], &mut emit0[..n_states]);
        // Row 0 of this lane's backpointer plane may hold the previous
        // job's entries; the init only writes improved successors, so
        // clear it first (rows 1.. are fully overwritten by the DP).
        backptr[l * plane_stride..l * plane_stride + n_states].fill(0);
        match job.init_state {
            Some(s0) => {
                let s0 = s0 as usize;
                for s in 0..n_states {
                    prev[s * width + l] = f32::NEG_INFINITY;
                }
                prev[s0 * width + l] = emit0[s0] + transitions.log_stay;
                for b in 0..4usize {
                    let succ = ((s0 << 2) | b) & (n_states - 1);
                    let cand = emit0[succ] + transitions.log_advance;
                    if cand > prev[succ * width + l] {
                        prev[succ * width + l] = cand;
                        backptr[l * plane_stride + succ] = 1 + (s0 >> k_shift) as u8;
                    }
                }
            }
            None => {
                for s in 0..n_states {
                    prev[s * width + l] = emit0[s];
                }
            }
        }
        job_of[l] = j;
        pos[l] = 1;
        len_of[l] = n;
        active[l] = true;
        if n == 1 {
            let plane = &backptr[l * plane_stride..l * plane_stride + n_states];
            lane_traceback(
                l,
                width,
                n_states,
                k_shift,
                job.init_state.is_some(),
                prev,
                plane,
                &mut outputs[j],
            );
            active[l] = false;
            continue;
        }
        return;
    }
}

/// Traces lane `l`'s winning path out of its backpointer plane; identical
/// control flow to [`decode_with`]'s traceback over a strided score column.
#[allow(clippy::too_many_arguments)]
fn lane_traceback(
    l: usize,
    width: usize,
    n_states: usize,
    k_shift: usize,
    stitched: bool,
    prev: &[f32],
    plane: &[u8],
    out: &mut LaneOutcome,
) {
    let n = out.states.len();
    let (mut state, score) = (0..n_states)
        .map(|s| prev[s * width + l])
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"))
        .map(|(s, v)| (s, v as f64))
        .expect("non-empty state space");
    for t in (1..n).rev() {
        out.states[t] = state as u16;
        let choice = plane[t * n_states + state];
        if choice == 0 {
            out.advanced[t] = false;
        } else {
            out.advanced[t] = true;
            let c = (choice - 1) as usize;
            state = (state >> 2) | (c << k_shift);
        }
    }
    out.states[0] = state as u16;
    if stitched {
        out.advanced[0] = plane[state] != 0;
    }
    out.stats = DecodeStats {
        score,
        mvm_ops: n,
        cells: n * n_states,
    };
}

/// One full-occupancy DP row (hoisted advance gather + stay-vs-advance
/// select) across `W` lockstep lanes, monomorphized over the lane width.
///
/// The const width turns the interleaved buffers into `[T; W]` rows
/// (`as_chunks`), so every inner lane loop has a compile-time trip count
/// and no per-element bounds checks — which is what lets the
/// autovectorizer turn the stride-1 selects into SIMD compare/blend over
/// the lane rows. With a runtime width the 4–16-iteration inner loops
/// never reach the vector body. The arithmetic is exactly
/// [`dp_row_any`]'s (and therefore [`decode_with`]'s), value for value:
/// the gather's unrolled comparisons replicate the scalar `c in 1..4`
/// loop order, strict `>` and all.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn dp_row_lockstep<const W: usize>(
    n_states: usize,
    k_shift: usize,
    log_stay: f32,
    log_advance: f32,
    prev: &[f32],
    curr: &mut [f32],
    emit_row: &[f32],
    adv_best: &mut [f32],
    adv_choice: &mut [u8],
    bp_row: &mut [u8],
) {
    let n_groups = n_states >> 2;
    let (prev_rows, _) = prev.as_chunks::<W>();
    let (curr_rows, _) = curr.as_chunks_mut::<W>();
    let (emit_rows, _) = emit_row.as_chunks::<W>();
    let (best_rows, _) = adv_best.as_chunks_mut::<W>();
    let (choice_rows, _) = adv_choice.as_chunks_mut::<W>();
    let (bp_rows, _) = bp_row.as_chunks_mut::<W>();
    for low in 0..n_groups {
        let p0 = &prev_rows[low];
        let p1 = &prev_rows[low | (1 << k_shift)];
        let p2 = &prev_rows[low | (2 << k_shift)];
        let p3 = &prev_rows[low | (3 << k_shift)];
        let best_row = &mut best_rows[low];
        let choice_row = &mut choice_rows[low];
        for l in 0..W {
            let mut best = p0[l];
            let mut choice = 1u8;
            if p1[l] > best {
                best = p1[l];
                choice = 2;
            }
            if p2[l] > best {
                best = p2[l];
                choice = 3;
            }
            if p3[l] > best {
                best = p3[l];
                choice = 4;
            }
            best_row[l] = best + log_advance;
            choice_row[l] = choice;
        }
    }
    for s in 0..n_states {
        let g = s >> 2;
        let pr = &prev_rows[s];
        let er = &emit_rows[s];
        let ab = &best_rows[g];
        let ac = &choice_rows[g];
        let cu = &mut curr_rows[s];
        let bp = &mut bp_rows[s];
        for l in 0..W {
            let stay = pr[l] + log_stay;
            let adv = ab[l];
            let e = er[l];
            let take = adv > stay;
            cu[l] = if take { adv + e } else { stay + e };
            bp[l] = if take { ac[l] } else { 0 };
        }
    }
}

/// Runtime-width fallback of [`dp_row_lockstep`] for widths outside the
/// specialized set; same arithmetic, value for value.
#[allow(clippy::too_many_arguments)]
fn dp_row_any(
    width: usize,
    n_states: usize,
    k_shift: usize,
    log_stay: f32,
    log_advance: f32,
    prev: &[f32],
    curr: &mut [f32],
    emit_row: &[f32],
    adv_best: &mut [f32],
    adv_choice: &mut [u8],
    bp_row: &mut [u8],
) {
    let n_groups = n_states >> 2;
    for low in 0..n_groups {
        for l in 0..width {
            let mut best = prev[low * width + l];
            let mut choice = 1u8;
            for c in 1..4usize {
                let v = prev[(low | (c << k_shift)) * width + l];
                if v > best {
                    best = v;
                    choice = 1 + c as u8;
                }
            }
            adv_best[low * width + l] = best + log_advance;
            adv_choice[low * width + l] = choice;
        }
    }
    for s in 0..n_states {
        let g = s >> 2;
        for l in 0..width {
            let stay = prev[s * width + l] + log_stay;
            let adv = adv_best[g * width + l];
            let e = emit_row[s * width + l];
            let take = adv > stay;
            curr[s * width + l] = if take { adv + e } else { stay + e };
            bp_row[s * width + l] = if take { adv_choice[g * width + l] } else { 0 };
        }
    }
}

/// Decodes a queue of independent chunk jobs through `width` lockstep lanes.
///
/// The DP state is laid out structure-of-arrays: the score of state `s` in
/// lane `l` lives at `prev[s * width + l]`, so the inner stay-vs-advance
/// select walks all lanes of a state with stride-1 access and one emission
/// call ([`EmissionModel::log_likelihoods_lanes`]) serves a whole
/// sample-block × lane batch. Lanes run independent cursors: a lane whose
/// job ends mid-block is finalized (traceback) on the spot and refilled
/// from the queue without stalling the other lanes, so `jobs.len()` may
/// exceed `width`.
///
/// Every job's outcome — states, advance flags, score, and counters, read
/// back via [`LaneDecodeScratch::outcome`] — is **bit-identical** to a
/// scalar [`decode_with`] of that job alone, for every `width`: lanes never
/// mix arithmetically, and each lane executes the scalar path's exact
/// per-value operation order (emission, init, hoisted gather, select,
/// traceback). `width == 1` *is* the scalar schedule.
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds [`MAX_LANES`], or (like the scalar
/// path) if a job's samples produce non-finite scores.
pub fn decode_lanes_with(
    emission: &EmissionModel,
    transitions: Transitions,
    jobs: &[LaneJob],
    width: usize,
    scratch: &mut LaneDecodeScratch,
) {
    assert!(
        (1..=MAX_LANES).contains(&width),
        "lane width must be in 1..={MAX_LANES}"
    );
    let n_states = emission.states();
    debug_assert!(n_states.is_power_of_two() && n_states >= 4);
    let k_shift = (n_states.trailing_zeros() - 2) as usize;
    let n_groups = n_states >> 2;
    let log_stay = transitions.log_stay;
    let log_advance = transitions.log_advance;

    scratch.prepare(jobs, width, n_states);
    let LaneDecodeScratch {
        prev,
        curr,
        emit,
        emit0,
        xs,
        adv_best,
        adv_choice,
        bp_row,
        backptr,
        plane_stride,
        outputs,
    } = scratch;
    let plane_stride = *plane_stride;

    let mut job_of = [usize::MAX; MAX_LANES];
    let mut pos = [0usize; MAX_LANES];
    let mut len_of = [0usize; MAX_LANES];
    let mut active = [false; MAX_LANES];
    let mut blocklen = [0usize; MAX_LANES];
    let mut next_job = 0usize;

    for l in 0..width {
        lane_fill(
            emission,
            transitions,
            jobs,
            &mut next_job,
            l,
            width,
            plane_stride,
            k_shift,
            &mut job_of,
            &mut pos,
            &mut len_of,
            &mut active,
            prev,
            backptr,
            emit0,
            outputs,
        );
    }

    loop {
        // Per-lane block lengths: each lane consumes up to BLOCK of its own
        // remaining samples, so lanes holding chunks of different lengths
        // desynchronize without stalling each other.
        let mut maxlen = 0usize;
        for l in 0..width {
            blocklen[l] = if active[l] {
                EmissionModel::BLOCK.min(len_of[l] - pos[l])
            } else {
                0
            };
            maxlen = maxlen.max(blocklen[l]);
        }
        if maxlen == 0 {
            break;
        }

        // Gather the sample block lane-interleaved (0.0 pads lanes that run
        // short; their rows are masked off below) and compute the whole
        // block × batch emission in one widened MVM call.
        for i in 0..maxlen {
            for l in 0..width {
                xs[i * width + l] = if i < blocklen[l] {
                    jobs[job_of[l]].samples[pos[l] + i]
                } else {
                    0.0
                };
            }
        }
        emission.log_likelihoods_lanes(
            &xs[..maxlen * width],
            width,
            &mut emit[..maxlen * n_states * width],
        );

        for i in 0..maxlen {
            let emit_row = &emit[i * n_states * width..(i + 1) * n_states * width];
            let mut row_active = 0usize;
            let mut bpoff = [0usize; MAX_LANES];
            for l in 0..width {
                if i < blocklen[l] {
                    row_active += 1;
                    bpoff[l] = l * plane_stride + (pos[l] + i) * n_states;
                }
            }

            // Both DP passes (hoisted advance gather + stay-vs-advance
            // select), stride-1 across lanes. The backpointer of each lane
            // lives in that lane's plane — a scattered store that would
            // wreck the inner loop — so the row is staged lane-interleaved
            // in `bp_row` (branch-free selects over stride-1 buffers) and
            // scattered into the active planes in one contiguous pass per
            // lane afterwards. The common all-lanes-live case dispatches
            // to a width-monomorphized row so the inner lane loops have
            // compile-time trip counts (see [`dp_row_lockstep`]); in the
            // partial case, inactive lanes copy prev through the swap so a
            // freshly refilled init row survives until its lane wakes.
            if row_active == width {
                macro_rules! dp_row {
                    ($w:expr) => {
                        dp_row_lockstep::<$w>(
                            n_states,
                            k_shift,
                            log_stay,
                            log_advance,
                            prev,
                            curr,
                            emit_row,
                            adv_best,
                            adv_choice,
                            bp_row,
                        )
                    };
                }
                match width {
                    2 => dp_row!(2),
                    3 => dp_row!(3),
                    4 => dp_row!(4),
                    5 => dp_row!(5),
                    6 => dp_row!(6),
                    7 => dp_row!(7),
                    8 => dp_row!(8),
                    12 => dp_row!(12),
                    16 => dp_row!(16),
                    _ => dp_row_any(
                        width,
                        n_states,
                        k_shift,
                        log_stay,
                        log_advance,
                        prev,
                        curr,
                        emit_row,
                        adv_best,
                        adv_choice,
                        bp_row,
                    ),
                }
            } else {
                for low in 0..n_groups {
                    for l in 0..width {
                        let mut best = prev[low * width + l];
                        let mut choice = 1u8;
                        for c in 1..4usize {
                            let v = prev[(low | (c << k_shift)) * width + l];
                            if v > best {
                                best = v;
                                choice = 1 + c as u8;
                            }
                        }
                        adv_best[low * width + l] = best + log_advance;
                        adv_choice[low * width + l] = choice;
                    }
                }
                for s in 0..n_states {
                    let g = s >> 2;
                    for l in 0..width {
                        if i < blocklen[l] {
                            let stay = prev[s * width + l] + log_stay;
                            let adv = adv_best[g * width + l];
                            let e = emit_row[s * width + l];
                            let take = adv > stay;
                            curr[s * width + l] = if take { adv + e } else { stay + e };
                            bp_row[s * width + l] =
                                if take { adv_choice[g * width + l] } else { 0 };
                        } else {
                            curr[s * width + l] = prev[s * width + l];
                        }
                    }
                }
            }
            for l in 0..width {
                if i < blocklen[l] {
                    let plane_row = &mut backptr[bpoff[l]..bpoff[l] + n_states];
                    for (s, b) in plane_row.iter_mut().enumerate() {
                        *b = bp_row[s * width + l];
                    }
                }
            }
            std::mem::swap(prev, curr);

            // Drain: a lane that just consumed its last sample traces back
            // and refills from the queue mid-block; blocklen drops to 0 so
            // the remaining rows (and the end-of-block cursor bump) skip it.
            for l in 0..width {
                if i < blocklen[l] && i + 1 == blocklen[l] && pos[l] + blocklen[l] == len_of[l] {
                    let j = job_of[l];
                    let n_j = len_of[l];
                    let plane = &backptr[l * plane_stride..l * plane_stride + n_j * n_states];
                    lane_traceback(
                        l,
                        width,
                        n_states,
                        k_shift,
                        jobs[j].init_state.is_some(),
                        prev,
                        plane,
                        &mut outputs[j],
                    );
                    blocklen[l] = 0;
                    active[l] = false;
                    lane_fill(
                        emission,
                        transitions,
                        jobs,
                        &mut next_job,
                        l,
                        width,
                        plane_stride,
                        k_shift,
                        &mut job_of,
                        &mut pos,
                        &mut len_of,
                        &mut active,
                        prev,
                        backptr,
                        emit0,
                        outputs,
                    );
                }
            }
        }
        for l in 0..width {
            pos[l] += blocklen[l];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_signal::PoreModel;

    fn setup() -> (PoreModel, EmissionModel, Transitions) {
        let pore = PoreModel::synthetic(3, 7);
        let em = EmissionModel::from_pore_model(&pore);
        (pore, em, Transitions::from_mean_dwell(8.0))
    }

    /// Builds a clean signal that dwells `dwell` samples in each state of
    /// `path` (which must be a valid k-mer walk).
    fn signal_for(pore: &PoreModel, path: &[u16], dwell: usize) -> Vec<f32> {
        let mut out = Vec::new();
        for &s in path {
            for _ in 0..dwell {
                out.push(pore.level_bits(s as u64));
            }
        }
        out
    }

    #[test]
    fn empty_input_empty_output() {
        let (_, em, tr) = setup();
        let out = decode(&em, &[], tr, None);
        assert!(out.states.is_empty());
        assert_eq!(out.mvm_ops, 0);
        assert_eq!(out.final_state(), None);
    }

    #[test]
    fn clean_signal_recovers_state_path() {
        let (pore, em, tr) = setup();
        // Walk: AAA -> AAC -> ACG -> CGT (states 0b000000, 0b000001, ...).
        let path = [0b000000u16, 0b000001, 0b000110, 0b011011];
        // Validate it's a legal walk.
        for w in path.windows(2) {
            assert_eq!((w[1] >> 2), w[0] & 0b001111);
        }
        let samples = signal_for(&pore, &path, 8);
        let out = decode(&em, &samples, tr, None);
        // Decoded dwell blocks must match the path.
        let mut decoded_path = vec![out.states[0]];
        for t in 1..out.states.len() {
            if out.advanced[t] {
                decoded_path.push(out.states[t]);
            }
        }
        assert_eq!(decoded_path, path);
        assert_eq!(out.mvm_ops, samples.len());
        assert_eq!(out.cells, samples.len() * em.states());
    }

    #[test]
    fn advance_count_matches_transitions() {
        let (pore, em, tr) = setup();
        let path = [3u16, 12, 48, 65 & 63, 7];
        // Make the path legal by construction instead: random walk.
        let mut legal = vec![path[0]];
        let mut s = path[0];
        for b in [1u16, 3, 0, 2, 1, 0] {
            s = ((s << 2) | b) & 63;
            legal.push(s);
        }
        let samples = signal_for(&pore, &legal, 10);
        let out = decode(&em, &samples, tr, None);
        let advances = out.advanced.iter().filter(|&&a| a).count();
        assert_eq!(advances, legal.len() - 1);
    }

    #[test]
    fn stitched_decode_continues_path() {
        let (pore, em, tr) = setup();
        let mut states = vec![9u16];
        let mut s = 9u16;
        for b in [0u16, 2, 3, 1, 1, 0, 2] {
            s = ((s << 2) | b) & 63;
            states.push(s);
        }
        let samples = signal_for(&pore, &states, 8);
        let (first, second) = samples.split_at(samples.len() / 2);
        let a = decode(&em, first, tr, None);
        let b = decode(&em, second, tr, a.final_state());
        // The stitched decode must start where the previous chunk ended (or
        // one advance past it).
        let boundary_state = a.final_state().unwrap();
        let succs: Vec<u16> = (0..4).map(|c| ((boundary_state << 2) | c) & 63).collect();
        assert!(
            b.states[0] == boundary_state || succs.contains(&b.states[0]),
            "chunk 2 starts at {} which is neither {} nor its successor",
            b.states[0],
            boundary_state
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_decode() {
        // The same scratch driven across chunks of varying sizes and noise
        // must give results identical to a fresh allocation each time.
        let (pore, em, tr) = setup();
        let mut scratch = DecodeScratch::new();
        let mut carry: Option<u16> = None;
        for seed in 0..12u16 {
            let mut path = vec![seed % 64];
            let mut s = path[0];
            for b in 0..(4 + seed % 7) {
                s = ((s << 2) | (b % 4)) & 63;
                path.push(s);
            }
            let mut samples = signal_for(&pore, &path, 6 + (seed as usize % 5));
            // Perturb the signal deterministically so ties and near-ties
            // occur in both code paths identically.
            for (i, x) in samples.iter_mut().enumerate() {
                *x += ((i * 2654435761) % 97) as f32 * 0.01 - 0.48;
            }
            let fresh = decode(&em, &samples, tr, carry);
            let stats = decode_with(&em, &samples, tr, carry, &mut scratch);
            assert_eq!(scratch.states(), &fresh.states[..], "seed {seed}");
            assert_eq!(scratch.advanced(), &fresh.advanced[..], "seed {seed}");
            assert_eq!(stats.score, fresh.score, "seed {seed}");
            assert_eq!(stats.mvm_ops, fresh.mvm_ops);
            assert_eq!(stats.cells, fresh.cells);
            assert_eq!(scratch.final_state(), fresh.final_state());
            carry = fresh.final_state();
        }
    }

    #[test]
    fn viterbi_matches_brute_force_on_tiny_input() {
        let (pore, em, tr) = setup();
        // 4 noisy samples; brute-force all 64 * 5^3 paths.
        let samples = [
            pore.level_bits(5) + 0.3,
            pore.level_bits(5) - 0.2,
            pore.level_bits(((5 << 2) | 1) & 63) + 0.1,
            pore.level_bits(((5 << 2) | 1) & 63) - 0.4,
        ];
        let out = decode(&em, &samples, tr, None);

        // Brute force: enumerate all state sequences where each step is stay
        // or one of the 4 advances.
        let mut best = f64::NEG_INFINITY;
        let n_states = em.states();
        let mut stack: Vec<(usize, usize, f64)> = (0..n_states)
            .map(|s| (1usize, s, em.log_likelihood(samples[0], s) as f64))
            .collect();
        while let Some((t, s, score)) = stack.pop() {
            if t == samples.len() {
                best = best.max(score);
                continue;
            }
            let e = |s2: usize| em.log_likelihood(samples[t], s2) as f64;
            stack.push((t + 1, s, score + tr.log_stay as f64 + e(s)));
            for b in 0..4usize {
                let s2 = ((s << 2) | b) & (n_states - 1);
                stack.push((t + 1, s2, score + tr.log_advance as f64 + e(s2)));
            }
        }
        assert!(
            (out.score - best).abs() < 1e-3,
            "viterbi {} vs brute force {}",
            out.score,
            best
        );
    }

    #[test]
    #[should_panic(expected = "mean dwell")]
    fn transitions_reject_dwell_of_one() {
        let _ = Transitions::from_mean_dwell(1.0);
    }

    /// Deterministic noisy chunk used by the lane tests: a legal k-mer walk
    /// with per-sample perturbation so ties and near-ties occur.
    fn noisy_chunk(pore: &PoreModel, seed: u16, bases: usize, dwell: usize) -> Vec<f32> {
        let mut path = vec![seed % 64];
        let mut s = path[0];
        for b in 0..bases as u16 {
            s = ((s << 2) | (b % 4)) & 63;
            path.push(s);
        }
        let mut samples = signal_for(pore, &path, dwell);
        for (i, x) in samples.iter_mut().enumerate() {
            *x += ((i * 2654435761) % 97) as f32 * 0.01 - 0.48;
        }
        samples
    }

    fn assert_lane_matches_scalar(
        jobs: &[LaneJob],
        em: &EmissionModel,
        tr: Transitions,
        width: usize,
    ) {
        let mut lanes = LaneDecodeScratch::new();
        decode_lanes_with(em, tr, jobs, width, &mut lanes);
        let mut scalar = DecodeScratch::new();
        for (j, job) in jobs.iter().enumerate() {
            let stats = decode_with(em, job.samples, tr, job.init_state, &mut scalar);
            let out = lanes.outcome(j);
            assert_eq!(out.states(), scalar.states(), "width {width} job {j}");
            assert_eq!(out.advanced(), scalar.advanced(), "width {width} job {j}");
            assert_eq!(out.stats(), stats, "width {width} job {j}");
            assert_eq!(
                out.final_state(),
                scalar.final_state(),
                "width {width} job {j}"
            );
        }
    }

    #[test]
    fn lane_decode_is_bit_identical_to_scalar_for_every_width() {
        let (pore, em, tr) = setup();
        let chunks: Vec<Vec<f32>> = (0..10u16)
            .map(|seed| {
                noisy_chunk(
                    &pore,
                    seed * 7 + 1,
                    4 + (seed as usize % 6),
                    5 + seed as usize % 4,
                )
            })
            .collect();
        let jobs: Vec<LaneJob> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| LaneJob {
                samples: c,
                init_state: if i % 3 == 0 {
                    None
                } else {
                    Some((i * 11 % 64) as u16)
                },
            })
            .collect();
        for width in [1usize, 2, 3, 4, 5, 8, 16] {
            assert_lane_matches_scalar(&jobs, &em, tr, width);
        }
    }

    #[test]
    fn lane_decode_handles_degenerate_job_lengths() {
        let (pore, em, tr) = setup();
        let long = noisy_chunk(&pore, 3, 9, 7);
        let short = noisy_chunk(&pore, 5, 1, 2);
        let one = vec![pore.level_bits(17) + 0.2];
        // Queue mixes empty, single-sample, short, and long jobs so lanes
        // drain and refill at staggered times (including immediately).
        let jobs = [
            LaneJob {
                samples: &[],
                init_state: None,
            },
            LaneJob {
                samples: &one,
                init_state: Some(17),
            },
            LaneJob {
                samples: &long,
                init_state: None,
            },
            LaneJob {
                samples: &one,
                init_state: None,
            },
            LaneJob {
                samples: &short,
                init_state: Some(9),
            },
            LaneJob {
                samples: &[],
                init_state: Some(3),
            },
            LaneJob {
                samples: &long,
                init_state: Some(40),
            },
        ];
        for width in [1usize, 2, 3, 8] {
            assert_lane_matches_scalar(&jobs, &em, tr, width);
        }
    }

    #[test]
    fn lane_decode_refills_lanes_from_a_deep_queue() {
        // More jobs than lanes: every lane must refill several times, with
        // refills landing mid-block (chunk lengths are not BLOCK-aligned).
        let (pore, em, tr) = setup();
        let chunks: Vec<Vec<f32>> = (0..23u16)
            .map(|seed| noisy_chunk(&pore, seed, 2 + (seed as usize % 9), 3 + seed as usize % 5))
            .collect();
        let jobs: Vec<LaneJob> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| LaneJob {
                samples: c,
                init_state: if i % 2 == 0 {
                    Some((i * 5 % 64) as u16)
                } else {
                    None
                },
            })
            .collect();
        for width in [2usize, 4, 16] {
            assert_lane_matches_scalar(&jobs, &em, tr, width);
        }
    }

    #[test]
    fn lane_scratch_reuse_is_bit_identical_across_batches() {
        let (pore, em, tr) = setup();
        let mut lanes = LaneDecodeScratch::new();
        let mut scalar = DecodeScratch::new();
        for round in 0..4u16 {
            let chunks: Vec<Vec<f32>> = (0..6u16)
                .map(|seed| noisy_chunk(&pore, seed + round * 13, 3 + (seed as usize % 5), 4))
                .collect();
            let jobs: Vec<LaneJob> = chunks
                .iter()
                .map(|c| LaneJob {
                    samples: c,
                    init_state: None,
                })
                .collect();
            decode_lanes_with(&em, tr, &jobs, 4, &mut lanes);
            for (j, job) in jobs.iter().enumerate() {
                let stats = decode_with(&em, job.samples, tr, job.init_state, &mut scalar);
                assert_eq!(
                    lanes.outcome(j).states(),
                    scalar.states(),
                    "round {round} job {j}"
                );
                assert_eq!(lanes.outcome(j).stats(), stats, "round {round} job {j}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn zero_lane_width_panics() {
        let (_, em, tr) = setup();
        let mut lanes = LaneDecodeScratch::new();
        decode_lanes_with(&em, tr, &[], 0, &mut lanes);
    }
}
