//! Viterbi decoding over the k-mer state space.
//!
//! The HMM has one state per pore k-mer. At every signal sample the strand
//! either *stays* (the same k-mer keeps occupying the pore) or *advances* by
//! one base (the k-mer shifts left and a new base enters). The decoder finds
//! the maximum-likelihood state path and reports, per sample, the state and
//! whether the path advanced — which is all the basecaller needs to emit
//! bases.

use crate::emission::EmissionModel;

/// Result of decoding one chunk of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// Decoded state per sample.
    pub states: Vec<u16>,
    /// `true` at sample `t` if the path advanced into a new k-mer at `t`
    /// (always `false` at sample 0: the initial state "appears" rather than
    /// advances).
    pub advanced: Vec<bool>,
    /// Log-probability score of the winning path (emissions + transitions).
    pub score: f64,
    /// Number of emission MVMs performed (= number of samples).
    pub mvm_ops: usize,
    /// Number of Viterbi DP cells computed (= samples × states).
    pub cells: usize,
}

impl DecodeOutcome {
    /// The state occupying the pore after the last sample; feed this into the
    /// next chunk's decode as `init_state` to stitch chunks together.
    pub fn final_state(&self) -> Option<u16> {
        self.states.last().copied()
    }
}

/// Viterbi decoder configuration: the transition log-probabilities derived
/// from the mean dwell time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transitions {
    /// log P(stay in current k-mer for one more sample).
    pub log_stay: f32,
    /// log P(advance to one specific successor k-mer).
    pub log_advance: f32,
}

impl Transitions {
    /// Builds transitions from a mean dwell time in samples per base.
    ///
    /// `P(advance) = 1/mean_dwell`, split uniformly over the 4 successor
    /// k-mers.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_dwell > 1` (a dwell of exactly 1 leaves zero
    /// probability of staying, which degenerates the HMM).
    pub fn from_mean_dwell(mean_dwell: f64) -> Transitions {
        assert!(mean_dwell > 1.0, "mean dwell must be > 1 sample/base");
        let p_adv = 1.0 / mean_dwell;
        Transitions {
            log_stay: (1.0 - p_adv).ln() as f32,
            log_advance: (p_adv / 4.0).ln() as f32,
        }
    }
}

/// Decodes `samples` into the maximum-likelihood state path.
///
/// `init_state`, when present, pins the path's first state to the final state
/// of the previous chunk (chunk stitching); otherwise the initial state is
/// free (uniform prior).
///
/// Returns an empty outcome for an empty sample slice.
pub fn decode(
    emission: &EmissionModel,
    samples: &[f32],
    transitions: Transitions,
    init_state: Option<u16>,
) -> DecodeOutcome {
    let n_states = emission.states();
    debug_assert!(n_states.is_power_of_two() && n_states >= 4);
    let n = samples.len();
    if n == 0 {
        return DecodeOutcome {
            states: Vec::new(),
            advanced: Vec::new(),
            score: 0.0,
            mvm_ops: 0,
            cells: 0,
        };
    }
    let k_shift = n_states.trailing_zeros() - 2; // 2(k-1) bits
    let neg_inf = f32::NEG_INFINITY;

    // Backpointers: 0 = stay, 1 + c = advance where the dropped leading base
    // was c (predecessor = (s >> 2) | (c << k_shift)).
    let mut backptr = vec![0u8; n * n_states];
    let mut prev = vec![0.0f32; n_states];
    let mut curr = vec![0.0f32; n_states];
    let mut emit = vec![0.0f32; n_states];

    emission.log_likelihoods(samples[0], &mut emit);
    match init_state {
        Some(s0) => {
            // The previous chunk ended in s0; crossing the chunk boundary is
            // one ordinary HMM step, so the first sample either stays in s0
            // or advances into one of its successors.
            let s0 = s0 as usize;
            prev.fill(neg_inf);
            prev[s0] = emit[s0] + transitions.log_stay;
            for b in 0..4usize {
                let succ = ((s0 << 2) | b) & (n_states - 1);
                let cand = emit[succ] + transitions.log_advance;
                if cand > prev[succ] {
                    prev[succ] = cand;
                    // Dropped leading base of the advance = s0's top 2 bits.
                    backptr[succ] = 1 + (s0 >> k_shift) as u8;
                }
            }
        }
        None => {
            prev.copy_from_slice(&emit);
        }
    }

    for t in 1..n {
        emission.log_likelihoods(samples[t], &mut emit);
        let bp = &mut backptr[t * n_states..(t + 1) * n_states];
        for s in 0..n_states {
            // Stay.
            let mut best = prev[s] + transitions.log_stay;
            let mut choice = 0u8;
            // Advance from each of the 4 predecessors.
            let low = s >> 2;
            for c in 0..4usize {
                let p = low | (c << k_shift);
                let cand = prev[p] + transitions.log_advance;
                if cand > best {
                    best = cand;
                    choice = 1 + c as u8;
                }
            }
            curr[s] = best + emit[s];
            bp[s] = choice;
        }
        std::mem::swap(&mut prev, &mut curr);
    }

    // Traceback.
    let (mut state, score) = prev
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(s, &v)| (s, v as f64))
        .expect("non-empty state space");
    let mut states = vec![0u16; n];
    let mut advanced = vec![false; n];
    for t in (1..n).rev() {
        states[t] = state as u16;
        let choice = backptr[t * n_states + state];
        if choice == 0 {
            advanced[t] = false;
        } else {
            advanced[t] = true;
            let c = (choice - 1) as usize;
            state = (state >> 2) | (c << k_shift);
        }
    }
    states[0] = state as u16;
    // Sample 0 advanced only if we were stitched to a previous chunk and the
    // winning path took the boundary-advance branch.
    if init_state.is_some() {
        let choice = backptr[state];
        advanced[0] = choice != 0;
        if choice != 0 {
            // The path's true first state is init_state; states[0] already
            // holds the advanced-into state, which is what callers emit from.
        }
    }

    DecodeOutcome {
        states,
        advanced,
        score,
        mvm_ops: n,
        cells: n * n_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_signal::PoreModel;

    fn setup() -> (PoreModel, EmissionModel, Transitions) {
        let pore = PoreModel::synthetic(3, 7);
        let em = EmissionModel::from_pore_model(&pore);
        (pore, em, Transitions::from_mean_dwell(8.0))
    }

    /// Builds a clean signal that dwells `dwell` samples in each state of
    /// `path` (which must be a valid k-mer walk).
    fn signal_for(pore: &PoreModel, path: &[u16], dwell: usize) -> Vec<f32> {
        let mut out = Vec::new();
        for &s in path {
            for _ in 0..dwell {
                out.push(pore.level_bits(s as u64));
            }
        }
        out
    }

    #[test]
    fn empty_input_empty_output() {
        let (_, em, tr) = setup();
        let out = decode(&em, &[], tr, None);
        assert!(out.states.is_empty());
        assert_eq!(out.mvm_ops, 0);
        assert_eq!(out.final_state(), None);
    }

    #[test]
    fn clean_signal_recovers_state_path() {
        let (pore, em, tr) = setup();
        // Walk: AAA -> AAC -> ACG -> CGT (states 0b000000, 0b000001, ...).
        let path = [0b000000u16, 0b000001, 0b000110, 0b011011];
        // Validate it's a legal walk.
        for w in path.windows(2) {
            assert_eq!((w[1] >> 2), w[0] & 0b001111);
        }
        let samples = signal_for(&pore, &path, 8);
        let out = decode(&em, &samples, tr, None);
        // Decoded dwell blocks must match the path.
        let mut decoded_path = vec![out.states[0]];
        for t in 1..out.states.len() {
            if out.advanced[t] {
                decoded_path.push(out.states[t]);
            }
        }
        assert_eq!(decoded_path, path);
        assert_eq!(out.mvm_ops, samples.len());
        assert_eq!(out.cells, samples.len() * em.states());
    }

    #[test]
    fn advance_count_matches_transitions() {
        let (pore, em, tr) = setup();
        let path = [3u16, 12, 48, 65 & 63, 7];
        // Make the path legal by construction instead: random walk.
        let mut legal = vec![path[0]];
        let mut s = path[0];
        for b in [1u16, 3, 0, 2, 1, 0] {
            s = ((s << 2) | b) & 63;
            legal.push(s);
        }
        let samples = signal_for(&pore, &legal, 10);
        let out = decode(&em, &samples, tr, None);
        let advances = out.advanced.iter().filter(|&&a| a).count();
        assert_eq!(advances, legal.len() - 1);
    }

    #[test]
    fn stitched_decode_continues_path() {
        let (pore, em, tr) = setup();
        let mut states = vec![9u16];
        let mut s = 9u16;
        for b in [0u16, 2, 3, 1, 1, 0, 2] {
            s = ((s << 2) | b) & 63;
            states.push(s);
        }
        let samples = signal_for(&pore, &states, 8);
        let (first, second) = samples.split_at(samples.len() / 2);
        let a = decode(&em, first, tr, None);
        let b = decode(&em, second, tr, a.final_state());
        // The stitched decode must start where the previous chunk ended (or
        // one advance past it).
        let boundary_state = a.final_state().unwrap();
        let succs: Vec<u16> = (0..4).map(|c| ((boundary_state << 2) | c) & 63).collect();
        assert!(
            b.states[0] == boundary_state || succs.contains(&b.states[0]),
            "chunk 2 starts at {} which is neither {} nor its successor",
            b.states[0],
            boundary_state
        );
    }

    #[test]
    fn viterbi_matches_brute_force_on_tiny_input() {
        let (pore, em, tr) = setup();
        // 4 noisy samples; brute-force all 64 * 5^3 paths.
        let samples = [
            pore.level_bits(5) + 0.3,
            pore.level_bits(5) - 0.2,
            pore.level_bits(((5 << 2) | 1) & 63) + 0.1,
            pore.level_bits(((5 << 2) | 1) & 63) - 0.4,
        ];
        let out = decode(&em, &samples, tr, None);

        // Brute force: enumerate all state sequences where each step is stay
        // or one of the 4 advances.
        let mut best = f64::NEG_INFINITY;
        let n_states = em.states();
        let mut stack: Vec<(usize, usize, f64)> = (0..n_states)
            .map(|s| (1usize, s, em.log_likelihood(samples[0], s) as f64))
            .collect();
        while let Some((t, s, score)) = stack.pop() {
            if t == samples.len() {
                best = best.max(score);
                continue;
            }
            let e = |s2: usize| em.log_likelihood(samples[t], s2) as f64;
            stack.push((t + 1, s, score + tr.log_stay as f64 + e(s)));
            for b in 0..4usize {
                let s2 = ((s << 2) | b) & (n_states - 1);
                stack.push((t + 1, s2, score + tr.log_advance as f64 + e(s2)));
            }
        }
        assert!(
            (out.score - best).abs() < 1e-3,
            "viterbi {} vs brute force {}",
            out.score,
            best
        );
    }

    #[test]
    #[should_panic(expected = "mean dwell")]
    fn transitions_reject_dwell_of_one() {
        let _ = Transitions::from_mean_dwell(1.0);
    }
}
