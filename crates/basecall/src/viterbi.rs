//! Viterbi decoding over the k-mer state space.
//!
//! The HMM has one state per pore k-mer. At every signal sample the strand
//! either *stays* (the same k-mer keeps occupying the pore) or *advances* by
//! one base (the k-mer shifts left and a new base enters). The decoder finds
//! the maximum-likelihood state path and reports, per sample, the state and
//! whether the path advanced — which is all the basecaller needs to emit
//! bases.
//!
//! # Hot-path organization
//!
//! The decode is the dominant kernel of the whole pipeline (n·n_states DP
//! cells per chunk), so the implementation is built for steady-state reuse:
//!
//! * all working memory lives in a caller-owned [`DecodeScratch`], so
//!   decoding a stream of equally sized chunks performs **zero heap
//!   allocations** after the first chunk warms the buffers;
//! * emissions are computed in strided blocks of [`EmissionModel::BLOCK`]
//!   samples per call ([`EmissionModel::log_likelihoods_block`]), amortizing
//!   per-call overhead;
//! * the inner DP loop exploits the state-space structure: the advance
//!   predecessor set of state `s` depends only on `s >> 2`, so the
//!   4-predecessor gather is hoisted out and computed once per predecessor
//!   group (a 4× reduction of the gather work), leaving two flat passes the
//!   compiler can autovectorize.

use crate::emission::EmissionModel;

/// Result of decoding one chunk of samples (owning variant, produced by
/// [`decode`]; the allocation-free path is [`decode_with`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeOutcome {
    /// Decoded state per sample.
    pub states: Vec<u16>,
    /// `true` at sample `t` if the path advanced into a new k-mer at `t`
    /// (always `false` at sample 0: the initial state "appears" rather than
    /// advances).
    pub advanced: Vec<bool>,
    /// Log-probability score of the winning path (emissions + transitions).
    pub score: f64,
    /// Number of emission MVMs performed (= number of samples).
    pub mvm_ops: usize,
    /// Number of Viterbi DP cells computed (= samples × states).
    pub cells: usize,
}

impl DecodeOutcome {
    /// The state occupying the pore after the last sample; feed this into the
    /// next chunk's decode as `init_state` to stitch chunks together.
    pub fn final_state(&self) -> Option<u16> {
        self.states.last().copied()
    }
}

/// Scalar results of an in-place decode; the state path lives in the
/// [`DecodeScratch`] that was passed in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeStats {
    /// Log-probability score of the winning path.
    pub score: f64,
    /// Emission MVMs performed (= number of samples).
    pub mvm_ops: usize,
    /// Viterbi DP cells computed (= samples × states).
    pub cells: usize,
}

/// Reusable decode workspace.
///
/// Holds every buffer the DP needs (backpointers, score rows, emission
/// block, the hoisted advance-gather rows, and the output state path).
/// Buffers grow to the largest chunk seen and are then reused, so a
/// steady-state stream of chunks decodes without touching the allocator.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    backptr: Vec<u8>,
    prev: Vec<f32>,
    curr: Vec<f32>,
    emit: Vec<f32>,
    adv_best: Vec<f32>,
    adv_choice: Vec<u8>,
    states: Vec<u16>,
    advanced: Vec<bool>,
}

impl DecodeScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> DecodeScratch {
        DecodeScratch::default()
    }

    /// Decoded state per sample of the most recent [`decode_with`] call.
    pub fn states(&self) -> &[u16] {
        &self.states
    }

    /// Per-sample advance flags of the most recent [`decode_with`] call.
    pub fn advanced(&self) -> &[bool] {
        &self.advanced
    }

    /// The state occupying the pore after the last decoded sample.
    pub fn final_state(&self) -> Option<u16> {
        self.states.last().copied()
    }

    /// Grows every buffer for an `n`-sample, `n_states`-state decode.
    /// `resize` reuses existing capacity, so this allocates only when a
    /// larger chunk than ever before arrives.
    fn prepare(&mut self, n: usize, n_states: usize) {
        self.backptr.clear();
        self.backptr.resize(n * n_states, 0);
        self.prev.clear();
        self.prev.resize(n_states, 0.0);
        self.curr.clear();
        self.curr.resize(n_states, 0.0);
        self.emit.clear();
        self.emit.resize(EmissionModel::BLOCK * n_states, 0.0);
        self.adv_best.clear();
        self.adv_best.resize(n_states / 4, 0.0);
        self.adv_choice.clear();
        self.adv_choice.resize(n_states / 4, 0);
        self.states.clear();
        self.states.resize(n, 0);
        self.advanced.clear();
        self.advanced.resize(n, false);
    }
}

/// Viterbi decoder configuration: the transition log-probabilities derived
/// from the mean dwell time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transitions {
    /// log P(stay in current k-mer for one more sample).
    pub log_stay: f32,
    /// log P(advance to one specific successor k-mer).
    pub log_advance: f32,
}

impl Transitions {
    /// Builds transitions from a mean dwell time in samples per base.
    ///
    /// `P(advance) = 1/mean_dwell`, split uniformly over the 4 successor
    /// k-mers.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_dwell > 1` (a dwell of exactly 1 leaves zero
    /// probability of staying, which degenerates the HMM).
    pub fn from_mean_dwell(mean_dwell: f64) -> Transitions {
        assert!(mean_dwell > 1.0, "mean dwell must be > 1 sample/base");
        let p_adv = 1.0 / mean_dwell;
        Transitions {
            log_stay: (1.0 - p_adv).ln() as f32,
            log_advance: (p_adv / 4.0).ln() as f32,
        }
    }
}

/// Decodes `samples` into the maximum-likelihood state path, allocating the
/// result.
///
/// Convenience wrapper over [`decode_with`] for one-shot callers; hot loops
/// should own a [`DecodeScratch`] and call [`decode_with`] instead.
pub fn decode(
    emission: &EmissionModel,
    samples: &[f32],
    transitions: Transitions,
    init_state: Option<u16>,
) -> DecodeOutcome {
    let mut scratch = DecodeScratch::new();
    let stats = decode_with(emission, samples, transitions, init_state, &mut scratch);
    DecodeOutcome {
        states: scratch.states,
        advanced: scratch.advanced,
        score: stats.score,
        mvm_ops: stats.mvm_ops,
        cells: stats.cells,
    }
}

/// Decodes `samples` into the maximum-likelihood state path, writing the
/// per-sample states and advance flags into `scratch`.
///
/// `init_state`, when present, pins the path's first state to the final state
/// of the previous chunk (chunk stitching); otherwise the initial state is
/// free (uniform prior).
///
/// Returns an empty outcome for an empty sample slice. In steady state
/// (chunks no larger than previously decoded ones) this performs no heap
/// allocation — verified by `tests/alloc_free.rs`.
pub fn decode_with(
    emission: &EmissionModel,
    samples: &[f32],
    transitions: Transitions,
    init_state: Option<u16>,
    scratch: &mut DecodeScratch,
) -> DecodeStats {
    let n_states = emission.states();
    debug_assert!(n_states.is_power_of_two() && n_states >= 4);
    let n = samples.len();
    scratch.prepare(n, n_states);
    if n == 0 {
        return DecodeStats {
            score: 0.0,
            mvm_ops: 0,
            cells: 0,
        };
    }
    let k_shift = (n_states.trailing_zeros() - 2) as usize; // 2(k-1) bits
    let n_groups = n_states >> 2;
    let neg_inf = f32::NEG_INFINITY;
    let log_stay = transitions.log_stay;
    let log_advance = transitions.log_advance;

    let DecodeScratch {
        backptr,
        prev,
        curr,
        emit,
        adv_best,
        adv_choice,
        states,
        advanced,
    } = scratch;

    // Backpointers: 0 = stay, 1 + c = advance where the dropped leading base
    // was c (predecessor = (s >> 2) | (c << k_shift)).
    emission.log_likelihoods(samples[0], &mut emit[..n_states]);
    match init_state {
        Some(s0) => {
            // The previous chunk ended in s0; crossing the chunk boundary is
            // one ordinary HMM step, so the first sample either stays in s0
            // or advances into one of its successors.
            let s0 = s0 as usize;
            prev.fill(neg_inf);
            prev[s0] = emit[s0] + log_stay;
            for b in 0..4usize {
                let succ = ((s0 << 2) | b) & (n_states - 1);
                let cand = emit[succ] + log_advance;
                if cand > prev[succ] {
                    prev[succ] = cand;
                    // Dropped leading base of the advance = s0's top 2 bits.
                    backptr[succ] = 1 + (s0 >> k_shift) as u8;
                }
            }
        }
        None => {
            prev.copy_from_slice(&emit[..n_states]);
        }
    }

    // Main DP, in emission blocks: samples [t0, t0 + len) share one strided
    // emission computation.
    let mut t0 = 1usize;
    while t0 < n {
        let len = EmissionModel::BLOCK.min(n - t0);
        emission.log_likelihoods_block(&samples[t0..t0 + len], &mut emit[..len * n_states]);
        for i in 0..len {
            let t = t0 + i;
            let emit_row = &emit[i * n_states..(i + 1) * n_states];
            let bp = &mut backptr[t * n_states..(t + 1) * n_states];

            // Pass 1 (hoisted gather): the advance candidates of state `s`
            // depend only on `low = s >> 2`, so find, per group, the best of
            // the 4 predecessors `low | (c << k_shift)` once instead of four
            // times per state.
            for low in 0..n_groups {
                let mut best = prev[low];
                let mut choice = 1u8; // c = 0
                for c in 1..4usize {
                    let v = prev[low | (c << k_shift)];
                    if v > best {
                        best = v;
                        choice = 1 + c as u8;
                    }
                }
                adv_best[low] = best + log_advance;
                adv_choice[low] = choice;
            }

            // Pass 2: flat stay-vs-advance select over all states.
            for s in 0..n_states {
                let stay = prev[s] + log_stay;
                let adv = adv_best[s >> 2];
                if adv > stay {
                    curr[s] = adv + emit_row[s];
                    bp[s] = adv_choice[s >> 2];
                } else {
                    curr[s] = stay + emit_row[s];
                    bp[s] = 0;
                }
            }
            std::mem::swap(prev, curr);
        }
        t0 += len;
    }

    // Traceback.
    let (mut state, score) = prev
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(s, &v)| (s, v as f64))
        .expect("non-empty state space");
    for t in (1..n).rev() {
        states[t] = state as u16;
        let choice = backptr[t * n_states + state];
        if choice == 0 {
            advanced[t] = false;
        } else {
            advanced[t] = true;
            let c = (choice - 1) as usize;
            state = (state >> 2) | (c << k_shift);
        }
    }
    states[0] = state as u16;
    // Sample 0 advanced only if we were stitched to a previous chunk and the
    // winning path took the boundary-advance branch. states[0] then already
    // holds the advanced-into state, which is what callers emit from.
    if init_state.is_some() {
        advanced[0] = backptr[state] != 0;
    }

    DecodeStats {
        score,
        mvm_ops: n,
        cells: n * n_states,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genpip_signal::PoreModel;

    fn setup() -> (PoreModel, EmissionModel, Transitions) {
        let pore = PoreModel::synthetic(3, 7);
        let em = EmissionModel::from_pore_model(&pore);
        (pore, em, Transitions::from_mean_dwell(8.0))
    }

    /// Builds a clean signal that dwells `dwell` samples in each state of
    /// `path` (which must be a valid k-mer walk).
    fn signal_for(pore: &PoreModel, path: &[u16], dwell: usize) -> Vec<f32> {
        let mut out = Vec::new();
        for &s in path {
            for _ in 0..dwell {
                out.push(pore.level_bits(s as u64));
            }
        }
        out
    }

    #[test]
    fn empty_input_empty_output() {
        let (_, em, tr) = setup();
        let out = decode(&em, &[], tr, None);
        assert!(out.states.is_empty());
        assert_eq!(out.mvm_ops, 0);
        assert_eq!(out.final_state(), None);
    }

    #[test]
    fn clean_signal_recovers_state_path() {
        let (pore, em, tr) = setup();
        // Walk: AAA -> AAC -> ACG -> CGT (states 0b000000, 0b000001, ...).
        let path = [0b000000u16, 0b000001, 0b000110, 0b011011];
        // Validate it's a legal walk.
        for w in path.windows(2) {
            assert_eq!((w[1] >> 2), w[0] & 0b001111);
        }
        let samples = signal_for(&pore, &path, 8);
        let out = decode(&em, &samples, tr, None);
        // Decoded dwell blocks must match the path.
        let mut decoded_path = vec![out.states[0]];
        for t in 1..out.states.len() {
            if out.advanced[t] {
                decoded_path.push(out.states[t]);
            }
        }
        assert_eq!(decoded_path, path);
        assert_eq!(out.mvm_ops, samples.len());
        assert_eq!(out.cells, samples.len() * em.states());
    }

    #[test]
    fn advance_count_matches_transitions() {
        let (pore, em, tr) = setup();
        let path = [3u16, 12, 48, 65 & 63, 7];
        // Make the path legal by construction instead: random walk.
        let mut legal = vec![path[0]];
        let mut s = path[0];
        for b in [1u16, 3, 0, 2, 1, 0] {
            s = ((s << 2) | b) & 63;
            legal.push(s);
        }
        let samples = signal_for(&pore, &legal, 10);
        let out = decode(&em, &samples, tr, None);
        let advances = out.advanced.iter().filter(|&&a| a).count();
        assert_eq!(advances, legal.len() - 1);
    }

    #[test]
    fn stitched_decode_continues_path() {
        let (pore, em, tr) = setup();
        let mut states = vec![9u16];
        let mut s = 9u16;
        for b in [0u16, 2, 3, 1, 1, 0, 2] {
            s = ((s << 2) | b) & 63;
            states.push(s);
        }
        let samples = signal_for(&pore, &states, 8);
        let (first, second) = samples.split_at(samples.len() / 2);
        let a = decode(&em, first, tr, None);
        let b = decode(&em, second, tr, a.final_state());
        // The stitched decode must start where the previous chunk ended (or
        // one advance past it).
        let boundary_state = a.final_state().unwrap();
        let succs: Vec<u16> = (0..4).map(|c| ((boundary_state << 2) | c) & 63).collect();
        assert!(
            b.states[0] == boundary_state || succs.contains(&b.states[0]),
            "chunk 2 starts at {} which is neither {} nor its successor",
            b.states[0],
            boundary_state
        );
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_decode() {
        // The same scratch driven across chunks of varying sizes and noise
        // must give results identical to a fresh allocation each time.
        let (pore, em, tr) = setup();
        let mut scratch = DecodeScratch::new();
        let mut carry: Option<u16> = None;
        for seed in 0..12u16 {
            let mut path = vec![seed % 64];
            let mut s = path[0];
            for b in 0..(4 + seed % 7) {
                s = ((s << 2) | (b % 4)) & 63;
                path.push(s);
            }
            let mut samples = signal_for(&pore, &path, 6 + (seed as usize % 5));
            // Perturb the signal deterministically so ties and near-ties
            // occur in both code paths identically.
            for (i, x) in samples.iter_mut().enumerate() {
                *x += ((i * 2654435761) % 97) as f32 * 0.01 - 0.48;
            }
            let fresh = decode(&em, &samples, tr, carry);
            let stats = decode_with(&em, &samples, tr, carry, &mut scratch);
            assert_eq!(scratch.states(), &fresh.states[..], "seed {seed}");
            assert_eq!(scratch.advanced(), &fresh.advanced[..], "seed {seed}");
            assert_eq!(stats.score, fresh.score, "seed {seed}");
            assert_eq!(stats.mvm_ops, fresh.mvm_ops);
            assert_eq!(stats.cells, fresh.cells);
            assert_eq!(scratch.final_state(), fresh.final_state());
            carry = fresh.final_state();
        }
    }

    #[test]
    fn viterbi_matches_brute_force_on_tiny_input() {
        let (pore, em, tr) = setup();
        // 4 noisy samples; brute-force all 64 * 5^3 paths.
        let samples = [
            pore.level_bits(5) + 0.3,
            pore.level_bits(5) - 0.2,
            pore.level_bits(((5 << 2) | 1) & 63) + 0.1,
            pore.level_bits(((5 << 2) | 1) & 63) - 0.4,
        ];
        let out = decode(&em, &samples, tr, None);

        // Brute force: enumerate all state sequences where each step is stay
        // or one of the 4 advances.
        let mut best = f64::NEG_INFINITY;
        let n_states = em.states();
        let mut stack: Vec<(usize, usize, f64)> = (0..n_states)
            .map(|s| (1usize, s, em.log_likelihood(samples[0], s) as f64))
            .collect();
        while let Some((t, s, score)) = stack.pop() {
            if t == samples.len() {
                best = best.max(score);
                continue;
            }
            let e = |s2: usize| em.log_likelihood(samples[t], s2) as f64;
            stack.push((t + 1, s, score + tr.log_stay as f64 + e(s)));
            for b in 0..4usize {
                let s2 = ((s << 2) | b) & (n_states - 1);
                stack.push((t + 1, s2, score + tr.log_advance as f64 + e(s2)));
            }
        }
        assert!(
            (out.score - best).abs() < 1e-3,
            "viterbi {} vs brute force {}",
            out.score,
            best
        );
    }

    #[test]
    #[should_panic(expected = "mean dwell")]
    fn transitions_reject_dwell_of_one() {
        let _ = Transitions::from_mean_dwell(1.0);
    }
}
