//! Per-base quality score calibration.
//!
//! A DNN basecaller emits a Phred quality per base from its softmax
//! posterior. Our HMM basecaller derives the same signal from the *normalized
//! residual*: for the samples assigned to a base, the mean squared deviation
//! between observed current and the decoded state's expected level, in units
//! of the decoder's assumed variance (`z̄²`). Correct calls on clean signal
//! give `z̄² ≈ 1`; noise or miscalls inflate it.
//!
//! The calibration maps `z̄²` to Phred logarithmically,
//! `Q = q_ref − γ·ln(z̄²)`, with constants chosen so that the synthetic
//! datasets land in the paper's observed bands (Figure 7): clean reads
//! (noise ≈ 1×) produce chunk scores ≈ 11–18 and noisy reads (≈ 3×) produce
//! ≈ 4–10, with the Q7 read-quality-control threshold falling between the
//! bands.

use genpip_genomics::Phred;

/// Residual → Phred calibration curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityCalibration {
    /// Quality assigned at `z̄² = 1` (clean signal, correct call).
    pub q_ref: f32,
    /// Log-slope: quality lost per e-fold increase in residual.
    pub gamma: f32,
    /// Lower clamp.
    pub q_floor: f32,
    /// Upper clamp.
    pub q_ceil: f32,
}

impl QualityCalibration {
    /// The calibration used by all experiments.
    ///
    /// The constants are fitted to the *empirical* residuals the Viterbi
    /// decoder produces on synthetic signals (the decoder partially fits the
    /// noise, so observed `z̄²` saturates below the true noise variance):
    /// noise 1× → `z̄² ≈ 0.7` → Q ≈ 13, noise 3× → `z̄² ≈ 3.9` → Q ≈ 4.5.
    /// This places the paper's Q7 threshold at ≈2× noise, with clean reads
    /// in the Q9–Q17 band and noisy reads in the Q4–Q6 band (Figure 7).
    pub fn default_r9() -> QualityCalibration {
        QualityCalibration {
            q_ref: 11.3,
            gamma: 5.0,
            q_floor: 0.5,
            q_ceil: 20.0,
        }
    }

    /// Maps a mean normalized squared residual to a Phred score.
    ///
    /// Residuals are floored at a small epsilon so that a perfectly clean
    /// segment hits the upper clamp instead of producing infinity.
    pub fn phred_from_residual(&self, mean_z2: f32) -> Phred {
        let z2 = mean_z2.max(1e-4);
        let q = self.q_ref - self.gamma * z2.ln();
        Phred(q.clamp(self.q_floor, self.q_ceil))
    }
}

impl Default for QualityCalibration {
    fn default() -> QualityCalibration {
        QualityCalibration::default_r9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_residual_gives_reference_quality() {
        let c = QualityCalibration::default_r9();
        assert!((c.phred_from_residual(1.0).0 - c.q_ref).abs() < 1e-6);
    }

    #[test]
    fn curve_is_monotone_decreasing() {
        let c = QualityCalibration::default_r9();
        let qs: Vec<f32> = [0.5, 1.0, 2.0, 4.0, 9.0, 16.0]
            .iter()
            .map(|&z2| c.phred_from_residual(z2).0)
            .collect();
        assert!(qs.windows(2).all(|w| w[0] >= w[1]), "{qs:?}");
    }

    #[test]
    fn bands_match_the_paper() {
        // Empirical decoder residuals: clean reads (noise ~0.7..1.5x) yield
        // z̄² ~0.36..1.6 and must sit above the Q7 threshold; noisy reads
        // (~2.5..3.5x) yield z̄² ~3.4..4.4 and must sit below it.
        let c = QualityCalibration::default_r9();
        assert!(c.phred_from_residual(0.36).0 > 13.0);
        assert!(c.phred_from_residual(1.6).0 > 8.0);
        assert!(c.phred_from_residual(3.4).0 < 6.0);
        assert!(c.phred_from_residual(4.4).0 < 5.0);
    }

    #[test]
    fn clamps_apply() {
        let c = QualityCalibration::default_r9();
        assert_eq!(c.phred_from_residual(0.0).0, c.q_ceil);
        assert_eq!(c.phred_from_residual(1e9).0, c.q_floor);
    }
}
