//! The MVM emission kernel.
//!
//! For every signal sample `x`, the decoder needs the emission log-likelihood
//! of each k-mer state. Writing the Gaussian log-density as a dot product
//! against the feature vector `[x², x, 1]` turns the whole per-sample
//! computation into one matrix–vector multiplication with a `states × 3`
//! weight matrix — the exact operation the paper's NVM crossbars perform
//! in-situ (Section 2.2, Figure 2). `genpip-pim` replays these MVMs on its
//! crossbar model; this module is the functional reference.

use genpip_signal::PoreModel;

/// Emission weight matrix: row `s` holds the Gaussian log-density
/// coefficients for state `s`.
#[derive(Debug, Clone, PartialEq)]
pub struct EmissionModel {
    /// Flattened `states × 3` weight matrix, row-major.
    weights: Vec<f32>,
    states: usize,
    assumed_std: f32,
}

impl EmissionModel {
    /// Number of matrix columns (the feature vector `[x², x, 1]` length).
    pub const FEATURES: usize = 3;

    /// Builds the emission matrix from a pore model.
    ///
    /// The decoder assumes the model's nominal event standard deviation; a
    /// read whose true noise is higher produces systematically lower
    /// likelihoods (and therefore lower quality scores), which is exactly the
    /// behaviour read quality control exploits.
    pub fn from_pore_model(model: &PoreModel) -> EmissionModel {
        let states = model.states();
        let sigma = model.event_std();
        let inv2s2 = 1.0 / (2.0 * sigma * sigma);
        let mut weights = Vec::with_capacity(states * Self::FEATURES);
        for s in 0..states {
            let mu = model.level_bits(s as u64);
            weights.push(-inv2s2); // coefficient of x²
            weights.push(2.0 * mu * inv2s2); // coefficient of x
            weights.push(-mu * mu * inv2s2); // constant term
        }
        EmissionModel {
            weights,
            states,
            assumed_std: sigma,
        }
    }

    /// Number of states (matrix rows).
    #[inline]
    pub fn states(&self) -> usize {
        self.states
    }

    /// The noise level the decoder assumes (pA).
    #[inline]
    pub fn assumed_std(&self) -> f32 {
        self.assumed_std
    }

    /// The flattened row-major `states × 3` weight matrix — what gets
    /// programmed into the PIM crossbar.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The feature vector for a sample.
    #[inline]
    pub fn features(x: f32) -> [f32; 3] {
        [x * x, x, 1.0]
    }

    /// Computes emission log-likelihoods (up to a state-independent constant)
    /// for all states into `out` — one MVM.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.states()`.
    pub fn log_likelihoods(&self, x: f32, out: &mut [f32]) {
        assert_eq!(out.len(), self.states, "output buffer size mismatch");
        let f = Self::features(x);
        for (s, o) in out.iter_mut().enumerate() {
            let row = &self.weights[s * Self::FEATURES..(s + 1) * Self::FEATURES];
            *o = row[0] * f[0] + row[1] * f[1] + row[2] * f[2];
        }
    }

    /// Number of samples [`EmissionModel::log_likelihoods_block`] handles
    /// per call; the decoder batches its emission MVMs in blocks of this
    /// size to amortize call overhead and keep the weight matrix hot.
    pub const BLOCK: usize = 8;

    /// Computes emission log-likelihoods for up to [`EmissionModel::BLOCK`]
    /// samples in one strided pass: `out[i * states + s]` receives the
    /// log-likelihood of state `s` for sample `xs[i]`.
    ///
    /// Each output value is computed with the same operation order as
    /// [`EmissionModel::log_likelihoods`], so the two are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() > BLOCK` or `out.len() != xs.len() * states`.
    pub fn log_likelihoods_block(&self, xs: &[f32], out: &mut [f32]) {
        assert!(xs.len() <= Self::BLOCK, "block too large");
        assert_eq!(
            out.len(),
            xs.len() * self.states,
            "output buffer size mismatch"
        );
        let mut features = [[0.0f32; 3]; Self::BLOCK];
        for (f, &x) in features.iter_mut().zip(xs) {
            *f = Self::features(x);
        }
        for s in 0..self.states {
            let row = &self.weights[s * Self::FEATURES..(s + 1) * Self::FEATURES];
            let (w0, w1, w2) = (row[0], row[1], row[2]);
            for (i, f) in features[..xs.len()].iter().enumerate() {
                out[i * self.states + s] = w0 * f[0] + w1 * f[1] + w2 * f[2];
            }
        }
    }

    /// Computes emission log-likelihoods for a lane-interleaved block of
    /// samples: `xs[i * lanes + l]` is sample `i` of lane `l`, and
    /// `out[(i * states + s) * lanes + l]` receives the log-likelihood of
    /// state `s` for that sample. The innermost loop walks lanes, so
    /// consecutive output writes are stride-1 across the lane batch — the
    /// CPU analogue of evaluating one crossbar MVM for W chunks at once.
    ///
    /// Each output value is computed with the same operation order as
    /// [`EmissionModel::log_likelihoods`], so every lane is bit-identical
    /// to a scalar decode of that lane alone.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`, `xs.len()` is not a multiple of `lanes`, the
    /// per-lane sample count exceeds [`EmissionModel::BLOCK`], or
    /// `out.len() != xs.len() * states`.
    pub fn log_likelihoods_lanes(&self, xs: &[f32], lanes: usize, out: &mut [f32]) {
        assert!(lanes > 0, "lane width must be positive");
        assert_eq!(xs.len() % lanes, 0, "samples not a multiple of lane width");
        let n = xs.len() / lanes;
        assert!(n <= Self::BLOCK, "block too large");
        assert_eq!(
            out.len(),
            xs.len() * self.states,
            "output buffer size mismatch"
        );
        // Common lane widths get a monomorphized MVM whose inner loops have
        // compile-time trip counts (see [`EmissionModel::lanes_mvm`]); the
        // fallback covers every other width with the same arithmetic.
        match lanes {
            2 => self.lanes_mvm::<2>(xs, out),
            3 => self.lanes_mvm::<3>(xs, out),
            4 => self.lanes_mvm::<4>(xs, out),
            5 => self.lanes_mvm::<5>(xs, out),
            6 => self.lanes_mvm::<6>(xs, out),
            7 => self.lanes_mvm::<7>(xs, out),
            8 => self.lanes_mvm::<8>(xs, out),
            12 => self.lanes_mvm::<12>(xs, out),
            16 => self.lanes_mvm::<16>(xs, out),
            _ => {
                for i in 0..n {
                    let row_in = &xs[i * lanes..(i + 1) * lanes];
                    for s in 0..self.states {
                        let row = &self.weights[s * Self::FEATURES..(s + 1) * Self::FEATURES];
                        let (w0, w1, w2) = (row[0], row[1], row[2]);
                        let row_out = &mut out[(i * self.states + s) * lanes..][..lanes];
                        for (o, &x) in row_out.iter_mut().zip(row_in) {
                            let f = Self::features(x);
                            *o = w0 * f[0] + w1 * f[1] + w2 * f[2];
                        }
                    }
                }
            }
        }
    }

    /// Width-monomorphized body of [`EmissionModel::log_likelihoods_lanes`]:
    /// the lane-interleaved buffers become `[f32; W]` rows (`as_chunks`), so
    /// the per-lane loops are bounds-check-free with compile-time trip
    /// counts, and `x²` is hoisted out of the state loop per row. Every
    /// output value keeps [`EmissionModel::log_likelihoods`]'s operation
    /// order exactly — `w0*(x*x) + w1*x + w2*1.0` with left-to-right adds,
    /// and `w2 * 1.0` is bitwise `w2` for the finite weights — so the two
    /// remain bit-identical.
    fn lanes_mvm<const W: usize>(&self, xs: &[f32], out: &mut [f32]) {
        let (xs_rows, _) = xs.as_chunks::<W>();
        let (out_rows, _) = out.as_chunks_mut::<W>();
        for (i, xr) in xs_rows.iter().enumerate() {
            let mut x2 = [0.0f32; W];
            for l in 0..W {
                x2[l] = xr[l] * xr[l];
            }
            for s in 0..self.states {
                let row = &self.weights[s * Self::FEATURES..(s + 1) * Self::FEATURES];
                let (w0, w1, w2) = (row[0], row[1], row[2]);
                let o = &mut out_rows[i * self.states + s];
                for l in 0..W {
                    o[l] = w0 * x2[l] + w1 * xr[l] + w2;
                }
            }
        }
    }

    /// Emission log-likelihood of a single state (reference implementation
    /// for tests; the decoder uses [`EmissionModel::log_likelihoods`]).
    pub fn log_likelihood(&self, x: f32, state: usize) -> f32 {
        assert!(state < self.states, "state out of range");
        let f = Self::features(x);
        let row = &self.weights[state * Self::FEATURES..(state + 1) * Self::FEATURES];
        row[0] * f[0] + row[1] * f[1] + row[2] * f[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (PoreModel, EmissionModel) {
        let pore = PoreModel::synthetic(3, 7);
        let em = EmissionModel::from_pore_model(&pore);
        (pore, em)
    }

    #[test]
    fn dimensions_match_pore_model() {
        let (pore, em) = model();
        assert_eq!(em.states(), pore.states());
        assert_eq!(em.weights().len(), pore.states() * 3);
    }

    #[test]
    fn mvm_equals_gaussian_log_density_up_to_constant() {
        let (pore, em) = model();
        let sigma = pore.event_std();
        let x = 87.3f32;
        let mut out = vec![0.0f32; em.states()];
        em.log_likelihoods(x, &mut out);
        for s in 0..em.states() {
            let mu = pore.level_bits(s as u64);
            let expected = -((x - mu) * (x - mu)) / (2.0 * sigma * sigma);
            assert!(
                (out[s] - expected).abs() < 1e-2,
                "state {s}: {} vs {expected}",
                out[s]
            );
        }
    }

    #[test]
    fn correct_state_has_highest_likelihood_at_its_level() {
        let (pore, em) = model();
        let mut out = vec![0.0f32; em.states()];
        for s in [0usize, 17, 63] {
            let x = pore.level_bits(s as u64);
            em.log_likelihoods(x, &mut out);
            let best = out
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(best, s);
        }
    }

    #[test]
    fn single_state_matches_batch() {
        let (_, em) = model();
        let mut out = vec![0.0f32; em.states()];
        em.log_likelihoods(100.0, &mut out);
        for s in 0..em.states() {
            assert_eq!(em.log_likelihood(100.0, s), out[s]);
        }
    }

    #[test]
    fn block_matches_single_sample_calls() {
        let (_, em) = model();
        let xs = [80.0f32, 95.5, 101.25, 60.0, 120.0];
        let mut block = vec![0.0f32; xs.len() * em.states()];
        em.log_likelihoods_block(&xs, &mut block);
        let mut single = vec![0.0f32; em.states()];
        for (i, &x) in xs.iter().enumerate() {
            em.log_likelihoods(x, &mut single);
            assert_eq!(
                &block[i * em.states()..(i + 1) * em.states()],
                &single[..],
                "sample {i}"
            );
        }
    }

    #[test]
    fn lanes_match_block_per_lane() {
        let (_, em) = model();
        // 3 samples × 4 lanes, lane values distinct so a layout bug shows.
        let per_lane: [&[f32]; 4] = [
            &[80.0, 95.5, 101.25],
            &[60.0, 120.0, 77.7],
            &[99.0, 99.0, 99.0],
            &[-5.0, 0.0, 250.0],
        ];
        let lanes = per_lane.len();
        let n = per_lane[0].len();
        let mut xs = vec![0.0f32; n * lanes];
        for (l, lane) in per_lane.iter().enumerate() {
            for (i, &x) in lane.iter().enumerate() {
                xs[i * lanes + l] = x;
            }
        }
        let mut out = vec![0.0f32; xs.len() * em.states()];
        em.log_likelihoods_lanes(&xs, lanes, &mut out);
        for (l, lane) in per_lane.iter().enumerate() {
            let mut block = vec![0.0f32; n * em.states()];
            em.log_likelihoods_block(lane, &mut block);
            for i in 0..n {
                for s in 0..em.states() {
                    assert_eq!(
                        out[(i * em.states() + s) * lanes + l],
                        block[i * em.states() + s],
                        "lane {l} sample {i} state {s}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "block too large")]
    fn oversized_lane_block_panics() {
        let (_, em) = model();
        let xs = [0.0f32; (EmissionModel::BLOCK + 1) * 2];
        let mut out = vec![0.0f32; xs.len() * em.states()];
        em.log_likelihoods_lanes(&xs, 2, &mut out);
    }

    #[test]
    #[should_panic(expected = "block too large")]
    fn oversized_block_panics() {
        let (_, em) = model();
        let xs = [0.0f32; EmissionModel::BLOCK + 1];
        let mut out = vec![0.0f32; xs.len() * em.states()];
        em.log_likelihoods_block(&xs, &mut out);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_buffer_size_panics() {
        let (_, em) = model();
        let mut out = vec![0.0f32; 3];
        em.log_likelihoods(100.0, &mut out);
    }
}
