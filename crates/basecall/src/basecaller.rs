//! The chunk-level basecaller.

use crate::emission::EmissionModel;
use crate::quality::QualityCalibration;
use crate::viterbi::{
    decode_lanes_with, decode_with, DecodeScratch, DecodeStats, LaneDecodeScratch, LaneJob,
    Transitions, MAX_LANES,
};
use genpip_genomics::{Base, DnaSeq, Phred};
use genpip_signal::{chunk_boundaries, normalize_to_model, PoreModel};

/// Reusable per-worker basecalling workspace: the Viterbi scratch plus the
/// normalization buffer. One instance per thread keeps the steady-state
/// decode free of heap allocations (see [`crate::viterbi::DecodeScratch`]).
#[derive(Debug, Clone, Default)]
pub struct CallScratch {
    decode: DecodeScratch,
    normalized: Vec<f32>,
}

impl CallScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> CallScratch {
        CallScratch::default()
    }
}

/// The typed panic payload [`Basecaller::call_chunk_with`] raises when a
/// chunk's signal fails the integrity check (non-finite samples) before
/// decoding.
///
/// Raised via [`std::panic::panic_any`] so fault-tolerant executors can
/// `downcast` the payload and classify the fault as corrupt *input* rather
/// than a pipeline bug: the `Session` engine in `genpip-core` maps it to
/// `FaultKind::CorruptSignal` and quarantines or retries the read per its
/// `FaultPolicy` instead of tearing the run down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalFault {
    /// Index of the first non-finite sample within the offending chunk.
    pub sample_index: usize,
}

impl std::fmt::Display for SignalFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "corrupt signal: non-finite sample at chunk offset {}",
            self.sample_index
        )
    }
}

/// The decoder state carried from one chunk of a read to the next, so that
/// chunk boundaries do not reset the k-mer context. GenPIP's chunk-based
/// pipeline hands this from each chunk's basecall to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarryState(pub u16);

/// A resumable per-read decode cursor: the complete between-chunk state of
/// one read's basecalling, packaged so the read can be **parked** after any
/// chunk and **resumed later on a different thread**.
///
/// Chunk-granular executors (the `Session` engine in `genpip-core`) schedule
/// one chunk at a time and may move a read between workers between chunks;
/// everything the decoder needs to continue is this cursor (the k-mer
/// [`CarryState`]) — all other working memory lives in the worker-local
/// [`CallScratch`] and carries no read state. The cursor is `Send + Copy`
/// and a few bytes, so parking a read costs nothing.
///
/// Decoding through a `ReadDecoder` is bit-identical to passing carries by
/// hand through [`Basecaller::call_chunk_with`], and therefore to
/// [`Basecaller::call_read`], no matter how the chunks are spread over
/// threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadDecoder {
    carry: Option<CarryState>,
    chunks_called: usize,
}

impl ReadDecoder {
    /// A cursor positioned before the read's first chunk.
    pub fn new() -> ReadDecoder {
        ReadDecoder::default()
    }

    /// The carry that will stitch the next chunk (`None` before the first).
    pub fn carry(&self) -> Option<CarryState> {
        self.carry
    }

    /// Chunks decoded through this cursor so far.
    pub fn chunks_called(&self) -> usize {
        self.chunks_called
    }

    /// Rewinds the cursor to before the read's first chunk, exactly as
    /// freshly constructed — used when a fault-tolerant executor retries a
    /// read from scratch. Decoding after a reset is bit-identical to
    /// decoding through a new cursor.
    pub fn reset(&mut self) {
        *self = ReadDecoder::new();
    }

    /// Repositions the cursor to continue from `carry` — used when the next
    /// chunk's predecessor was basecalled out of band (e.g. a QSR sample
    /// chunk whose result is being reused in the sequential pass).
    pub fn resume_from(&mut self, carry: Option<CarryState>) {
        self.carry = carry;
    }

    /// Basecalls the read's next chunk, advancing the cursor to its carry.
    pub fn call_next(
        &mut self,
        caller: &Basecaller,
        samples: &[f32],
        scratch: &mut CallScratch,
    ) -> BasecalledChunk {
        let chunk = caller.call_chunk_with(samples, self.carry, scratch);
        self.carry = chunk.carry;
        self.chunks_called += 1;
        chunk
    }

    /// Advances the cursor past a chunk that was basecalled out of band —
    /// e.g. by a lane-batched prefetch ([`LaneDecoder::call_batch`]) that
    /// decoded the chunk from this cursor's current carry. Bookkeeping is
    /// exactly [`ReadDecoder::call_next`]'s: the cursor adopts the chunk's
    /// carry and counts it as called.
    pub fn adopt(&mut self, chunk: &BasecalledChunk) {
        self.carry = chunk.carry;
        self.chunks_called += 1;
    }
}

/// One chunk job for [`LaneDecoder::call_batch`]: the raw samples plus the
/// carry that stitches the chunk to its read's previous chunk.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkJob<'a> {
    /// The chunk's raw signal samples.
    pub samples: &'a [f32],
    /// Carry from the read's previous chunk (`None` for a first chunk).
    pub carry: Option<CarryState>,
}

/// Reusable workspace of [`LaneDecoder::call_batch`]: the lane-interleaved
/// decode scratch, one normalization buffer per job slot, and a scalar
/// fallback workspace for `width == 1` batches.
#[derive(Debug, Clone, Default)]
pub struct LaneScratch {
    decode: LaneDecodeScratch,
    normalized: Vec<Vec<f32>>,
    scalar: CallScratch,
}

impl LaneScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> LaneScratch {
        LaneScratch::default()
    }
}

/// Lane-batched basecaller front end: decodes W independent chunks in
/// lockstep through [`decode_lanes_with`] while producing, per job, a
/// [`BasecalledChunk`] **bit-identical** to
/// [`Basecaller::call_chunk_with`] on the same `(samples, carry)`.
///
/// The width is a throughput knob only — `1` is the scalar path itself
/// (the fallback and oracle), and any wider batch reuses the scalar
/// code for everything outside the DP (normalization and chunk assembly)
/// so the outputs cannot drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneDecoder {
    width: usize,
}

impl LaneDecoder {
    /// Widest supported lane batch (= [`MAX_LANES`]).
    pub const MAX_WIDTH: usize = MAX_LANES;

    /// Creates a decoder with the given lane width, clamped to
    /// `1..=MAX_WIDTH`.
    pub fn new(width: usize) -> LaneDecoder {
        LaneDecoder {
            width: width.clamp(1, Self::MAX_WIDTH),
        }
    }

    /// The (clamped) lane width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Basecalls a batch of independent chunk jobs, pushing one
    /// [`BasecalledChunk`] per job (in job order) onto `out`.
    ///
    /// Jobs may come from different reads and have different lengths; a
    /// lane whose chunk ends early refills from the remaining jobs without
    /// stalling the batch, so `jobs.len()` may exceed the width. Batches
    /// of fewer than two jobs, and `width == 1` decoders, take the scalar
    /// path directly.
    ///
    /// # Panics
    ///
    /// Panics with a typed [`SignalFault`] if any job contains a non-finite
    /// sample. Unlike the scalar path — which faults when the offending
    /// chunk is reached — the batch checks every job up front, before any
    /// decoding; batching callers that need per-read fault attribution
    /// (the `Session` engine) pre-screen jobs and route corrupt chunks to
    /// the scalar path so the fault fires inside the owning read's task.
    pub fn call_batch(
        &self,
        caller: &Basecaller,
        jobs: &[ChunkJob],
        scratch: &mut LaneScratch,
        out: &mut Vec<BasecalledChunk>,
    ) {
        out.clear();
        if self.width == 1 || jobs.len() < 2 {
            for job in jobs {
                out.push(caller.call_chunk_with(job.samples, job.carry, &mut scratch.scalar));
            }
            return;
        }
        for job in jobs {
            if let Some(sample_index) = job.samples.iter().position(|s| !s.is_finite()) {
                std::panic::panic_any(SignalFault { sample_index });
            }
        }
        if scratch.normalized.len() < jobs.len() {
            scratch.normalized.resize_with(jobs.len(), Vec::new);
        }
        for (buf, job) in scratch.normalized.iter_mut().zip(jobs) {
            buf.clear();
            buf.extend_from_slice(job.samples);
            if caller.normalize {
                normalize_to_model(buf, &caller.pore);
            }
        }
        let lane_jobs: Vec<LaneJob> = scratch.normalized[..jobs.len()]
            .iter()
            .zip(jobs)
            .map(|(buf, job)| LaneJob {
                samples: buf,
                init_state: job.carry.map(|c| c.0),
            })
            .collect();
        // A batch smaller than the configured width would leave lanes empty
        // for the whole decode, forcing every row down the partial-occupancy
        // path; output is bit-identical at every width, so shrink to fit.
        let width = self.width.min(lane_jobs.len());
        decode_lanes_with(
            &caller.emission,
            caller.transitions,
            &lane_jobs,
            width,
            &mut scratch.decode,
        );
        for (j, job) in jobs.iter().enumerate() {
            let outcome = scratch.decode.outcome(j);
            out.push(caller.assemble_chunk(
                &scratch.normalized[j],
                outcome.states(),
                outcome.advanced(),
                job.carry,
                outcome.stats(),
            ));
        }
    }
}

/// Workload counters for one basecalled chunk — the quantities the PIM
/// timing/energy model charges for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkStats {
    /// Signal samples consumed.
    pub samples: usize,
    /// Emission MVMs performed (one per sample).
    pub mvm_ops: usize,
    /// Viterbi DP cells computed.
    pub viterbi_cells: usize,
}

/// One basecalled chunk: bases, per-base qualities, the chunk quality-score
/// sum the PIM-CQS unit produces, and the carry state for the next chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct BasecalledChunk {
    /// Bases decoded from this chunk.
    pub bases: DnaSeq,
    /// Per-base Phred qualities (same length as `bases`).
    pub quals: Vec<Phred>,
    /// Sum of the chunk's quality scores — the scalar PIM-CQS ships to the
    /// GenPIP controller (paper Section 4.3.1).
    pub sqs: f64,
    /// Decoder state after the last sample, for stitching.
    pub carry: Option<CarryState>,
    /// Workload counters.
    pub stats: ChunkStats,
}

impl BasecalledChunk {
    /// Average quality score of the chunk; 0 for an empty chunk.
    pub fn average_quality(&self) -> f64 {
        if self.quals.is_empty() {
            0.0
        } else {
            self.sqs / self.quals.len() as f64
        }
    }
}

/// A fully basecalled read assembled from its chunks.
#[derive(Debug, Clone, PartialEq)]
pub struct BasecalledRead {
    /// The assembled sequence.
    pub seq: DnaSeq,
    /// Per-base qualities.
    pub quals: Vec<Phred>,
    /// Number of bases contributed by each chunk (in order).
    pub chunk_lengths: Vec<usize>,
    /// Aggregate workload counters.
    pub stats: ChunkStats,
}

impl BasecalledRead {
    /// Whole-read average quality score.
    pub fn average_quality(&self) -> f64 {
        genpip_genomics::average_quality(&self.quals)
    }
}

/// The basecaller: normalization + MVM emission + Viterbi decode + quality
/// scoring, operating one chunk at a time.
#[derive(Debug, Clone)]
pub struct Basecaller {
    pore: PoreModel,
    emission: EmissionModel,
    transitions: Transitions,
    calibration: QualityCalibration,
    normalize: bool,
}

impl Basecaller {
    /// Creates a basecaller for the given pore model and mean dwell time
    /// (samples per base) with the default quality calibration.
    ///
    /// Normalization is off by default: the synthetic signals are already on
    /// the pore-model's pA scale, and median/MAD normalization — which keys
    /// on the *read's* sample distribution rather than the level table —
    /// would introduce a composition-dependent scale error larger than the
    /// level spacing. Enable it with [`Basecaller::with_normalization`] when
    /// feeding signals with offset/gain corruption.
    pub fn new(pore: &PoreModel, mean_dwell: f64) -> Basecaller {
        Basecaller {
            pore: pore.clone(),
            emission: EmissionModel::from_pore_model(pore),
            transitions: Transitions::from_mean_dwell(mean_dwell),
            calibration: QualityCalibration::default_r9(),
            normalize: false,
        }
    }

    /// Overrides the quality calibration.
    pub fn with_calibration(mut self, calibration: QualityCalibration) -> Basecaller {
        self.calibration = calibration;
        self
    }

    /// Enables or disables per-chunk median/MAD normalization.
    pub fn with_normalization(mut self, normalize: bool) -> Basecaller {
        self.normalize = normalize;
        self
    }

    /// The pore model in use.
    pub fn pore_model(&self) -> &PoreModel {
        &self.pore
    }

    /// The emission model (e.g. for programming the PIM crossbar).
    pub fn emission_model(&self) -> &EmissionModel {
        &self.emission
    }

    /// Basecalls one chunk of raw samples with a fresh workspace.
    ///
    /// Convenience wrapper over [`Basecaller::call_chunk_with`]; hot loops
    /// should own a [`CallScratch`] and pass it in to avoid per-chunk
    /// allocation of the decode buffers.
    pub fn call_chunk(&self, samples: &[f32], carry: Option<CarryState>) -> BasecalledChunk {
        self.call_chunk_with(samples, carry, &mut CallScratch::new())
    }

    /// Basecalls one chunk of raw samples, reusing `scratch` for all decode
    /// working memory.
    ///
    /// `carry` stitches this chunk to the previous one; pass `None` for the
    /// first chunk of a read. Empty input produces an empty chunk.
    ///
    /// # Panics
    ///
    /// Panics with a typed [`SignalFault`] payload (via
    /// [`std::panic::panic_any`]) if any sample is non-finite — NaN or
    /// infinite current readings would poison the emission MVMs and decode
    /// to garbage, so they are rejected before decoding starts. Executors
    /// with a fault policy catch and classify this; everything else fails
    /// fast.
    pub fn call_chunk_with(
        &self,
        samples: &[f32],
        carry: Option<CarryState>,
        scratch: &mut CallScratch,
    ) -> BasecalledChunk {
        if samples.is_empty() {
            return BasecalledChunk {
                bases: DnaSeq::new(),
                quals: Vec::new(),
                sqs: 0.0,
                carry,
                stats: ChunkStats::default(),
            };
        }
        if let Some(sample_index) = samples.iter().position(|s| !s.is_finite()) {
            std::panic::panic_any(SignalFault { sample_index });
        }
        scratch.normalized.clear();
        scratch.normalized.extend_from_slice(samples);
        let normalized = &mut scratch.normalized;
        if self.normalize {
            normalize_to_model(normalized, &self.pore);
        }
        let stats = decode_with(
            &self.emission,
            normalized,
            self.transitions,
            carry.map(|c| c.0),
            &mut scratch.decode,
        );
        self.assemble_chunk(
            normalized,
            scratch.decode.states(),
            scratch.decode.advanced(),
            carry,
            stats,
        )
    }

    /// Turns one chunk's decoded state path into bases, qualities, and the
    /// carry — the post-decode half of [`Basecaller::call_chunk_with`],
    /// shared verbatim with the lane-batched path so both are structurally
    /// bit-identical.
    fn assemble_chunk(
        &self,
        normalized: &[f32],
        dec_states: &[u16],
        dec_advanced: &[bool],
        carry: Option<CarryState>,
        stats: DecodeStats,
    ) -> BasecalledChunk {
        if normalized.is_empty() {
            return BasecalledChunk {
                bases: DnaSeq::new(),
                quals: Vec::new(),
                sqs: 0.0,
                carry,
                stats: ChunkStats::default(),
            };
        }
        let k = self.pore.k();
        let assumed_var = {
            let s = self.emission.assumed_std();
            s * s
        };
        let mut bases = DnaSeq::new();
        let mut quals: Vec<Phred> = Vec::new();

        // Walk dwell segments: [start, end) ranges of samples decoded as one
        // k-mer occupancy.
        let n = normalized.len();
        let mut seg_start = 0usize;
        let mut first_segment = true;
        let mut t = 1usize;
        loop {
            let at_end = t >= n;
            let boundary = at_end || dec_advanced[t];
            if boundary {
                let state = dec_states[seg_start];
                let z2 = mean_residual(
                    &normalized[seg_start..t],
                    self.pore.level_bits(state as u64),
                    assumed_var,
                );
                let q = self.calibration.phred_from_residual(z2);
                if first_segment {
                    first_segment = false;
                    if carry.is_none() {
                        // The initial k-mer contributes its full k bases.
                        for i in 0..k {
                            bases.push(kmer_base(state, k, i));
                            quals.push(q);
                        }
                    } else if dec_advanced[0] {
                        // Chunk-boundary advance: one new base.
                        bases.push(Base::from_code((state & 3) as u8));
                        quals.push(q);
                    }
                    // Otherwise the segment continues the carried k-mer and
                    // emits nothing new.
                } else {
                    bases.push(Base::from_code((state & 3) as u8));
                    quals.push(q);
                }
                seg_start = t;
            }
            if at_end {
                break;
            }
            t += 1;
        }

        let sqs = genpip_genomics::quality::sum_quality(&quals);
        BasecalledChunk {
            bases,
            quals,
            sqs,
            carry: dec_states.last().copied().map(CarryState).or(carry),
            stats: ChunkStats {
                samples: n,
                mvm_ops: stats.mvm_ops,
                viterbi_cells: stats.cells,
            },
        }
    }

    /// Basecalls an entire read by splitting its signal into chunks of
    /// `chunk_samples` samples and stitching the results — the conventional
    /// (non-pipelined) flow of Figure 5(a).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_samples` is 0.
    pub fn call_read(&self, samples: &[f32], chunk_samples: usize) -> BasecalledRead {
        let mut seq = DnaSeq::new();
        let mut quals = Vec::new();
        let mut chunk_lengths = Vec::new();
        let mut stats = ChunkStats::default();
        let mut carry = None;
        let mut scratch = CallScratch::new();
        for spec in chunk_boundaries(samples.len(), chunk_samples) {
            let chunk = self.call_chunk_with(&samples[spec.start..spec.end], carry, &mut scratch);
            chunk_lengths.push(chunk.bases.len());
            seq.extend_from_seq(&chunk.bases);
            quals.extend_from_slice(&chunk.quals);
            stats.samples += chunk.stats.samples;
            stats.mvm_ops += chunk.stats.mvm_ops;
            stats.viterbi_cells += chunk.stats.viterbi_cells;
            carry = chunk.carry;
        }
        BasecalledRead {
            seq,
            quals,
            chunk_lengths,
            stats,
        }
    }
}

/// Base `i` (0 = earliest) of the k-mer packed in `state`.
#[inline]
fn kmer_base(state: u16, k: usize, i: usize) -> Base {
    let shift = 2 * (k - 1 - i);
    Base::from_code((state >> shift) as u8)
}

fn mean_residual(samples: &[f32], level: f32, assumed_var: f32) -> f32 {
    if samples.is_empty() {
        return 1.0;
    }
    let sum: f32 = samples.iter().map(|x| (x - level) * (x - level)).sum();
    sum / (samples.len() as f32 * assumed_var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::identity;
    use genpip_genomics::GenomeBuilder;
    use genpip_signal::SignalSynthesizer;

    fn setup() -> (SignalSynthesizer, Basecaller) {
        let pore = PoreModel::synthetic(3, 7);
        let synth = SignalSynthesizer::new(pore.clone());
        let caller = Basecaller::new(&pore, synth.mean_dwell());
        (synth, caller)
    }

    fn truth(n: usize, seed: u64) -> DnaSeq {
        GenomeBuilder::new(n)
            .seed(seed)
            .repeat_fraction(0.0)
            .build()
            .sequence()
            .clone()
    }

    #[test]
    fn empty_chunk() {
        let (_, caller) = setup();
        let chunk = caller.call_chunk(&[], None);
        assert!(chunk.bases.is_empty());
        assert_eq!(chunk.stats, ChunkStats::default());
    }

    #[test]
    fn clean_signal_calls_accurately() {
        let (synth, caller) = setup();
        let t = truth(1_000, 1);
        let sig = synth.synthesize(&t, 0.6, 2);
        let called = caller.call_read(&sig.samples, 2400);
        let id = identity(&called.seq, &t);
        assert!(id > 0.95, "identity {id}");
        assert_eq!(called.quals.len(), called.seq.len());
    }

    #[test]
    fn noisy_signal_degrades_accuracy_and_quality() {
        let (synth, caller) = setup();
        let t = truth(1_500, 3);
        let clean = caller.call_read(&synth.synthesize(&t, 1.0, 4).samples, 2400);
        let noisy = caller.call_read(&synth.synthesize(&t, 3.0, 4).samples, 2400);
        assert!(identity(&clean.seq, &t) > identity(&noisy.seq, &t));
        assert!(
            clean.average_quality() > 9.0,
            "clean AQS {}",
            clean.average_quality()
        );
        assert!(
            noisy.average_quality() < 7.0,
            "noisy AQS {}",
            noisy.average_quality()
        );
    }

    #[test]
    fn chunked_equals_unchunked_approximately() {
        let (synth, caller) = setup();
        let t = truth(2_000, 5);
        let sig = synth.synthesize(&t, 1.0, 6);
        let whole = caller.call_read(&sig.samples, usize::MAX / 2);
        let chunked = caller.call_read(&sig.samples, 1_000);
        let id = identity(&whole.seq, &chunked.seq);
        assert!(id > 0.97, "identity between chunked and whole: {id}");
    }

    #[test]
    fn counters_add_up() {
        let (synth, caller) = setup();
        let t = truth(800, 7);
        let sig = synth.synthesize(&t, 1.0, 8);
        let called = caller.call_read(&sig.samples, 1_000);
        assert_eq!(called.stats.samples, sig.samples.len());
        assert_eq!(called.stats.mvm_ops, sig.samples.len());
        assert_eq!(
            called.stats.viterbi_cells,
            sig.samples.len() * caller.emission_model().states()
        );
        assert_eq!(called.chunk_lengths.iter().sum::<usize>(), called.seq.len());
    }

    #[test]
    fn sqs_matches_sum_of_quals() {
        let (synth, caller) = setup();
        let t = truth(600, 9);
        let sig = synth.synthesize(&t, 1.5, 10);
        let chunk = caller.call_chunk(&sig.samples, None);
        let expected: f64 = chunk.quals.iter().map(|q| q.0 as f64).sum();
        assert!((chunk.sqs - expected).abs() < 1e-9);
        assert!((chunk.average_quality() - expected / chunk.quals.len() as f64).abs() < 1e-9);
    }

    #[test]
    fn read_decoder_parked_across_threads_matches_call_read() {
        // Decode a read chunk by chunk through a ReadDecoder, moving the
        // cursor to a fresh thread between chunks (each hop is a park +
        // resume on a different worker); the stitched result must be
        // bit-identical to the single-threaded call_read path.
        let (synth, caller) = setup();
        let t = truth(1_600, 13);
        let sig = synth.synthesize(&t, 1.0, 14);
        let whole = caller.call_read(&sig.samples, 900);

        let mut seq = DnaSeq::new();
        let mut quals = Vec::new();
        let mut decoder = ReadDecoder::new();
        for chunk_samples in sig.samples.chunks(900) {
            decoder = std::thread::scope(|scope| {
                scope
                    .spawn(|| {
                        let mut scratch = CallScratch::new();
                        let chunk = decoder.call_next(&caller, chunk_samples, &mut scratch);
                        seq.extend_from_seq(&chunk.bases);
                        quals.extend_from_slice(&chunk.quals);
                        decoder
                    })
                    .join()
                    .expect("decode thread")
            });
        }
        assert_eq!(seq, whole.seq);
        assert_eq!(quals, whole.quals);
        assert_eq!(decoder.chunks_called(), whole.chunk_lengths.len());

        // resume_from repositions the cursor exactly like handing the carry
        // to call_chunk_with by hand.
        let mut jumped = ReadDecoder::new();
        let first = caller.call_chunk(&sig.samples[..900], None);
        jumped.resume_from(first.carry);
        assert_eq!(jumped.carry(), first.carry);
        let mut scratch = CallScratch::new();
        let second = jumped.call_next(&caller, &sig.samples[900..1800], &mut scratch);
        assert_eq!(
            second,
            caller.call_chunk(&sig.samples[900..1800], first.carry)
        );
    }

    #[test]
    fn corrupt_signal_raises_a_typed_fault() {
        let (synth, caller) = setup();
        let t = truth(600, 15);
        let mut samples = synth.synthesize(&t, 1.0, 16).samples;
        samples[37] = f32::NAN;
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            caller.call_chunk(&samples, None)
        }))
        .expect_err("NaN samples must fault");
        let fault = payload
            .downcast_ref::<SignalFault>()
            .expect("typed SignalFault payload");
        assert_eq!(fault.sample_index, 37);
        assert!(fault.to_string().contains("non-finite"));

        // Infinities fault too, and the index is the first bad sample.
        let mut samples = synth.synthesize(&t, 1.0, 16).samples;
        samples[5] = f32::INFINITY;
        samples[9] = f32::NAN;
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            caller.call_chunk(&samples, None)
        }))
        .expect_err("infinite samples must fault");
        assert_eq!(
            payload
                .downcast_ref::<SignalFault>()
                .map(|f| f.sample_index),
            Some(5)
        );
    }

    #[test]
    fn decoder_reset_restarts_bit_identically() {
        let (synth, caller) = setup();
        let t = truth(1_000, 17);
        let sig = synth.synthesize(&t, 1.0, 18);
        let mut scratch = CallScratch::new();
        let mut decoder = ReadDecoder::new();
        let first_pass: Vec<BasecalledChunk> = sig
            .samples
            .chunks(700)
            .map(|c| decoder.call_next(&caller, c, &mut scratch))
            .collect();
        assert!(decoder.chunks_called() > 1);
        // A reset decoder replays the read exactly as a fresh one would.
        decoder.reset();
        assert_eq!(decoder, ReadDecoder::new());
        let second_pass: Vec<BasecalledChunk> = sig
            .samples
            .chunks(700)
            .map(|c| decoder.call_next(&caller, c, &mut scratch))
            .collect();
        assert_eq!(first_pass, second_pass);
    }

    #[test]
    fn lane_batch_matches_scalar_chunks_bit_identically() {
        // Chunks from different reads, different lengths, with and without
        // carries, through every interesting width — each output chunk must
        // equal the scalar call on the same (samples, carry).
        let (synth, caller) = setup();
        let sigs: Vec<Vec<f32>> = (0..5u64)
            .map(|seed| {
                synth
                    .synthesize(&truth(300 + 140 * seed as usize, seed * 2 + 1), 1.2, seed)
                    .samples
            })
            .collect();
        let mut jobs: Vec<ChunkJob> = Vec::new();
        let mut scratch = CallScratch::new();
        for sig in &sigs {
            let mut carry = None;
            for chunk in sig.chunks(900) {
                jobs.push(ChunkJob {
                    samples: chunk,
                    carry,
                });
                carry = caller.call_chunk_with(chunk, carry, &mut scratch).carry;
            }
        }
        assert!(jobs.len() > 8, "want a deep job queue, got {}", jobs.len());
        let expected: Vec<BasecalledChunk> = jobs
            .iter()
            .map(|j| caller.call_chunk_with(j.samples, j.carry, &mut scratch))
            .collect();
        let mut lanes = LaneScratch::new();
        let mut got = Vec::new();
        for width in [1usize, 2, 4, 8, 16] {
            LaneDecoder::new(width).call_batch(&caller, &jobs, &mut lanes, &mut got);
            assert_eq!(got, expected, "width {width}");
        }
    }

    #[test]
    fn lane_decoder_clamps_width() {
        assert_eq!(LaneDecoder::new(0).width(), 1);
        assert_eq!(LaneDecoder::new(7).width(), 7);
        assert_eq!(LaneDecoder::new(1000).width(), LaneDecoder::MAX_WIDTH);
    }

    #[test]
    fn lane_batch_faults_on_corrupt_job() {
        let (synth, caller) = setup();
        let good = synth.synthesize(&truth(400, 21), 1.0, 22).samples;
        let mut bad = good.clone();
        bad[11] = f32::NAN;
        let jobs = [
            ChunkJob {
                samples: &good,
                carry: None,
            },
            ChunkJob {
                samples: &bad,
                carry: None,
            },
        ];
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut lanes = LaneScratch::new();
            let mut out = Vec::new();
            LaneDecoder::new(4).call_batch(&caller, &jobs, &mut lanes, &mut out);
        }))
        .expect_err("NaN job must fault the batch");
        assert_eq!(
            payload
                .downcast_ref::<SignalFault>()
                .map(|f| f.sample_index),
            Some(11)
        );
    }

    #[test]
    fn adopting_a_prefetched_chunk_matches_call_next() {
        let (synth, caller) = setup();
        let sig = synth.synthesize(&truth(900, 19), 1.0, 20);
        let mut scratch = CallScratch::new();

        let mut via_call = ReadDecoder::new();
        let mut via_adopt = ReadDecoder::new();
        for chunk_samples in sig.samples.chunks(700) {
            // Prefetch: decode out of band from the cursor's current carry.
            let prefetched = caller.call_chunk_with(chunk_samples, via_adopt.carry(), &mut scratch);
            let called = via_call.call_next(&caller, chunk_samples, &mut scratch);
            assert_eq!(prefetched, called);
            via_adopt.adopt(&prefetched);
            assert_eq!(via_adopt, via_call);
        }
        assert!(via_adopt.chunks_called() > 1);
    }

    #[test]
    fn called_length_tracks_truth_length() {
        let (synth, caller) = setup();
        let t = truth(1_200, 11);
        let sig = synth.synthesize(&t, 1.0, 12);
        let called = caller.call_read(&sig.samples, 2400);
        let ratio = called.seq.len() as f64 / t.len() as f64;
        assert!((ratio - 1.0).abs() < 0.1, "length ratio {ratio}");
    }
}
