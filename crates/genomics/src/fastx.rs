//! Minimal FASTA/FASTQ serialization.
//!
//! The reproduction keeps everything in memory, but examples and users need a
//! way to inspect and exchange data with standard tooling, so reads and
//! genomes round-trip through the ubiquitous text formats.

use crate::genome::Genome;
use crate::quality::Phred;
use crate::read::{Read, ReadOrigin, ReadSet};
use crate::seq::DnaSeq;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error produced while parsing FASTA/FASTQ text.
#[derive(Debug)]
pub enum ParseFastxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the text, with a line number (1-based).
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for ParseFastxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseFastxError::Io(e) => write!(f, "i/o error: {e}"),
            ParseFastxError::Malformed { line, reason } => {
                write!(f, "malformed record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseFastxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseFastxError::Io(e) => Some(e),
            ParseFastxError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseFastxError {
    fn from(e: io::Error) -> ParseFastxError {
        ParseFastxError::Io(e)
    }
}

/// Writes a genome as FASTA with 80-column wrapping.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_fasta<W: Write>(mut w: W, genome: &Genome) -> io::Result<()> {
    writeln!(w, ">{}", genome.name())?;
    let s = genome.sequence().to_string();
    for chunk in s.as_bytes().chunks(80) {
        w.write_all(chunk)?;
        writeln!(w)?;
    }
    Ok(())
}

/// Reads the first record of a FASTA stream as a genome.
///
/// # Errors
///
/// Returns [`ParseFastxError::Malformed`] if the stream does not start with a
/// `>` header or contains non-ACGT characters, and [`ParseFastxError::Io`]
/// for reader failures.
pub fn read_fasta<R: BufRead>(r: R) -> Result<Genome, ParseFastxError> {
    let mut name = None;
    let mut seq = DnaSeq::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if name.is_some() {
                break; // only the first record
            }
            name = Some(header.trim().to_string());
        } else {
            if name.is_none() {
                return Err(ParseFastxError::Malformed {
                    line: idx + 1,
                    reason: "sequence data before '>' header".to_string(),
                });
            }
            for c in line.chars() {
                seq.push(crate::base::Base::try_from(c).map_err(|e| {
                    ParseFastxError::Malformed {
                        line: idx + 1,
                        reason: e.to_string(),
                    }
                })?);
            }
        }
    }
    let name = name.ok_or(ParseFastxError::Malformed {
        line: 1,
        reason: "empty FASTA stream".to_string(),
    })?;
    Ok(Genome::from_seq(name, seq))
}

/// An incremental FASTQ record writer: the streaming counterpart of
/// [`write_fastq`], for pipelines that emit reads one at a time (e.g. a
/// session sink) and never hold a whole [`ReadSet`].
///
/// Records use `@<name>` headers and Sanger-encoded qualities and
/// round-trip through [`read_fastq`].
///
/// Dropping the writer flushes it (best-effort, errors swallowed), so a
/// drained or checkpointed streaming run never leaves a partially buffered
/// final record behind; call [`FastqWriter::finish`] to observe flush
/// errors instead.
pub struct FastqWriter<W: Write> {
    /// `Some` until [`FastqWriter::finish`] takes the writer out; the
    /// `Option` exists so `Drop` and `finish` can coexist.
    inner: Option<W>,
    records: usize,
}

impl<W: Write> FastqWriter<W> {
    /// Wraps a writer (hand it a `BufWriter` for file output).
    pub fn new(inner: W) -> FastqWriter<W> {
        FastqWriter {
            inner: Some(inner),
            records: 0,
        }
    }

    fn writer(&mut self) -> &mut W {
        self.inner.as_mut().expect("writer taken by finish")
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the underlying writer.
    pub fn write_record(&mut self, name: &str, seq: &DnaSeq, quals: &[Phred]) -> io::Result<()> {
        debug_assert_eq!(seq.len(), quals.len(), "one quality per base");
        let quals: String = quals.iter().map(|q| q.to_fastq_char()).collect();
        let w = self.writer();
        writeln!(w, "@{name}")?;
        writeln!(w, "{seq}")?;
        writeln!(w, "+")?;
        writeln!(w, "{quals}")?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Flushes buffered records to the underlying writer without consuming
    /// it — the checkpoint-time operation: after it returns, every record
    /// written so far is on disk (modulo OS caching).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer().flush()
    }

    /// Flushes, then reports the writer's byte position — the offset a
    /// resumed run truncates the output file to before appending.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush or the seek.
    pub fn position(&mut self) -> io::Result<u64>
    where
        W: io::Seek,
    {
        let w = self.writer();
        w.flush()?;
        w.stream_position()
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the flush.
    pub fn finish(mut self) -> io::Result<W> {
        let mut inner = self.inner.take().expect("writer taken by finish");
        inner.flush()?;
        Ok(inner)
    }
}

impl<W: Write> Drop for FastqWriter<W> {
    /// Best-effort flush so buffered records survive an un-`finish`ed drop
    /// (e.g. a sink discarded after a drain). Errors are swallowed — use
    /// [`FastqWriter::finish`] to observe them.
    fn drop(&mut self) {
        if let Some(w) = self.inner.as_mut() {
            let _ = w.flush();
        }
    }
}

/// Writes a read set as FASTQ (`@read<id>` headers, Sanger qualities).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_fastq<W: Write>(w: W, reads: &ReadSet) -> io::Result<()> {
    let mut writer = FastqWriter::new(w);
    for read in reads {
        writer.write_record(&format!("read{}", read.id), &read.seq, &read.quals)?;
    }
    Ok(())
}

/// Parses a FASTQ stream into a read set.
///
/// FASTQ carries no ground truth, so each read is assigned a placeholder
/// zero-length [`ReadOrigin::Reference`] origin; [`ReadOrigin::Contaminant`]
/// is reserved for simulator-labelled contaminants.
///
/// # Errors
///
/// Returns [`ParseFastxError::Malformed`] for truncated records, length
/// mismatches, or invalid characters.
pub fn read_fastq<R: BufRead>(r: R) -> Result<ReadSet, ParseFastxError> {
    let mut lines = r.lines().enumerate();
    let mut reads = ReadSet::new();
    let mut next_id = 0u32;
    while let Some((idx, header)) = lines.next() {
        let header = header?;
        if header.trim().is_empty() {
            continue;
        }
        if !header.starts_with('@') {
            return Err(ParseFastxError::Malformed {
                line: idx + 1,
                reason: "expected '@' header".to_string(),
            });
        }
        let mut take = |what: &str| -> Result<(usize, String), ParseFastxError> {
            match lines.next() {
                Some((i, l)) => Ok((i, l?)),
                None => Err(ParseFastxError::Malformed {
                    line: idx + 1,
                    reason: format!("truncated record: missing {what}"),
                }),
            }
        };
        let (seq_line_no, seq_line) = take("sequence line")?;
        let (_, _plus) = take("'+' separator")?;
        let (qual_line_no, qual_line) = take("quality line")?;

        let seq: DnaSeq =
            seq_line
                .trim_end()
                .parse()
                .map_err(
                    |e: crate::base::ParseBaseError| ParseFastxError::Malformed {
                        line: seq_line_no + 1,
                        reason: e.to_string(),
                    },
                )?;
        let mut quals = Vec::with_capacity(seq.len());
        for c in qual_line.trim_end().chars() {
            quals.push(Phred::from_fastq_char(c).ok_or(ParseFastxError::Malformed {
                line: qual_line_no + 1,
                reason: format!("invalid quality character {c:?}"),
            })?);
        }
        if quals.len() != seq.len() {
            return Err(ParseFastxError::Malformed {
                line: qual_line_no + 1,
                reason: format!(
                    "quality length {} does not match sequence length {}",
                    quals.len(),
                    seq.len()
                ),
            });
        }
        reads.push(Read::new(
            next_id,
            seq,
            quals,
            ReadOrigin::Reference {
                start: 0,
                len: 0,
                reverse: false,
            },
        ));
        next_id += 1;
    }
    Ok(reads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GenomeBuilder;

    #[test]
    fn fasta_round_trip() {
        let genome = GenomeBuilder::new(333).seed(1).name("rt").build();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &genome).unwrap();
        let parsed = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(parsed.name(), "rt");
        assert_eq!(parsed.sequence(), genome.sequence());
    }

    #[test]
    fn fasta_wraps_lines() {
        let genome = GenomeBuilder::new(200).seed(2).build();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &genome).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines().skip(1) {
            assert!(line.len() <= 80);
        }
    }

    #[test]
    fn fasta_rejects_headerless_stream() {
        let err = read_fasta("ACGT\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseFastxError::Malformed { line: 1, .. }));
    }

    #[test]
    fn fastq_round_trip() {
        let mut reads = ReadSet::new();
        let seq: DnaSeq = "ACGTACGT".parse().unwrap();
        let quals: Vec<Phred> = (0..8).map(|i| Phred(i as f32)).collect();
        reads.push(Read::new(
            0,
            seq.clone(),
            quals.clone(),
            ReadOrigin::Reference {
                start: 0,
                len: 0,
                reverse: false,
            },
        ));
        let mut buf = Vec::new();
        write_fastq(&mut buf, &reads).unwrap();
        let parsed = read_fastq(buf.as_slice()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.get(0).unwrap().seq, seq);
        assert_eq!(parsed.get(0).unwrap().quals, quals);
    }

    #[test]
    fn incremental_writer_matches_batch_writer() {
        let mut reads = ReadSet::new();
        for (i, s) in ["ACGT", "GGCA", "TTAACC"].iter().enumerate() {
            let seq: DnaSeq = s.parse().unwrap();
            let quals: Vec<Phred> = (0..seq.len()).map(|q| Phred(q as f32)).collect();
            reads.push(Read::new(
                i as u32,
                seq,
                quals,
                ReadOrigin::Reference {
                    start: 0,
                    len: 0,
                    reverse: false,
                },
            ));
        }
        let mut batch = Vec::new();
        write_fastq(&mut batch, &reads).unwrap();
        let mut incremental = FastqWriter::new(Vec::new());
        for read in &reads {
            incremental
                .write_record(&format!("read{}", read.id), &read.seq, &read.quals)
                .unwrap();
        }
        assert_eq!(incremental.records(), reads.len());
        assert_eq!(incremental.finish().unwrap(), batch);
    }

    #[test]
    fn incremental_writer_flushes_on_drop() {
        // A buffered writer abandoned mid-run (the drained-session case)
        // must still land every record it accepted on disk.
        let mut path = std::env::temp_dir();
        path.push(format!("genpip-fastx-drop-{}.fastq", std::process::id()));
        let seq: DnaSeq = "ACGTACGT".parse().unwrap();
        let quals: Vec<Phred> = (0..seq.len()).map(|q| Phred(q as f32)).collect();
        {
            let file = std::fs::File::create(&path).unwrap();
            let mut writer = FastqWriter::new(std::io::BufWriter::new(file));
            for i in 0..3 {
                writer
                    .write_record(&format!("read{i}"), &seq, &quals)
                    .unwrap();
            }
            // Dropped without finish(): the BufWriter still holds the
            // records unless FastqWriter's drop flushes it first.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = read_fastq(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 3, "all buffered records reached disk");
        assert!(text.ends_with('\n'), "no partial final record");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_writer_reports_flushed_position() {
        let mut path = std::env::temp_dir();
        path.push(format!("genpip-fastx-pos-{}.fastq", std::process::id()));
        let seq: DnaSeq = "ACGT".parse().unwrap();
        let quals: Vec<Phred> = (0..seq.len()).map(|q| Phred(q as f32)).collect();
        let file = std::fs::File::create(&path).unwrap();
        let mut writer = FastqWriter::new(std::io::BufWriter::new(file));
        writer.write_record("a", &seq, &quals).unwrap();
        let after_one = writer.position().unwrap();
        assert_eq!(
            after_one,
            std::fs::metadata(&path).unwrap().len(),
            "position() flushed the record"
        );
        writer.write_record("b", &seq, &quals).unwrap();
        let after_two = writer.position().unwrap();
        assert!(after_two > after_one);
        writer.finish().unwrap();
        assert_eq!(after_two, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fastq_rejects_length_mismatch() {
        let text = "@r\nACGT\n+\n!!\n";
        let err = read_fastq(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn fastq_rejects_truncated_record() {
        let text = "@r\nACGT\n";
        let err = read_fastq(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn fastq_rejects_bad_header() {
        let text = "read1\nACGT\n+\n!!!!\n";
        assert!(read_fastq(text.as_bytes()).is_err());
    }
}
