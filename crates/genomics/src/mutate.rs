//! Nanopore-style sequencing error model.
//!
//! The paper's datasets use ONT R9 chemistry at 80–85 % base accuracy
//! (Section 5). Errors are a mix of substitutions, insertions and deletions;
//! [`ErrorModel`] applies such a mix to a true sequence and reports the edit
//! script, which the dataset simulator uses both to build the *basecalled*
//! sequence an imperfect basecaller would emit and to know the ground truth.

use crate::base::Base;
use crate::rng::Rng;
use crate::rng::SeededRng;
use crate::seq::DnaSeq;

/// One edit applied by the error model, in true-sequence coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOp {
    /// The true base at `pos` was replaced by `to`.
    Substitution {
        /// Position in the true sequence.
        pos: usize,
        /// The erroneous base emitted instead.
        to: Base,
    },
    /// `base` was inserted before true position `pos`.
    Insertion {
        /// Position in the true sequence before which the base appears.
        pos: usize,
        /// The spurious base.
        base: Base,
    },
    /// The true base at `pos` was dropped.
    Deletion {
        /// Position in the true sequence.
        pos: usize,
    },
}

/// Per-base error rates for substitution / insertion / deletion.
///
/// Rates are probabilities per true base; the overall error rate is roughly
/// their sum. ONT R9 reads are ≈15 % total error split roughly evenly, which
/// is the default.
///
/// # Example
///
/// ```
/// use genpip_genomics::{DnaSeq, ErrorModel};
/// use genpip_genomics::rng::seeded;
///
/// let truth: DnaSeq = "ACGTACGTACGT".parse()?;
/// let model = ErrorModel::with_total_rate(0.15);
/// let mut rng = seeded(1);
/// let (observed, ops) = model.apply(&truth, &mut rng);
/// assert!(observed.len() > 0);
/// assert!(ops.len() <= truth.len());
/// # Ok::<(), genpip_genomics::base::ParseBaseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Substitution probability per base.
    pub substitution: f64,
    /// Insertion probability per base.
    pub insertion: f64,
    /// Deletion probability per base.
    pub deletion: f64,
}

impl ErrorModel {
    /// A perfect (error-free) model.
    pub fn perfect() -> ErrorModel {
        ErrorModel {
            substitution: 0.0,
            insertion: 0.0,
            deletion: 0.0,
        }
    }

    /// Splits `total` across the three error classes with the ONT-like
    /// 50/25/25 substitution/insertion/deletion ratio.
    ///
    /// # Panics
    ///
    /// Panics if `total` is outside `[0, 0.9]`.
    pub fn with_total_rate(total: f64) -> ErrorModel {
        assert!(
            (0.0..=0.9).contains(&total),
            "total error rate must be in [0, 0.9]"
        );
        ErrorModel {
            substitution: total * 0.5,
            insertion: total * 0.25,
            deletion: total * 0.25,
        }
    }

    /// Total error rate (sum of the three class rates).
    pub fn total_rate(&self) -> f64 {
        self.substitution + self.insertion + self.deletion
    }

    /// Applies the model to `truth`, returning the observed sequence and the
    /// edit script (in true-sequence coordinates, ascending).
    pub fn apply(&self, truth: &DnaSeq, rng: &mut SeededRng) -> (DnaSeq, Vec<MutationOp>) {
        let mut observed = DnaSeq::with_capacity(truth.len());
        let mut ops = Vec::new();
        for (pos, base) in truth.iter().enumerate() {
            // Insertion before this base.
            if rng.random::<f64>() < self.insertion {
                let ins = Base::from_code(rng.random_range(0..4u8));
                observed.push(ins);
                ops.push(MutationOp::Insertion { pos, base: ins });
            }
            let r: f64 = rng.random();
            if r < self.deletion {
                ops.push(MutationOp::Deletion { pos });
            } else if r < self.deletion + self.substitution {
                // Substitute with one of the three *other* bases.
                let shift = rng.random_range(1..4u8);
                let to = Base::from_code(base.code().wrapping_add(shift));
                observed.push(to);
                ops.push(MutationOp::Substitution { pos, to });
            } else {
                observed.push(base);
            }
        }
        (observed, ops)
    }
}

impl Default for ErrorModel {
    /// ONT R9-like ≈15 % total error.
    fn default() -> ErrorModel {
        ErrorModel::with_total_rate(0.15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn truth(n: usize) -> DnaSeq {
        let mut rng = seeded(99);
        (0..n)
            .map(|_| Base::from_code(rng.random_range(0..4u8)))
            .collect()
    }

    #[test]
    fn perfect_model_is_identity() {
        let t = truth(500);
        let mut rng = seeded(1);
        let (obs, ops) = ErrorModel::perfect().apply(&t, &mut rng);
        assert_eq!(obs, t);
        assert!(ops.is_empty());
    }

    #[test]
    fn error_rate_is_approximately_honoured() {
        let t = truth(50_000);
        let model = ErrorModel::with_total_rate(0.15);
        let mut rng = seeded(2);
        let (_, ops) = model.apply(&t, &mut rng);
        let rate = ops.len() as f64 / t.len() as f64;
        assert!((rate - 0.15).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn class_split_is_50_25_25() {
        let t = truth(80_000);
        let model = ErrorModel::with_total_rate(0.2);
        let mut rng = seeded(3);
        let (_, ops) = model.apply(&t, &mut rng);
        let subs = ops
            .iter()
            .filter(|o| matches!(o, MutationOp::Substitution { .. }))
            .count();
        let ins = ops
            .iter()
            .filter(|o| matches!(o, MutationOp::Insertion { .. }))
            .count();
        let dels = ops
            .iter()
            .filter(|o| matches!(o, MutationOp::Deletion { .. }))
            .count();
        let total = ops.len() as f64;
        assert!((subs as f64 / total - 0.5).abs() < 0.05);
        assert!((ins as f64 / total - 0.25).abs() < 0.05);
        assert!((dels as f64 / total - 0.25).abs() < 0.05);
    }

    #[test]
    fn substitutions_never_reproduce_the_original() {
        let t = truth(20_000);
        let model = ErrorModel {
            substitution: 0.3,
            insertion: 0.0,
            deletion: 0.0,
        };
        let mut rng = seeded(4);
        let (_, ops) = model.apply(&t, &mut rng);
        for op in ops {
            if let MutationOp::Substitution { pos, to } = op {
                assert_ne!(to, t.get(pos), "substitution at {pos} is a no-op");
            }
        }
    }

    #[test]
    fn length_bookkeeping_is_consistent() {
        let t = truth(10_000);
        let model = ErrorModel::default();
        let mut rng = seeded(5);
        let (obs, ops) = model.apply(&t, &mut rng);
        let ins = ops
            .iter()
            .filter(|o| matches!(o, MutationOp::Insertion { .. }))
            .count();
        let dels = ops
            .iter()
            .filter(|o| matches!(o, MutationOp::Deletion { .. }))
            .count();
        assert_eq!(obs.len(), t.len() + ins - dels);
    }

    #[test]
    fn ops_are_sorted_by_position() {
        let t = truth(5_000);
        let mut rng = seeded(6);
        let (_, ops) = ErrorModel::default().apply(&t, &mut rng);
        let positions: Vec<usize> = ops
            .iter()
            .map(|op| match op {
                MutationOp::Substitution { pos, .. }
                | MutationOp::Insertion { pos, .. }
                | MutationOp::Deletion { pos } => *pos,
            })
            .collect();
        assert!(positions.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn total_rate_sums_classes() {
        let m = ErrorModel::with_total_rate(0.12);
        assert!((m.total_rate() - 0.12).abs() < 1e-12);
    }
}
