//! Genomic primitives for the GenPIP reproduction.
//!
//! This crate is the foundation of the workspace: every other crate builds on
//! the types defined here. It provides
//!
//! * [`Base`] — the four-letter DNA alphabet with complement arithmetic,
//! * [`DnaSeq`] — a 2-bit-packed DNA sequence,
//! * [`Kmer`] — fixed-length subsequences packed into a `u64`,
//! * [`Phred`] — per-base quality scores and the average-quality-score (AQS)
//!   arithmetic the paper's read-quality-control step relies on,
//! * [`Read`] / [`ReadSet`] — sequenced reads with simulation ground truth,
//! * [`Genome`] and [`GenomeBuilder`] — synthetic reference genomes with
//!   repeats, used in place of the paper's E. coli / human references,
//! * [`ErrorModel`] — a nanopore-style substitution/insertion/deletion model,
//! * [`rng`] — self-contained deterministic random sampling (normal,
//!   log-normal) so the whole pipeline is reproducible from a single seed
//!   with no external dependencies.
//!
//! # Example
//!
//! ```
//! use genpip_genomics::{DnaSeq, GenomeBuilder};
//!
//! let genome = GenomeBuilder::new(10_000).seed(7).build();
//! let window: DnaSeq = genome.sequence().subseq(100, 50);
//! assert_eq!(window.len(), 50);
//! let rc = window.reverse_complement();
//! assert_eq!(rc.reverse_complement(), window);
//! ```

pub mod base;
pub mod fastx;
pub mod genome;
pub mod kmer;
pub mod mutate;
pub mod quality;
pub mod read;
pub mod rng;
pub mod seq;
pub mod stats;

pub use base::Base;
pub use genome::{Genome, GenomeBuilder};
pub use kmer::{Kmer, KmerIter};
pub use mutate::{ErrorModel, MutationOp};
pub use quality::{average_quality, Phred};
pub use read::{Read, ReadOrigin, ReadSet};
pub use seq::DnaSeq;
