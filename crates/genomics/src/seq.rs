//! 2-bit-packed DNA sequences.

use crate::base::{Base, ParseBaseError};
use std::fmt;
use std::str::FromStr;

/// A DNA sequence stored with four bases per byte.
///
/// The packed layout matters for this reproduction beyond memory footprint:
/// GenPIP's data-movement accounting (Section 2.3 of the paper) is driven by
/// the number of *bytes* of basecalled output that must travel between the
/// basecalling and read-mapping machines, so the sequence type exposes
/// [`DnaSeq::packed_bytes`] alongside its base-level API.
///
/// # Example
///
/// ```
/// use genpip_genomics::{Base, DnaSeq};
///
/// let s: DnaSeq = "ACGTAC".parse()?;
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.get(1), Base::C);
/// assert_eq!(s.reverse_complement().to_string(), "GTACGT");
/// # Ok::<(), genpip_genomics::base::ParseBaseError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DnaSeq {
    packed: Vec<u8>,
    len: usize,
}

impl DnaSeq {
    /// Creates an empty sequence.
    pub fn new() -> DnaSeq {
        DnaSeq::default()
    }

    /// Creates an empty sequence with capacity for `n` bases.
    pub fn with_capacity(n: usize) -> DnaSeq {
        DnaSeq {
            packed: Vec::with_capacity(n.div_ceil(4)),
            len: 0,
        }
    }

    /// Number of bases in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bytes the packed representation occupies. This is the unit
    /// GenPIP's data-movement model charges when basecalled reads are shipped
    /// between pipeline steps.
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.packed.len()
    }

    /// Appends a base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let slot = self.len & 3;
        if slot == 0 {
            self.packed.push(0);
        }
        let byte = self.packed.last_mut().expect("byte pushed above");
        *byte |= base.code() << (slot * 2);
        self.len += 1;
    }

    /// Returns the base at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn get(&self, index: usize) -> Base {
        assert!(
            index < self.len,
            "index {index} out of bounds (len {})",
            self.len
        );
        let byte = self.packed[index >> 2];
        Base::from_code(byte >> ((index & 3) * 2))
    }

    /// Overwrites the base at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    pub fn set(&mut self, index: usize, base: Base) {
        assert!(
            index < self.len,
            "index {index} out of bounds (len {})",
            self.len
        );
        let shift = (index & 3) * 2;
        let byte = &mut self.packed[index >> 2];
        *byte = (*byte & !(0b11 << shift)) | (base.code() << shift);
    }

    /// Iterates over the bases.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            seq: self,
            index: 0,
        }
    }

    /// Copies `len` bases starting at `start` into a new sequence.
    ///
    /// # Panics
    ///
    /// Panics if `start + len > self.len()`.
    pub fn subseq(&self, start: usize, len: usize) -> DnaSeq {
        assert!(
            start + len <= self.len,
            "subseq [{start}, {start}+{len}) out of bounds (len {})",
            self.len
        );
        let mut out = DnaSeq::with_capacity(len);
        for i in start..start + len {
            out.push(self.get(i));
        }
        out
    }

    /// Returns the reverse complement of the sequence.
    ///
    /// Nanopore devices sequence either strand of the double helix with equal
    /// probability, so the read simulator and the mapper both need this.
    pub fn reverse_complement(&self) -> DnaSeq {
        let mut out = DnaSeq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }

    /// Appends every base of `other`.
    pub fn extend_from_seq(&mut self, other: &DnaSeq) {
        for b in other.iter() {
            self.push(b);
        }
    }

    /// Fraction of G/C bases, in `[0, 1]`. Returns 0 for an empty sequence.
    pub fn gc_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let gc = self.iter().filter(|b| b.is_gc()).count();
        gc as f64 / self.len as f64
    }

    /// Converts to a plain `Vec<Base>` (unpacked, one byte per base).
    pub fn to_bases(&self) -> Vec<Base> {
        self.iter().collect()
    }
}

impl fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 40 {
            write!(f, "DnaSeq({self})")
        } else {
            write!(f, "DnaSeq(len={}, {}…)", self.len, self.subseq(0, 24))
        }
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromStr for DnaSeq {
    type Err = ParseBaseError;

    fn from_str(s: &str) -> Result<DnaSeq, ParseBaseError> {
        let mut out = DnaSeq::with_capacity(s.len());
        for c in s.chars() {
            out.push(Base::try_from(c)?);
        }
        Ok(out)
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> DnaSeq {
        let mut out = DnaSeq::new();
        for b in iter {
            out.push(b);
        }
        out
    }
}

impl Extend<Base> for DnaSeq {
    fn extend<I: IntoIterator<Item = Base>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl From<&[Base]> for DnaSeq {
    fn from(bases: &[Base]) -> DnaSeq {
        bases.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a DnaSeq {
    type Item = Base;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the bases of a [`DnaSeq`], created by [`DnaSeq::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    seq: &'a DnaSeq,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    #[inline]
    fn next(&mut self) -> Option<Base> {
        if self.index < self.seq.len {
            let b = self.seq.get(self.index);
            self.index += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.seq.len - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let mut s = DnaSeq::new();
        let pattern = [Base::A, Base::C, Base::G, Base::T, Base::T, Base::G];
        for &b in &pattern {
            s.push(b);
        }
        assert_eq!(s.len(), 6);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.get(i), b);
        }
    }

    #[test]
    fn packing_density() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.packed_bytes(), 2);
        let s: DnaSeq = "ACGTA".parse().unwrap();
        assert_eq!(s.packed_bytes(), 2);
    }

    #[test]
    fn parse_and_display() {
        let s: DnaSeq = "GATTACA".parse().unwrap();
        assert_eq!(s.to_string(), "GATTACA");
        assert!("GATXACA".parse::<DnaSeq>().is_err());
    }

    #[test]
    fn set_overwrites_in_place() {
        let mut s: DnaSeq = "AAAA".parse().unwrap();
        s.set(2, Base::T);
        assert_eq!(s.to_string(), "AATA");
        s.set(0, Base::G);
        assert_eq!(s.to_string(), "GATA");
    }

    #[test]
    fn reverse_complement_known_value() {
        let s: DnaSeq = "AACGT".parse().unwrap();
        assert_eq!(s.reverse_complement().to_string(), "ACGTT");
    }

    #[test]
    fn reverse_complement_involution() {
        let s: DnaSeq = "ACGGTTACGATCG".parse().unwrap();
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn subseq_bounds() {
        let s: DnaSeq = "ACGTACGT".parse().unwrap();
        assert_eq!(s.subseq(2, 4).to_string(), "GTAC");
        assert_eq!(s.subseq(0, 0).len(), 0);
        assert_eq!(s.subseq(8, 0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subseq_past_end_panics() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        let _ = s.subseq(2, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_past_end_panics() {
        let s: DnaSeq = "ACGT".parse().unwrap();
        let _ = s.get(4);
    }

    #[test]
    fn gc_fraction_counts() {
        let s: DnaSeq = "GGCC".parse().unwrap();
        assert_eq!(s.gc_fraction(), 1.0);
        let s: DnaSeq = "GATC".parse().unwrap();
        assert_eq!(s.gc_fraction(), 0.5);
        assert_eq!(DnaSeq::new().gc_fraction(), 0.0);
    }

    #[test]
    fn iterator_matches_len() {
        let s: DnaSeq = "ACGTACG".parse().unwrap();
        assert_eq!(s.iter().len(), 7);
        assert_eq!(s.iter().count(), 7);
        let collected: DnaSeq = s.iter().collect();
        assert_eq!(collected, s);
    }

    #[test]
    fn extend_from_seq_appends() {
        let mut a: DnaSeq = "ACG".parse().unwrap();
        let b: DnaSeq = "TTT".parse().unwrap();
        a.extend_from_seq(&b);
        assert_eq!(a.to_string(), "ACGTTT");
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", DnaSeq::new()).is_empty());
        let long: DnaSeq = "ACGT".repeat(30).parse().unwrap();
        let dbg = format!("{long:?}");
        assert!(dbg.contains("len=120"));
    }
}
