//! Fixed-length k-mers packed into a `u64`.

use crate::base::Base;
use crate::seq::DnaSeq;
use std::fmt;

/// A k-mer of length ≤ 32 packed two bits per base into a `u64`.
///
/// The earliest base occupies the *most significant* position so that the
/// integer ordering of k-mers equals their lexicographic ordering — the
/// property minimizer selection relies on ([`crate::Kmer::canonical`],
/// `genpip-mapping`'s sketching).
///
/// # Example
///
/// ```
/// use genpip_genomics::{Base, Kmer};
///
/// let k = Kmer::from_bases(&[Base::A, Base::C, Base::G]);
/// assert_eq!(k.to_string(), "ACG");
/// assert_eq!(k.roll(Base::T).to_string(), "CGT");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Kmer {
    bits: u64,
    k: u8,
}

impl Kmer {
    /// Maximum supported k.
    pub const MAX_K: usize = 32;

    /// Builds a k-mer from a slice of bases.
    ///
    /// # Panics
    ///
    /// Panics if `bases.len()` is 0 or exceeds [`Kmer::MAX_K`].
    pub fn from_bases(bases: &[Base]) -> Kmer {
        assert!(
            !bases.is_empty() && bases.len() <= Kmer::MAX_K,
            "k must be in 1..={}, got {}",
            Kmer::MAX_K,
            bases.len()
        );
        let mut bits = 0u64;
        for &b in bases {
            bits = (bits << 2) | b.code() as u64;
        }
        Kmer {
            bits,
            k: bases.len() as u8,
        }
    }

    /// Builds a k-mer from the first `k` bases at `offset` in `seq`.
    ///
    /// # Panics
    ///
    /// Panics if the window `[offset, offset + k)` is out of bounds or `k` is
    /// invalid.
    pub fn from_seq(seq: &DnaSeq, offset: usize, k: usize) -> Kmer {
        assert!(
            (1..=Kmer::MAX_K).contains(&k),
            "k must be in 1..={}",
            Kmer::MAX_K
        );
        assert!(offset + k <= seq.len(), "k-mer window out of bounds");
        let mut bits = 0u64;
        for i in 0..k {
            bits = (bits << 2) | seq.get(offset + i).code() as u64;
        }
        Kmer { bits, k: k as u8 }
    }

    /// Builds a k-mer directly from packed bits. Bits above `2k` are masked.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`Kmer::MAX_K`].
    pub fn from_bits(bits: u64, k: usize) -> Kmer {
        assert!(
            (1..=Kmer::MAX_K).contains(&k),
            "k must be in 1..={}",
            Kmer::MAX_K
        );
        Kmer {
            bits: bits & mask(k),
            k: k as u8,
        }
    }

    /// The k-mer length.
    #[inline]
    pub fn k(&self) -> usize {
        self.k as usize
    }

    /// The packed 2-bit representation (earliest base most significant).
    #[inline]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The base at position `i` (0 = earliest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= k`.
    #[inline]
    pub fn base(&self, i: usize) -> Base {
        assert!(i < self.k(), "base index {i} out of bounds (k={})", self.k);
        let shift = 2 * (self.k() - 1 - i);
        Base::from_code((self.bits >> shift) as u8)
    }

    /// Slides the window one base forward: drops the earliest base and
    /// appends `next`. The workhorse of streaming k-mer extraction.
    #[inline]
    pub fn roll(&self, next: Base) -> Kmer {
        Kmer {
            bits: ((self.bits << 2) | next.code() as u64) & mask(self.k()),
            k: self.k,
        }
    }

    /// The reverse complement of this k-mer.
    pub fn reverse_complement(&self) -> Kmer {
        let mut bits = 0u64;
        for i in 0..self.k() {
            bits = (bits << 2) | self.base(self.k() - 1 - i).complement().code() as u64;
        }
        Kmer { bits, k: self.k }
    }

    /// The lexicographically smaller of this k-mer and its reverse
    /// complement, so that both strands sketch identically (the standard
    /// "canonical k-mer" convention minimap2 uses).
    pub fn canonical(&self) -> Kmer {
        let rc = self.reverse_complement();
        if rc.bits < self.bits {
            rc
        } else {
            *self
        }
    }

    /// `true` if the k-mer equals its own reverse complement (possible only
    /// for even k).
    pub fn is_palindromic(&self) -> bool {
        *self == self.reverse_complement()
    }
}

#[inline]
const fn mask(k: usize) -> u64 {
    if k >= 32 {
        u64::MAX
    } else {
        (1u64 << (2 * k)) - 1
    }
}

impl fmt::Display for Kmer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.k() {
            write!(f, "{}", self.base(i))?;
        }
        Ok(())
    }
}

/// Streaming iterator over all k-mers of a sequence, created by
/// [`KmerIter::new`]. Yields `(offset, kmer)` pairs.
#[derive(Debug, Clone)]
pub struct KmerIter<'a> {
    seq: &'a DnaSeq,
    k: usize,
    offset: usize,
    current: Option<Kmer>,
}

impl<'a> KmerIter<'a> {
    /// Creates an iterator over the k-mers of `seq`. Yields nothing if the
    /// sequence is shorter than `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`Kmer::MAX_K`].
    pub fn new(seq: &'a DnaSeq, k: usize) -> KmerIter<'a> {
        assert!(
            (1..=Kmer::MAX_K).contains(&k),
            "k must be in 1..={}",
            Kmer::MAX_K
        );
        KmerIter {
            seq,
            k,
            offset: 0,
            current: None,
        }
    }
}

impl Iterator for KmerIter<'_> {
    type Item = (usize, Kmer);

    fn next(&mut self) -> Option<(usize, Kmer)> {
        if self.offset + self.k > self.seq.len() {
            return None;
        }
        let kmer = match self.current {
            None => Kmer::from_seq(self.seq, 0, self.k),
            Some(prev) => prev.roll(self.seq.get(self.offset + self.k - 1)),
        };
        let off = self.offset;
        self.current = Some(kmer);
        self.offset += 1;
        Some((off, kmer))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.seq.len() + 1).saturating_sub(self.offset + self.k);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for KmerIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> DnaSeq {
        s.parse().unwrap()
    }

    #[test]
    fn from_bases_and_display() {
        let k = Kmer::from_bases(&[Base::G, Base::A, Base::T]);
        assert_eq!(k.to_string(), "GAT");
        assert_eq!(k.k(), 3);
    }

    #[test]
    fn bit_layout_is_lexicographic() {
        let a = Kmer::from_seq(&seq("AAC"), 0, 3);
        let b = Kmer::from_seq(&seq("ACA"), 0, 3);
        assert!(a < b, "integer order must match lexicographic order");
    }

    #[test]
    fn base_accessor() {
        let k = Kmer::from_seq(&seq("ACGT"), 0, 4);
        assert_eq!(k.base(0), Base::A);
        assert_eq!(k.base(3), Base::T);
    }

    #[test]
    fn roll_slides_window() {
        let s = seq("ACGTAC");
        let mut k = Kmer::from_seq(&s, 0, 3);
        for i in 1..=3 {
            k = k.roll(s.get(i + 2));
            assert_eq!(k, Kmer::from_seq(&s, i, 3));
        }
    }

    #[test]
    fn reverse_complement_known() {
        let k = Kmer::from_seq(&seq("AAC"), 0, 3);
        assert_eq!(k.reverse_complement().to_string(), "GTT");
    }

    #[test]
    fn canonical_picks_smaller_strand() {
        let k = Kmer::from_seq(&seq("TTT"), 0, 3);
        assert_eq!(k.canonical().to_string(), "AAA");
        let k = Kmer::from_seq(&seq("AAA"), 0, 3);
        assert_eq!(k.canonical().to_string(), "AAA");
    }

    #[test]
    fn canonical_same_for_both_strands() {
        let s = seq("ACGGTAGCTA");
        let rc = s.reverse_complement();
        let fwd = Kmer::from_seq(&s, 2, 5).canonical();
        // Window [2,7) on the forward strand is window [len-7, len-2) on rc.
        let rev = Kmer::from_seq(&rc, s.len() - 7, 5).canonical();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn palindrome_detection() {
        assert!(Kmer::from_seq(&seq("ACGT"), 0, 4).is_palindromic());
        assert!(!Kmer::from_seq(&seq("ACGA"), 0, 4).is_palindromic());
    }

    #[test]
    fn kmer_iter_covers_all_offsets() {
        let s = seq("ACGTACG");
        let kmers: Vec<(usize, Kmer)> = KmerIter::new(&s, 3).collect();
        assert_eq!(kmers.len(), 5);
        for (off, k) in kmers {
            assert_eq!(k, Kmer::from_seq(&s, off, 3));
        }
    }

    #[test]
    fn kmer_iter_short_sequence_is_empty() {
        let s = seq("AC");
        assert_eq!(KmerIter::new(&s, 3).count(), 0);
    }

    #[test]
    fn from_bits_masks() {
        let k = Kmer::from_bits(u64::MAX, 2);
        assert_eq!(k.to_string(), "TT");
    }

    #[test]
    fn max_k_supported() {
        let s: DnaSeq = "ACGT".repeat(8).parse().unwrap();
        let k = Kmer::from_seq(&s, 0, 32);
        assert_eq!(k.to_string(), "ACGT".repeat(8));
        assert_eq!(k.reverse_complement().reverse_complement(), k);
    }
}
